#!/usr/bin/env python3
"""Capacity planning with the proportionality laws (Eqs. 1-4).

A provider-side calculator built on :mod:`repro.core.laws`: given a machine
from the catalog and a set of sold credits, print — for every P-state — the
compensated credits PAS would enforce, whether they still fit the machine,
and the power envelope.  Then validate the sheet against a live simulation
at one operating point.

Run:  python examples/capacity_planning.py
"""

from repro import Host, catalog
from repro.core import laws
from repro.telemetry import table_to_text
from repro.workloads import ConstantLoad

SOLD = {"customer-a": 20.0, "customer-b": 45.0, "dom0": 10.0}
MACHINE = catalog.CORE_I7_3770


def planning_sheet() -> None:
    table = MACHINE.table()
    rows = []
    for state in table:
        caps = laws.compensated_caps(table, state.freq_mhz, SOLD)
        total = sum(caps.values())
        power = MACHINE.power.power(state, table, utilization_fraction=min(1.0, total / 100.0))
        rows.append(
            [
                f"{state.freq_mhz} MHz",
                f"{state.capacity_fraction(table.max_state.freq_mhz) * 100:5.1f}%",
                " / ".join(f"{caps[name]:5.1f}" for name in SOLD),
                f"{total:6.1f}%",
                "fits" if total <= 100.0 else "over-committed",
                f"{power:5.1f} W",
            ]
        )
    print(
        table_to_text(
            ["P-state", "capacity", "Eq.4 caps (a/b/dom0)", "sum", "admission", "power@sum"],
            rows,
            title=f"PAS planning sheet for {MACHINE.name}, sold credits {SOLD}",
        )
    )


def validate_one_point() -> None:
    host = Host(processor=MACHINE, scheduler="pas", governor="userspace")
    for name, credit in SOLD.items():
        domain = host.create_domain(name, credit=credit, dom0=(name == "dom0"))
        domain.attach_workload(ConstantLoad(min(credit, 100.0), injection_period=0.01))
    host.run(until=60.0)
    print()
    print(f"live check @ {host.processor.frequency_mhz} MHz "
          f"(PAS picked it for the combined load):")
    for name, credit in SOLD.items():
        delivered = host.domain(name).work_done / 60.0 * 100.0
        print(f"  {name:12s} booked {credit:5.1f}%  delivered {delivered:5.1f}% absolute")


def main() -> None:
    planning_sheet()
    validate_one_point()


if __name__ == "__main__":
    main()
