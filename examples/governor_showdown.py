#!/usr/bin/env python3
"""Governor showdown: all six governors on the same credit-scheduled host.

Reproduces the §5.4 comparison (stock ondemand vs the authors' stable
governor) and extends it across the full governor zoo of §2.2: pin-high,
pin-low, one-step conservative, threshold-jumping ondemand, the paper's
averaged/dwelled variant, and userspace driven by the §4.1 user-level
manager.

For each governor: DVFS transition count (stability), mean frequency,
energy, and what happened to V20's 20 % SLA.

Run:  python examples/governor_showdown.py
"""

from repro import UserCreditManager
from repro.experiments import PHASE_SOLO_EARLY, ScenarioConfig, run_scenario
from repro.experiments.scenario import build_scenario, ScenarioResult
from repro.telemetry import table_to_text


def run_with_governor(governor: str) -> ScenarioResult:
    config = ScenarioConfig(scheduler="credit", governor=governor)
    if governor != "userspace":
        return run_scenario(config)
    # userspace alone never changes frequency; pair it with the §4.1
    # user-level credit manager to make it meaningful here.
    host = build_scenario(config)
    manager = UserCreditManager(host)
    host.start()
    manager.start()
    host.run(until=config.duration)
    return ScenarioResult(config=config, host=host)


def main() -> None:
    rows = []
    for governor in ("performance", "powersave", "conservative", "ondemand", "stable", "userspace"):
        result = run_with_governor(governor)
        freq_series = result.series("host.freq_mhz", smooth=False)
        sla = result.phase_mean("V20.absolute_load", PHASE_SOLO_EARLY)
        rows.append(
            [
                governor,
                result.frequency_transitions,
                f"{freq_series.mean():6.0f}",
                f"{result.energy_joules / 1000:6.1f}",
                f"{sla:5.1f}",
            ]
        )
    print(
        table_to_text(
            ["governor", "transitions", "mean MHz", "energy kJ", "V20 abs % (solo)"],
            rows,
            title="Six governors, credit scheduler, §5.3 exact-load profile (SLA: 20%)",
        )
    )
    print()
    print("Note the Fig. 3/Fig. 4 pair: ondemand's transition count vs stable's.")
    print("powersave never delivers the SLA; performance wastes energy;")
    print("no governor alone fixes the credit scheduler - that needs PAS.")


if __name__ == "__main__":
    main()
