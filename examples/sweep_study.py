#!/usr/bin/env python3
"""Sweep study: the paper's evaluation plane as one declarative grid.

Figs. 2-10 each show one (scheduler, governor, load) combination of the
§5.3 execution profile.  This example runs the whole plane in one shot with
:mod:`repro.sweep` — declare the axes, fan the cells out over a process
pool, then reduce: which combinations hold V20's 20 % absolute SLA, and
what does each pay in energy?

Also demonstrates the fleet side: the same grid machinery over
:class:`~repro.cluster.scenario.ClusterScenarioConfig` reproduces the §2.3
"consolidation needs DVFS" comparison in four cells.

Run:  python examples/sweep_study.py
"""

from repro.cluster import ClusterScenarioConfig
from repro.experiments import ScenarioConfig
from repro.sweep import run_sweep, SweepGrid


def scenario_plane() -> None:
    grid = SweepGrid(
        {
            "scheduler": ["credit", "sedf", "pas"],
            "governor": ["performance", "stable"],
            "v20_load": ["exact", "thrashing"],
        },
        base=ScenarioConfig(duration=800.0, seed=1),
        vary_seed=True,  # deterministic per-cell seeds from the root seed
    )
    print(f"running {len(grid)} scenario cells...")
    results = run_sweep(grid, workers=4)  # byte-identical to workers=1

    print()
    print(
        results.summary_table(
            ["v20_absolute_solo_early", "freq_mhz_solo_early", "energy_joules"],
            title="scheduler x governor x load: SLA, frequency and energy",
        )
    )

    print()
    print("V20 absolute load while solo (booked: 20%), aggregated by scheduler:")
    for scheduler, summary in results.aggregate(
        "v20_absolute_solo_early", by="scheduler"
    ).items():
        verdict = "holds the SLA" if abs(summary["mean"] - 20.0) < 1.5 else "breaks it"
        print(f"  {scheduler:8} mean {summary['mean']:5.1f}%  -> {verdict}")

    sla_holding = [
        cell
        for cell in results
        if cell.metrics["v20_absolute_solo_early"] is not None
        and abs(cell.metrics["v20_absolute_solo_early"] - 20.0) < 1.5
    ]
    cheapest = min(sla_holding, key=lambda cell: cell.metrics["energy_joules"])
    print()
    print(
        f"cheapest SLA-holding cell: {cheapest.label} "
        f"at {cheapest.metrics['energy_joules']:.0f} J"
    )

    results.save("sweep_results.json")
    print("full results written to sweep_results.json (and loadable back)")


def cluster_plane() -> None:
    grid = SweepGrid(
        {"policy": ["spread", "consolidate"], "dvfs": [False, True]},
        base=ClusterScenarioConfig(n_machines=8, n_vms=12, duration=600.0),
    )
    print()
    print(f"running {len(grid)} fleet cells (§2.3 consolidation x DVFS)...")
    results = run_sweep(grid, workers=4)
    print(
        results.summary_table(
            ["fleet_energy_joules", "mean_machines_on", "mean_sla_fraction"],
            title="fleet energy: consolidation and DVFS are complementary",
        )
    )


def main() -> None:
    scenario_plane()
    cluster_plane()


if __name__ == "__main__":
    main()
