#!/usr/bin/env python3
"""Resumable sweeps: the result store turns grids into a durable corpus.

A big evaluation grid used to be all-or-nothing: die at cell 990 of 1000
and you recompute everything, and every re-plot re-simulates.  With an
:class:`~repro.store.ExperimentStore`, finished cells stream to disk as
they complete and re-runs only compute what is missing — so interrupted
sweeps resume, repeated figure builds are warm-cache, and independent
grids share cells they have in common (content addressing: the key is a
hash of the cell's config + metrics + seed, not its label).

The same machinery from the command line::

    python -m repro sweep --preset stress-fleet --store results-store
    python -m repro sweep --preset stress-fleet --store results-store --resume
    python -m repro sweep --preset governors --replicates 5 \\
        --store results-store --out-aggregated governors.csv
    python -m repro store ls --store results-store
    python -m repro store show --store results-store <label-or-key>
    python -m repro store gc --store results-store
    python -m repro store export --store results-store --out corpus.csv

Run:  python examples/resumable_sweep.py
"""

import tempfile
import time

from repro.experiments import ScenarioConfig
from repro.store import ExperimentStore
from repro.sweep import SweepGrid, SweepRunner


def main() -> None:
    store = ExperimentStore(tempfile.mkdtemp(prefix="repro-store-"))
    grid = SweepGrid(
        {
            "scheduler": ["credit", "pas"],
            "governor": ["performance", "stable"],
        },
        base=ScenarioConfig(
            duration=200.0,
            v20_active=(20.0, 180.0),
            v70_active=(60.0, 140.0),
            poisson=True,  # stochastic arrivals: replicates actually spread
        ),
        vary_seed=True,
        replicates=3,
    )

    print(f"cold run: {len(grid)} cells into {store.root} ...")
    cold = SweepRunner(grid, workers=4, store=store)
    started = time.perf_counter()
    results = cold.run()
    cold_s = time.perf_counter() - started
    print(f"  computed {cold.computed}, warm {cold.cache_hits}  ({cold_s:.2f}s)")

    print("warm run: same grid, same store ...")
    warm = SweepRunner(grid, workers=4, store=store)
    started = time.perf_counter()
    rerun = warm.run()
    warm_s = time.perf_counter() - started
    print(f"  computed {warm.computed}, warm {warm.cache_hits}  ({warm_s:.2f}s)")
    print(f"  byte-identical exports: {rerun.to_json() == results.to_json()}")
    print(f"  speedup: {cold_s / max(warm_s, 1e-9):.0f}x")

    # A *different* grid sharing half its cells rides the same entries.
    subset = SweepGrid(
        {"scheduler": ["pas"], "governor": ["performance", "stable"]},
        base=grid.base,
        vary_seed=True,
        replicates=3,
    )
    shared = SweepRunner(subset, store=store)
    shared.run()
    print(
        f"overlapping grid: {shared.cache_hits} cells shared, "
        f"{shared.computed} computed"
    )

    # Replicates collapse to one row per logical cell for plotting.
    print()
    for row in results.aggregated_records():
        print(
            f"  {row['label']:<45} energy {row['energy_joules_mean']:8.0f} J "
            f"± {row['energy_joules_ci95']:.0f}"
        )


if __name__ == "__main__":
    main()
