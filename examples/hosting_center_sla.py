#!/usr/bin/env python3
"""Hosting-center SLA audit: the paper's §5.3 scenario under every scheduler.

The scenario the paper's evaluation revolves around: two customers on one
host — V20 bought 20 % of max-frequency capacity, V70 bought 70 % — plus
Dom0.  V20 is busy the whole time (thrashing); V70 only in the middle
phase.  A provider cares about two numbers per scheduler:

* **SLA delivery** — does V20 get the 20 % absolute capacity it paid for,
  in every phase?
* **energy** — can the host clock down while V70 is lazy?

The run shows the paper's Table-of-contents in one screen: the fix-credit
scheduler saves energy but shorts V20; SEDF serves V20 but burns energy;
PAS does both.

Run:  python examples/hosting_center_sla.py
"""

from repro.experiments import (
    PHASE_BOTH,
    PHASE_SOLO_EARLY,
    PHASE_SOLO_LATE,
    ScenarioConfig,
    run_scenario,
)
from repro.telemetry import table_to_text

CONTENDERS = {
    "credit (fix, stable gov)": ScenarioConfig(
        scheduler="credit", governor="stable", v20_load="thrashing"
    ),
    "credit (fix, performance)": ScenarioConfig(
        scheduler="credit", governor="performance", v20_load="thrashing"
    ),
    "sedf (variable)": ScenarioConfig(
        scheduler="sedf", governor="stable", v20_load="thrashing"
    ),
    "credit2 (beta, variable)": ScenarioConfig(
        scheduler="credit2", governor="stable", v20_load="thrashing"
    ),
    "PAS (the paper)": ScenarioConfig(scheduler="pas", v20_load="thrashing"),
}


def main() -> None:
    rows = []
    for label, config in CONTENDERS.items():
        result = run_scenario(config)
        solo = result.phase_mean("V20.absolute_load", PHASE_SOLO_EARLY)
        both = result.phase_mean("V20.absolute_load", PHASE_BOTH)
        late = result.phase_mean("V20.absolute_load", PHASE_SOLO_LATE)
        sla_ok = all(abs(v - 20.0) <= 2.0 for v in (solo, both, late))
        v20_over = result.series("V20.absolute_load").max() > 23.0
        rows.append(
            [
                label,
                f"{solo:5.1f} / {both:5.1f} / {late:5.1f}",
                "held" if sla_ok else ("exceeded" if v20_over else "VIOLATED"),
                f"{result.energy_joules / 1000:7.1f}",
                result.frequency_transitions,
            ]
        )

    print(
        table_to_text(
            [
                "scheduler",
                "V20 absolute % (solo/both/solo)",
                "20% SLA",
                "energy kJ",
                "DVFS transitions",
            ],
            rows,
            title="Hosting-center audit: §5.3 profile, V20 thrashing (SLA target: 20%)",
        )
    )
    print()
    print("Reading: 'VIOLATED' = customer got less than they bought;")
    print("'exceeded' = customer got more than they bought (provider pays in energy);")
    print("'held' = exactly the booked capacity, at whatever frequency.")


if __name__ == "__main__":
    main()
