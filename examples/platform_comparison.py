#!/usr/bin/env python3
"""Platform comparison: Table 2 on your terminal.

Runs the §5.8 scenario — V20 (20 % credit) computing pi while V70 runs the
three-phase web profile — on all seven modelled virtualization platforms
under both governors, and prints the reproduced Table 2 next to the paper's
numbers.

This is the long-running example (~20 s): it executes 14 full simulations.

Run:  python examples/platform_comparison.py
"""

from repro.experiments import run_table2
from repro.telemetry import table_to_text


def main() -> None:
    rows, report = run_table2()
    print(
        table_to_text(
            [
                "platform",
                "discipline",
                "T perf (paper)",
                "T ondemand (paper)",
                "degradation (paper)",
            ],
            [
                [
                    row.platform,
                    row.discipline,
                    f"{row.time_performance:5.0f}s ({row.paper_performance:.0f}s)",
                    f"{row.time_ondemand:5.0f}s ({row.paper_ondemand:.0f}s)",
                    f"{row.degradation:3.0f}% ({row.paper_degradation:.0f}%)",
                ]
                for row in rows
            ],
            title="Table 2 reproduction: V20 execution times per platform",
        )
    )
    print()
    for check in report.checks:
        print(check)


if __name__ == "__main__":
    main()
