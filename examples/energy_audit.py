#!/usr/bin/env python3
"""Energy audit: what DVFS-aware credit enforcement is worth, in joules.

Two questions the paper raises but does not plot:

1. *How much energy does PAS actually save?*  We integrate the package
   power model over the thrashing profile for the four contenders
   (Ablation A).
2. *Does the correction factor cf matter?*  On frequency-proportional
   machines (Optiplex, cf = 1) it does not; on the Xeon E5-2620
   (cf_min = 0.803) ignoring it silently shorts every VM by ~20 % of its
   booked capacity (Ablation C).

Run:  python examples/energy_audit.py
"""

from repro.experiments import run_cf_ablation, run_energy_ablation


def main() -> None:
    print(run_energy_ablation().render())
    print()
    print(run_cf_ablation().render())
    print()
    print("Take-away: PAS reaches the credit scheduler's energy level while")
    print("delivering SEDF's throughput guarantee - but only if it accounts")
    print("for the machine's measured cf (Table 1), not just the frequency ratio.")


if __name__ == "__main__":
    main()
