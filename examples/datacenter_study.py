"""Datacenter orchestration study: policies, caps and day shapes.

Runs the ``dc-diurnal`` fleet (24 VMs mixing all five day shapes on 10
machines) under every orchestration policy, then tightens the
``power-budget`` watt cap step by step to show the energy/SLA trade the
multi-host PAS cap buys.

Run with::

    PYTHONPATH=src python examples/datacenter_study.py
"""

from repro.cluster.scenario import orchestration_policy_names, run_cluster_scenario
from repro.experiments import preset_config
from repro.sweep.metrics import cluster_metrics
from repro.telemetry import table_to_text


def main() -> None:
    config = preset_config("dc-diurnal")

    rows = []
    for policy in orchestration_policy_names():
        sim = run_cluster_scenario(config.with_changes(policy=policy))
        m = cluster_metrics(sim)
        rows.append(
            [
                policy,
                f"{m['energy_kwh'] * 1000:8.2f}",
                f"{m['hosts_on_mean']:6.2f}",
                str(m["migrations"]),
                f"{m['sla_mean'] * 100:6.2f}",
                f"{m['power_peak_w']:7.1f}",
            ]
        )
    print(
        table_to_text(
            ["policy", "energy Wh", "hosts on", "migrations", "SLA %", "peak W"],
            rows,
            title="dc-diurnal: one day, four orchestration policies",
        )
    )

    print()
    rows = []
    for budget in (240.0, 200.0, 170.0, 140.0):
        sim = run_cluster_scenario(
            config.with_changes(policy="power-budget", power_budget_w=budget)
        )
        m = cluster_metrics(sim)
        rows.append(
            [
                f"{budget:.0f} W",
                f"{m['energy_kwh'] * 1000:8.2f}",
                f"{m['sla_mean'] * 100:6.2f}",
                f"{m['power_peak_w']:7.1f}",
                "yes" if m["power_peak_w"] <= budget else "NO",
            ]
        )
    print(
        table_to_text(
            ["cap", "energy Wh", "SLA %", "peak W", "cap held"],
            rows,
            title="tightening the cluster watt cap (power-budget policy)",
        )
    )


if __name__ == "__main__":
    main()
