#!/usr/bin/env python3
"""Quickstart: a PAS-scheduled host keeping a VM's SLA under DVFS.

Builds the smallest interesting system: one physical host (the paper's
Optiplex 755 testbed), Dom0, and a single VM that bought 20 % of the
machine's *maximum-frequency* capacity and then demands more than that
(a thrashing web load).

Watch what PAS does:

* the host is globally underloaded, so PAS clocks the processor down to
  1600 MHz (energy saving);
* at 1600 MHz a nominal 20 % share would only deliver 12 % absolute
  capacity, so PAS raises the VM's credit to 20 / (1600/2667) = 33.3 %
  (Eq. 4) — the VM keeps exactly the capacity it bought;
* the VM can never consume *more* than its booked absolute capacity, so
  the frequency stays down.

Run:  python examples/quickstart.py
"""

from repro import Host, catalog, render_chart, rolling_mean
from repro.workloads import LoadProfile, WebApp, ConstantLoad, thrashing_rate


def main() -> None:
    host = Host(
        processor=catalog.OPTIPLEX_755,
        scheduler="pas",       # the paper's contribution
        governor="userspace",  # PAS drives the frequency itself
    )

    dom0 = host.create_domain("Dom0", credit=10, dom0=True)
    dom0.attach_workload(ConstantLoad(8.0))  # housekeeping + guest I/O

    vm = host.create_domain("V20", credit=20)
    rate = thrashing_rate(20, request_cost=0.005)  # demands 5x its credit
    vm.attach_workload(WebApp(LoadProfile.three_phase(10, 110, rate)))

    host.run(until=120)

    recorder = host.recorder
    nominal = rolling_mean(recorder.series("V20.global_load"), 3)
    absolute = rolling_mean(recorder.series("V20.absolute_load"), 3)
    freq = recorder.series("host.freq_mhz").map(lambda mhz: mhz / 2667 * 100)

    print(
        render_chart(
            [nominal, absolute, freq],
            title="PAS: V20 nominal vs absolute load (thrashing, 20% SLA)",
            y_max=100.0,
            labels=["V20 nominal %", "V20 absolute %", "frequency (% of max)"],
        )
    )

    active = (40.0, 100.0)
    print()
    print(f"frequency while active : {recorder.series('host.freq_mhz').window(*active).mean():6.0f} MHz")
    print(f"V20 nominal load       : {nominal.window(*active).mean():6.1f} %  (compensated credit)")
    print(f"V20 absolute load      : {absolute.window(*active).mean():6.1f} %  (the 20% SLA, held)")
    print(f"energy consumed        : {host.processor.energy_joules:6.0f} J")
    print(f"DVFS transitions       : {host.processor.transitions:6d}")


if __name__ == "__main__":
    main()
