#!/usr/bin/env python3
"""Consolidation study: why DVFS survives server consolidation (§2.3).

A hosting centre of eight 16 GB machines runs a dozen VMs with light,
diurnal CPU demand but 5 GB memory footprints.  Consolidation packs them
three-per-host (memory-bound!) and powers the rest of the fleet off — yet
the packed hosts still idle around half their CPU, so per-host DVFS keeps
paying on top.  The paper's §2.3 in one table and one chart.

Run:  python examples/consolidation_study.py
"""

from repro import TimeSeries, render_chart
from repro.cluster import (
    ClusterScenarioConfig,
    ClusterSim,
    consolidate_first_fit,
    make_population,
    MachineSpec,
    spread_round_robin,
)
from repro.cpu import catalog
from repro.telemetry import table_to_text


def run(policy, dvfs: bool) -> ClusterSim:
    sim = ClusterSim(
        n_machines=8,
        machine_spec=MachineSpec(processor=catalog.CORE_I7_3770, memory_mb=16384),
        vms=make_population(ClusterScenarioConfig(n_vms=12, seed=7)),
        policy=policy,
        dvfs=dvfs,
    )
    sim.run(600.0)
    return sim


def main() -> None:
    strategies = {
        "spread, no DVFS": run(spread_round_robin, False),
        "spread + DVFS": run(spread_round_robin, True),
        "consolidation, no DVFS": run(consolidate_first_fit, False),
        "consolidation + DVFS": run(consolidate_first_fit, True),
    }
    baseline = strategies["spread, no DVFS"].fleet_energy_joules
    print(
        table_to_text(
            ["strategy", "energy kJ", "vs baseline", "machines on", "SLA"],
            [
                [
                    label,
                    f"{sim.fleet_energy_joules / 1000:7.1f}",
                    f"-{(1 - sim.fleet_energy_joules / baseline) * 100:4.1f}%",
                    f"{sim.mean_machines_on:4.1f}",
                    f"{sim.mean_sla_fraction * 100:5.1f}%",
                ]
                for label, sim in strategies.items()
            ],
            title="Fleet energy over one diurnal cycle (8 machines, 12 VMs)",
        )
    )

    best = strategies["consolidation + DVFS"]
    demand = TimeSeries(
        "fleet demand %", [(s.time, s.demand_percent) for s in best.stats]
    )
    power = TimeSeries(
        "fleet power (W)", [(s.time, s.energy_joules / best.epoch_s) for s in best.stats]
    )
    print()
    print(
        render_chart(
            [demand, power],
            title="consolidation + DVFS: fleet demand vs fleet power over the day",
            labels=["fleet CPU demand (% of one host)", "fleet power (W)"],
        )
    )
    print()
    packed = [m for m in best.machines if m.vms]
    print(f"packed hosts: {len(packed)} of 8; per-host CPU demand at noon: "
          + ", ".join(f"{sum(vm.demand_at(300.0) for vm in m.vms):.0f}%" for m in packed))
    print("memory binds at 3 VMs/host; CPU never fills -> DVFS stays complementary.")


if __name__ == "__main__":
    main()
