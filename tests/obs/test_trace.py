"""Tracer unit behaviour: event shape, track ids, filtering, validation."""

import json

import pytest

from repro.errors import TelemetryError
from repro.obs import TRACE_SCHEMA, Tracer, validate_trace_file, validate_trace_text


def test_instant_event_shape():
    tracer = Tracer()
    tracer.instant("sched", "pick v20", 1.5, "sched.decisions", args={"vcpu": "v20"})
    events = [e for e in tracer.events if e["cat"] != "__metadata"]
    assert len(events) == 1
    event = events[0]
    assert event["ph"] == "i"
    assert event["ts"] == pytest.approx(1.5e6)
    assert event["pid"] == 1
    assert event["s"] == "t"
    assert event["args"] == {"vcpu": "v20"}


def test_complete_event_carries_duration():
    tracer = Tracer()
    tracer.complete("sched", "v20", 2.0, 0.03, "vcpu v20")
    event = [e for e in tracer.events if e["ph"] == "X"][0]
    assert event["dur"] == pytest.approx(0.03e6)


def test_track_ids_assigned_first_use_order_with_metadata():
    tracer = Tracer()
    tracer.instant("sched", "a", 0.0, "track-one")
    tracer.instant("sched", "b", 0.0, "track-two")
    tracer.instant("sched", "c", 0.0, "track-one")
    names = {
        e["tid"]: e["args"]["name"]
        for e in tracer.events
        if e["cat"] == "__metadata" and e["name"] == "thread_name"
    }
    assert names == {1: "track-one", 2: "track-two"}
    tids = [e["tid"] for e in tracer.events if e["cat"] == "sched"]
    assert tids == [1, 2, 1]


def test_category_filter_drops_unwanted_events():
    tracer = Tracer(categories=("sched",))
    tracer.engine_event(0.1, "tick")
    tracer.sched_pick(0.1, "v20", 0.03)
    assert tracer.wants("sched") and not tracer.wants("engine")
    categories = {e["cat"] for e in tracer.events if e["cat"] != "__metadata"}
    assert categories == {"sched"}


def test_domain_emits_cover_the_documented_vocabulary():
    tracer = Tracer()
    tracer.engine_event(0.0, "slice.v20")
    tracer.sched_pick(0.1, None, 0.0)
    tracer.sched_pick(0.1, "v20", 0.03)
    tracer.sched_slice("v20", 0.1, 0.03)
    tracer.sched_preempt(0.2, "v20", "wake")
    tracer.credit_event(0.3, "park", "v20")
    tracer.pstate(0.4, 1998)
    tracer.governor_decide(0.4, "ondemand", 37.5, 1998)
    tracer.epoch(0.0, 30.0, 0, {"machines_on": 2, "power_w": 120.0})
    tracer.migration(5.0, "vm3", "m1", "m2")
    categories = {e["cat"] for e in tracer.events if e["cat"] != "__metadata"}
    assert categories == {"engine", "sched", "credit", "cpufreq", "cluster"}
    assert validate_trace_text(tracer.to_json()) == []


def test_to_json_is_canonical_and_schema_tagged():
    tracer = Tracer()
    tracer.pstate(1.0, 1998)
    text = tracer.to_json()
    assert text.endswith("\n")
    document = json.loads(text)
    assert document["otherData"] == {"schema": TRACE_SCHEMA, "clock": "sim"}
    # Canonical form: re-serialising the parsed document with the same
    # settings reproduces the bytes exactly.
    assert json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n" == text


def test_validator_rejects_malformed_documents():
    assert validate_trace_text("not json")[0].startswith("not valid JSON")
    assert validate_trace_text("[]") == [
        "top level must be an object with a traceEvents list"
    ]
    assert validate_trace_text('{"traceEvents": 3}') == ["missing traceEvents list"]
    missing = json.dumps({"traceEvents": [{"name": "x", "ph": "i"}]})
    assert "missing key(s)" in validate_trace_text(missing)[0]
    bad_phase = json.dumps(
        {
            "traceEvents": [
                {"name": "x", "cat": "c", "ph": "Z", "ts": 0, "pid": 1, "tid": 1}
            ]
        }
    )
    assert "unknown phase 'Z'" in validate_trace_text(bad_phase)[0]
    no_dur = json.dumps(
        {
            "traceEvents": [
                {"name": "x", "cat": "c", "ph": "X", "ts": 0, "pid": 1, "tid": 1}
            ]
        }
    )
    assert "needs a numeric dur" in validate_trace_text(no_dur)[0]


def test_validate_trace_file_raises_telemetry_error(tmp_path):
    good = tmp_path / "good.json"
    tracer = Tracer()
    tracer.pstate(0.0, 1998)
    tracer.save(good)
    validate_trace_file(good)  # no problems, no raise

    bad = tmp_path / "bad.json"
    bad.write_text('{"traceEvents": 3}')
    with pytest.raises(TelemetryError, match="missing traceEvents"):
        validate_trace_file(bad)
