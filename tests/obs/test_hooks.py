"""The hook points: install/uninstall and the `observed` context manager."""

from repro.obs import (
    install_metrics,
    install_tracer,
    MetricsRegistry,
    observed,
    Tracer,
    uninstall_metrics,
    uninstall_tracer,
)
from repro.obs import hooks


def test_hooks_default_to_none():
    assert hooks.TRACER is None
    assert hooks.METRICS is None


def test_install_returns_previous():
    first = Tracer()
    second = Tracer()
    try:
        assert install_tracer(first) is None
        assert install_tracer(second) is first
    finally:
        uninstall_tracer()
    assert hooks.TRACER is None

    registry = MetricsRegistry()
    try:
        assert install_metrics(registry) is None
    finally:
        uninstall_metrics()
    assert hooks.METRICS is None


def test_observed_installs_and_restores():
    tracer = Tracer()
    registry = MetricsRegistry()
    with observed(tracer=tracer, metrics=registry):
        assert hooks.TRACER is tracer
        assert hooks.METRICS is registry
    assert hooks.TRACER is None
    assert hooks.METRICS is None


def test_observed_restores_on_exception():
    tracer = Tracer()
    try:
        with observed(tracer=tracer):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert hooks.TRACER is None


def test_observed_leaves_uninvolved_hook_alone():
    registry = MetricsRegistry()
    previous = install_metrics(registry)
    assert previous is None
    try:
        with observed(tracer=Tracer()):
            assert hooks.METRICS is registry
        assert hooks.METRICS is registry
    finally:
        uninstall_metrics()


def test_observed_restores_enclosing_tracer():
    outer = Tracer()
    inner = Tracer()
    with observed(tracer=outer):
        with observed(tracer=inner):
            assert hooks.TRACER is inner
        assert hooks.TRACER is outer
    assert hooks.TRACER is None
