"""MetricsRegistry unit behaviour and the post-run harvesters."""

import json

import pytest

from repro.cluster.scenario import run_cluster_scenario
from repro.experiments import get_preset, run_scenario, ScenarioConfig
from repro.obs import (
    collect_cluster,
    collect_outcome,
    collect_sweep,
    MetricsRegistry,
)
from repro.sweep import SweepGrid, SweepRunner


def test_counters_and_gauges():
    registry = MetricsRegistry()
    registry.inc("a.count")
    registry.inc("a.count", 4)
    registry.gauge("b.level", 2.0)
    registry.gauge("b.level", 1.5)
    registry.record_max("c.peak", 3.0)
    registry.record_max("c.peak", 2.0)
    assert registry.counter("a.count") == 5
    assert registry.counter("never.touched") == 0
    assert registry.snapshot() == {"a.count": 5, "b.level": 1.5, "c.peak": 3.0}
    assert len(registry) == 3


def test_snapshot_is_name_sorted():
    registry = MetricsRegistry()
    registry.inc("zeta")
    registry.gauge("alpha", 1.0)
    registry.inc("mid")
    assert list(registry.snapshot()) == ["alpha", "mid", "zeta"]


def test_save_writes_canonical_json(tmp_path):
    registry = MetricsRegistry()
    registry.inc("events", 3)
    path = registry.save(tmp_path / "m.json")
    text = path.read_text()
    assert text.endswith("\n")
    assert json.loads(text) == {"events": 3}


def test_scenario_run_harvests_ten_plus_counters():
    # The acceptance bar: a --metrics-out snapshot of a single-host run
    # carries at least 10 distinct metrics.
    result = run_scenario(ScenarioConfig().with_changes(duration=60.0))
    registry = MetricsRegistry()
    collect_outcome(registry, result)
    snapshot = registry.snapshot()
    assert len(snapshot) >= 10
    assert snapshot["engine.events_fired"] > 0
    assert snapshot["sched.decisions"] > 0
    assert snapshot["engine.heap_peak"] > 0
    assert snapshot["telemetry.series"] > 0


def test_cluster_run_harvest():
    sim = run_cluster_scenario(get_preset("dc-diurnal-small").config)
    registry = MetricsRegistry()
    collect_cluster(registry, sim)
    snapshot = registry.snapshot()
    assert snapshot["cluster.epochs"] == len(sim.stats) > 0
    assert snapshot["cluster.energy_joules"] == pytest.approx(
        sim.fleet_energy_joules
    )
    assert "cluster.peak_power_w" in snapshot
    # collect_outcome dispatches on the .machines shape for orchestrators.
    via_outcome = MetricsRegistry()
    collect_outcome(via_outcome, sim)
    assert via_outcome.snapshot() == snapshot


def test_sweep_harvest_reports_cache_split(tmp_path):
    grid = SweepGrid(
        {"scheduler": ["credit", "pas"]},
        base=ScenarioConfig().with_changes(duration=30.0),
    )
    runner = SweepRunner(grid, store=tmp_path / "store")
    runner.run()
    registry = MetricsRegistry()
    collect_sweep(registry, runner)
    assert registry.snapshot()["store.computed"] == 2
    assert registry.snapshot()["sweep.cells"] == 2

    resumed = SweepRunner(grid, store=tmp_path / "store")
    resumed.run()
    warm = MetricsRegistry()
    collect_sweep(warm, resumed)
    assert warm.snapshot()["store.cache_hits"] == 2
    assert warm.snapshot()["store.computed"] == 0
