"""Observability must never change results, and traces must be replayable.

The contract under test: (1) installing a tracer/registry leaves the
simulation's output bit-identical to an unobserved run; (2) the serialized
trace is a pure function of (spec, seed) — two runs produce byte-identical
JSON; (3) sweep exports stay byte-identical across serial/parallel and
cold/store-resumed executions with observation installed.
"""

import pytest

from repro.cluster.scenario import run_cluster_scenario
from repro.experiments import get_preset, preset_grid, run_scenario, ScenarioConfig
from repro.obs import MetricsRegistry, observed, Tracer
from repro.sweep import SweepGrid, SweepRunner


def _short_config() -> ScenarioConfig:
    return ScenarioConfig().with_changes(duration=40.0)


def _traced_scenario_json() -> tuple[str, float]:
    tracer = Tracer()
    with observed(tracer=tracer):
        result = run_scenario(_short_config())
    return tracer.to_json(), result.energy_joules


def test_scenario_trace_is_byte_identical_across_runs():
    first, _ = _traced_scenario_json()
    second, _ = _traced_scenario_json()
    assert first == second
    assert len(first) > 1000  # a real trace, not two empty documents


def test_tracing_does_not_change_scenario_results():
    plain = run_scenario(_short_config())
    _, traced_energy = _traced_scenario_json()
    assert traced_energy == pytest.approx(plain.energy_joules, abs=0.0)


def test_cluster_trace_is_byte_identical_across_runs():
    config = get_preset("dc-diurnal-small").config
    documents = []
    for _ in range(2):
        tracer = Tracer()
        with observed(tracer=tracer):
            run_cluster_scenario(config)
        documents.append(tracer.to_json())
    assert documents[0] == documents[1]


def test_metrics_snapshot_is_identical_across_runs():
    snapshots = []
    for _ in range(2):
        registry = MetricsRegistry()
        with observed(metrics=registry):
            result = run_scenario(_short_config())
        from repro.obs import collect_outcome

        collect_outcome(registry, result)
        snapshots.append(registry.to_json())
    assert snapshots[0] == snapshots[1]


def _two_cell_grid() -> SweepGrid:
    return SweepGrid(
        {"scheduler": ["credit", "pas"]},
        base=ScenarioConfig().with_changes(duration=30.0),
    )


def test_serial_and_parallel_sweep_exports_match_under_observation():
    exports = {}
    for workers in (1, 2):
        registry = MetricsRegistry()
        with observed(metrics=registry):
            results = SweepRunner(_two_cell_grid(), workers=workers).run()
        exports[workers] = results.to_json()
        assert registry.counter("sweep.cells") == 2
    assert exports[1] == exports[2]


def test_cold_and_resumed_sweep_exports_match_under_observation(tmp_path):
    store = tmp_path / "store"
    exports = {}
    hits = {}
    for phase in ("cold", "resumed"):
        registry = MetricsRegistry()
        with observed(metrics=registry):
            results = SweepRunner(_two_cell_grid(), store=store).run()
        exports[phase] = results.to_json()
        hits[phase] = registry.counter("store.cache_hits")
    assert exports["cold"] == exports["resumed"]
    # ... while the metrics side channel truthfully reports the difference.
    assert hits == {"cold": 0, "resumed": 2}


def test_progress_callback_is_purely_observational():
    seen = []
    plain = SweepRunner(_two_cell_grid()).run()
    watched = SweepRunner(
        _two_cell_grid(), progress=lambda result, from_cache: seen.append(result.label)
    ).run()
    assert len(seen) == 2
    assert watched.to_json() == plain.to_json()


def test_stress_fleet_trace_matches_itself():
    # The ROADMAP's perf preset through the tracer twice: the dense many-VM
    # event stream (slices, preemptions, P-states) replays byte-for-byte.
    grid = preset_grid("stress-fleet")
    cell = next(iter(grid))
    documents = []
    for _ in range(2):
        tracer = Tracer(categories=("sched", "cpufreq"))
        with observed(tracer=tracer):
            run_scenario(cell.config)
        documents.append(tracer.to_json())
    assert documents[0] == documents[1]
