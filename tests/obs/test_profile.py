"""Profiler smoke tests: phases populate, results stay untouched."""

import pytest

from repro.experiments import get_preset, run_scenario, ScenarioConfig
from repro.obs import PhaseProfiler, profile_cluster, profile_scenario, wall_now


def test_wall_now_is_monotonic():
    first = wall_now()
    second = wall_now()
    assert second >= first


def test_wrap_phase_self_time_excludes_children():
    profiler = PhaseProfiler()

    def inner() -> int:
        return 7

    wrapped_inner = profiler.wrap_phase("inner", inner)

    def outer() -> int:
        return wrapped_inner() + 1

    wrapped_outer = profiler.wrap_phase("outer", outer)
    assert wrapped_outer() == 8
    assert profiler.calls == {"inner": 1, "outer": 1}
    # Parent self-time excludes the child's elapsed time, so the two phases
    # sum to (roughly) the outer call's total elapsed wall time.
    assert profiler.self_s["outer"] >= 0.0
    assert profiler.self_s["inner"] >= 0.0


def test_profile_scenario_populates_subsystem_phases():
    config = ScenarioConfig().with_changes(duration=40.0)
    result, profiler = profile_scenario(config)
    assert result.host.now == pytest.approx(40.0)
    phases = set(profiler.self_s)
    assert {"scheduler", "dispatch", "accounting"} <= phases
    assert all(spent >= 0.0 for spent in profiler.self_s.values())
    assert profiler.calls["scheduler"] > 0


def test_profile_scenario_result_matches_plain_run():
    config = ScenarioConfig().with_changes(duration=40.0)
    plain = run_scenario(config)
    profiled, _ = profile_scenario(config)
    assert profiled.energy_joules == pytest.approx(plain.energy_joules, abs=0.0)
    assert profiled.host.engine.events_fired == plain.host.engine.events_fired


def test_profile_cluster_populates_orchestration_phases():
    sim, profiler = profile_cluster(get_preset("dc-diurnal-small").config)
    assert len(sim.stats) > 0
    assert {"planning", "epoch", "serving"} <= set(profiler.self_s)
    assert profiler.calls["epoch"] == len(sim.stats)


def test_render_table_lists_phases_sorted_by_self_time():
    profiler = PhaseProfiler()
    profiler.self_s = {"governor": 0.5, "scheduler": 2.0}
    profiler.calls = {"governor": 10, "scheduler": 40}
    profiler.note_run_wall(3.0)
    table = profiler.render_table()
    lines = table.splitlines()
    assert "phase" in lines[0]
    body = "\n".join(lines)
    assert body.index("scheduler") < body.index("governor")
    # Unattributed remainder shows up as "other"; the footer notes run wall.
    assert "other" in body
    assert "run wall" in body


def test_phase_rows_shares_sum_to_one_with_other_row():
    profiler = PhaseProfiler()
    profiler.self_s = {"a": 1.0, "b": 1.0}
    profiler.calls = {"a": 1, "b": 1}
    profiler.note_run_wall(4.0)
    rows = profiler.phase_rows()
    assert [row["phase"] for row in rows] == ["other", "a", "b"]
    assert sum(row["share"] for row in rows) == pytest.approx(1.0)
