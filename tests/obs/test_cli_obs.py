"""CLI-level observability: --trace/--metrics-out/-v/-q and repro profile."""

import json

from repro.cli import main
from repro.obs import validate_trace_file

_FAST_GRID = (
    '{"scheduler": ["credit", "pas"], "duration": [60.0],'
    ' "v20_active": [[10.0, 50.0]], "v70_active": [[20.0, 40.0]]}'
)


def test_run_trace_is_byte_identical_and_valid(capsys, tmp_path):
    # The acceptance criterion: two CLI runs of the same preset produce
    # byte-identical Perfetto-loadable trace files.
    first = tmp_path / "one.json"
    second = tmp_path / "two.json"
    assert main(["run", "--preset", "paper-5.3", "--trace", str(first)]) == 0
    assert main(["run", "--preset", "paper-5.3", "--trace", str(second)]) == 0
    out = capsys.readouterr().out
    assert "trace events" in out
    assert first.read_bytes() == second.read_bytes()
    validate_trace_file(first)


def test_run_metrics_out_snapshots_ten_plus_counters(capsys, tmp_path):
    path = tmp_path / "metrics.json"
    assert main(["run", "--preset", "paper-5.3", "--metrics-out", str(path)]) == 0
    capsys.readouterr()
    snapshot = json.loads(path.read_text())
    assert len(snapshot) >= 10
    assert snapshot["engine.events_fired"] > 0


def test_cluster_run_trace_and_metrics(capsys, tmp_path):
    trace = tmp_path / "trace.json"
    metrics = tmp_path / "metrics.json"
    assert (
        main(
            [
                "cluster",
                "run",
                "--preset",
                "dc-diurnal-small",
                "--trace",
                str(trace),
                "--metrics-out",
                str(metrics),
            ]
        )
        == 0
    )
    capsys.readouterr()
    validate_trace_file(trace)
    snapshot = json.loads(metrics.read_text())
    assert snapshot["cluster.epochs"] > 0
    assert "cluster.peak_power_w" in snapshot


def test_sweep_metrics_out_and_default_progress(capsys, tmp_path):
    path = tmp_path / "metrics.json"
    assert main(["sweep", "--grid", _FAST_GRID, "--metrics-out", str(path)]) == 0
    captured = capsys.readouterr()
    snapshot = json.loads(path.read_text())
    assert snapshot["sweep.cells"] == 2
    assert snapshot["store.computed"] == 2
    # Default verbosity: the live cells/s line lands on stderr only.
    assert "cells/s" in captured.err
    assert "cells/s" not in captured.out


def test_sweep_verbose_prints_per_cell_lines(capsys):
    assert main(["sweep", "--grid", _FAST_GRID, "-v"]) == 0
    err = capsys.readouterr().err
    assert "[1/2]" in err and "[2/2]" in err
    assert "computed" in err


def test_sweep_quiet_silences_progress_and_store_line(capsys, tmp_path):
    store = tmp_path / "store"
    assert main(["sweep", "--grid", _FAST_GRID, "-q", "--store", str(store)]) == 0
    captured = capsys.readouterr()
    assert captured.err == ""
    assert "store:" not in captured.out


def test_sweep_progress_does_not_change_exports(capsys, tmp_path):
    quiet = tmp_path / "quiet.json"
    loud = tmp_path / "loud.json"
    assert main(["sweep", "--grid", _FAST_GRID, "-q", "--out", str(quiet)]) == 0
    assert main(["sweep", "--grid", _FAST_GRID, "-v", "--out", str(loud)]) == 0
    capsys.readouterr()
    assert quiet.read_bytes() == loud.read_bytes()


def test_cluster_sweep_quiet_and_metrics(capsys, tmp_path):
    path = tmp_path / "metrics.json"
    assert (
        main(
            [
                "cluster",
                "sweep",
                "--preset",
                "dc-diurnal-small",
                "-q",
                "--metrics-out",
                str(path),
            ]
        )
        == 0
    )
    captured = capsys.readouterr()
    assert captured.err == ""
    assert json.loads(path.read_text())["sweep.cells"] > 0


def test_profile_command_prints_self_time_table(capsys):
    assert main(["profile", "--preset", "paper-5.3", "--duration", "60"]) == 0
    out = capsys.readouterr().out
    assert "phase" in out and "self_s" in out
    assert "scheduler" in out
    assert "run wall" in out


def test_profile_cluster_preset(capsys):
    assert main(["profile", "--preset", "dc-diurnal-small"]) == 0
    out = capsys.readouterr().out
    assert "planning" in out


def test_profile_unknown_preset_is_clean(capsys):
    assert main(["profile", "--preset", "nope"]) == 2
    assert "profile:" in capsys.readouterr().err
