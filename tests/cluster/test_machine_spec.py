"""MachineSpec groups and their expansion through ClusterScenarioConfig."""

import json

import pytest

from repro.cluster import ClusterScenarioConfig
from repro.cluster.machine import MachineSpec
from repro.cpu import catalog
from repro.errors import ConfigurationError


# ----------------------------------------------------------------- MachineSpec


def test_defaults_describe_the_reference_host():
    spec = MachineSpec()
    assert spec.processor is catalog.CORE_I7_3770
    assert spec.memory_mb == 16384
    assert spec.overhead_percent == 5.0
    assert spec.count == 1


def test_to_dict_omits_defaults():
    # Omit-when-default keeps store keys stable when new fields grow.
    spec = MachineSpec()
    assert spec.to_dict() == {
        "processor": catalog.CORE_I7_3770.name,
        "memory_mb": 16384,
    }


def test_to_dict_emits_non_defaults():
    spec = MachineSpec(
        processor=catalog.BIG_LITTLE_44,
        memory_mb=8192,
        overhead_percent=3.0,
        count=4,
    )
    assert spec.to_dict() == {
        "processor": catalog.BIG_LITTLE_44.name,
        "memory_mb": 8192,
        "overhead_percent": 3.0,
        "count": 4,
    }


@pytest.mark.parametrize(
    "spec",
    [
        MachineSpec(),
        MachineSpec(count=3),
        MachineSpec(processor=catalog.BIG_LITTLE_44, overhead_percent=2.5),
    ],
)
def test_round_trips_through_json(spec):
    assert MachineSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec


def test_from_dict_accepts_processor_by_catalog_name():
    spec = MachineSpec.from_dict({"processor": catalog.BIG_LITTLE_44.name})
    assert spec.processor is catalog.BIG_LITTLE_44


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ConfigurationError, match="machine"):
        MachineSpec.from_dict({"procesor": "Intel Core i7-3770"})


def test_count_must_be_at_least_one():
    with pytest.raises(ConfigurationError):
        MachineSpec(count=0)


def test_describe_is_compact():
    spec = MachineSpec(count=2, memory_mb=8192)
    assert spec.describe() == f"2x{catalog.CORE_I7_3770.name}/8192MB"


# ---------------------------------------------------- config-level expansion


def test_legacy_triple_expands_to_one_group():
    config = ClusterScenarioConfig(n_machines=6, machine_memory_mb=8192)
    (group,) = config.effective_machines()
    assert group == MachineSpec(
        processor=config.processor, memory_mb=8192, count=6
    )
    assert config.total_machines == 6


def test_machines_field_overrides_the_legacy_triple():
    groups = (
        MachineSpec(count=2),
        MachineSpec(processor=catalog.BIG_LITTLE_44, count=3),
    )
    config = ClusterScenarioConfig(n_machines=99, machines=groups)
    assert config.effective_machines() == groups
    assert config.total_machines == 5


def test_legacy_config_serialises_without_new_keys():
    # The byte-identity guarantee: a pre-heterogeneity config must emit
    # exactly the keys it always did, so sweep-store sha keys survive.
    payload = ClusterScenarioConfig().to_dict()
    assert "machines" not in payload
    assert "placement" not in payload


def test_hetero_config_round_trips_through_json():
    config = ClusterScenarioConfig(
        machines=(
            MachineSpec(count=2),
            MachineSpec(processor=catalog.BIG_LITTLE_44, count=2),
        ),
        placement="efficiency",
    )
    text = json.dumps(config.to_dict())
    assert ClusterScenarioConfig.from_dict(json.loads(text)) == config


def test_machines_axis_coerces_from_json_lists():
    value = ClusterScenarioConfig.coerce_field(
        "machines",
        [{"processor": catalog.BIG_LITTLE_44.name, "memory_mb": 8192, "count": 2}],
    )
    assert value == (
        MachineSpec(processor=catalog.BIG_LITTLE_44, memory_mb=8192, count=2),
    )


def test_unknown_placement_is_rejected():
    with pytest.raises(ConfigurationError, match="placement"):
        ClusterScenarioConfig(placement="cheapest")


def test_describe_flags_mixed_fleets():
    homogeneous = ClusterScenarioConfig()
    mixed = ClusterScenarioConfig(
        machines=(MachineSpec(count=2), MachineSpec(processor=catalog.BIG_LITTLE_44))
    )
    assert "kinds" not in homogeneous.describe()
    assert "x2kinds" in mixed.describe()
    assert "3m" in mixed.describe()
