"""Pinned reproduction of the power-budget cap overshoot (ROADMAP dir. 4).

``repro cluster compare --replicates`` first surfaced this: on the
``dc-diurnal-small`` preset under the ``power-budget`` policy, some
replicates peak well above the 80 W fleet budget — 91.9 W on the worst one.
The policy reacts one epoch late: machines are packed against the budget
using the *previous* epoch's demand, so a steep diurnal ramp lands on a
fleet already at the cap.

The test is ``xfail(strict=True)``: it documents the defect as a
reproducible failing case, and the moment a budget-policy fix makes the
fleet respect its cap, the unexpected pass flips the suite red so the
marker (and this docstring) get retired deliberately.
"""

import pytest

from repro.cluster.scenario import run_cluster_scenario
from repro.experiments.presets import get_preset
from repro.sweep.grid import derive_cell_seed

#: Root seed 11 is what `repro cluster compare --seed 11 --replicates 10`
#: uses; replicate 0's derived cell seed is the worst observed offender.
OFFENDING_SEED = derive_cell_seed(11, "policy=power-budget,rep=0")


@pytest.mark.xfail(
    strict=True,
    reason=(
        "known defect (ROADMAP direction 4): power-budget packs against the "
        "previous epoch's demand, so the dc-diurnal-small ramp overshoots "
        f"the 80 W budget (91.9 W peak at derived seed {OFFENDING_SEED})"
    ),
)
def test_power_budget_policy_respects_fleet_cap():
    assert OFFENDING_SEED == 202060482  # pin the derivation, not just the label
    config = get_preset("dc-diurnal-small").config.with_changes(
        policy="power-budget", seed=OFFENDING_SEED
    )
    sim = run_cluster_scenario(config)
    assert config.power_budget_w == 80.0
    assert sim.peak_power_w <= config.power_budget_w
