"""ClusterScenarioConfig JSON round-trip (fleet cells as first-class specs)."""

import pytest

from repro.cluster import ClusterScenarioConfig
from repro.cluster.scenario import run_cluster_scenario
from repro.cpu import catalog
from repro.errors import ConfigurationError
from repro.sweep import SweepGrid
from repro.sweep.metrics import fleet_metrics


def test_to_dict_round_trips_exactly():
    config = ClusterScenarioConfig(
        n_machines=3, n_vms=5, policy="spread", dvfs=False, duration=150.0, seed=11
    )
    data = config.to_dict()
    assert data["kind"] == "cluster"
    assert data["processor"] == config.processor.name
    assert ClusterScenarioConfig.from_dict(data) == config


def test_round_tripped_config_simulates_identically():
    config = ClusterScenarioConfig(n_machines=2, n_vms=3, duration=100.0)
    direct = fleet_metrics(run_cluster_scenario(config))
    loaded = fleet_metrics(
        run_cluster_scenario(ClusterScenarioConfig.from_dict(config.to_dict()))
    )
    assert direct == loaded


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigurationError, match="unknown cluster scenario field"):
        ClusterScenarioConfig.from_dict({"kind": "cluster", "warp_factor": 9})


def test_from_dict_rejects_wrong_kind():
    with pytest.raises(ConfigurationError, match="kind="):
        ClusterScenarioConfig.from_dict({"kind": "scenario"})


def test_from_dict_rejects_unknown_processor():
    with pytest.raises(ConfigurationError, match="unknown processor"):
        ClusterScenarioConfig.from_dict({"processor": "Pentium III"})


def test_processor_by_catalog_name():
    config = ClusterScenarioConfig.from_dict(
        {"processor": "Intel Xeon E5-2620", "n_machines": 2}
    )
    assert config.processor == catalog.XEON_E5_2620


def test_grid_axes_coerce_from_json():
    grid = SweepGrid(
        {"policy": ["spread", "consolidate"], "processor": ["Intel Core i7-3770"]},
        base=ClusterScenarioConfig(n_machines=2, n_vms=3, duration=50.0),
    )
    assert len(grid) == 2
    assert all(cell.config.processor == catalog.CORE_I7_3770 for cell in grid)


def test_describe_is_compact():
    config = ClusterScenarioConfig(n_machines=4, n_vms=9, policy="spread", dvfs=True)
    assert config.describe() == "fleet(9vm/4m:spread+dvfs)"
