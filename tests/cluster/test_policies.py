"""Orchestration policies: registry, placement behaviour, cap compliance."""

import pytest

from repro.cluster import (
    ClusterScenarioConfig,
    ClusterSim,
    ClusterVM,
    ConsolidatePolicy,
    current_assignment,
    make_policy,
    policy_names,
    PowerBudgetPolicy,
    run_cluster_scenario,
    StaticPolicy,
)
from repro.errors import ConfigurationError

#: A heterogeneous diurnal fleet where packing decisions actually differ.
BASE = ClusterScenarioConfig(
    n_machines=6,
    n_vms=15,
    duration=200.0,
    day_length=200.0,
    trace_step=5.0,
    vm_credit=30.0,
    vm_memory_mb=2048,
    dayshapes=(
        "diurnal-office",
        "flash-crowd",
        "batch-overnight",
        "noisy-neighbor",
        "weekend",
    ),
    dayshape_scale=0.45,
    seed=11,
)


def test_registry_names_are_stable():
    assert policy_names() == ("static", "consolidate", "load-balance", "power-budget")


def test_unknown_policy_lists_the_registry():
    with pytest.raises(ConfigurationError, match="static"):
        make_policy("bin-pack-9000")


def test_unknown_config_policy_lists_all_names():
    with pytest.raises(ConfigurationError, match="spread"):
        run_cluster_scenario(BASE.with_changes(policy="warp"))


def test_power_budget_requires_a_cap():
    with pytest.raises(ConfigurationError, match="power_budget_w"):
        make_policy("power-budget")


def test_static_never_migrates_and_reserves_by_credit():
    sim = run_cluster_scenario(BASE.with_changes(policy="static"))
    assert sim.total_migrations == 0
    assert sim.sla_violations == 0
    # Booked credit is reserved: per host, credits + overhead fit capacity.
    for machine in sim.machines:
        booked = sum(vm.credit for vm in machine.vms)
        assert booked + machine.spec.overhead_percent <= 100.0
    # 15 VMs x 30% credit at 95% usable => 3 per host, 5 hosts, constant.
    assert {stat.machines_on for stat in sim.stats} == {5}


def test_consolidate_uses_fewer_hosts_than_static():
    static = run_cluster_scenario(BASE.with_changes(policy="static"))
    packed = run_cluster_scenario(BASE.with_changes(policy="consolidate"))
    assert packed.mean_machines_on < static.mean_machines_on
    assert packed.fleet_energy_joules < static.fleet_energy_joules
    assert packed.mean_sla_fraction > 0.99


def test_consolidate_hysteresis_delays_the_drain():
    demands = {"vm0": 40.0, "vm1": 40.0}

    def demand(name):
        # Both VMs hot for 3 epochs, then one goes idle for good.
        return lambda t: demands[name] if t < 30.0 else (4.0 if name == "vm1" else 40.0)

    vms = [
        ClusterVM(name, credit=50.0, memory_mb=2048, demand=demand(name))
        for name in ("vm0", "vm1")
    ]
    sim = ClusterSim(
        n_machines=2,
        vms=vms,
        policy=ConsolidatePolicy(target_percent=75.0, hysteresis_epochs=3),
        dvfs=True,
        epoch_s=10.0,
    )
    sim.run(100.0)
    on_counts = [stat.machines_on for stat in sim.stats]
    # Two hosts while both are hot; the drain lands only after the packing
    # has wanted fewer hosts for 3 consecutive epochs.
    assert on_counts[:3] == [2, 2, 2]
    assert on_counts[-1] == 1
    first_single = on_counts.index(1)
    assert first_single >= 5  # t>=30 demand drop + 3-epoch streak
    assert sim.total_migrations == 1


def test_consolidate_spills_overloaded_hosts_immediately():
    demands = {"vm0": 20.0, "vm1": 20.0, "vm2": 20.0}

    def demand(name):
        return lambda t: demands[name] if t < 30.0 else 45.0

    vms = [
        ClusterVM(name, credit=60.0, memory_mb=2048, demand=demand(name))
        for name in ("vm0", "vm1", "vm2")
    ]
    sim = ClusterSim(
        n_machines=3,
        vms=vms,
        policy=ConsolidatePolicy(target_percent=75.0, spill_percent=88.0),
        dvfs=True,
        epoch_s=10.0,
    )
    sim.run(100.0)
    # 3x20+5 = 65% packs on one host; 3x45+5 = 140% must spill onto more.
    assert sim.stats[0].machines_on == 1
    assert sim.stats[-1].machines_on > 1
    assert sim.total_migrations >= 1


def _final_demand_spread(sim):
    last = sim.stats[-1].time - sim.epoch_s
    loads = [
        sum(vm.demand_at(last) for vm in machine.vms) for machine in sim.machines
    ]
    return max(loads) - min(loads)


def test_load_balance_keeps_hosts_even():
    balanced = run_cluster_scenario(BASE.with_changes(policy="load-balance"))
    packed = run_cluster_scenario(BASE.with_changes(policy="consolidate"))
    # The whole fleet stays on, and demand spreads far flatter than a
    # consolidating policy leaves it (which idles some hosts entirely).
    final = balanced.host_records()[-BASE.n_machines :]
    assert all(record["powered_on"] for record in final)
    assert _final_demand_spread(balanced) < _final_demand_spread(packed)


def test_power_budget_respects_the_cap_every_epoch():
    budget = 150.0
    sim = run_cluster_scenario(
        BASE.with_changes(policy="power-budget", power_budget_w=budget)
    )
    assert sim.peak_power_w <= budget
    assert all(stat.power_w <= budget + 1e-9 for stat in sim.stats)


def test_power_budget_cap_trades_sla_for_watts():
    loose = run_cluster_scenario(
        BASE.with_changes(policy="power-budget", power_budget_w=1000.0)
    )
    tight = run_cluster_scenario(
        BASE.with_changes(policy="power-budget", power_budget_w=110.0)
    )
    assert tight.peak_power_w <= 110.0
    assert tight.fleet_energy_joules < loose.fleet_energy_joules
    assert tight.mean_sla_fraction < loose.mean_sla_fraction


def test_power_budget_beats_static_on_energy():
    static = run_cluster_scenario(BASE.with_changes(policy="static"))
    capped = run_cluster_scenario(
        BASE.with_changes(policy="power-budget", power_budget_w=150.0)
    )
    assert capped.fleet_energy_joules < static.fleet_energy_joules


def test_policies_pin_frequencies_under_power_budget():
    sim = run_cluster_scenario(
        BASE.with_changes(policy="power-budget", power_budget_w=120.0)
    )
    # The cap binds: some host must have been steered below the frequency
    # plain demand-driven DVFS picks.
    free = run_cluster_scenario(BASE.with_changes(policy="consolidate"))
    assert sim.fleet_energy_joules < free.fleet_energy_joules


def test_legacy_callables_still_run_through_the_orchestrator():
    for policy in ("spread", "consolidate-ffd"):
        sim = run_cluster_scenario(
            BASE.with_changes(policy=policy, n_vms=6, vm_memory_mb=5120)
        )
        assert len(sim.stats) == 20


def test_static_policy_is_reusable_object():
    policy = StaticPolicy()
    vms = [
        ClusterVM(f"vm{i}", credit=30.0, memory_mb=4096, demand=lambda t: 10.0)
        for i in range(4)
    ]
    sim = ClusterSim(n_machines=2, vms=vms, policy=policy, dvfs=True, epoch_s=10.0)
    sim.run(50.0)
    assert current_assignment(sim.machines) == {
        "vm0": "m000",
        "vm1": "m000",
        "vm2": "m000",
        "vm3": "m001",
    }


def test_power_budget_policy_carries_consolidate_knobs():
    policy = PowerBudgetPolicy(budget_w=200.0, target_percent=60.0)
    assert policy.target_percent == 60.0
    assert policy.budget_w == 200.0
