"""Migration cost model: pricing, round-trip, and its effect on the fleet."""

import pytest

from repro.cluster import (
    ClusterScenarioConfig,
    ClusterSim,
    ClusterVM,
    DEFAULT_MIGRATION,
    EpochPlan,
    FREE_MIGRATION,
    MigrationModel,
    OrchestrationPolicy,
    run_cluster_scenario,
)
from repro.errors import ConfigurationError


def test_model_round_trips_exactly():
    model = MigrationModel(
        downtime_s=0.7, copy_overhead_percent=12.0, copy_duration_s=4.0
    )
    assert MigrationModel.from_dict(model.to_dict()) == model


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigurationError, match="unknown migration model field"):
        MigrationModel.from_dict({"downtime_s": 1.0, "teleport": True})


def test_negative_costs_rejected():
    with pytest.raises(ConfigurationError):
        MigrationModel(downtime_s=-1.0)


def test_overhead_capped_at_one_epoch():
    model = MigrationModel(
        downtime_s=0.5, copy_overhead_percent=10.0, copy_duration_s=40.0
    )
    # The copy outlives the epoch: the full surcharge applies all epoch.
    assert model.host_overhead_percent(10.0) == pytest.approx(10.0)
    # A short copy is averaged over the epoch.
    short = MigrationModel(copy_overhead_percent=10.0, copy_duration_s=2.0)
    assert short.host_overhead_percent(10.0) == pytest.approx(2.0)
    assert model.downtime_fraction(10.0) == pytest.approx(0.05)


class _PingPong(OrchestrationPolicy):
    """Moves the single VM between two machines every epoch (a churn rig)."""

    name = "ping-pong"

    def plan(self, machines, vms, *, time, epoch_index, epoch_s, dvfs):
        dest = machines[epoch_index % 2].name
        return EpochPlan(assignment={vm.name: dest for vm in vms})


def _churny_sim(migration):
    vm = ClusterVM("vm0", credit=30.0, memory_mb=2048, demand=lambda t: 20.0)
    sim = ClusterSim(
        n_machines=2,
        vms=[vm],
        policy=_PingPong(),
        dvfs=True,
        epoch_s=10.0,
        migration=migration,
    )
    sim.run(100.0)
    return sim


def test_migrations_recorded_with_source_and_dest():
    sim = _churny_sim(FREE_MIGRATION)
    # Epoch 0 places (not a migration); every later epoch moves the VM.
    assert sim.total_migrations == 9
    records = sim.migration_records()
    assert len(records) == 9
    assert records[0] == {"time": 10.0, "vm": "vm0", "source": "m000", "dest": "m001"}
    assert {record["vm"] for record in records} == {"vm0"}


def test_downtime_reduces_served_demand():
    priced = _churny_sim(MigrationModel(downtime_s=2.0, copy_overhead_percent=0.0))
    free = _churny_sim(FREE_MIGRATION)
    assert free.sla_violations == 0
    # 2 s blackout per 10 s epoch: migration epochs serve 80% of demand.
    assert priced.sla_violations == 9
    migration_epochs = [stat for stat in priced.stats if stat.migrations]
    assert all(
        stat.sla_fraction == pytest.approx(0.8) for stat in migration_epochs
    )


def test_copy_overhead_costs_energy():
    priced = _churny_sim(
        MigrationModel(downtime_s=0.0, copy_overhead_percent=30.0, copy_duration_s=10.0)
    )
    free = _churny_sim(FREE_MIGRATION)
    assert priced.fleet_energy_joules > free.fleet_energy_joules * 1.02


def test_none_migration_model_is_free():
    vm = ClusterVM("vm0", credit=30.0, memory_mb=2048, demand=lambda t: 20.0)
    sim = ClusterSim(
        n_machines=2, vms=[vm], policy=_PingPong(), dvfs=True, epoch_s=10.0
    )
    sim.run(50.0)
    assert sim.total_migrations == 4
    assert sim.sla_violations == 0


def test_config_carries_migration_model():
    config = ClusterScenarioConfig(
        migration={"downtime_s": 1.0, "copy_overhead_percent": 3.0, "copy_duration_s": 5.0}
    )
    assert isinstance(config.migration, MigrationModel)
    assert config.migration.downtime_s == 1.0
    rebuilt = ClusterScenarioConfig.from_dict(config.to_dict())
    assert rebuilt == config
    assert ClusterScenarioConfig().migration == DEFAULT_MIGRATION


def test_migration_cost_is_an_axis(tmp_path):
    from repro.sweep import SweepGrid

    grid = SweepGrid(
        {
            "migration": [
                {"downtime_s": 0.0, "copy_overhead_percent": 0.0, "copy_duration_s": 0.0},
                {"downtime_s": 2.0, "copy_overhead_percent": 20.0, "copy_duration_s": 10.0},
            ]
        },
        base=ClusterScenarioConfig(n_machines=2, n_vms=3, duration=60.0),
    )
    assert len(grid) == 2
    assert all(isinstance(cell.config.migration, MigrationModel) for cell in grid)


def test_run_cluster_scenario_prices_policy_migrations():
    base = ClusterScenarioConfig(
        n_machines=4,
        n_vms=10,
        duration=200.0,
        day_length=200.0,
        vm_memory_mb=2048,
        vm_credit=30.0,
        policy="load-balance",
        dayshapes=("noisy-neighbor",),
        seed=3,
    )
    priced = run_cluster_scenario(base)
    free = run_cluster_scenario(base.with_changes(migration=FREE_MIGRATION))
    assert priced.total_migrations > 0
    assert priced.mean_sla_fraction < free.mean_sla_fraction
