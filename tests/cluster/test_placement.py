"""Unit tests for placement policies."""

import pytest

from repro.cluster import (
    ClusterVM,
    consolidate_first_fit,
    Machine,
    MachineSpec,
    PlacementError,
    spread_round_robin,
)


def fleet(n, memory=16384):
    return [Machine(f"m{i}", MachineSpec(memory_mb=memory)) for i in range(n)]


def vms(n, memory=4096, credit=30.0):
    return [
        ClusterVM(f"vm{i}", credit=credit, memory_mb=memory, demand=lambda t: 10.0)
        for i in range(n)
    ]


def test_consolidation_packs_minimum_machines():
    machines = fleet(6)
    used = consolidate_first_fit(machines, vms(8, memory=4096))  # 4 per 16GB host
    assert used == 2
    assert sum(1 for m in machines if m.powered_on) == 2


def test_consolidation_powers_off_empty_machines():
    machines = fleet(4)
    consolidate_first_fit(machines, vms(2))
    assert [m.powered_on for m in machines] == [True, False, False, False]


def test_consolidation_memory_bound():
    machines = fleet(2, memory=8192)
    with pytest.raises(PlacementError):
        consolidate_first_fit(machines, vms(5, memory=4096))  # needs 2.5 hosts


def test_spread_uses_whole_fleet():
    machines = fleet(4)
    used = spread_round_robin(machines, vms(4))
    assert used == 4
    assert all(m.powered_on for m in machines)
    assert [len(m.vms) for m in machines] == [1, 1, 1, 1]


def test_spread_overflows_to_next_machine():
    machines = fleet(2, memory=8192)
    spread_round_robin(machines, vms(4, memory=4096))
    assert [len(m.vms) for m in machines] == [2, 2]


def test_spread_memory_infeasible_raises():
    machines = fleet(1, memory=4096)
    with pytest.raises(PlacementError):
        spread_round_robin(machines, vms(2, memory=4096))


def test_repacking_clears_previous_assignment():
    machines = fleet(3)
    population = vms(3)
    consolidate_first_fit(machines, population)
    consolidate_first_fit(machines, population[:1])
    assert sum(len(m.vms) for m in machines) == 1


def test_first_fit_decreasing_order():
    machines = fleet(2, memory=10240)
    big = ClusterVM("big", credit=10, memory_mb=8192, demand=lambda t: 1.0)
    small = [
        ClusterVM(f"s{i}", credit=10, memory_mb=2048, demand=lambda t: 1.0)
        for i in range(5)
    ]
    # FFD places the 8GB VM first; the small ones fill the gaps.
    used = consolidate_first_fit(machines, [*small, big])
    assert used == 2
    assert sum(len(m.vms) for m in machines) == 6
