"""Unit tests for the cluster simulator."""

import pytest

from repro.cluster import (
    ClusterSim,
    ClusterVM,
    consolidate_first_fit,
    spread_round_robin,
)
from repro.errors import ConfigurationError


def population(n, demand=15.0):
    return [
        ClusterVM(f"vm{i}", credit=30.0, memory_mb=4096, demand=lambda t: demand)
        for i in range(n)
    ]


def test_run_produces_one_stat_per_epoch():
    sim = ClusterSim(
        n_machines=4, vms=population(4), policy=consolidate_first_fit, dvfs=True, epoch_s=10.0
    )
    stats = sim.run(100.0)
    assert len(stats) == 10
    assert stats[-1].time == pytest.approx(100.0)


def test_sla_fraction_full_when_capacity_sufficient():
    sim = ClusterSim(
        n_machines=4, vms=population(4), policy=consolidate_first_fit, dvfs=True
    )
    sim.run(100.0)
    assert sim.mean_sla_fraction == pytest.approx(1.0)


def test_consolidation_uses_fewer_machines_than_spread():
    packed = ClusterSim(
        n_machines=4, vms=population(4), policy=consolidate_first_fit, dvfs=False
    )
    spread = ClusterSim(
        n_machines=4, vms=population(4), policy=spread_round_robin, dvfs=False
    )
    packed.run(50.0)
    spread.run(50.0)
    assert packed.mean_machines_on < spread.mean_machines_on


def test_dvfs_reduces_fleet_energy():
    with_dvfs = ClusterSim(
        n_machines=4, vms=population(4), policy=consolidate_first_fit, dvfs=True
    )
    without = ClusterSim(
        n_machines=4, vms=population(4), policy=consolidate_first_fit, dvfs=False
    )
    with_dvfs.run(100.0)
    without.run(100.0)
    assert with_dvfs.fleet_energy_joules < without.fleet_energy_joules * 0.9


def test_stable_demand_causes_no_migrations():
    sim = ClusterSim(
        n_machines=4, vms=population(4), policy=consolidate_first_fit, dvfs=True
    )
    sim.run(100.0)
    assert sim.total_migrations == 0


def test_migrations_counted_when_population_shifts():
    vms = population(4)
    sim = ClusterSim(n_machines=4, vms=vms, policy=consolidate_first_fit, dvfs=True)
    sim.run(10.0)
    # Make the biggest VM bigger so FFD reorders the packing.
    sim.vms[0] = ClusterVM("vm0", credit=30.0, memory_mb=8192, demand=lambda t: 15.0)
    sim.run(10.0)
    assert sim.total_migrations > 0


def test_repack_every_skips_policy_runs():
    sim = ClusterSim(
        n_machines=4,
        vms=population(4),
        policy=consolidate_first_fit,
        dvfs=True,
        repack_every=5,
        epoch_s=10.0,
    )
    sim.run(100.0)
    assert sim.mean_machines_on < 4


def test_queries_require_run():
    sim = ClusterSim(
        n_machines=2, vms=population(2), policy=consolidate_first_fit, dvfs=True
    )
    with pytest.raises(ConfigurationError):
        _ = sim.mean_sla_fraction


def test_duplicate_vm_names_rejected():
    vms = population(2)
    vms[1] = ClusterVM("vm0", credit=10, memory_mb=1024, demand=lambda t: 1.0)
    with pytest.raises(ConfigurationError):
        ClusterSim(n_machines=2, vms=vms, policy=consolidate_first_fit, dvfs=True)


def test_epoch_stats_fields():
    sim = ClusterSim(
        n_machines=2, vms=population(2), policy=consolidate_first_fit, dvfs=True
    )
    stats = sim.run(20.0)
    for stat in stats:
        assert stat.machines_on >= 1
        assert stat.energy_joules > 0
        assert stat.served_percent <= stat.demand_percent + 1e-9
        assert stat.sla_fraction == pytest.approx(1.0)
