"""Heterogeneous fleets end to end: big.LITTLE machines, placement, obs."""

import json

import pytest

from repro.cluster import ClusterScenarioConfig
from repro.cluster.machine import Machine, MachineSpec
from repro.cluster.scenario import run_cluster_scenario
from repro.cpu import catalog
from repro.obs import MetricsRegistry, observed, Tracer, validate_trace_text
from repro.obs.metrics import collect_cluster
from repro.sweep import run_sweep, SweepGrid, SweepRunner


MIXED = (
    MachineSpec(processor=catalog.CORE_I7_3770, count=2),
    MachineSpec(processor=catalog.BIG_LITTLE_44, count=2),
)


def mixed_config(**changes):
    base = dict(
        machines=MIXED,
        n_vms=8,
        policy="consolidate",
        duration=200.0,
        day_length=200.0,
    )
    base.update(changes)
    return ClusterScenarioConfig(**base)


# ------------------------------------------------------------ machine model


def test_big_little_machine_sums_its_clusters():
    machine = Machine("m0", MachineSpec(processor=catalog.BIG_LITTLE_44))
    assert machine.is_heterogeneous
    # little 0.30 + big 0.60 of the reference host, at top P-states.
    assert machine.capacity_percent == pytest.approx(90.0)
    assert {d.spec.name for d in machine.domains} == {"little", "big"}


def test_homogeneous_machine_has_no_domains():
    machine = Machine("m0", MachineSpec())
    assert not machine.is_heterogeneous
    assert machine.domains == []
    assert machine.capacity_percent == 100.0
    assert machine.cstate_residency() == {}


def test_big_little_undercuts_i7_on_efficiency_but_not_capacity():
    # The placement trade-off in one machine pair: the i7 delivers more
    # capacity, the big.LITTLE part delivers it cheaper per percent.
    i7 = Machine("a", MachineSpec())
    bl = Machine("b", MachineSpec(processor=catalog.BIG_LITTLE_44))
    assert i7.capacity_percent > bl.capacity_percent
    assert bl.efficiency_w_per_percent < i7.efficiency_w_per_percent


def test_hetero_freq_ladder_is_the_union_of_domain_tables():
    machine = Machine("m0", MachineSpec(processor=catalog.BIG_LITTLE_44))
    assert machine.freq_choices == (600, 1000, 1400, 1800, 2000)
    assert machine.min_freq_mhz == 600
    assert machine.max_freq_mhz == 2000


# --------------------------------------------------- homogeneous byte-identity


def test_machinespec_expansion_is_byte_identical_to_legacy_fleet():
    # The API-redesign compatibility criterion: declaring the same
    # homogeneous fleet through `machines` must not move a single sample.
    legacy = ClusterScenarioConfig(
        n_machines=4, n_vms=6, duration=200.0, day_length=200.0
    )
    explicit = legacy.with_changes(machines=legacy.effective_machines())
    a = run_cluster_scenario(legacy)
    b = run_cluster_scenario(explicit)
    assert a.epoch_records() == b.epoch_records()
    assert a.host_records() == b.host_records()
    assert a.migration_records() == b.migration_records()
    assert a.fleet_energy_joules == b.fleet_energy_joules


@pytest.mark.parametrize("policy", ["static", "consolidate", "power-budget"])
def test_expansion_identity_holds_for_every_hetero_aware_policy(policy):
    legacy = ClusterScenarioConfig(
        n_machines=3,
        n_vms=5,
        policy=policy,
        power_budget_w=300.0,
        duration=100.0,
        day_length=100.0,
    )
    explicit = legacy.with_changes(machines=legacy.effective_machines())
    a = run_cluster_scenario(legacy)
    b = run_cluster_scenario(explicit)
    assert a.host_records() == b.host_records()
    assert a.fleet_energy_joules == b.fleet_energy_joules


def test_homogeneous_fleet_emits_no_domain_records():
    sim = run_cluster_scenario(
        ClusterScenarioConfig(n_machines=2, n_vms=3, duration=50.0, day_length=50.0)
    )
    assert sim.domain_records() == []
    assert sim.cstate_residency() == {}


# ----------------------------------------------------- placement trade-off


def test_efficiency_placement_saves_energy_at_equal_or_better_sla():
    # The sweepable trade-off the issue demands be measurable: packing the
    # efficient big.LITTLE boxes first must beat performance-bursting on
    # energy without giving up SLA on this fleet.
    efficient = run_cluster_scenario(mixed_config(placement="efficiency"))
    bursting = run_cluster_scenario(mixed_config(placement="performance"))
    assert efficient.fleet_energy_joules < bursting.fleet_energy_joules
    assert efficient.mean_sla_fraction >= bursting.mean_sla_fraction - 1e-9


def test_power_budget_cap_holds_on_a_mixed_fleet():
    sim = run_cluster_scenario(
        mixed_config(policy="power-budget", power_budget_w=120.0)
    )
    assert sim.peak_power_w <= 120.0
    assert sim.mean_sla_fraction > 0.9


# ------------------------------------------------------------- observability


def test_hetero_run_traces_domain_frequencies_and_validates():
    tracer = Tracer()
    with observed(tracer=tracer):
        sim = run_cluster_scenario(mixed_config(duration=100.0))
    assert validate_trace_text(tracer.to_json()) == []
    tracks = {
        event["args"]["name"]
        for event in tracer.events
        if event["cat"] == "__metadata" and event["name"] == "thread_name"
    }
    domain_tracks = {name for name in tracks if name.startswith("domain.")}
    # One track per (machine, domain) on the two big.LITTLE boxes.
    assert domain_tracks == {
        "domain.m002/little",
        "domain.m002/big",
        "domain.m003/little",
        "domain.m003/big",
    }
    samples = [
        event
        for event in tracer.events
        if event["cat"] == "cluster" and event.get("ph") == "C"
        and event["name"].startswith("domain.")
    ]
    assert samples
    assert all(set(e["args"]) == {"freq_mhz", "power_w"} for e in samples)
    # Trace and query surface agree on volume: one record per sample.
    assert len(samples) == len(sim.domain_records())


def test_cstate_residency_sums_into_metrics_gauges():
    sim = run_cluster_scenario(mixed_config(duration=100.0))
    registry = MetricsRegistry()
    collect_cluster(registry, sim)
    snapshot = registry.snapshot()
    cstate_keys = {key for key in snapshot if key.startswith("cstate.")}
    assert "cstate.C0_s" in cstate_keys
    assert snapshot == json.loads(registry.to_json())  # JSON-able


def test_homogeneous_metrics_grow_no_cstate_keys():
    sim = run_cluster_scenario(
        ClusterScenarioConfig(n_machines=2, n_vms=3, duration=50.0, day_length=50.0)
    )
    registry = MetricsRegistry()
    collect_cluster(registry, sim)
    assert not any(key.startswith("cstate.") for key in registry.snapshot())


def test_fleet_cstate_residency_matches_per_machine_sums():
    sim = run_cluster_scenario(mixed_config(duration=100.0))
    totals: dict[str, float] = {}
    for machine in sim.machines:
        for name, seconds in machine.cstate_residency().items():
            totals[name] = totals.get(name, 0.0) + seconds
    fleet = sim.cstate_residency()
    assert set(fleet) == set(totals)
    for name in fleet:
        assert fleet[name] == pytest.approx(totals[name])


# ------------------------------------------------------------------- sweeps


METRICS = ("fleet", "cluster")


def hetero_grid() -> SweepGrid:
    return SweepGrid(
        {"placement": ["efficiency", "performance"]},
        base=mixed_config(duration=100.0, day_length=100.0),
    )


def test_hetero_sweep_serial_vs_parallel_identical():
    serial = run_sweep(hetero_grid(), metrics=METRICS, workers=1)
    parallel = run_sweep(hetero_grid(), metrics=METRICS, workers=2)
    assert serial.to_json() == parallel.to_json()


def test_hetero_sweep_cold_vs_resumed_identical(tmp_path):
    from repro.store import ExperimentStore

    reference = run_sweep(hetero_grid(), metrics=METRICS, workers=1).to_json()
    store = ExperimentStore(tmp_path / "st")
    cold = SweepRunner(hetero_grid(), metrics=METRICS, workers=1, store=store)
    assert cold.run().to_json() == reference
    assert (cold.cache_hits, cold.computed) == (0, 2)
    warm = SweepRunner(hetero_grid(), metrics=METRICS, workers=1, store=store)
    assert warm.run().to_json() == reference
    assert (warm.cache_hits, warm.computed) == (2, 0)
