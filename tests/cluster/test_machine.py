"""Unit tests for cluster machines."""

import pytest

from repro.cluster import ClusterVM, Machine, MachineSpec
from repro.errors import ConfigurationError


def make_vm(name="vm", credit=30.0, memory=4096, demand=20.0):
    return ClusterVM(name, credit=credit, memory_mb=memory, demand=lambda t: demand)


@pytest.fixture
def machine():
    return Machine("m0", MachineSpec(memory_mb=8192))


def test_placement_respects_memory(machine):
    machine.place(make_vm("a", memory=4096))
    machine.place(make_vm("b", memory=4096))
    assert machine.memory_free_mb == 0
    with pytest.raises(ConfigurationError):
        machine.place(make_vm("c", memory=1))


def test_duplicate_placement_rejected(machine):
    vm = make_vm("a")
    machine.place(vm)
    with pytest.raises(ConfigurationError):
        machine.place(vm)


def test_evict_and_clear(machine):
    a, b = make_vm("a"), make_vm("b", memory=2048)
    machine.place(a)
    machine.place(b)
    machine.evict(a)
    assert machine.memory_used_mb == 2048
    assert machine.clear() == [b]
    assert machine.memory_used_mb == 0


def test_evict_absent_vm_rejected(machine):
    with pytest.raises(ConfigurationError):
        machine.evict(make_vm("ghost"))


def test_epoch_serves_demand_within_capacity(machine):
    machine.place(make_vm("a", demand=20.0))
    demand, served = machine.run_epoch(0.0, 10.0, dvfs=False)
    assert demand == pytest.approx(20.0)
    assert served == pytest.approx(20.0)


def test_dvfs_picks_lowest_absorbing_state(machine):
    machine.place(make_vm("a", demand=20.0))
    machine.run_epoch(0.0, 10.0, dvfs=True)
    # 20% demand + 5% overhead = 25% absolute: the i7's 1600 MHz state
    # (capacity 40.6%) absorbs it.
    assert machine.freq_mhz == 1600


def test_no_dvfs_pins_max(machine):
    machine.place(make_vm("a", demand=20.0))
    machine.run_epoch(0.0, 10.0, dvfs=False)
    assert machine.freq_mhz == machine.spec.processor.table().max_state.freq_mhz


def test_dvfs_saves_energy(machine):
    other = Machine("m1", MachineSpec(memory_mb=8192))
    machine.place(make_vm("a", demand=20.0))
    other.place(make_vm("a", demand=20.0))
    machine.run_epoch(0.0, 100.0, dvfs=True)
    other.run_epoch(0.0, 100.0, dvfs=False)
    assert machine.energy_joules < other.energy_joules * 0.8


def test_served_clipped_by_capacity():
    machine = Machine("m0", MachineSpec(memory_mb=65536))
    for index in range(4):
        machine.place(make_vm(f"vm{index}", credit=40.0, demand=40.0))
    demand, served = machine.run_epoch(0.0, 10.0, dvfs=False)
    assert demand == pytest.approx(160.0)
    assert served <= 95.0 + 1e-9  # 100% minus the 5% overhead


def test_powered_off_machine_consumes_nothing(machine):
    machine.power_off_if_empty()
    assert not machine.powered_on
    machine.run_epoch(0.0, 100.0, dvfs=True)
    assert machine.energy_joules == 0.0


def test_power_off_refused_with_vms(machine):
    machine.place(make_vm("a"))
    assert not machine.power_off_if_empty()
    assert machine.powered_on


def test_placing_powers_machine_on(machine):
    machine.power_off_if_empty()
    machine.place(make_vm("a"))
    assert machine.powered_on


def test_vm_demand_clamped_to_credit():
    vm = ClusterVM("v", credit=25.0, memory_mb=1024, demand=lambda t: 80.0)
    assert vm.demand_at(0.0) == 25.0


def test_vm_negative_demand_rejected():
    vm = ClusterVM("v", credit=25.0, memory_mb=1024, demand=lambda t: -1.0)
    with pytest.raises(ConfigurationError):
        vm.demand_at(0.0)
