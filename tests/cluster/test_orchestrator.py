"""Orchestrator telemetry series and migration determinism.

The determinism contract extends PR 3's to the fleet layer: the same seed
produces byte-identical per-epoch CSV series, and cluster sweep exports are
byte-identical serial vs parallel and cold vs store-resumed.
"""

import pytest

from repro.cluster import ClusterScenarioConfig, run_cluster_scenario
from repro.experiments import preset_grid
from repro.store import ExperimentStore
from repro.sweep import SweepGrid, SweepRunner
from repro.telemetry.export import records_to_csv

#: A fleet whose policies migrate (day shapes + load-balance churn).
CONFIG = ClusterScenarioConfig(
    n_machines=5,
    n_vms=12,
    duration=200.0,
    day_length=200.0,
    vm_credit=30.0,
    vm_memory_mb=2048,
    dayshapes=("diurnal-office", "flash-crowd", "noisy-neighbor"),
    dayshape_scale=0.6,
    policy="consolidate",
    seed=21,
)


def epoch_csv(config):
    return records_to_csv(run_cluster_scenario(config).epoch_records())


# ----------------------------------------------------------------- series


def test_epoch_records_one_row_per_epoch():
    sim = run_cluster_scenario(CONFIG)
    records = sim.epoch_records()
    assert len(records) == 20
    assert records[0]["epoch"] == 0
    assert records[-1]["time"] == pytest.approx(200.0)
    expected_keys = {
        "epoch",
        "time",
        "machines_on",
        "demand_percent",
        "served_percent",
        "sla_fraction",
        "energy_joules",
        "power_w",
        "migrations",
    }
    assert all(set(record) == expected_keys for record in records)


def test_epoch_records_route_through_records_to_csv():
    text = epoch_csv(CONFIG)
    lines = text.splitlines()
    assert lines[0].startswith("epoch,time,machines_on,")
    assert len(lines) == 21  # header + one row per epoch


def test_power_column_is_energy_over_epoch():
    sim = run_cluster_scenario(CONFIG)
    for stat in sim.stats:
        assert stat.power_w == pytest.approx(stat.energy_joules / sim.epoch_s)


def test_host_records_cover_every_machine_every_epoch():
    sim = run_cluster_scenario(CONFIG)
    records = sim.host_records()
    assert len(records) == 20 * CONFIG.n_machines
    first_epoch = records[: CONFIG.n_machines]
    assert [record["machine"] for record in first_epoch] == [
        f"m{i:03d}" for i in range(CONFIG.n_machines)
    ]
    on = [record for record in records if record["powered_on"]]
    assert all(record["power_w"] > 0.0 for record in on)


def test_migration_records_match_epoch_counts():
    sim = run_cluster_scenario(CONFIG.with_changes(policy="load-balance"))
    assert sim.total_migrations > 0
    assert len(sim.migration_records()) == sim.total_migrations
    assert sum(stat.migrations for stat in sim.stats) == sim.total_migrations


# ------------------------------------------------------------ determinism


def test_same_seed_same_epoch_csv_bytes():
    assert epoch_csv(CONFIG) == epoch_csv(CONFIG)


def test_different_seed_different_epochs():
    assert epoch_csv(CONFIG) != epoch_csv(CONFIG.with_changes(seed=22))


@pytest.mark.parametrize("policy", ["consolidate", "load-balance", "power-budget"])
def test_migrating_policies_are_deterministic(policy):
    config = CONFIG.with_changes(policy=policy, power_budget_w=200.0)
    a = run_cluster_scenario(config)
    b = run_cluster_scenario(config)
    assert a.migration_records() == b.migration_records()
    assert records_to_csv(a.host_records()) == records_to_csv(b.host_records())


def _policy_grid():
    return SweepGrid(
        {"policy": ["static", "consolidate", "load-balance", "power-budget"]},
        base=CONFIG.with_changes(power_budget_w=200.0),
        vary_seed=True,
    )


def test_cluster_sweep_serial_vs_parallel_byte_identical():
    serial = SweepRunner(_policy_grid(), workers=1).run()
    parallel = SweepRunner(_policy_grid(), workers=2).run()
    assert serial.to_json() == parallel.to_json()
    assert serial.to_csv() == parallel.to_csv()


def test_cluster_sweep_cold_vs_store_resumed_byte_identical(tmp_path):
    store = ExperimentStore(tmp_path / "store")
    cold = SweepRunner(_policy_grid(), workers=1, store=store).run()
    warm_runner = SweepRunner(_policy_grid(), workers=2, store=store)
    warm = warm_runner.run()
    assert warm_runner.cache_hits == len(cold)
    assert warm_runner.computed == 0
    assert warm.to_json() == cold.to_json()


def test_cluster_preset_sweep_resumes_across_worker_counts(tmp_path):
    store = ExperimentStore(tmp_path / "store")
    grid = preset_grid("dc-diurnal-small")
    cold = SweepRunner(grid, metrics=("fleet", "cluster"), workers=2, store=store).run()
    warm = SweepRunner(
        preset_grid("dc-diurnal-small"), metrics=("fleet", "cluster"), store=store
    )
    assert warm.run().to_json() == cold.to_json()
    assert warm.cache_hits == len(cold)
