"""Meta-tests: the repo itself is lint-clean, and stays honest.

These are the acceptance gate for the whole subsystem: ``repro lint src
tests benchmarks`` must exit 0 at HEAD with zero unused suppressions, and a
planted wall-clock read in the engine must be caught (which is what the CI
job relies on).
"""

import pathlib
import shutil

from repro.lint import lint_paths, render_text

REPO = pathlib.Path(__file__).resolve().parents[2]


def test_repo_is_lint_clean_at_head():
    findings = lint_paths(
        [str(REPO / "src"), str(REPO / "tests"), str(REPO / "benchmarks")]
    )
    assert findings == [], "\n" + render_text(findings)


def test_planted_wall_clock_in_engine_is_caught(tmp_path):
    # Copy the real repo layout (pyproject marker + the real engine source)
    # and plant a time.time() call: the lint run must flag exactly it.
    (tmp_path / "pyproject.toml").write_text("[tool.none]\n")
    sim = tmp_path / "src" / "repro" / "sim"
    sim.mkdir(parents=True)
    engine_source = (REPO / "src" / "repro" / "sim" / "engine.py").read_text()
    planted = engine_source.replace(
        "import heapq",
        "import heapq\nimport time as _wall",
        1,
    ).replace(
        "self._now = 0.0",
        "self._now = 0.0\n        self._booted = _wall.time()",
        1,
    )
    assert planted != engine_source
    (sim / "engine.py").write_text(planted)
    findings = lint_paths([str(tmp_path / "src")])
    # RPL101 for the wall clock; RPL401 because _booted is not a slot —
    # the two rules that make the engine's determinism tamper-evident.
    codes = sorted({finding.code for finding in findings})
    assert "RPL101" in codes
    wall = [f for f in findings if f.code == "RPL101"]
    assert all(f.path == "src/repro/sim/engine.py" for f in wall)


def test_no_suppressions_currently_needed():
    # The codebase holds the invariants without exceptions today.  If this
    # fails because a legitimate suppression was added, update the expected
    # count alongside a comment in the suppressing module explaining why.
    from repro.lint.source import load_project

    project = load_project(
        [str(REPO / "src"), str(REPO / "tests"), str(REPO / "benchmarks")]
    )
    suppressions = [
        (module.path, suppression)
        for module in project.modules
        for suppression in module.suppressions
    ]
    assert suppressions == []
