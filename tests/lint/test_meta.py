"""Meta-tests: the repo itself is lint-clean, and stays honest.

These are the acceptance gate for the whole subsystem: ``repro lint src
tests benchmarks`` must exit 0 at HEAD with zero unused suppressions, and a
planted wall-clock read in the engine must be caught (which is what the CI
job relies on).
"""

import pathlib
import shutil

from repro.lint import lint_paths, render_text

REPO = pathlib.Path(__file__).resolve().parents[2]


def test_repo_is_lint_clean_at_head():
    findings = lint_paths(
        [str(REPO / "src"), str(REPO / "tests"), str(REPO / "benchmarks")]
    )
    assert findings == [], "\n" + render_text(findings)


def test_planted_wall_clock_in_engine_is_caught(tmp_path):
    # Copy the real repo layout (pyproject marker + the real engine source)
    # and plant a time.time() call: the lint run must flag exactly it.
    (tmp_path / "pyproject.toml").write_text("[tool.none]\n")
    sim = tmp_path / "src" / "repro" / "sim"
    sim.mkdir(parents=True)
    engine_source = (REPO / "src" / "repro" / "sim" / "engine.py").read_text()
    planted = engine_source.replace(
        "import heapq",
        "import heapq\nimport time as _wall",
        1,
    ).replace(
        "self._now = 0.0",
        "self._now = 0.0\n        self._booted = _wall.time()",
        1,
    )
    assert planted != engine_source
    (sim / "engine.py").write_text(planted)
    findings = lint_paths([str(tmp_path / "src")])
    # RPL101 for the wall clock; RPL401 because _booted is not a slot —
    # the two rules that make the engine's determinism tamper-evident.
    codes = sorted({finding.code for finding in findings})
    assert "RPL101" in codes
    wall = [f for f in findings if f.code == "RPL101"]
    assert all(f.path == "src/repro/sim/engine.py" for f in wall)


def test_no_suppressions_currently_needed():
    # The codebase holds the invariants without exceptions today.  If this
    # fails because a legitimate suppression was added, update the expected
    # count alongside a comment in the suppressing module explaining why.
    from repro.lint.source import load_project

    project = load_project(
        [str(REPO / "src"), str(REPO / "tests"), str(REPO / "benchmarks")]
    )
    suppressions = [
        (module.path, suppression)
        for module in project.modules
        for suppression in module.suppressions
    ]
    assert suppressions == []


def test_planted_unit_mix_in_power_model_is_caught(tmp_path):
    # Plant a watts + kilowatt-hours addition in a copy of cpu/power.py:
    # the RPL701 dimension checker must report it with file and line.
    (tmp_path / "pyproject.toml").write_text("[tool.none]\n")
    cpu = tmp_path / "src" / "repro" / "cpu"
    cpu.mkdir(parents=True)
    power_source = (REPO / "src" / "repro" / "cpu" / "power.py").read_text()
    planted = power_source + (
        "\n\ndef _planted_total(power_w: float, energy_kwh: float) -> float:\n"
        "    return power_w + energy_kwh\n"
    )
    (cpu / "power.py").write_text(planted)
    findings = lint_paths([str(tmp_path / "src")])
    mixes = [f for f in findings if f.code == "RPL701"]
    assert mixes, "\n" + render_text(findings)
    assert all(f.path == "src/repro/cpu/power.py" for f in mixes)
    assert mixes[0].line == len(planted.splitlines())
    assert "[W]" in mixes[0].message and "[kWh]" in mixes[0].message


def test_planted_transitive_wall_clock_below_run_until_is_caught(tmp_path):
    # Plant a time.time() two helper-hops below Engine.run_until in a copy
    # of the real engine: RPL801 must report the sink with the full chain.
    (tmp_path / "pyproject.toml").write_text("[tool.none]\n")
    sim = tmp_path / "src" / "repro" / "sim"
    sim.mkdir(parents=True)
    engine_source = (REPO / "src" / "repro" / "sim" / "engine.py").read_text()
    planted = engine_source.replace(
        "import heapq",
        "import heapq\nimport time as _clock",
        1,
    ).replace(
        "        self._running = True\n        heap = self._heap",
        "        self._running = True\n        _hop_one()\n        heap = self._heap",
        1,
    ) + (
        "\n\ndef _hop_one():\n"
        "    return _hop_two()\n"
        "\n\ndef _hop_two():\n"
        "    return _clock.time()\n"
    )
    assert planted != engine_source
    (sim / "engine.py").write_text(planted)
    findings = lint_paths([str(tmp_path / "src")])
    transitive = [f for f in findings if f.code == "RPL801"]
    assert transitive, "\n" + render_text(findings)
    finding = transitive[0]
    assert finding.path == "src/repro/sim/engine.py"
    assert (
        "repro.sim.engine.Engine.run_until -> repro.sim.engine._hop_one "
        "-> repro.sim.engine._hop_two" in finding.message
    )
    assert "`time.time()`" in finding.message
    # The direct, module-local rule sees the same sink — both tiers agree.
    assert any(f.code == "RPL101" for f in findings)
