"""Meta-tests: the repo itself is lint-clean, and stays honest.

These are the acceptance gate for the whole subsystem: ``repro lint src
tests benchmarks`` must exit 0 at HEAD with zero unused suppressions, and a
planted wall-clock read in the engine must be caught (which is what the CI
job relies on).
"""

import pathlib
import shutil

from repro.lint import lint_paths, render_text

REPO = pathlib.Path(__file__).resolve().parents[2]


def test_repo_is_lint_clean_at_head():
    findings = lint_paths(
        [str(REPO / "src"), str(REPO / "tests"), str(REPO / "benchmarks")]
    )
    assert findings == [], "\n" + render_text(findings)


def test_planted_wall_clock_in_engine_is_caught(tmp_path):
    # Copy the real repo layout (pyproject marker + the real engine source)
    # and plant a time.time() call: the lint run must flag exactly it.
    (tmp_path / "pyproject.toml").write_text("[tool.none]\n")
    sim = tmp_path / "src" / "repro" / "sim"
    sim.mkdir(parents=True)
    engine_source = (REPO / "src" / "repro" / "sim" / "engine.py").read_text()
    planted = engine_source.replace(
        "import heapq",
        "import heapq\nimport time as _wall",
        1,
    ).replace(
        "self._now = 0.0",
        "self._now = 0.0\n        self._booted = _wall.time()",
        1,
    )
    assert planted != engine_source
    (sim / "engine.py").write_text(planted)
    findings = lint_paths([str(tmp_path / "src")])
    # RPL101 for the wall clock; RPL401 because _booted is not a slot —
    # the two rules that make the engine's determinism tamper-evident.
    codes = sorted({finding.code for finding in findings})
    assert "RPL101" in codes
    wall = [f for f in findings if f.code == "RPL101"]
    assert all(f.path == "src/repro/sim/engine.py" for f in wall)


def test_no_suppressions_currently_needed():
    # The codebase holds the invariants without exceptions today.  If this
    # fails because a legitimate suppression was added, update the expected
    # count alongside a comment in the suppressing module explaining why.
    from repro.lint.source import load_project

    project = load_project(
        [str(REPO / "src"), str(REPO / "tests"), str(REPO / "benchmarks")]
    )
    suppressions = [
        (module.path, suppression)
        for module in project.modules
        for suppression in module.suppressions
    ]
    assert suppressions == []


def test_planted_unit_mix_in_power_model_is_caught(tmp_path):
    # Plant a watts + kilowatt-hours addition in a copy of cpu/power.py:
    # the RPL701 dimension checker must report it with file and line.
    (tmp_path / "pyproject.toml").write_text("[tool.none]\n")
    cpu = tmp_path / "src" / "repro" / "cpu"
    cpu.mkdir(parents=True)
    power_source = (REPO / "src" / "repro" / "cpu" / "power.py").read_text()
    planted = power_source + (
        "\n\ndef _planted_total(power_w: float, energy_kwh: float) -> float:\n"
        "    return power_w + energy_kwh\n"
    )
    (cpu / "power.py").write_text(planted)
    findings = lint_paths([str(tmp_path / "src")])
    mixes = [f for f in findings if f.code == "RPL701"]
    assert mixes, "\n" + render_text(findings)
    assert all(f.path == "src/repro/cpu/power.py" for f in mixes)
    assert mixes[0].line == len(planted.splitlines())
    assert "[W]" in mixes[0].message and "[kWh]" in mixes[0].message


def _plant_obs_layout(tmp_path):
    """Copy the real engine + obs hook/trace modules into a fake repo."""
    (tmp_path / "pyproject.toml").write_text("[tool.none]\n")
    sim = tmp_path / "src" / "repro" / "sim"
    obs = tmp_path / "src" / "repro" / "obs"
    sim.mkdir(parents=True)
    obs.mkdir(parents=True)
    for relative in ("sim/engine.py", "obs/hooks.py", "obs/trace.py"):
        shutil.copyfile(
            REPO / "src" / "repro" / relative, tmp_path / "src" / "repro" / relative
        )
    return tmp_path / "src"


def test_planted_wall_clock_in_tracer_emit_path_is_caught(tmp_path):
    # The engine's hot loop calls `trace.engine_event(...)` when a tracer is
    # installed, so the Tracer emit methods are reachable from
    # Engine.run_until in the RPL8xx call graph.  Plant a time.time() read
    # inside the emit path: the transitive rule must flag the root chain
    # (and RPL101 the sink module directly) — proof that tracing cannot
    # quietly grow a wall-clock dependency.
    src = _plant_obs_layout(tmp_path)
    trace_path = tmp_path / "src" / "repro" / "obs" / "trace.py"
    trace_source = trace_path.read_text()
    planted = trace_source.replace(
        "import json",
        "import json\nimport time as _wall",
        1,
    ).replace(
        '        self.instant("engine", label or "event", time_s, "engine")',
        '        self.instant("engine", label or "event", _wall.time(), "engine")',
        1,
    )
    assert planted != trace_source
    trace_path.write_text(planted)
    findings = lint_paths([str(src)])
    direct = [f for f in findings if f.code == "RPL101"]
    assert direct, "\n" + render_text(findings)
    assert all(f.path == "src/repro/obs/trace.py" for f in direct)
    transitive = [f for f in findings if f.code == "RPL801"]
    assert transitive, "\n" + render_text(findings)
    assert any(
        "engine_event" in f.message and "run_until" in f.message for f in transitive
    ), "\n" + render_text(transitive)


def test_clean_obs_layout_has_no_findings(tmp_path):
    # The same layout unmodified is clean: the emit path as shipped carries
    # no wall-clock reads, so the planted-read test above isolates exactly
    # the tampering.
    src = _plant_obs_layout(tmp_path)
    findings = lint_paths([str(src)])
    assert findings == [], "\n" + render_text(findings)


def test_profiler_module_is_sanctioned_only_at_its_own_path(tmp_path):
    # profile.py is the single module allowed to read wall clocks, and the
    # sanction is bound to its path.  The identical source mounted anywhere
    # else must light up RPL101.
    profiler_source = (REPO / "src" / "repro" / "obs" / "profile.py").read_text()

    (tmp_path / "pyproject.toml").write_text("[tool.none]\n")
    obs = tmp_path / "src" / "repro" / "obs"
    obs.mkdir(parents=True)
    (obs / "profile.py").write_text(profiler_source)
    assert lint_paths([str(tmp_path / "src")]) == []

    elsewhere = tmp_path / "moved"
    (elsewhere / "src" / "repro" / "sim").mkdir(parents=True)
    (elsewhere / "pyproject.toml").write_text("[tool.none]\n")
    (elsewhere / "src" / "repro" / "sim" / "profile.py").write_text(profiler_source)
    findings = lint_paths([str(elsewhere / "src")])
    wall = [f for f in findings if f.code == "RPL101"]
    assert wall, "\n" + render_text(findings)
    assert all(f.path == "src/repro/sim/profile.py" for f in wall)


def test_planted_transitive_wall_clock_below_run_until_is_caught(tmp_path):
    # Plant a time.time() two helper-hops below Engine.run_until in a copy
    # of the real engine: RPL801 must report the sink with the full chain.
    (tmp_path / "pyproject.toml").write_text("[tool.none]\n")
    sim = tmp_path / "src" / "repro" / "sim"
    sim.mkdir(parents=True)
    engine_source = (REPO / "src" / "repro" / "sim" / "engine.py").read_text()
    planted = engine_source.replace(
        "import heapq",
        "import heapq\nimport time as _clock",
        1,
    ).replace(
        "        self._running = True\n        heap = self._heap",
        "        self._running = True\n        _hop_one()\n        heap = self._heap",
        1,
    ) + (
        "\n\ndef _hop_one():\n"
        "    return _hop_two()\n"
        "\n\ndef _hop_two():\n"
        "    return _clock.time()\n"
    )
    assert planted != engine_source
    (sim / "engine.py").write_text(planted)
    findings = lint_paths([str(tmp_path / "src")])
    transitive = [f for f in findings if f.code == "RPL801"]
    assert transitive, "\n" + render_text(findings)
    finding = transitive[0]
    assert finding.path == "src/repro/sim/engine.py"
    assert (
        "repro.sim.engine.Engine.run_until -> repro.sim.engine._hop_one "
        "-> repro.sim.engine._hop_two" in finding.message
    )
    assert "`time.time()`" in finding.message
    # The direct, module-local rule sees the same sink — both tiers agree.
    assert any(f.code == "RPL101" for f in findings)
