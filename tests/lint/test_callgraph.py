"""Unit tests for the interprocedural tier: symbols and the call graph.

Everything here runs on in-memory sources mounted at virtual repo paths
(same convention as the rule fixtures), exercising import-alias
resolution, method lookup through project-visible bases, dynamic-dispatch
fallback, and cycle-safe reachability.
"""

import textwrap

import pytest

from repro.lint import Project, SourceModule
from repro.lint.symbols import module_name_of


def project_of(sources):
    return Project(
        [
            SourceModule(path, textwrap.dedent(source))
            for path, source in sources.items()
        ]
    )


# ------------------------------------------------------------ symbol table


def test_module_name_of_layouts():
    assert module_name_of("src/repro/sim/engine.py") == "repro.sim.engine"
    assert module_name_of("src/repro/lint/__init__.py") == "repro.lint"
    assert module_name_of("tests/lint/test_meta.py") == "tests.lint.test_meta"
    assert module_name_of("benchmarks/bench_engine.py") == "benchmarks.bench_engine"


def test_symbols_index_functions_and_methods():
    project = project_of(
        {
            "src/repro/pkg/mod.py": """
            def helper():
                pass

            class Thing:
                def fire(self):
                    pass
            """
        }
    )
    table = project.symbols
    assert table.function_at("repro.pkg.mod.helper") is not None
    method = table.function_at("repro.pkg.mod.Thing.fire")
    assert method is not None and method.class_name == "Thing"
    assert [info.qualname for info in table.methods_named["fire"]] == [
        "repro.pkg.mod.Thing.fire"
    ]


def test_relative_import_resolves_to_dotted_target():
    project = project_of(
        {
            "src/repro/units.py": """
            def check_percent(value, name):
                return value
            """,
            "src/repro/cpu/power.py": """
            from ..units import check_percent

            def use(value):
                return check_percent(value, "value")
            """,
        }
    )
    graph = project.callgraph
    assert graph.edges["repro.cpu.power.use"] == ("repro.units.check_percent",)


def test_aliased_module_import_resolves():
    project = project_of(
        {
            "src/repro/core/laws.py": """
            def absolute_load(nominal_load, ratio):
                return nominal_load * ratio
            """,
            "src/repro/governors/x.py": """
            import repro.core.laws as laws

            def decide(load):
                return laws.absolute_load(load, 0.5)
            """,
        }
    )
    graph = project.callgraph
    assert graph.edges["repro.governors.x.decide"] == (
        "repro.core.laws.absolute_load",
    )


def test_aliased_function_import_resolves():
    project = project_of(
        {
            "src/repro/units.py": """
            def check_percent(value, name):
                return value
            """,
            "src/repro/other.py": """
            from repro.units import check_percent as cp

            def use(value):
                return cp(value, "value")
            """,
        }
    )
    graph = project.callgraph
    assert graph.edges["repro.other.use"] == ("repro.units.check_percent",)


# --------------------------------------------------------------- call graph


def test_self_call_resolves_through_base_class():
    project = project_of(
        {
            "src/repro/pkg/base.py": """
            class Base:
                def hook(self):
                    pass
            """,
            "src/repro/pkg/child.py": """
            from .base import Base

            class Child(Base):
                def run(self):
                    self.hook()
            """,
        }
    )
    graph = project.callgraph
    assert graph.edges["repro.pkg.child.Child.run"] == ("repro.pkg.base.Base.hook",)


def test_annotated_parameter_receiver_resolves():
    project = project_of(
        {
            "src/repro/pkg/mod.py": """
            class Worker:
                def fire(self):
                    pass

            def drive(worker: Worker):
                worker.fire()
            """
        }
    )
    graph = project.callgraph
    assert graph.edges["repro.pkg.mod.drive"] == ("repro.pkg.mod.Worker.fire",)


def test_local_construction_receiver_resolves():
    project = project_of(
        {
            "src/repro/pkg/mod.py": """
            class Worker:
                def __init__(self):
                    pass

                def fire(self):
                    pass

            def drive():
                w = Worker()
                w.fire()
            """
        }
    )
    graph = project.callgraph
    assert graph.edges["repro.pkg.mod.drive"] == (
        "repro.pkg.mod.Worker.__init__",
        "repro.pkg.mod.Worker.fire",
    )


def test_self_attribute_type_resolves():
    project = project_of(
        {
            "src/repro/pkg/mod.py": """
            class Clock:
                def tick_tock(self):
                    pass

            class Holder:
                def __init__(self):
                    self.clock = Clock()

                def run(self):
                    self.clock.tick_tock()
            """
        }
    )
    graph = project.callgraph
    assert graph.edges["repro.pkg.mod.Holder.run"] == (
        "repro.pkg.mod.Clock.tick_tock",
    )


def test_unknown_receiver_falls_back_to_every_method_of_that_name():
    project = project_of(
        {
            "src/repro/a.py": """
            class One:
                def fire(self):
                    pass
            """,
            "src/repro/b.py": """
            class Two:
                def fire(self):
                    pass
            """,
            "src/repro/c.py": """
            def drive(thing):
                thing.fire()
            """,
        }
    )
    graph = project.callgraph
    assert graph.edges["repro.c.drive"] == (
        "repro.a.One.fire",
        "repro.b.Two.fire",
    )


def test_container_method_names_do_not_fan_out():
    project = project_of(
        {
            "src/repro/a.py": """
            class Registry:
                def get(self, name):
                    pass
            """,
            "src/repro/c.py": """
            def drive(mapping):
                mapping.get("x")
            """,
        }
    )
    graph = project.callgraph
    assert graph.edges["repro.c.drive"] == ()


def test_nested_functions_attach_to_their_parent():
    project = project_of(
        {
            "src/repro/pkg/mod.py": """
            def leaf():
                pass

            def outer():
                def inner():
                    leaf()
                return inner
            """
        }
    )
    graph = project.callgraph
    assert "repro.pkg.mod.outer.inner" not in graph.edges
    assert graph.edges["repro.pkg.mod.outer"] == ("repro.pkg.mod.leaf",)


# ------------------------------------------------------------- reachability


def test_reachable_chains_terminate_on_cycles():
    project = project_of(
        {
            "src/repro/pkg/mod.py": """
            def a():
                b()

            def b():
                a()
            """
        }
    )
    graph = project.callgraph
    chains = graph.reachable_chains(["repro.pkg.mod.a"])
    assert chains["repro.pkg.mod.a"] == ("repro.pkg.mod.a",)
    assert chains["repro.pkg.mod.b"] == ("repro.pkg.mod.a", "repro.pkg.mod.b")


def test_reachable_chains_are_shortest_and_root_first():
    project = project_of(
        {
            "src/repro/pkg/mod.py": """
            def root():
                middle()
                leaf()

            def middle():
                leaf()

            def leaf():
                pass
            """
        }
    )
    chains = project.callgraph.reachable_chains(["repro.pkg.mod.root"])
    # BFS: leaf's chain goes straight from the root, not through middle.
    assert chains["repro.pkg.mod.leaf"] == (
        "repro.pkg.mod.root",
        "repro.pkg.mod.leaf",
    )


def test_determinism_roots_cover_engine_hooks_and_reducers():
    project = project_of(
        {
            "src/repro/sim/engine.py": """
            class Engine:
                def run_until(self, time):
                    pass

                def _pump(self):
                    pass
            """,
            "src/repro/schedulers/toy.py": """
            class ToyScheduler:
                def tick(self, now):
                    pass

                def _internal(self):
                    pass
            """,
            "src/repro/sweep/metrics.py": """
            def load_metrics(rows):
                return rows

            def _helper(rows):
                return rows
            """,
        }
    )
    roots = project.callgraph.determinism_roots()
    assert "repro.sim.engine.Engine.run_until" in roots
    assert "repro.schedulers.toy.ToyScheduler.tick" in roots
    assert "repro.sweep.metrics.load_metrics" in roots
    assert "repro.sim.engine.Engine._pump" not in roots
    assert "repro.schedulers.toy.ToyScheduler._internal" not in roots
    assert "repro.sweep.metrics._helper" not in roots


def test_sinks_record_aliased_wall_clock():
    project = project_of(
        {
            "src/repro/pkg/mod.py": """
            import time as _clock

            def stamp():
                return _clock.time()
            """
        }
    )
    graph = project.callgraph
    sinks = graph.sinks["repro.pkg.mod.stamp"]
    assert [(sink.category, sink.dotted) for sink in sinks] == [
        ("wall-clock", "time.time")
    ]
