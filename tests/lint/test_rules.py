"""Per-rule fixture cases: positive, negative, suppressed, unused-suppression.

Every rule family must *fire* on a minimal violating snippet (positive),
stay quiet on the idiomatic equivalent (negative), honour a line
suppression, and — since suppressions are audited — flag a suppression
that silences nothing.  Sources are mounted at virtual repo paths; see
``conftest.py``.
"""

LIB = "src/repro/sim/fake.py"  # library + order-sensitive scope
ACCT = "src/repro/cpu/fake.py"  # library + accounting scope
HOT = "src/repro/sim/events.py"  # hot-path scope (virtual twin)


# ------------------------------------------------------- RPL101 wall clock


def test_wall_clock_fires(codes_of):
    assert codes_of({LIB: """
        import time
        def stamp():
            return time.time()
        """}) == ["RPL101"]


def test_wall_clock_variants_fire(codes_of):
    codes = codes_of({LIB: """
        import datetime, time
        def stamps():
            return time.perf_counter(), datetime.datetime.now()
        """})
    assert codes == ["RPL101", "RPL101"]


def test_wall_clock_aliased_import_still_fires(codes_of):
    # Aliasing the import is not an evasion: names are canonicalised.
    codes = codes_of({LIB: """
        import time as _wall
        from datetime import datetime as dt
        def stamps():
            return _wall.time(), dt.now()
        """})
    assert codes == ["RPL101", "RPL101"]


def test_from_import_entropy_still_fires(codes_of):
    assert codes_of({LIB: """
        from os import urandom
        def token():
            return urandom(8)
        """}) == ["RPL102"]


def test_wall_clock_quiet_on_simulated_time(codes_of):
    assert codes_of({LIB: """
        def stamp(engine):
            return engine.now
        """}) == []


def test_wall_clock_out_of_scope_in_tests(codes_of):
    assert codes_of({"tests/fake_test.py": """
        import time
        def wall():
            return time.time()
        """}) == []


def test_wall_clock_suppressed(codes_of):
    assert codes_of({LIB: """
        import time
        def stamp():
            return time.time()  # repro-lint: disable=RPL101
        """}) == []


def test_unused_suppression_is_flagged(codes_of):
    assert codes_of({LIB: """
        def stamp(engine):
            return engine.now  # repro-lint: disable=RPL101
        """}) == ["RPL001"]


# --------------------------------------------------------- RPL102 entropy


def test_entropy_fires(codes_of):
    assert codes_of({LIB: """
        import os
        def token():
            return os.urandom(8)
        """}) == ["RPL102"]


def test_entropy_quiet_on_hashlib(codes_of):
    assert codes_of({LIB: """
        import hashlib
        def key(blob):
            return hashlib.sha256(blob).hexdigest()
        """}) == []


# --------------------------------------------------- RPL103 global random


def test_global_random_fires(codes_of):
    assert codes_of({LIB: """
        import random
        def draw():
            return random.random()
        """}) == ["RPL103"]


def test_unseeded_random_constructor_fires(codes_of):
    assert codes_of({LIB: """
        import random
        def rng():
            return random.Random()
        """}) == ["RPL103"]


def test_seeded_random_is_fine(codes_of):
    assert codes_of({LIB: """
        import random
        def rng(seed):
            return random.Random(seed)
        """}) == []


# ------------------------------------------------ RPL104 set iteration


def test_set_iteration_fires_in_order_sensitive_module(codes_of):
    assert codes_of({LIB: """
        def emit(names, out):
            for name in set(names):
                out.append(name)
        """}) == ["RPL104"]


def test_set_comprehension_iteration_fires(codes_of):
    assert codes_of({LIB: """
        def emit(pairs):
            return [name for name in {a for a, _ in pairs}]
        """}) == ["RPL104"]


def test_sorted_set_iteration_is_fine(codes_of):
    assert codes_of({LIB: """
        def emit(names, out):
            for name in sorted(set(names)):
                out.append(name)
        """}) == []


def test_set_iteration_out_of_scope_elsewhere(codes_of):
    assert codes_of({"src/repro/workloads/fake.py": """
        def emit(names, out):
            for name in set(names):
                out.append(name)
        """}) == []


# ------------------------------------------------- RPL201/202 round-trip


_SPEC_MISSING_TO_DICT = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class FakeSpec:
        alpha: float
        beta: float

        def to_dict(self):
            return {"alpha": self.alpha}

        @classmethod
        def from_dict(cls, data):
            return cls(alpha=data["alpha"], beta=data["beta"])
    """


def test_to_dict_field_drop_fires(codes_of):
    codes = codes_of({"src/repro/experiments/fake.py": _SPEC_MISSING_TO_DICT})
    assert codes == ["RPL201"]


def test_from_dict_field_drop_fires(codes_of):
    codes = codes_of({"src/repro/experiments/fake.py": """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class FakeSpec:
            alpha: float
            beta: float

            def to_dict(self):
                return {"alpha": self.alpha, "beta": self.beta}

            @classmethod
            def from_dict(cls, data):
                return cls(alpha=data["alpha"])
        """})
    assert codes == ["RPL202"]


def test_dataclasses_fields_loop_counts_as_full_coverage(codes_of):
    assert codes_of({"src/repro/experiments/fake.py": """
        import dataclasses
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class FakeSpec:
            alpha: float
            beta: float

            def to_dict(self):
                return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}

            @classmethod
            def from_dict(cls, data):
                return cls(**data)
        """}) == []


def test_round_trip_suppressed_on_anchor_line(codes_of):
    # The finding anchors on the ``def to_dict`` line; a suppression there
    # silences it, one on any other line does not.
    source = _SPEC_MISSING_TO_DICT.replace(
        "def to_dict(self):",
        "def to_dict(self):  # repro-lint: disable=RPL201",
    )
    assert codes_of({"src/repro/experiments/fake.py": source}) == []


def test_round_trip_suppression_on_wrong_line_is_unused(codes_of):
    source = _SPEC_MISSING_TO_DICT.replace(
        'return {"alpha": self.alpha}',
        'return {"alpha": self.alpha}  # repro-lint: disable=RPL201',
    )
    codes = codes_of({"src/repro/experiments/fake.py": source})
    assert sorted(codes) == ["RPL001", "RPL201"]


# ----------------------------------------------- RPL301/302 registries


_REGISTRY_SOURCES = {
    "src/repro/schedulers/base.py": """
        import abc

        class Scheduler(abc.ABC):
            @abc.abstractmethod
            def pick_next(self, now):
                ...

            @abc.abstractmethod
            def charge(self, vcpu, elapsed, now):
                ...
        """,
    "src/repro/schedulers/registry.py": """
        from .base import Scheduler
        from .fake import FakeScheduler

        SCHEDULER_NAMES = ("fake",)

        def make_scheduler(name, **kwargs):
            if name == "fake":
                return FakeScheduler(**kwargs)
            raise ConfigurationError(name)
        """,
}


def test_registry_missing_hook_fires(codes_of):
    sources = dict(_REGISTRY_SOURCES)
    sources["src/repro/schedulers/fake.py"] = """
        from .base import Scheduler

        class FakeScheduler(Scheduler):
            def pick_next(self, now):
                return None
        """
    sources["tests/fake_test.py"] = 'NAME = "fake"\n'
    assert codes_of(sources) == ["RPL301"]


def test_registry_complete_hooks_quiet(codes_of):
    sources = dict(_REGISTRY_SOURCES)
    sources["src/repro/schedulers/fake.py"] = """
        from .base import Scheduler

        class FakeScheduler(Scheduler):
            def pick_next(self, now):
                return None

            def charge(self, vcpu, elapsed, now):
                return 0.0
        """
    sources["tests/fake_test.py"] = 'NAME = "fake"\n'
    assert codes_of(sources) == []


def test_registry_untested_name_fires(codes_of):
    sources = dict(_REGISTRY_SOURCES)
    sources["src/repro/schedulers/fake.py"] = """
        from .base import Scheduler

        class FakeScheduler(Scheduler):
            def pick_next(self, now):
                return None

            def charge(self, vcpu, elapsed, now):
                return 0.0
        """
    sources["tests/fake_test.py"] = 'NAME = "some-other-scheduler"\n'
    assert codes_of(sources) == ["RPL302"]


def test_registry_untested_skipped_without_test_modules(codes_of):
    sources = dict(_REGISTRY_SOURCES)
    sources["src/repro/schedulers/fake.py"] = """
        from .base import Scheduler

        class FakeScheduler(Scheduler):
            def pick_next(self, now):
                return None

            def charge(self, vcpu, elapsed, now):
                return 0.0
        """
    # No tests/ module in the lint set: RPL302 must not fabricate findings.
    assert codes_of(sources) == []


# --------------------------------------------------- RPL401/402 slots


def test_missing_slots_fires_on_hot_path(codes_of):
    assert codes_of({HOT: """
        class EventHandle:
            def __init__(self, time):
                self.time = time
        """}) == ["RPL402"]


def test_assignment_outside_slots_fires(codes_of):
    assert codes_of({HOT: """
        class EventHandle:
            __slots__ = ("time",)

            def __init__(self, time):
                self.time = time

            def tag(self, note):
                self.note = note
        """}) == ["RPL401"]


def test_slotted_assignments_quiet(codes_of):
    assert codes_of({HOT: """
        class EventHandle:
            __slots__ = ("time", "note")

            def __init__(self, time):
                self.time = time
                self.note = None
        """}) == []


def test_enum_exempt_from_slots(codes_of):
    assert codes_of({HOT: """
        import enum

        class VCpuState(enum.Enum):
            RUNNING = "running"
        """}) == []


def test_slots_rule_out_of_scope_elsewhere(codes_of):
    assert codes_of({LIB: """
        class Sampler:
            def __init__(self):
                self.values = []
        """}) == []


# ----------------------------------------------- RPL501/502 hygiene


def test_builtin_raise_fires(codes_of):
    assert codes_of({LIB: """
        def check(value):
            if value < 0:
                raise ValueError(f"bad {value}")
        """}) == ["RPL501"]


def test_repro_error_raise_quiet(codes_of):
    assert codes_of({LIB: """
        from ..errors import ConfigurationError

        def check(value):
            if value < 0:
                raise ConfigurationError(f"bad {value}")
        """}) == []


def test_raise_in_cli_exempt(codes_of):
    assert codes_of({"src/repro/cli.py": """
        def parse(value):
            raise ValueError(value)
        """}) == []


def test_print_fires(codes_of):
    assert codes_of({LIB: """
        def debug(x):
            print(x)
        """}) == ["RPL502"]


def test_print_in_cli_exempt(codes_of):
    assert codes_of({"src/repro/cli.py": """
        def show(x):
            print(x)
        """}) == []


# -------------------------------------------- RPL601/602 float purity


def test_sum_over_set_fires_in_accounting(codes_of):
    assert codes_of({ACCT: """
        def total(values):
            return sum({v for v in values})
        """}) == ["RPL601"]


def test_sum_over_set_generator_fires(codes_of):
    assert codes_of({ACCT: """
        def total(pairs):
            return sum(v * 2 for v in set(pairs))
        """}) == ["RPL601"]


def test_sum_over_list_quiet(codes_of):
    assert codes_of({ACCT: """
        def total(values):
            return sum(values)
        """}) == []


def test_augmented_accumulation_over_set_fires(codes_of):
    assert codes_of({ACCT: """
        def total(values):
            acc = 0.0
            for v in set(values):
                acc += v
            return acc
        """}) == ["RPL602"]


def test_augmented_accumulation_over_sorted_set_quiet(codes_of):
    assert codes_of({ACCT: """
        def total(values):
            acc = 0.0
            for v in sorted(set(values)):
                acc += v
            return acc
        """}) == []


def test_float_purity_out_of_scope_elsewhere(codes_of):
    assert codes_of({"src/repro/experiments/fake.py": """
        def total(values):
            return sum(set(values))
        """}) == []


# ------------------------------------------------ RPL7xx unit purity


def test_dimension_mixing_addition_fires(codes_of):
    assert codes_of({LIB: """
        def total(power_w, energy_kwh):
            return power_w + energy_kwh
        """}) == ["RPL701"]


def test_same_dimension_addition_quiet(codes_of):
    assert codes_of({LIB: """
        def total(idle_w, busy_w):
            return idle_w + busy_w
        """}) == []


def test_dimension_mixing_product_is_a_conversion(codes_of):
    # Multiplying is how units legitimately change; only +/- mix.
    assert codes_of({LIB: """
        def energy(power_w, dt):
            return power_w * dt
        """}) == []


def test_dimension_mixing_comparison_fires(codes_of):
    assert codes_of({LIB: """
        def check(busy_s, load_percent):
            return busy_s > load_percent
        """}) == ["RPL701"]


def test_dimension_mixing_augassign_fires(codes_of):
    assert codes_of({LIB: """
        def accumulate(total_s, load_percent):
            total_s += load_percent
            return total_s
        """}) == ["RPL701"]


def test_dimension_mixing_suppressed(codes_of):
    assert codes_of({LIB: """
        def total(power_w, energy_kwh):
            return power_w + energy_kwh  # repro-lint: disable=RPL701
        """}) == []


def test_cross_dimension_assignment_fires(codes_of):
    assert codes_of({LIB: """
        def convert(load_percent):
            duration_s = load_percent
            return duration_s
        """}) == ["RPL702"]


def test_cross_dimension_assignment_with_conversion_quiet(codes_of):
    assert codes_of({LIB: """
        def convert(load_percent):
            load_fraction = load_percent / 100.0
            return load_fraction
        """}) == []


def test_same_dimension_assignment_quiet(codes_of):
    assert codes_of({LIB: """
        def alias(busy_s):
            duration_s = busy_s
            return duration_s
        """}) == []


def test_cross_dimension_assignment_suppressed(codes_of):
    assert codes_of({LIB: """
        def convert(load_percent):
            duration_s = load_percent  # repro-lint: disable=RPL702
            return duration_s
        """}) == []


def test_percent_compared_to_fraction_bound_fires(codes_of):
    assert codes_of({LIB: """
        def busy(load_percent):
            return load_percent > 0.95
        """}) == ["RPL703"]


def test_fraction_compared_to_percent_bound_fires(codes_of):
    assert codes_of({LIB: """
        def busy(share_fraction):
            return share_fraction > 95.0
        """}) == ["RPL703"]


def test_percent_compared_to_percent_bound_quiet(codes_of):
    assert codes_of({LIB: """
        def busy(load_percent):
            return load_percent > 95.0
        """}) == []


def test_check_fraction_on_percent_name_fires(codes_of):
    assert codes_of({LIB: """
        def validate(load_percent):
            return check_fraction(load_percent, "load")
        """}) == ["RPL703"]


def test_check_percent_on_fraction_name_fires(codes_of):
    assert codes_of({LIB: """
        def validate(share_fraction):
            return check_percent(share_fraction, "share")
        """}) == ["RPL703"]


def test_check_fraction_on_fraction_name_quiet(codes_of):
    assert codes_of({LIB: """
        def validate(share_fraction):
            return check_fraction(share_fraction, "share")
        """}) == []


def test_percent_fraction_confusion_suppressed(codes_of):
    assert codes_of({LIB: """
        def validate(load_percent):
            return check_fraction(load_percent, "load")  # repro-lint: disable=RPL703
        """}) == []


def test_unsuffixed_float_param_fires_in_accounting(codes_of):
    assert codes_of({ACCT: """
        def scale(margin: float):
            return margin
        """}) == ["RPL704"]


def test_suffixed_float_param_quiet(codes_of):
    assert codes_of({ACCT: """
        def scale(margin_percent: float):
            return margin_percent
        """}) == []


def test_dimensionless_allowlist_param_quiet(codes_of):
    assert codes_of({ACCT: """
        def scale(value: float, weight: float, cf: float):
            return value * weight * cf
        """}) == []


def test_private_function_param_exempt(codes_of):
    assert codes_of({ACCT: """
        def _scale(margin: float):
            return margin
        """}) == []


def test_init_params_are_public_api(codes_of):
    assert codes_of({ACCT: """
        class Model:
            def __init__(self, margin: float):
                self.margin_percent = margin
        """}) == ["RPL704"]


def test_unsuffixed_param_out_of_scope_outside_accounting(codes_of):
    assert codes_of({"src/repro/governors/fake.py": """
        def scale(margin: float):
            return margin
        """}) == []


def test_unsuffixed_param_suppressed(codes_of):
    assert codes_of({ACCT: """
        def scale(margin: float):  # repro-lint: disable=RPL704
            return margin
        """}) == []


# --------------------------------------- RPL8xx transitive determinism


def test_wall_clock_two_hops_below_run_until_fires(lint_sources):
    findings = lint_sources(
        {
            "src/repro/sim/fake_engine.py": """
            import time as _clock

            class Engine:
                def run_until(self, time):
                    self._drain()

                def _drain(self):
                    self._stamp()

                def _stamp(self):
                    return _clock.time()
            """
        },
        select=["RPL801"],
    )
    assert [finding.code for finding in findings] == ["RPL801"]
    message = findings[0].message
    assert (
        "repro.sim.fake_engine.Engine.run_until -> "
        "repro.sim.fake_engine.Engine._drain -> "
        "repro.sim.fake_engine.Engine._stamp" in message
    )
    assert "`time.time()`" in message


def test_entropy_below_scheduler_hook_fires(lint_sources):
    findings = lint_sources(
        {
            "src/repro/schedulers/fake.py": """
            import os

            class FakeScheduler:
                def pick_next(self, now):
                    return _salt()

            def _salt():
                return os.urandom(4)
            """
        },
        select=["RPL802"],
    )
    assert [finding.code for finding in findings] == ["RPL802"]
    assert "pick_next -> repro.schedulers.fake._salt" in findings[0].message


def test_global_random_below_sweep_reducer_fires(lint_sources):
    findings = lint_sources(
        {
            "src/repro/sweep/metrics.py": """
            import random

            def load_metrics(rows):
                return _jitter(rows)

            def _jitter(rows):
                return random.random()
            """
        },
        select=["RPL803"],
    )
    assert [finding.code for finding in findings] == ["RPL803"]
    assert "load_metrics -> repro.sweep.metrics._jitter" in findings[0].message


def test_unreachable_sink_quiet_for_transitive_rules(codes_of):
    # The banned call sits in a private helper no root reaches; RPL101
    # still fires module-locally, but RPL8xx stays quiet.
    assert codes_of({"src/repro/schedulers/fake.py": """
        import time as _clock

        class FakeScheduler:
            def pick_next(self, now):
                return now

        def _orphan():
            return _clock.time()
        """, }, select=["RPL801"]) == []


def test_transitive_wall_clock_suppressed_at_sink(codes_of):
    assert codes_of({"src/repro/sim/fake_engine.py": """
        import time as _clock

        class Engine:
            def run_until(self, time):
                return self._stamp()

            def _stamp(self):
                return _clock.time()  # repro-lint: disable=RPL801
        """, }, select=["RPL801"]) == []
