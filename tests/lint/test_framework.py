"""Framework behaviour: suppression audit, select/ignore, reporters, CLI."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.lint import render_json, render_text, rule_catalog
from repro.lint.rules import RULES, all_codes

LIB = "src/repro/sim/fake.py"

VIOLATION = """
    import time
    def stamp():
        return time.time()
    """


# ------------------------------------------------------------ suppressions


def test_unknown_code_in_suppression_fires_rpl002(codes_of):
    assert codes_of({LIB: """
        def f(engine):
            return engine.now  # repro-lint: disable=RPL999
        """}) == ["RPL002"]


def test_malformed_code_in_suppression_fires_rpl002(codes_of):
    assert codes_of({LIB: """
        def f(engine):
            return engine.now  # repro-lint: disable=nonsense
        """}) == ["RPL002"]


def test_multi_code_suppression(codes_of):
    assert codes_of({LIB: """
        import time, os
        def f():
            return time.time(), os.urandom(4)  # repro-lint: disable=RPL101,RPL102
        """}) == []


def test_docstring_mentioning_syntax_is_not_a_suppression(codes_of):
    assert codes_of({LIB: '''
        def f():
            """Use `# repro-lint: disable=RPL101` to silence a line."""
            return None
        '''}) == []


# ----------------------------------------------------------- select/ignore


def test_select_narrows_to_one_rule(codes_of):
    sources = {LIB: """
        import time
        def f():
            print(time.time())
        """}
    # Same line: findings sort by column, so the outer print() comes first.
    assert codes_of(sources) == ["RPL502", "RPL101"]
    assert codes_of(sources, select=["RPL502"]) == ["RPL502"]


def test_ignore_drops_a_rule(codes_of):
    sources = {LIB: """
        import time
        def f():
            print(time.time())
        """}
    assert codes_of(sources, ignore=["RPL101"]) == ["RPL502"]


def test_unknown_select_code_rejected(codes_of):
    with pytest.raises(ConfigurationError):
        codes_of({LIB: "x = 1\n"}, select=["RPL999"])


def test_suppression_of_deselected_rule_not_reported_unused(codes_of):
    # With RPL101 deselected we cannot judge the suppression — stay quiet.
    assert codes_of({LIB: """
        import time
        def f():
            return time.time()  # repro-lint: disable=RPL101
        """, }, select=["RPL502"]) == []


# -------------------------------------------------------------- reporters


def test_text_report_shape(lint_sources):
    findings = lint_sources({LIB: VIOLATION})
    text = render_text(findings)
    assert f"{LIB}:4:12: RPL101" in text
    assert text.endswith("repro lint: 1 finding")
    assert render_text([]) == "repro lint: clean"


def test_json_report_schema(lint_sources):
    findings = lint_sources({LIB: VIOLATION})
    payload = json.loads(render_json(findings))
    assert payload["version"] == 1
    assert payload["count"] == 1
    (entry,) = payload["findings"]
    assert set(entry) == {"path", "line", "col", "code", "message"}
    assert entry["path"] == LIB
    assert entry["line"] == 4
    assert entry["code"] == "RPL101"
    assert isinstance(entry["col"], int)
    assert isinstance(entry["message"], str)


def test_json_report_is_deterministic(lint_sources):
    findings = lint_sources({LIB: VIOLATION})
    assert render_json(findings) == render_json(list(findings))


# ---------------------------------------------------------------- registry


def test_rule_codes_unique_and_well_formed():
    codes = [rule.code for rule in RULES]
    assert len(codes) == len(set(codes))
    for code in all_codes():
        assert code.startswith("RPL") and len(code) == 6 and code[3:].isdigit()


def test_catalog_covers_every_code():
    assert {entry["code"] for entry in rule_catalog()} == set(all_codes())
    for entry in rule_catalog():
        assert entry["summary"], entry["code"]


def test_all_eight_rule_families_registered():
    families = {rule.code[3] for rule in RULES}
    assert families == {"1", "2", "3", "4", "5", "6", "7", "8"}


# --------------------------------------------------------------------- CLI


def test_cli_clean_run_exits_zero(capsys):
    from repro.cli import main

    assert main(["lint", "src/repro/lint"]) == 0
    assert "clean" in capsys.readouterr().out


def test_cli_json_format(capsys):
    from repro.cli import main

    assert main(["lint", "src/repro/lint", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload == {"version": 1, "count": 0, "findings": []}


def test_cli_findings_exit_nonzero(tmp_path, capsys, monkeypatch):
    # A violating file inside a fake repo root: pyproject.toml marks the
    # root so the path is reported repo-relative.
    (tmp_path / "pyproject.toml").write_text("[tool.none]\n")
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    bad = pkg / "clocky.py"
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    from repro.cli import main

    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "src/repro/sim/clocky.py:4" in out
    assert "RPL101" in out


def test_cli_bad_path_exits_two(capsys):
    from repro.cli import main

    assert main(["lint", "no/such/dir"]) == 2
    assert "lint:" in capsys.readouterr().err


def test_cli_list_rules(capsys):
    from repro.cli import main

    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in sorted(all_codes()):
        assert code in out


# --------------------------------------------------- prefixes & renderers


def test_select_family_prefix_expands(codes_of):
    sources = {
        "src/repro/cpu/fake.py": """
        import time

        def f(margin: float):
            return time.time()
        """
    }
    # RPL7 selects the whole unit-purity family; the wall clock (RPL101)
    # is deselected along with everything else outside the prefix.
    assert codes_of(sources, select=["RPL7"]) == ["RPL704"]


def test_ignore_family_prefix_drops_family(codes_of):
    sources = {
        "src/repro/cpu/fake.py": """
        import time

        def f(margin: float):
            return time.time()
        """
    }
    assert codes_of(sources, ignore=["RPL7"]) == ["RPL101"]


def test_unknown_prefix_rejected(codes_of):
    with pytest.raises(ConfigurationError):
        codes_of({LIB: "x = 1\n"}, select=["RPL9"])


def test_cli_unknown_prefix_exits_two(capsys):
    from repro.cli import main

    assert main(["lint", "src/repro/lint", "--select", "RPL9"]) == 2
    assert "unknown rule code or prefix" in capsys.readouterr().err


def test_github_renderer_emits_error_annotations(lint_sources):
    findings = lint_sources({LIB: VIOLATION})
    from repro.lint import render_github

    output = render_github(findings)
    first = output.splitlines()[0]
    assert first.startswith(f"::error file={LIB},line=4,col=")
    assert "title=RPL101" in first
    assert "::RPL101 wall-clock read" in first
    assert output.splitlines()[-1] == "repro lint: 1 finding"


def test_github_renderer_clean_tally():
    from repro.lint import render_github

    assert render_github([]) == "repro lint: clean"


def test_cli_github_format(tmp_path, capsys):
    (tmp_path / "pyproject.toml").write_text("[tool.none]\n")
    pkg = tmp_path / "src" / "repro" / "sim"
    pkg.mkdir(parents=True)
    bad = pkg / "clocky.py"
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    from repro.cli import main

    assert main(["lint", str(bad), "--format", "github"]) == 1
    out = capsys.readouterr().out
    assert "::error file=src/repro/sim/clocky.py,line=4," in out
