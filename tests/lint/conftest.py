"""Shared helpers for the linter's own tests.

Rules are path-scoped (``src/repro/sim/...`` and friends), so fixtures are
in-memory sources mounted at *virtual* repo paths — no file with a live
violation ever exists on disk, which keeps the meta-test (``repro lint src
tests benchmarks`` is clean at HEAD) honest.
"""

import textwrap

import pytest

from repro.lint import Project, SourceModule, lint_project


@pytest.fixture
def lint_sources():
    """lint_sources({path: source}, ...) -> sorted findings."""

    def run(sources, **kwargs):
        modules = [
            SourceModule(path, textwrap.dedent(source))
            for path, source in sources.items()
        ]
        return lint_project(Project(modules), **kwargs)

    return run


@pytest.fixture
def codes_of(lint_sources):
    """codes_of({path: source}) -> list of finding codes, report order."""

    def run(sources, **kwargs):
        return [finding.code for finding in lint_sources(sources, **kwargs)]

    return run
