"""Unit tests for the §5.3 scenario builder."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ScenarioConfig, run_scenario
from repro.experiments.scenario import build_scenario


def small(**changes):
    config = ScenarioConfig(
        v20_active=(5.0, 55.0),
        v70_active=(20.0, 40.0),
        duration=60.0,
    )
    return config.with_changes(**changes)


def test_builds_three_domains_with_paper_credits():
    host = build_scenario(small())
    names = [d.name for d in host.domains]
    assert names == ["Dom0", "V20", "V70"]
    assert host.domain("V20").credit == 20
    assert host.domain("V70").credit == 70
    assert host.domain("Dom0").is_dom0


def test_pas_forces_userspace_governor():
    host = build_scenario(small(scheduler="pas", governor="stable"))
    assert host.governor.name == "userspace"


def test_idle_load_leaves_no_workload():
    host = build_scenario(small(v70_load="idle"))
    assert host.domain("V70").workload is None
    assert host.domain("V20").workload is not None


def test_unknown_load_kind_rejected():
    with pytest.raises(ConfigurationError):
        build_scenario(small(v20_load="bursty"))


def test_run_scenario_produces_series_and_phase_means():
    result = run_scenario(small())
    load = result.phase_mean("V20.global_load", (30.0, 50.0))
    assert load == pytest.approx(20.0, abs=2.0)
    assert result.frequency_transitions >= 0
    assert result.energy_joules > 0


def test_series_smoothing_applies_three_sample_mean():
    result = run_scenario(small())
    raw = result.series("V20.global_load", smooth=False)
    smooth = result.series("V20.global_load")
    assert len(raw) == len(smooth)
    assert raw.name != smooth.name


def test_with_changes_replaces_fields():
    config = small()
    changed = config.with_changes(scheduler="sedf")
    assert changed.scheduler == "sedf"
    assert config.scheduler == "credit"


def test_scheduler_kwargs_forwarded():
    host = build_scenario(small(scheduler="pas", scheduler_kwargs={"use_cf": False}))
    assert host.scheduler.use_cf is False
