"""Unit tests for the declarative scenario builder."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import GuestSpec, ScenarioConfig, run_scenario, WorkloadSpec
from repro.experiments.scenario import (
    analysis_windows,
    build_scenario,
    effective_guests,
    guest_active_span,
    guest_window,
    secondary_activation,
)


def small(**changes):
    config = ScenarioConfig(
        v20_active=(5.0, 55.0),
        v70_active=(20.0, 40.0),
        duration=60.0,
    )
    return config.with_changes(**changes)


def test_builds_three_domains_with_paper_credits():
    host = build_scenario(small())
    names = [d.name for d in host.domains]
    assert names == ["Dom0", "V20", "V70"]
    assert host.domain("V20").credit == 20
    assert host.domain("V70").credit == 70
    assert host.domain("Dom0").is_dom0


def test_pas_forces_userspace_governor():
    host = build_scenario(small(scheduler="pas", governor="stable"))
    assert host.governor.name == "userspace"


def test_idle_load_leaves_no_workload():
    host = build_scenario(small(v70_load="idle"))
    assert host.domain("V70").workload is None
    assert host.domain("V20").workload is not None


def test_unknown_load_kind_rejected():
    with pytest.raises(ConfigurationError):
        build_scenario(small(v20_load="bursty"))


def test_run_scenario_produces_series_and_phase_means():
    result = run_scenario(small())
    load = result.phase_mean("V20.global_load", (30.0, 50.0))
    assert load == pytest.approx(20.0, abs=2.0)
    assert result.frequency_transitions >= 0
    assert result.energy_joules > 0


def test_series_smoothing_applies_three_sample_mean():
    result = run_scenario(small())
    raw = result.series("V20.global_load", smooth=False)
    smooth = result.series("V20.global_load")
    assert len(raw) == len(smooth)
    assert raw.name != smooth.name


def test_with_changes_replaces_fields():
    config = small()
    changed = config.with_changes(scheduler="sedf")
    assert changed.scheduler == "sedf"
    assert config.scheduler == "credit"


def test_scheduler_kwargs_forwarded():
    host = build_scenario(small(scheduler="pas", scheduler_kwargs={"use_cf": False}))
    assert host.scheduler.use_cf is False


# ------------------------------------------------------- declarative surface


def test_with_changes_rejects_unknown_fields_with_choices():
    with pytest.raises(ConfigurationError, match="valid fields.*scheduler"):
        small().with_changes(shceduler="pas")


def test_legacy_fields_expand_to_two_guest_specs():
    guests = effective_guests(small(v20_load="thrashing"))
    assert [g.name for g in guests] == ["V20", "V70"]
    assert guests[0].workloads[0].load == "thrashing"
    assert guests[0].workloads[0].active == ((5.0, 55.0),)


def test_explicit_guests_override_legacy_fields():
    config = small(
        guests=(
            GuestSpec(
                name="A",
                credit=30.0,
                workloads=(WorkloadSpec(kind="web", active=((5.0, 40.0),)),),
            ),
        )
    )
    host = build_scenario(config)
    assert [d.name for d in host.domains] == ["Dom0", "A"]
    assert host.domain("A").credit == 30.0


def test_guest_specs_accept_dict_form():
    config = small(
        guests=[
            {"name": "A", "credit": 25, "workloads": [{"kind": "pi", "work": 1.0}]}
        ]
    )
    assert config.guests[0] == GuestSpec(
        name="A", credit=25, workloads=(WorkloadSpec(kind="pi", work=1.0),)
    )


def test_duplicate_guest_names_rejected():
    with pytest.raises(ConfigurationError, match="duplicate guest names"):
        small(guests=(GuestSpec(name="A", credit=10), GuestSpec(name="A", credit=20)))


def test_dom0_guest_name_reserved():
    with pytest.raises(ConfigurationError, match="reserved"):
        small(guests=(GuestSpec(name="Dom0", credit=10),))


def test_unknown_workload_kind_and_load_rejected():
    with pytest.raises(ConfigurationError, match="unknown workload kind"):
        WorkloadSpec(kind="fft")
    with pytest.raises(ConfigurationError, match="unknown load kind"):
        WorkloadSpec(load="bursty")


def test_trace_spec_needs_points_or_diurnal():
    with pytest.raises(ConfigurationError, match="trace"):
        WorkloadSpec(kind="trace")


def test_active_windows_rejected_for_kinds_that_ignore_them():
    with pytest.raises(ConfigurationError, match="active"):
        WorkloadSpec(kind="pi", active=((0.0, 10.0),))
    with pytest.raises(ConfigurationError, match="active"):
        WorkloadSpec(kind="trace", trace=((0.0, 5.0),), active=((0.0, 10.0),))
    with pytest.raises(ConfigurationError, match="at most one"):
        WorkloadSpec(kind="constant", active=((0.0, 10.0), (20.0, 30.0)))


def test_trace_span_holds_final_nonzero_demand_to_run_end():
    config = ScenarioConfig(
        duration=100.0,
        guests=(
            GuestSpec(
                name="T",
                credit=50.0,
                workloads=(WorkloadSpec(kind="trace", trace=((0.0, 50.0),)),),
            ),
            GuestSpec(
                name="Z",
                credit=20.0,
                workloads=(
                    WorkloadSpec(kind="trace", trace=((0.0, 30.0), (40.0, 0.0))),
                ),
            ),
        ),
    )
    # T's single nonzero point drives demand for the whole run; Z's trace
    # ends at an explicit zero point.
    assert guest_active_span(config, "T") == (0.0, 100.0)
    assert guest_active_span(config, "Z") == (0.0, 40.0)


def test_guest_names_differing_only_in_case_rejected():
    with pytest.raises(ConfigurationError, match="case-insensitive"):
        ScenarioConfig(
            guests=(GuestSpec(name="A", credit=10), GuestSpec(name="a", credit=20))
        )
    with pytest.raises(ConfigurationError, match="reserved"):
        ScenarioConfig(guests=(GuestSpec(name="dom0", credit=10),))


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ConfigurationError, match="valid fields"):
        ScenarioConfig.from_dict({"schedular": "pas"})
    with pytest.raises(ConfigurationError, match="valid fields"):
        GuestSpec.from_dict({"name": "A", "credit": 10, "color": "red"})


def test_from_dict_resolves_processor_by_catalog_name():
    config = ScenarioConfig.from_dict({"processor": "Intel Xeon E5-2620"})
    assert config.processor.name == "Intel Xeon E5-2620"
    with pytest.raises(ConfigurationError, match="unknown processor"):
        ScenarioConfig.from_dict({"processor": "Pentium III"})


def test_multiple_workloads_per_guest():
    config = small(
        guests=(
            GuestSpec(
                name="A",
                credit=40.0,
                workloads=(
                    WorkloadSpec(kind="pi", work=0.5),
                    WorkloadSpec(kind="constant", demand_percent=5.0),
                ),
            ),
        )
    )
    host = build_scenario(config)
    assert len(host.domain("A").workloads) == 2


def test_manager_field_builds_and_starts_a_manager():
    host = build_scenario(small(manager="user-credit", governor="ondemand"))
    assert host.user_manager is not None
    with pytest.raises(ConfigurationError, match="unknown manager"):
        small(manager="kernel-daemon")


# ----------------------------------------------------------------- windows


def test_analysis_windows_match_legacy_formula_on_default_timeline():
    assert analysis_windows(ScenarioConfig()) == (
        (100.0, 240.0),
        (300.0, 540.0),
        (600.0, 740.0),
    )


def test_analysis_windows_follow_custom_overlapping_timelines():
    # Secondary guest wakes before the primary's lead margin has passed and
    # outlives the run: the derived phases track the actual overlap.
    config = ScenarioConfig(
        duration=300.0, v20_active=(10.0, 290.0), v70_active=(40.0, 400.0)
    )
    solo, both, late = analysis_windows(config)
    assert solo == (20.0, 32.5)  # lead max(10, 7.5), tail min(10, 7.5)
    assert both[0] > 40.0 and both[1] <= 400.0
    assert secondary_activation(config) == 40.0


def test_analysis_windows_fall_back_to_thirds_without_two_timelines():
    config = ScenarioConfig(
        duration=300.0,
        guests=(
            GuestSpec(
                name="T",
                credit=50.0,
                workloads=(WorkloadSpec(kind="constant", demand_percent=30.0),),
            ),
        ),
    )
    solo, both, late = analysis_windows(config)
    assert solo[0] == pytest.approx(25.0)  # _trimmed(0, 100)
    assert late[1] == pytest.approx(290.0)


def test_guest_window_trims_each_guests_own_span():
    config = small()
    assert guest_window(config, "V20") == (
        pytest.approx(17.5),
        pytest.approx(45.0),
    )
    assert guest_active_span(config, "V70") == (20.0, 40.0)
    with pytest.raises(ConfigurationError, match="no guest"):
        guest_window(config, "V99")


def test_idle_guest_has_no_active_span():
    assert guest_active_span(small(v70_load="idle"), "V70") is None


def test_guest_window_rejects_spans_too_short_to_trim():
    # A span shorter than its trim margins must raise the clear error, not
    # return an inverted (start > end) window.
    config = ScenarioConfig(
        duration=12.0, v20_active=(0.5, 12.5), v70_active=(1.0, 12.2)
    )
    with pytest.raises(ConfigurationError, match="too short"):
        guest_window(config, "V20")


def test_result_guest_queries():
    result = run_scenario(small())
    assert result.guest_names == ("V20", "V70")
    window = result.guest_window("V20")
    assert result.guest_mean("V20", "global", window) == pytest.approx(20.0, abs=2.0)
    assert len(result.guest_series("V70")) > 0
