"""Unit tests for experiment reports."""

from repro.experiments import Check, ExperimentReport


def test_rows_and_checks_render():
    report = ExperimentReport(experiment="Fig X", title="demo")
    report.add_row("metric", 20.0, 19.5)
    report.check("within tolerance", True)
    text = report.render()
    assert "Fig X" in text
    assert "metric" in text
    assert "[PASS] within tolerance" in text


def test_all_passed_and_failures():
    report = ExperimentReport(experiment="e", title="t")
    report.check("good", True)
    assert report.all_passed
    report.check("bad", False)
    assert not report.all_passed
    assert [c.description for c in report.failures] == ["bad"]


def test_check_str_markers():
    assert str(Check("x", True)).startswith("[PASS]")
    assert str(Check("x", False)).startswith("[FAIL]")


def test_chart_included_in_render():
    report = ExperimentReport(experiment="e", title="t", chart="CHART-BODY")
    assert "CHART-BODY" in report.render()


def test_str_equals_render():
    report = ExperimentReport(experiment="e", title="t")
    assert str(report) == report.render()
