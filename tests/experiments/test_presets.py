"""The preset registry: round-trips, grids, and legacy equivalence."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    effective_guests,
    get_preset,
    preset_config,
    preset_grid,
    PRESETS,
    ScenarioConfig,
    run_scenario,
)

REQUIRED = {
    "paper-5.3",
    "governors",
    "diurnal-web",
    "pi-batch",
    "mixed-guests",
    "stress-fleet",
    "calib-eq1",
    "calib-eq2",
    "calib-eq3",
    "calib-compensation",
}


def test_registry_carries_the_documented_presets():
    assert REQUIRED <= set(PRESETS)
    for preset in PRESETS.values():
        assert preset.description
        assert preset.cells >= 1


@pytest.mark.parametrize("name", sorted(REQUIRED))
def test_every_preset_round_trips_through_json(name):
    config = preset_config(name)
    assert ScenarioConfig.from_dict(config.to_dict()) == config


@pytest.mark.parametrize("name", sorted(REQUIRED))
def test_every_preset_survives_a_json_dump(name):
    import json

    config = preset_config(name)
    text = json.dumps(config.to_dict())  # must be JSON-able, not just dict-able
    assert ScenarioConfig.from_dict(json.loads(text)) == config


def test_paper_preset_is_the_default_config():
    assert preset_config("paper-5.3") == ScenarioConfig()


def test_unknown_preset_names_the_choices():
    with pytest.raises(ConfigurationError, match="paper-5.3"):
        get_preset("paper-5-3")


def test_preset_grid_expands_axes():
    grid = preset_grid("governors")
    preset = get_preset("governors")
    assert len(grid) == preset.cells
    assert set(grid.axes) == set(preset.axes)


def test_axisless_preset_becomes_single_variant_grid():
    grid = preset_grid("paper-5.3")
    assert len(grid) == 1
    assert grid.cells[0].label == "paper-5.3"
    assert grid.cells[0].config == ScenarioConfig()


def test_preset_grid_overrides_and_replicates():
    grid = preset_grid("governors", overrides={"duration": 100.0}, replicates=2)
    assert len(grid) == 2 * get_preset("governors").cells
    assert all(cell.config.duration == 100.0 for cell in grid)
    seeds = [cell.seed for cell in grid]
    assert len(set(seeds)) == len(seeds)


def test_preset_grid_rejects_unknown_override():
    with pytest.raises(ConfigurationError, match="unknown scenario config field"):
        preset_grid("governors", overrides={"durration": 100.0})


def _series_pairs(result, name):
    return list(result.series(name, smooth=False))


def test_paper_preset_equals_legacy_two_guest_fields_bit_for_bit():
    # The compatibility criterion: expanding the legacy fields through the
    # generic guest interpreter must not move a single sample.
    legacy = ScenarioConfig(
        duration=200.0, v20_active=(20.0, 180.0), v70_active=(60.0, 140.0)
    )
    explicit = legacy.with_changes(guests=effective_guests(legacy))
    a, b = run_scenario(legacy), run_scenario(explicit)
    assert a.energy_joules == b.energy_joules
    assert a.frequency_transitions == b.frequency_transitions
    for name in ("V20.global_load", "V20.absolute_load", "V70.global_load", "host.freq_mhz"):
        assert _series_pairs(a, name) == _series_pairs(b, name)


def test_mixed_guests_preset_runs_and_reports_all_guests():
    config = preset_config("mixed-guests").with_changes(duration=120.0)
    result = run_scenario(config)
    assert result.guest_names == ("W20", "B30", "T25")
    assert result.guest_mean("W20", "global", (60.0, 100.0)) > 0.0


def test_stress_fleet_preset_holds_every_credit():
    config = preset_config("stress-fleet").with_changes(duration=120.0)
    result = run_scenario(config)
    assert len(result.guest_names) == 8
    # Guests active inside the shortened run still get their booked share.
    active = result.guest_mean("S00", "global", (40.0, 110.0))
    assert active == pytest.approx(10.0, abs=1.5)


def test_pi_batch_preset_stops_when_batch_done():
    result = run_scenario(preset_config("pi-batch"))
    assert result.host.now < preset_config("pi-batch").duration
    for domain in result.host.domains:
        for workload in domain.workloads:
            if hasattr(workload, "done"):
                assert workload.done


# --------------------------------------------------------- cluster presets

CLUSTER_PRESETS = {
    "dc-diurnal",
    "dc-diurnal-small",
    "dc-fleet-medium",
    "dc-fleet-large",
}


def test_cluster_presets_are_registered_with_kind():
    assert CLUSTER_PRESETS <= set(PRESETS)
    for name in CLUSTER_PRESETS:
        preset = get_preset(name)
        assert preset.kind == "cluster"
        assert preset.axes == {
            "policy": ("static", "consolidate", "load-balance", "power-budget")
        }
        assert preset.metrics == ("fleet", "cluster")
    for name in REQUIRED:
        assert get_preset(name).kind == "scenario"


@pytest.mark.parametrize("name", sorted(CLUSTER_PRESETS))
def test_cluster_presets_round_trip_through_json(name):
    import json

    from repro.cluster import ClusterScenarioConfig

    config = preset_config(name)
    text = json.dumps(config.to_dict())
    assert ClusterScenarioConfig.from_dict(json.loads(text)) == config


def test_cluster_preset_grid_expands_policy_axis():
    grid = preset_grid("dc-diurnal-small")
    assert len(grid) == 4
    policies = [cell.config.policy for cell in grid]
    assert policies == ["static", "consolidate", "load-balance", "power-budget"]


def test_dc_hetero_preset_declares_the_mixed_fleet():
    import json

    from repro.cluster import ClusterScenarioConfig

    preset = get_preset("dc-hetero")
    assert preset.kind == "cluster"
    assert preset.axes == {
        "policy": ("static", "consolidate", "power-budget"),
        "placement": ("efficiency", "performance"),
    }
    config = preset_config("dc-hetero")
    assert len(config.machines) == 2  # i7 group + big.LITTLE group
    assert config.total_machines == 4
    text = json.dumps(config.to_dict())
    assert ClusterScenarioConfig.from_dict(json.loads(text)) == config
    grid = preset_grid("dc-hetero")
    assert len(grid) == 6  # 3 policies x 2 placements


def test_cluster_preset_budgets_are_feasible_and_binding():
    # The power-budget acceptance shape on the CI fleet: the cap holds
    # every epoch and consolidation undercuts static provisioning.
    from repro.cluster.scenario import run_cluster_scenario

    config = preset_config("dc-diurnal-small")
    static = run_cluster_scenario(config.with_changes(policy="static"))
    packed = run_cluster_scenario(config.with_changes(policy="consolidate"))
    capped = run_cluster_scenario(config.with_changes(policy="power-budget"))
    assert capped.peak_power_w <= config.power_budget_w
    assert packed.fleet_energy_joules < static.fleet_energy_joules
    assert capped.fleet_energy_joules < static.fleet_energy_joules
