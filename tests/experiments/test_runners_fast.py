"""Unit tests for the experiment runners on compressed timelines.

The benchmarks run the paper-scale versions; these exercise the same code
paths fast enough for the unit suite, and pin the runner *interfaces*
(override forwarding, report structure) rather than the plateaus the
integration tests already assert.
"""

import pytest

from repro import catalog
from repro.experiments import (
    run_compensation,
    run_fig4,
    run_fig9,
    run_table2,
    validate_credit_time,
)

FAST = dict(
    v20_active=(20.0, 180.0),
    v70_active=(60.0, 140.0),
    duration=200.0,
)


def test_fig4_report_structure():
    result, report = run_fig4(**FAST)
    assert report.experiment == "Figure 4"
    assert len(report.rows) >= 4
    assert report.chart  # the ASCII figure is part of the report
    metrics = [row[0] for row in report.rows]
    assert any("V20" in metric for metric in metrics)


def test_fig9_overrides_forwarded():
    result, _ = run_fig9(**FAST, seed=9)
    assert result.config.seed == 9
    assert result.config.duration == 200.0
    assert result.host.scheduler.name == "pas"


def test_fig9_on_other_processor():
    result, _ = run_fig9(**FAST, processor=catalog.CORE_I7_3770)
    assert result.host.processor.spec.name == "Intel Core i7-3770"
    # The compensation plateau moves with the frequency table: at the i7's
    # chosen state the cap is credit / (ratio * cf).
    state = result.host.processor.state
    assert result.host.scheduler.cap_of(result.host.domain("V20")) == pytest.approx(
        20.0 / state.capacity_fraction(3400), rel=0.01
    )


def test_compensation_runner_small_ladder():
    points, report = run_compensation(credits=(20.0, 40.0), work=5.0)
    assert [round(p.compensated_credit) for p in points] == [25, 50]
    assert report.all_passed


def test_validate_credit_time_custom_credits():
    report = validate_credit_time(credits=(20.0, 40.0), work=5.0)
    assert report.all_passed
    assert len(report.rows) == 2


def test_table2_quick_mode():
    rows, report = run_table2(quick=True)
    assert {row.platform for row in rows} == {"Hyper-V", "Xen/PAS", "Xen/SEDF"}
    assert report.all_passed
