"""Fast smoke tests for the ablation runners on compressed timelines.

The paper-scale versions run in the benchmark suite; these verify the
runners work end-to-end (and their checks hold) on the 4x compressed
timeline, so regressions surface in the unit suite too.
"""

from repro.experiments import (
    run_cf_ablation,
    run_design_comparison,
    run_energy_ablation,
    run_qos_ablation,
)

FAST = dict(
    v20_active=(20.0, 180.0),
    v70_active=(60.0, 140.0),
    duration=200.0,
)


def test_energy_ablation_compressed():
    report = run_energy_ablation(**FAST)
    assert report.all_passed, [str(c) for c in report.failures]


def test_cf_ablation_compressed():
    report = run_cf_ablation(**FAST)
    assert report.all_passed, [str(c) for c in report.failures]


def test_design_comparison_compressed():
    report = run_design_comparison(**FAST)
    assert report.all_passed, [str(c) for c in report.failures]


def test_design_comparison_accepts_load_override():
    # Callers may override the default thrashing intensity (regression:
    # the override used to collide with the hard-coded v20_load kwarg).
    report = run_design_comparison(v20_load="exact", **FAST)
    assert len(report.rows) == 3


def test_qos_ablation_compressed():
    report = run_qos_ablation(**FAST)
    # Compressed phases shrink the starved window, so only structural
    # expectations are asserted here; the full-timeline criteria run in
    # benchmarks/bench_ablation_qos.py.
    assert len(report.rows) == 4
    labels = [row[0] for row in report.rows]
    assert "pas" in labels
