"""Runner determinism: serial == parallel, and the store round-trips."""

import pytest

from repro.cluster import ClusterScenarioConfig
from repro.errors import ConfigurationError
from repro.experiments import ScenarioConfig
from repro.sweep import run_cells, run_sweep, SweepGrid, SweepResults

#: Compressed §5.3 timeline: full three-phase structure in 200 simulated s.
FAST = ScenarioConfig(
    duration=200.0, v20_active=(20.0, 180.0), v70_active=(60.0, 140.0)
)


@pytest.fixture(scope="module")
def small_grid() -> SweepGrid:
    return SweepGrid(
        {"scheduler": ["credit", "pas"], "v20_load": ["exact", "thrashing"]},
        base=FAST,
        vary_seed=True,
    )


@pytest.fixture(scope="module")
def serial(small_grid) -> "SweepResults":
    return run_sweep(small_grid, workers=1)


def test_results_in_grid_order(small_grid, serial):
    assert serial.labels == tuple(cell.label for cell in small_grid)
    assert [cell.index for cell in serial] == [0, 1, 2, 3]


def test_default_scenario_metrics_present(serial):
    cell = serial.cells[0]
    for key in ("v20_absolute_solo_early", "freq_mhz_both", "dvfs_transitions", "energy_joules"):
        assert key in cell.metrics


def test_serial_vs_parallel_identical(small_grid, serial):
    parallel = run_sweep(small_grid, workers=4)
    assert serial.to_json() == parallel.to_json()  # byte-identical export
    for a, b in zip(serial, parallel):
        assert a.metrics == b.metrics  # and value-identical, not just printed


def test_rerun_is_deterministic(small_grid, serial):
    again = run_sweep(small_grid, workers=1)
    assert again.to_json() == serial.to_json()


def test_json_round_trip(serial, tmp_path):
    path = serial.save(tmp_path / "results.json")
    loaded = SweepResults.load(path)
    assert loaded.labels == serial.labels
    assert loaded.to_json() == serial.to_json()


def test_csv_export_shape(serial, tmp_path):
    path = serial.save(tmp_path / "results.csv")
    lines = path.read_text().splitlines()
    assert len(lines) == 1 + len(serial)
    header = lines[0].split(",")
    assert header[0] == "label"
    assert "energy_joules" in header


def test_metric_and_get_queries(serial):
    label = serial.labels[0]
    assert serial.metric(label, "energy_joules") > 0
    with pytest.raises(ConfigurationError, match="no sweep cell"):
        serial.get("nope")
    with pytest.raises(ConfigurationError, match="no metric"):
        serial.metric(label, "nope")


def test_filter_and_aggregate(serial):
    pas_only = serial.filter(scheduler="pas")
    assert len(pas_only) == 2
    assert all(cell.params["scheduler"] == "pas" for cell in pas_only)
    groups = serial.aggregate("energy_joules", by="scheduler")
    assert set(groups) == {"credit", "pas"}
    for summary in groups.values():
        assert summary["count"] == 2
        assert summary["min"] <= summary["mean"] <= summary["max"]


def test_pas_cells_hold_sla_credit_cells_do_not(serial):
    # The paper's core claim shows up even on the compressed timeline.
    for cell in serial.filter(scheduler="pas"):
        assert cell.metrics["v20_absolute_solo_early"] == pytest.approx(20.0, abs=1.5)
    for cell in serial.filter(scheduler="credit"):
        assert cell.metrics["v20_absolute_solo_early"] < 15.0


def test_run_cells_keeps_full_outcomes(small_grid):
    outcomes = run_cells(
        SweepGrid.from_variants({"one": small_grid.cells[0].config})
    )
    result = outcomes["one"]
    assert result.host.scheduler.name == "credit"
    assert len(result.series("host.freq_mhz")) > 0


def test_cluster_grid_serial_vs_parallel_identical():
    grid = SweepGrid(
        {"policy": ["spread", "consolidate"], "dvfs": [False, True]},
        base=ClusterScenarioConfig(n_machines=2, n_vms=3, duration=100.0),
    )
    serial = run_sweep(grid, workers=1)
    parallel = run_sweep(grid, workers=2)
    assert serial.to_json() == parallel.to_json()
    for cell in serial:
        assert cell.metrics["fleet_energy_joules"] > 0
        assert 0.0 <= cell.metrics["mean_sla_fraction"] <= 1.0 + 1e-9


def test_aggregate_over_tuple_valued_axis():
    # Tuple-typed axes are described as JSON lists in cell params; grouping
    # by one must key on the canonical encoding, not crash as unhashable.
    grid = SweepGrid(
        {
            "scheduler": ["credit"],
            "v20_active": [[20.0, 180.0], [30.0, 170.0]],
        },
        base=FAST,
    )
    results = run_sweep(grid)
    groups = results.aggregate("energy_joules", by="v20_active")
    assert set(groups) == {"[20.0,180.0]", "[30.0,170.0]"}
    assert all(summary["count"] == 1 for summary in groups.values())


def test_replicate_aggregate_carries_confidence_intervals():
    # Poisson arrivals + replicates: the CI columns quantify the spread.
    grid = SweepGrid(
        {"scheduler": ["credit", "pas"]},
        base=FAST.with_changes(poisson=True, duration=100.0, v20_active=(10.0, 90.0), v70_active=(30.0, 70.0)),
        replicates=3,
    )
    results = run_sweep(grid, workers=2)
    assert len(results) == 6
    groups = results.aggregate("energy_joules", by="scheduler")
    for summary in groups.values():
        assert summary["count"] == 3
        assert summary["std"] >= 0.0
        assert summary["ci95"] == pytest.approx(1.96 * summary["std"] / 3**0.5)
        assert summary["min"] <= summary["mean"] <= summary["max"]
    by_rep = results.aggregate("energy_joules", by="rep")
    assert set(by_rep) == {0, 1, 2}


def test_single_member_groups_have_zero_ci(serial):
    groups = serial.filter(v20_load="exact").aggregate("energy_joules", by="scheduler")
    for summary in groups.values():
        assert summary["count"] == 1
        assert summary["std"] == 0.0
        assert summary["ci95"] == 0.0


def test_invalid_workers_rejected(small_grid):
    with pytest.raises(ConfigurationError, match="workers"):
        run_sweep(small_grid, workers=0)


def test_unknown_metric_rejected(small_grid):
    with pytest.raises(ConfigurationError, match="unknown metric"):
        run_sweep(
            SweepGrid.from_variants({"one": small_grid.cells[0].config}),
            metrics=("nope",),
        )
