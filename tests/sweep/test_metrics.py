"""Metric reducers over a single finished scenario."""

import pytest

from repro.experiments import run_scenario, ScenarioConfig
from repro.sweep.metrics import (
    energy_metrics,
    frequency_metrics,
    load_metrics,
    qos_metrics,
    reaction_metrics,
    reduce_outcome,
)

FAST = dict(duration=200.0, v20_active=(20.0, 180.0), v70_active=(60.0, 140.0))


@pytest.fixture(scope="module")
def pas_result():
    return run_scenario(
        ScenarioConfig(scheduler="pas", v20_load="thrashing", **FAST)
    )


def test_load_metrics_phases(pas_result):
    out = load_metrics(pas_result)
    assert out["v20_absolute_solo_early"] == pytest.approx(20.0, abs=1.5)
    assert out["v70_global_both"] == pytest.approx(70.0, abs=2.5)
    assert set(out) == {
        f"{d}_{k}_{p}"
        for d in ("v20", "v70")
        for k in ("global", "absolute")
        for p in ("solo_early", "both", "solo_late")
    }


def test_frequency_metrics(pas_result):
    out = frequency_metrics(pas_result)
    assert out["freq_mhz_solo_early"] == 1600.0
    assert out["freq_mhz_both"] == 2667.0
    assert out["freq_mhz_min"] == 1600.0
    assert out["freq_mhz_max"] == 2667.0
    assert out["dvfs_transitions"] == pas_result.frequency_transitions
    assert out["preemptions"] == pas_result.host.preemptions


def test_energy_metrics_attribution_sums(pas_result):
    out = energy_metrics(pas_result)
    parts = (
        out["energy_dom0_joules"]
        + out["energy_v20_joules"]
        + out["energy_v70_joules"]
        + out["energy_idle_joules"]
    )
    assert parts == pytest.approx(out["energy_joules"], rel=1e-9)


def test_qos_metrics_cover_latency_tracked_guests(pas_result):
    out = qos_metrics(pas_result)
    assert out["v20_completed_requests"] > 0
    assert out["v20_latency_p50_s"] <= out["v20_latency_p99_s"]
    assert 0.0 <= out["v20_drop_percent"] <= 100.0


def test_reaction_metric(pas_result):
    out = reaction_metrics(pas_result)
    activation = pas_result.config.v70_active[0]
    assert out["freq_reaction_s"] is not None
    assert 0.0 <= out["freq_reaction_s"] < 30.0
    # Sanity: the frequency really is below max right before activation.
    freq = pas_result.series("host.freq_mhz", smooth=False)
    before = [v for t, v in freq if t < activation]
    assert before[-1] < pas_result.host.processor.max_frequency_mhz


def test_empty_phase_windows_reduce_to_none():
    # duration stops before V70 ever activates: both/late windows are empty.
    result = run_scenario(
        ScenarioConfig(
            duration=50.0, v20_active=(5.0, 300.0), v70_active=(100.0, 200.0)
        )
    )
    out = load_metrics(result)
    assert out["v20_global_solo_early"] is not None
    assert out["v20_global_both"] is None
    assert out["v20_global_solo_late"] is None


def test_reduce_outcome_merges_and_accepts_callables(pas_result):
    merged = reduce_outcome(pas_result, ("energy", frequency_metrics))
    assert "energy_joules" in merged
    assert "dvfs_transitions" in merged


def test_guest_load_metrics_use_per_guest_windows(pas_result):
    from repro.sweep.metrics import guest_load_metrics

    out = guest_load_metrics(pas_result)
    assert set(out) == {
        f"{d}_{k}_mean" for d in ("v20", "v70") for k in ("global", "absolute")
    }
    assert out["v70_absolute_mean"] == pytest.approx(70.0, abs=2.5)


def test_batch_metrics_report_pi_execution_times():
    from repro.experiments import GuestSpec, ScenarioConfig, WorkloadSpec
    from repro.sweep.metrics import batch_metrics

    config = ScenarioConfig(
        duration=400.0,
        governor="performance",
        stop_when_batch_done=True,
        guests=(
            GuestSpec(
                name="B50",
                credit=50.0,
                workloads=(WorkloadSpec(kind="pi", work=10.0),),
            ),
        ),
    )
    result = run_scenario(config)
    out = batch_metrics(result)
    assert out["b50_batch_time_s"] == pytest.approx(10.0 / 0.5, rel=0.2)


def test_load_metrics_cover_arbitrary_fleets():
    from repro.experiments import GuestSpec, ScenarioConfig, WorkloadSpec

    config = ScenarioConfig(
        duration=60.0,
        guests=(
            GuestSpec(
                name="A",
                credit=30.0,
                workloads=(WorkloadSpec(kind="web", active=((5.0, 55.0),)),),
            ),
            GuestSpec(
                name="B",
                credit=40.0,
                workloads=(WorkloadSpec(kind="web", active=((20.0, 40.0),)),),
            ),
        ),
    )
    out = load_metrics(run_scenario(config))
    assert "a_global_both" in out and "b_absolute_solo_early" in out
