"""Replicate-aware aggregated export: one row per logical cell."""

import json

import pytest

from repro.experiments import ScenarioConfig
from repro.sweep import run_sweep, SweepGrid

FAST = ScenarioConfig(
    duration=100.0,
    v20_active=(10.0, 90.0),
    v70_active=(30.0, 70.0),
    poisson=True,
)


@pytest.fixture(scope="module")
def replicated():
    grid = SweepGrid({"scheduler": ["credit", "pas"]}, base=FAST, replicates=3)
    return run_sweep(grid, workers=2)


def test_one_row_per_logical_cell(replicated):
    records = replicated.aggregated_records()
    assert len(replicated) == 6  # 2 schedulers x 3 replicates
    assert len(records) == 2
    assert [r["label"] for r in records] == ["scheduler=credit", "scheduler=pas"]
    for record in records:
        assert record["replicates"] == 3
        assert "rep" not in record


def test_mean_std_ci_columns_match_aggregate(replicated):
    records = {r["label"]: r for r in replicated.aggregated_records()}
    groups = replicated.aggregate("energy_joules", by="scheduler")
    for scheduler in ("credit", "pas"):
        row = records[f"scheduler={scheduler}"]
        summary = groups[scheduler]
        assert row["energy_joules_mean"] == pytest.approx(summary["mean"])
        assert row["energy_joules_std"] == pytest.approx(summary["std"])
        assert row["energy_joules_ci95"] == pytest.approx(summary["ci95"])
        # Poisson arrivals + distinct replicate seeds: real spread.
        assert row["energy_joules_std"] > 0.0


def test_unreplicated_sweep_degrades_to_zero_spread():
    grid = SweepGrid({"scheduler": ["credit", "pas"]}, base=FAST)
    results = run_sweep(grid)
    records = results.aggregated_records()
    assert len(records) == 2
    for record in records:
        assert record["replicates"] == 1
        assert record["energy_joules_std"] == 0.0
        assert record["energy_joules_ci95"] == 0.0


def test_none_metrics_are_skipped_not_fatal(replicated):
    # Compressed timelines can leave a phase empty (metric None); the
    # aggregate must average over the replicates that do have values.
    records = replicated.aggregated_records()
    for record in records:
        for name, value in record.items():
            if name.endswith("_mean") and value is not None:
                assert isinstance(value, float)


def test_csv_and_json_exports(replicated, tmp_path):
    csv_path = replicated.export_aggregated(tmp_path / "agg.csv")
    lines = csv_path.read_text().splitlines()
    assert len(lines) == 1 + 2
    header = lines[0].split(",")
    assert header[0] == "label"
    assert "replicates" in header
    assert "energy_joules_mean" in header
    assert "energy_joules_ci95" in header
    json_path = replicated.export_aggregated(tmp_path / "agg.json")
    payload = json.loads(json_path.read_text())
    assert payload["meta"]["aggregated"] is True
    assert len(payload["rows"]) == 2


def test_aggregated_export_is_deterministic(replicated):
    again_grid = SweepGrid({"scheduler": ["credit", "pas"]}, base=FAST, replicates=3)
    again = run_sweep(again_grid, workers=3)
    assert again.to_aggregated_json() == replicated.to_aggregated_json()
    assert again.to_aggregated_csv() == replicated.to_aggregated_csv()
