"""Grid expansion, labelling, seed derivation and validation."""

import pytest

from repro.cluster import ClusterScenarioConfig
from repro.errors import ConfigurationError
from repro.experiments import ScenarioConfig
from repro.sweep import derive_cell_seed, SweepGrid


def test_product_expansion_order_and_size():
    grid = SweepGrid(
        {"scheduler": ["credit", "pas"], "governor": ["performance", "stable"]}
    )
    assert len(grid) == 4
    labels = [cell.label for cell in grid]
    # Last axis varies fastest, like nested loops.
    assert labels == [
        "scheduler=credit,governor=performance",
        "scheduler=credit,governor=stable",
        "scheduler=pas,governor=performance",
        "scheduler=pas,governor=stable",
    ]
    assert [cell.index for cell in grid] == [0, 1, 2, 3]


def test_cells_carry_replaced_configs():
    base = ScenarioConfig(duration=123.0)
    grid = SweepGrid({"scheduler": ["sedf"], "v20_load": ["thrashing"]}, base=base)
    (cell,) = grid.cells
    assert cell.config.scheduler == "sedf"
    assert cell.config.v20_load == "thrashing"
    assert cell.config.duration == 123.0  # base fields preserved


def test_unknown_axis_rejected():
    with pytest.raises(ConfigurationError, match="unknown sweep axis"):
        SweepGrid({"flux_capacitor": [1, 2]})


def test_empty_axis_rejected():
    with pytest.raises(ConfigurationError, match="no values"):
        SweepGrid({"scheduler": []})


def test_no_axes_rejected():
    with pytest.raises(ConfigurationError, match="at least one axis"):
        SweepGrid({})


def test_list_values_coerced_for_tuple_fields():
    # JSON grids deliver lists; tuple-typed config fields must accept them.
    grid = SweepGrid({"v20_active": [[20.0, 180.0]]})
    (cell,) = grid.cells
    assert cell.config.v20_active == (20.0, 180.0)


def test_derived_seeds_deterministic_and_distinct():
    axes = {"scheduler": ["credit", "pas"], "governor": ["performance", "stable"]}
    first = SweepGrid(axes, base=ScenarioConfig(seed=1), vary_seed=True)
    second = SweepGrid(axes, base=ScenarioConfig(seed=1), vary_seed=True)
    seeds = [cell.seed for cell in first]
    assert seeds == [cell.seed for cell in second]  # expansion is reproducible
    assert len(set(seeds)) == len(seeds)  # every cell gets its own stream
    for cell in first:
        assert cell.config.seed == cell.seed == derive_cell_seed(1, cell.label)


def test_root_seed_changes_derived_seeds():
    axes = {"scheduler": ["credit", "pas"]}
    one = SweepGrid(axes, base=ScenarioConfig(seed=1), vary_seed=True)
    two = SweepGrid(axes, base=ScenarioConfig(seed=2), vary_seed=True)
    assert [c.seed for c in one] != [c.seed for c in two]


def test_vary_seed_off_keeps_base_seed():
    grid = SweepGrid({"scheduler": ["credit", "pas"]}, base=ScenarioConfig(seed=5))
    assert all(cell.config.seed == 5 for cell in grid)


def test_explicit_seed_axis_wins_over_derivation():
    grid = SweepGrid({"seed": [3, 4]}, vary_seed=True)
    assert [cell.config.seed for cell in grid] == [3, 4]


def test_from_variants_preserves_labels_and_configs():
    variants = {
        "paper": ScenarioConfig(scheduler="pas", seed=9),
        "baseline": ScenarioConfig(scheduler="credit", seed=9),
    }
    grid = SweepGrid.from_variants(variants)
    assert [cell.label for cell in grid] == ["paper", "baseline"]
    assert grid.cells[0].config is variants["paper"]
    assert grid.cells[0].seed == 9


def test_cluster_config_grid():
    grid = SweepGrid(
        {"policy": ["spread", "consolidate"], "dvfs": [False, True]},
        base=ClusterScenarioConfig(n_machines=2, n_vms=3, duration=50.0),
    )
    assert len(grid) == 4
    assert grid.cells[-1].config.policy == "consolidate"
    assert grid.cells[-1].config.dvfs is True


def test_spec_is_json_friendly():
    import json

    grid = SweepGrid({"scheduler": ["credit"], "v20_active": [[20.0, 180.0]]})
    spec = grid.spec()
    assert spec["cells"] == 1
    assert json.loads(json.dumps(spec)) == spec


# ----------------------------------------------------------------- replicates


def test_replicates_expand_each_cell_with_derived_seeds():
    grid = SweepGrid(
        {"scheduler": ["credit", "pas"]}, base=ScenarioConfig(seed=1), replicates=3
    )
    assert len(grid) == 6
    assert [cell.params["rep"] for cell in grid] == [0, 1, 2, 0, 1, 2]
    assert grid.cells[0].label == "scheduler=credit,rep=0"
    seeds = [cell.seed for cell in grid]
    assert len(set(seeds)) == len(seeds)  # every replicate its own stream
    assert all(cell.config.seed == cell.seed for cell in grid)
    assert [cell.seed for cell in grid] == [
        derive_cell_seed(1, cell.label) for cell in grid
    ]


def test_replicates_one_is_the_identity():
    axes = {"scheduler": ["credit", "pas"]}
    plain = SweepGrid(axes)
    explicit = SweepGrid(axes, replicates=1)
    assert [c.label for c in plain] == [c.label for c in explicit]
    assert "rep" not in plain.cells[0].params


def test_replicates_on_variants():
    grid = SweepGrid.from_variants(
        {"a": ScenarioConfig(seed=1), "b": ScenarioConfig(seed=1)}, replicates=2
    )
    assert [cell.label for cell in grid] == ["a,rep=0", "a,rep=1", "b,rep=0", "b,rep=1"]
    assert len({cell.seed for cell in grid}) == 4


def test_invalid_replicates_rejected():
    with pytest.raises(ConfigurationError, match="replicates"):
        SweepGrid({"scheduler": ["credit"]}, replicates=0)


def test_explicit_seed_axis_conflicts_with_replicates():
    # Replicates derive their own seeds; a seed axis would be silently
    # overridden and the exported params would lie about what ran.
    with pytest.raises(ConfigurationError, match="seed.*replicates"):
        SweepGrid({"seed": [1, 2]}, replicates=2)


def test_replicated_spec_notes_the_replicates():
    grid = SweepGrid({"scheduler": ["credit"]}, replicates=2)
    assert grid.spec()["replicates"] == 2
    assert "replicates" not in SweepGrid({"scheduler": ["credit"]}).spec()


# ------------------------------------------------------------- nested specs


def test_guest_spec_axis_values_get_compact_labels():
    from repro.experiments import GuestSpec, WorkloadSpec
    from repro.sweep.grid import describe_value

    fleet = (
        GuestSpec(
            name="A",
            credit=20.0,
            workloads=(WorkloadSpec(kind="web", load="exact"),),
        ),
        GuestSpec(name="B", credit=30.0, workloads=(WorkloadSpec(kind="pi", work=5.0),)),
    )
    described = describe_value(fleet)
    assert described == ["A(20%:web:exact)", "B(30%:pi:5s)"]
    grid = SweepGrid({"guests": [fleet]})
    (cell,) = grid.cells
    assert cell.label == "guests=A(20%:web:exact)+B(30%:pi:5s)"
    assert "object at 0x" not in cell.label


def test_guests_axis_accepts_json_dicts():
    grid = SweepGrid(
        {
            "guests": [
                [{"name": "A", "credit": 20, "workloads": [{"kind": "web"}]}],
                [{"name": "A", "credit": 40, "workloads": [{"kind": "web"}]}],
            ]
        }
    )
    from repro.experiments import GuestSpec

    assert len(grid) == 2
    assert all(isinstance(cell.config.guests[0], GuestSpec) for cell in grid)
    assert grid.cells[1].config.guests[0].credit == 40
