"""Unit tests for the cpufreq subsystem."""

import pytest

from repro import CpuFreq, PerformanceGovernor, Processor, PowersaveGovernor
from repro.errors import ConfigurationError, FrequencyError
from repro.sim import Engine


@pytest.fixture
def cpufreq(two_state_spec):
    engine = Engine()
    processor = Processor(two_state_spec)
    return engine, processor, CpuFreq(engine, processor)


def test_set_speed_changes_pstate(cpufreq):
    _, processor, subsystem = cpufreq
    assert subsystem.set_speed(1000) is True
    assert processor.frequency_mhz == 1000


def test_set_speed_noop_returns_false(cpufreq):
    _, _, subsystem = cpufreq
    assert subsystem.set_speed(2000) is False


def test_set_speed_unknown_freq_raises(cpufreq):
    _, _, subsystem = cpufreq
    with pytest.raises(FrequencyError):
        subsystem.set_speed(1234)


def test_requests_counted_including_noops(cpufreq):
    _, _, subsystem = cpufreq
    subsystem.set_speed(1000)
    subsystem.set_speed(1000)
    assert subsystem.requests == 2


def test_observer_fires_on_change_only(cpufreq):
    _, _, subsystem = cpufreq
    seen = []
    subsystem.add_observer(seen.append)
    subsystem.set_speed(1000)
    subsystem.set_speed(1000)
    subsystem.set_speed(2000)
    assert seen == [1000, 2000]


def test_performance_governor_applies_max_on_install(cpufreq):
    _, processor, subsystem = cpufreq
    processor.set_frequency(1000)
    subsystem.set_governor(PerformanceGovernor())
    assert processor.frequency_mhz == 2000


def test_powersave_governor_applies_min_on_install(cpufreq):
    _, processor, subsystem = cpufreq
    subsystem.set_governor(PowersaveGovernor())
    assert processor.frequency_mhz == 1000


def test_replacing_governor_stops_previous_timer(cpufreq):
    engine, _, subsystem = cpufreq
    from repro import OndemandGovernor

    subsystem.set_governor(OndemandGovernor())
    pending_before = engine.pending_count
    subsystem.set_governor(PerformanceGovernor())
    # The ondemand sampling timer must be cancelled; only static policy left.
    assert engine.pending_count < pending_before + 1


def test_measure_load_percent_uses_busy_delta(cpufreq):
    engine, processor, subsystem = cpufreq
    engine.run_until(1.0)
    processor.account(0.6, 1.0)
    processor.account(0.4, 0.0)
    load = subsystem.measure_load_percent()
    assert load == pytest.approx(60.0)


def test_measure_load_zero_window_returns_last(cpufreq):
    engine, processor, subsystem = cpufreq
    engine.run_until(1.0)
    processor.account(1.0, 1.0)
    first = subsystem.measure_load_percent()
    second = subsystem.measure_load_percent()  # zero-width window
    assert second == first


def test_policy_limits_clamp_requests(cpufreq):
    _, processor, subsystem = cpufreq
    subsystem.set_policy_limits(min_mhz=2000)
    subsystem.set_speed(1000)
    assert processor.frequency_mhz == 2000


def test_policy_max_limit(cpufreq):
    _, processor, subsystem = cpufreq
    subsystem.set_policy_limits(max_mhz=1000)
    subsystem.set_speed(2000)
    assert processor.frequency_mhz == 1000


def test_policy_limits_snap_to_table(cpufreq):
    _, _, subsystem = cpufreq
    subsystem.set_policy_limits(min_mhz=1500)  # snaps up to 2000
    assert subsystem.policy_limits[0] == 2000


def test_inverted_policy_limits_rejected(cpufreq):
    _, _, subsystem = cpufreq
    with pytest.raises(ConfigurationError):
        subsystem.set_policy_limits(min_mhz=2000, max_mhz=1000)
