"""Unit tests for P-states."""

import pytest

from repro import PState
from dataclasses import FrozenInstanceError

from repro.errors import ConfigurationError


def test_basic_construction():
    state = PState(freq_mhz=1600, voltage=0.9, cf=0.95)
    assert state.freq_mhz == 1600
    assert state.voltage == 0.9
    assert state.cf == 0.95


def test_defaults():
    state = PState(freq_mhz=2000)
    assert state.voltage == 1.0
    assert state.cf == 1.0


def test_ratio_to():
    assert PState(1600).ratio_to(3200) == 0.5


def test_capacity_fraction_combines_ratio_and_cf():
    state = PState(1600, cf=0.8)
    assert state.capacity_fraction(3200) == pytest.approx(0.4)


def test_capacity_fraction_at_max_is_cf():
    state = PState(2667, cf=0.9)
    assert state.capacity_fraction(2667) == pytest.approx(0.9)


def test_non_integer_frequency_rejected():
    with pytest.raises(ConfigurationError):
        PState(freq_mhz=1600.5)


def test_non_positive_frequency_rejected():
    with pytest.raises(ConfigurationError):
        PState(freq_mhz=0)


def test_bad_cf_rejected():
    with pytest.raises(ConfigurationError):
        PState(1600, cf=0.0)
    with pytest.raises(ConfigurationError):
        PState(1600, cf=2.0)


def test_bad_voltage_rejected():
    with pytest.raises(ConfigurationError):
        PState(1600, voltage=0.0)


def test_frozen():
    state = PState(1600)
    with pytest.raises(FrozenInstanceError):
        state.freq_mhz = 2000


def test_str_shows_freq_and_cf():
    text = str(PState(1600, cf=0.95))
    assert "1600" in text and "0.95" in text


def test_equality_by_value():
    assert PState(1600, cf=0.9) == PState(1600, cf=0.9)
    assert PState(1600) != PState(1867)
