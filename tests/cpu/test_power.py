"""Unit tests for the power model."""

import pytest

from repro.errors import ConfigurationError
from repro import FrequencyTable, PowerModel, PState


@pytest.fixture
def table() -> FrequencyTable:
    return FrequencyTable([PState(1000, voltage=0.9), PState(2000, voltage=1.2)])


@pytest.fixture
def model() -> PowerModel:
    return PowerModel(idle_watts=40.0, busy_watts=90.0)


def test_idle_power_at_max_state(model, table):
    assert model.power(table.max_state, table, 0.0) == pytest.approx(40.0)


def test_busy_power_at_max_state(model, table):
    assert model.power(table.max_state, table, 1.0) == pytest.approx(90.0)


def test_power_monotone_in_utilization(model, table):
    powers = [model.power(table.max_state, table, u) for u in (0.0, 0.25, 0.5, 1.0)]
    assert powers == sorted(powers)


def test_lower_state_uses_less_power(model, table):
    high = model.power(table.max_state, table, 1.0)
    low = model.power(table.min_state, table, 1.0)
    assert low < high


def test_voltage_squared_scales_idle(model, table):
    low = model.power(table.min_state, table, 0.0)
    expected = 40.0 * (0.9 / 1.2) ** 2
    assert low == pytest.approx(expected)


def test_energy_is_power_times_time(model, table):
    power = model.power(table.max_state, table, 0.5)
    assert model.energy(table.max_state, table, 0.5, 4.0) == pytest.approx(power * 4.0)


def test_invalid_utilization_rejected(model, table):
    with pytest.raises(ConfigurationError):
        model.power(table.max_state, table, 1.5)
    with pytest.raises(ConfigurationError):
        model.power(table.max_state, table, -0.1)


def test_busy_below_idle_rejected():
    with pytest.raises(ConfigurationError):
        PowerModel(idle_watts=50.0, busy_watts=40.0)


def test_nonpositive_watts_rejected():
    with pytest.raises(ConfigurationError):
        PowerModel(idle_watts=0.0, busy_watts=10.0)


def test_default_model_sane():
    model = PowerModel()
    assert model.busy_watts > model.idle_watts > 0
