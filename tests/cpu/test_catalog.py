"""Unit tests for the processor catalog."""

import pytest

from repro import catalog


def test_optiplex_frequencies_match_figures():
    # The five ticks on the right-hand axes of Figs. 2-10.
    assert catalog.OPTIPLEX_755.table().frequencies == (1600, 1867, 2133, 2400, 2667)


def test_optiplex_cf_is_one_everywhere():
    assert all(s.cf == 1.0 for s in catalog.OPTIPLEX_755.states)


@pytest.mark.parametrize(
    "name, cf_min",
    [
        ("Intel Xeon X3440", 0.94867),
        ("Intel Xeon L5420", 0.99903),
        ("Intel Xeon E5-2620", 0.80338),
        ("AMD Opteron 6164 HE", 0.99508),
        ("Intel Core i7-3770", 0.86206),
    ],
)
def test_table1_cf_min_values(name, cf_min):
    spec = catalog.TABLE1_PROCESSORS[name]
    assert spec.table().min_state.cf == pytest.approx(cf_min)


def test_cf_ramps_to_one_at_max():
    for spec in catalog.TABLE1_PROCESSORS.values():
        assert spec.table().max_state.cf == pytest.approx(1.0)


def test_cf_monotone_in_frequency():
    for spec in catalog.TABLE1_PROCESSORS.values():
        cfs = [s.cf for s in spec.table()]
        assert cfs == sorted(cfs)


def test_two_frequency_machines():
    # The paper: "many processors only have 2 available frequencies".
    assert len(catalog.XEON_L5420.states) == 2
    assert len(catalog.OPTERON_6164_HE.states) == 2


def test_i7_spans_1600_to_3400():
    table = catalog.CORE_I7_3770.table()
    assert table.min_state.freq_mhz == 1600
    assert table.max_state.freq_mhz == 3400


def test_all_processors_registry():
    assert catalog.OPTIPLEX_755.name in catalog.ALL_PROCESSORS
    assert catalog.BIG_LITTLE_44.name in catalog.ALL_PROCESSORS
    assert len(catalog.ALL_PROCESSORS) == 7


def test_spec_with_cf_min_interpolates():
    spec = catalog.spec_with_cf_min("custom", [1000, 1500, 2000], 0.8)
    cfs = [s.cf for s in spec.table()]
    assert cfs[0] == pytest.approx(0.8)
    assert cfs[1] == pytest.approx(0.9)
    assert cfs[2] == pytest.approx(1.0)
