"""Unit tests for the frequency table."""

import pytest

from repro import FrequencyTable, PState
from repro.errors import ConfigurationError, FrequencyError


@pytest.fixture
def table() -> FrequencyTable:
    return FrequencyTable([PState(f) for f in (2667, 1600, 2133, 1867, 2400)])


def test_states_sorted_ascending(table):
    assert table.frequencies == (1600, 1867, 2133, 2400, 2667)


def test_min_max(table):
    assert table.min_state.freq_mhz == 1600
    assert table.max_state.freq_mhz == 2667


def test_len_and_iter(table):
    assert len(table) == 5
    assert [s.freq_mhz for s in table] == [1600, 1867, 2133, 2400, 2667]


def test_contains(table):
    assert 1867 in table
    assert 1700 not in table


def test_state_for_exact(table):
    assert table.state_for(2133).freq_mhz == 2133


def test_state_for_unknown_raises(table):
    with pytest.raises(FrequencyError):
        table.state_for(9999)


def test_index_of(table):
    assert table.index_of(1600) == 0
    assert table.index_of(2667) == 4


def test_empty_table_rejected():
    with pytest.raises(ConfigurationError):
        FrequencyTable([])


def test_duplicate_frequencies_rejected():
    with pytest.raises(ConfigurationError):
        FrequencyTable([PState(1600), PState(1600)])


def test_clamp_rounds_up(table):
    assert table.clamp(1700).freq_mhz == 1867
    assert table.clamp(1600).freq_mhz == 1600


def test_clamp_above_max_saturates(table):
    assert table.clamp(9000).freq_mhz == 2667


def test_clamp_down_rounds_down(table):
    assert table.clamp_down(2300).freq_mhz == 2133
    assert table.clamp_down(2400).freq_mhz == 2400


def test_clamp_down_below_min_saturates(table):
    assert table.clamp_down(100).freq_mhz == 1600


def test_step_up_and_saturation(table):
    assert table.step_up(1600).freq_mhz == 1867
    assert table.step_up(2667).freq_mhz == 2667


def test_step_down_and_saturation(table):
    assert table.step_down(2667).freq_mhz == 2400
    assert table.step_down(1600).freq_mhz == 1600


def test_capacity_fraction(table):
    assert table.capacity_fraction(1600) == pytest.approx(1600 / 2667)
    assert table.capacity_fraction(2667) == pytest.approx(1.0)


def test_lowest_absorbing_picks_first_sufficient(table):
    # Listing 1.1: capacity must STRICTLY exceed the load.
    state = table.lowest_absorbing(50.0)
    assert state.freq_mhz == 1600  # 1600/2667 = 60% > 50%


def test_lowest_absorbing_strict_inequality(table):
    capacity_1600 = 1600 / 2667 * 100
    state = table.lowest_absorbing(capacity_1600)
    assert state.freq_mhz == 1867


def test_lowest_absorbing_with_margin(table):
    # 58% + 5 margin = 63% > 60% capacity of 1600 -> next state.
    assert table.lowest_absorbing(58.0, margin_percent=5.0).freq_mhz == 1867
    assert table.lowest_absorbing(58.0).freq_mhz == 1600


def test_lowest_absorbing_saturates_at_max(table):
    assert table.lowest_absorbing(99.9).freq_mhz == 2667
    assert table.lowest_absorbing(150.0).freq_mhz == 2667


def test_lowest_absorbing_respects_cf():
    table = FrequencyTable([PState(1000, cf=0.5), PState(2000)])
    # capacity of 1000 = 0.5 * 0.5 = 25%.
    assert table.lowest_absorbing(20.0).freq_mhz == 1000
    assert table.lowest_absorbing(30.0).freq_mhz == 2000
