"""Unit tests for frequency domains (clusters sharing one P-state)."""

import pytest

from repro.cpu import DomainSpec, FrequencyDomain, make_cstates
from repro.cpu.domains import IDLE_GAP_QUANTUM_S
from repro.cpu.power import PowerModel
from repro.cpu.processor import make_states
from repro.errors import ConfigurationError


STATES = make_states([600, 1000, 1400], cf=1.0)
CSTATES = make_cstates([("C1", 1.0, 0.0005), ("C2", 0.4, 0.002), ("C3", 0.1, 0.05)])


def little(**changes):
    base = dict(
        name="little",
        cores=4,
        states=STATES,
        power=PowerModel(2.5, 9.0),
        cstates=CSTATES,
        capacity_scale=0.30,
    )
    base.update(changes)
    return DomainSpec(**base)


# ----------------------------------------------------------------- DomainSpec


def test_spec_requires_a_name_and_a_core():
    with pytest.raises(ConfigurationError):
        little(name="")
    with pytest.raises(ConfigurationError):
        little(cores=0)


def test_spec_rejects_non_positive_capacity_scale():
    with pytest.raises(ConfigurationError):
        little(capacity_scale=0.0)


def test_spec_rejects_unordered_cstate_ladder():
    unordered = (CSTATES[1], CSTATES[0], CSTATES[2])
    with pytest.raises(ConfigurationError, match="ascend"):
        little(cstates=unordered)


def test_spec_rejects_duplicate_cstate_names():
    duped = make_cstates([("C1", 1.0, 0.0005), ("C1", 0.4, 0.002)])
    with pytest.raises(ConfigurationError, match="duplicate"):
        little(cstates=duped)


# ----------------------------------------------------------- frequency coupling


def test_domain_starts_at_its_top_pstate():
    domain = FrequencyDomain(little())
    assert domain.freq_mhz == 1400
    assert domain.capacity_percent == pytest.approx(30.0)


def test_set_frequency_moves_every_core_together():
    domain = FrequencyDomain(little())
    assert domain.set_frequency(1000) is True
    assert domain.set_frequency(1000) is False
    fractions = {domain.core_capacity_fraction(core) for core in range(4)}
    assert fractions == {domain.state.capacity_fraction(1400)}
    assert domain.capacity_percent == pytest.approx(30.0 * 1000 / 1400)


def test_set_frequency_requires_a_table_entry():
    domain = FrequencyDomain(little())
    with pytest.raises(ConfigurationError):
        domain.set_frequency(1234)


def test_core_index_is_bounds_checked():
    domain = FrequencyDomain(little())
    with pytest.raises(ConfigurationError):
        domain.core_capacity_fraction(4)
    with pytest.raises(ConfigurationError):
        domain.core_capacity_fraction(-1)


# -------------------------------------------------------------- accounting


def test_residency_plus_busy_time_sums_to_elapsed():
    domain = FrequencyDomain(little())
    for dt, util in ((1.0, 0.0), (2.0, 0.5), (3.0, 1.0), (0.5, 0.25)):
        domain.account_epoch(dt, util)
    total = domain.busy_seconds + sum(domain.residency_s.values())
    assert total == pytest.approx(domain.elapsed_seconds)
    assert domain.elapsed_seconds == pytest.approx(6.5)


def test_fully_idle_epoch_reaches_the_deepest_state():
    domain = FrequencyDomain(little())
    domain.account_epoch(10.0, 0.0)
    assert domain.last_cstate == "C3"
    assert domain.residency_s["C3"] > 0.0
    assert domain.busy_seconds == 0.0


def test_partial_utilisation_fragments_idle_into_shallow_gaps():
    # util 0.9 → gaps of 0.001 s: only C1 (residency 0.0005 s) qualifies.
    domain = FrequencyDomain(little())
    domain.account_epoch(10.0, 0.9)
    assert domain.last_cstate == "C1"
    gap = (1.0 - 0.9) * IDLE_GAP_QUANTUM_S
    assert gap == pytest.approx(0.001)
    assert domain.residency_s["C2"] == 0.0
    assert domain.residency_s["C3"] == 0.0


def test_transition_time_is_billed_as_shallow_c0():
    domain = FrequencyDomain(little())
    domain.account_epoch(10.0, 0.0)
    # One 10 s gap in C3: transition share = 0.01/10 of the idle time.
    c3 = CSTATES[2]
    shallow = 10.0 * (c3.transition_s / 10.0)
    assert domain.residency_s["C0"] == pytest.approx(shallow)
    assert domain.residency_s["C3"] == pytest.approx(10.0 - shallow)


def test_deep_idle_beats_shallow_idle_on_energy():
    deep = FrequencyDomain(little())
    shallow = FrequencyDomain(little(cstates=()))
    deep.account_epoch(10.0, 0.0)
    shallow.account_epoch(10.0, 0.0)
    assert deep.energy_joules < shallow.energy_joules


def test_zero_dt_is_a_no_op():
    domain = FrequencyDomain(little())
    assert domain.account_epoch(0.0, 0.5) == 0.0
    assert domain.elapsed_seconds == 0.0
    assert domain.energy_joules == 0.0


def test_busy_time_is_billed_at_full_load_power():
    domain = FrequencyDomain(little(cstates=()))
    joules = domain.account_epoch(2.0, 1.0)
    expected = 2.0 * domain.spec.power.power(domain.state, domain.table, 1.0)
    assert joules == pytest.approx(expected)
    assert domain.last_power_w == pytest.approx(expected / 2.0)
