"""Unit tests for the C-state idle model."""

import pytest

from repro.cpu import CState, deepest_cstate, make_cstates
from repro.errors import ConfigurationError


LADDER = make_cstates([("C1", 4.0, 0.0005), ("C2", 1.5, 0.002), ("C3", 0.4, 0.05)])


def test_cstate_needs_a_name():
    with pytest.raises(ConfigurationError):
        CState(name="", power_w=1.0, target_residency_s=0.001)


def test_cstate_rejects_negative_figures():
    with pytest.raises(ConfigurationError):
        CState(name="C1", power_w=-1.0, target_residency_s=0.001)
    with pytest.raises(ConfigurationError):
        CState(name="C1", power_w=1.0, target_residency_s=-0.001)
    with pytest.raises(ConfigurationError):
        CState(name="C1", power_w=1.0, target_residency_s=0.001, entry_latency_s=-1.0)


def test_transition_is_entry_plus_exit():
    state = CState(
        name="C2",
        power_w=1.0,
        target_residency_s=0.01,
        entry_latency_s=0.001,
        exit_latency_s=0.002,
    )
    assert state.transition_s == pytest.approx(0.003)


def test_make_cstates_defaults_latencies_to_tenth_of_residency():
    (c1,) = make_cstates([("C1", 2.0, 0.01)])
    assert c1.entry_latency_s == pytest.approx(0.001)
    assert c1.exit_latency_s == pytest.approx(0.001)
    assert c1.transition_s == pytest.approx(0.002)


def test_selection_prefers_the_deepest_qualifying_state():
    assert deepest_cstate(LADDER, 10.0).name == "C3"
    assert deepest_cstate(LADDER, 0.01).name == "C2"
    assert deepest_cstate(LADDER, 0.001).name == "C1"


def test_short_gaps_stay_shallow():
    # Below every target residency: no state qualifies, the core stays C0.
    assert deepest_cstate(LADDER, 0.0001) is None


def test_selection_rejects_non_positive_gaps():
    with pytest.raises(ConfigurationError):
        deepest_cstate(LADDER, 0.0)


def test_boundary_gap_exactly_at_target_residency_enters():
    assert deepest_cstate(LADDER, 0.05).name == "C3"
