"""Unit tests for the runtime processor model."""

import pytest

from repro import Processor
from repro.cpu.processor import make_states, ProcessorSpec
from repro.errors import ConfigurationError, FrequencyError


@pytest.fixture
def processor(two_state_spec) -> Processor:
    return Processor(two_state_spec)


def test_starts_at_max_frequency(processor):
    assert processor.frequency_mhz == 2000


def test_capacity_at_max_is_one(processor):
    assert processor.capacity_fraction == pytest.approx(1.0)


def test_capacity_halves_at_half_frequency(processor):
    processor.set_frequency(1000)
    assert processor.capacity_fraction == pytest.approx(0.5)


def test_capacity_includes_cf():
    spec = ProcessorSpec(name="cf", states=make_states([1000, 2000], cf=[0.8, 1.0]))
    processor = Processor(spec)
    processor.set_frequency(1000)
    assert processor.capacity_fraction == pytest.approx(0.4)


def test_work_available_scales_with_capacity(processor):
    assert processor.work_available(2.0) == pytest.approx(2.0)
    processor.set_frequency(1000)
    assert processor.work_available(2.0) == pytest.approx(1.0)


def test_wall_time_for_inverts_work_available(processor):
    processor.set_frequency(1000)
    assert processor.wall_time_for(1.0) == pytest.approx(2.0)


def test_set_frequency_returns_change_flag(processor):
    assert processor.set_frequency(1000) is True
    assert processor.set_frequency(1000) is False


def test_set_unknown_frequency_raises(processor):
    with pytest.raises(FrequencyError):
        processor.set_frequency(1234)


def test_transition_counter(processor):
    processor.set_frequency(1000)
    processor.set_frequency(2000)
    processor.set_frequency(2000)  # no-op
    assert processor.transitions == 2


def test_transition_overhead_accumulates(two_state_spec):
    processor = Processor(two_state_spec)
    processor.set_frequency(1000)
    processor.set_frequency(2000)
    assert processor.transition_overhead_seconds == pytest.approx(
        2 * two_state_spec.transition_latency
    )


def test_account_tracks_busy_and_elapsed(processor):
    processor.account(1.0, 1.0)
    processor.account(1.0, 0.0)
    assert processor.busy_seconds == pytest.approx(1.0)
    assert processor.elapsed_seconds == pytest.approx(2.0)


def test_account_zero_dt_is_noop(processor):
    processor.account(0.0, 1.0)
    assert processor.elapsed_seconds == 0.0
    assert processor.energy_joules == 0.0


def test_energy_busy_exceeds_idle(two_state_spec):
    busy = Processor(two_state_spec)
    idle = Processor(two_state_spec)
    busy.account(10.0, 1.0)
    idle.account(10.0, 0.0)
    assert busy.energy_joules > idle.energy_joules > 0.0


def test_energy_lower_at_lower_frequency(two_state_spec):
    fast = Processor(two_state_spec)
    slow = Processor(two_state_spec)
    slow.set_frequency(1000)
    fast.account(10.0, 1.0)
    slow.account(10.0, 1.0)
    assert slow.energy_joules < fast.energy_joules


def test_time_in_state(processor):
    processor.account(2.0, 1.0)
    processor.set_frequency(1000)
    processor.account(3.0, 0.5)
    assert processor.time_in_state(2000) == pytest.approx(2.0)
    assert processor.time_in_state(1000) == pytest.approx(3.0)


def test_time_in_state_unknown_freq_raises(processor):
    with pytest.raises(FrequencyError):
        processor.time_in_state(1234)


def test_residency_copy(processor):
    processor.account(1.0, 1.0)
    residency = processor.residency()
    residency[2000] = 999.0
    assert processor.time_in_state(2000) == pytest.approx(1.0)


def test_ratio_and_cf_properties():
    spec = ProcessorSpec(name="x", states=make_states([1000, 2000], cf=[0.9, 1.0]))
    processor = Processor(spec)
    processor.set_frequency(1000)
    assert processor.ratio == pytest.approx(0.5)
    assert processor.cf == pytest.approx(0.9)


def test_make_states_voltage_ramp():
    states = make_states([1000, 1500, 2000])
    volts = [s.voltage for s in states]
    assert volts[0] == pytest.approx(0.85)
    assert volts[-1] == pytest.approx(1.20)
    assert volts == sorted(volts)


def test_make_states_cf_list_length_mismatch():
    with pytest.raises(ConfigurationError):
        make_states([1000, 2000], cf=[0.9])


def test_make_states_single_frequency():
    states = make_states([1500])
    assert len(states) == 1
    assert states[0].voltage == pytest.approx(1.2)
