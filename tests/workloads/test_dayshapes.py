"""The day-shape catalog: registry, determinism, shape properties."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    DAYSHAPES,
    dayshape_csv,
    dayshape_names,
    dayshape_points,
    load_trace_csv,
    TraceLoad,
)

DAY = 400.0
STEP = 5.0


def points(name, seed=1, **kwargs):
    return dayshape_points(
        name, random.Random(seed), day_length=DAY, step=STEP, **kwargs
    )


def mean_percent(pts):
    body = pts[:-1]  # drop the zero tail
    return sum(p.percent for p in body) / len(body)


def test_catalog_names_the_documented_shapes():
    assert dayshape_names() == (
        "diurnal-office",
        "weekend",
        "flash-crowd",
        "batch-overnight",
        "noisy-neighbor",
    )
    assert all(shape.description for shape in DAYSHAPES.values())


def test_unknown_shape_lists_the_catalog():
    with pytest.raises(ConfigurationError, match="diurnal-office"):
        dayshape_points("mondays", random.Random(0))


def test_points_are_valid_and_repeatable_traces():
    for name in dayshape_names():
        pts = points(name)
        assert len(pts) == int(DAY / STEP) + 1
        assert all(0.0 <= p.percent <= 100.0 for p in pts)
        assert pts[-1].start == DAY and pts[-1].percent == 0.0
        trace = TraceLoad(pts, repeat=True)
        # Wrap-around: demand one full day later matches the day's start.
        assert trace.demand_at(DAY + 10.0) == trace.demand_at(10.0)


def test_same_seed_same_points():
    for name in dayshape_names():
        assert points(name, seed=7) == points(name, seed=7)
        assert points(name, seed=7) != points(name, seed=8)


def test_office_peaks_during_business_hours():
    pts = points("diurnal-office")
    midday = [p.percent for p in pts if 0.40 * DAY <= p.start <= 0.46 * DAY]
    night = [p.percent for p in pts if p.start <= 0.15 * DAY]
    assert min(midday) > max(night)


def test_weekend_is_a_quieter_office():
    assert mean_percent(points("weekend")) < 0.6 * mean_percent(
        points("diurnal-office")
    )


def test_flash_crowd_has_one_dominant_spike():
    pts = points("flash-crowd")
    values = sorted(p.percent for p in pts[:-1])
    median = values[len(values) // 2]
    assert max(values) > 3.0 * median


def test_batch_overnight_loads_the_night_window():
    pts = points("batch-overnight")[:-1]  # drop the zero tail
    night = [p.percent for p in pts if p.start < 0.18 * DAY or p.start >= 0.80 * DAY]
    day = [p.percent for p in pts if 0.30 * DAY <= p.start < 0.70 * DAY]
    assert min(night) > max(day)


def test_noisy_neighbor_is_rougher_than_office():
    def roughness(pts):
        # Mean absolute step-to-step jump: bursts, not diurnal swing.
        body = pts[:-1]
        return sum(
            abs(b.percent - a.percent) for a, b in zip(body, body[1:])
        ) / (len(body) - 1)

    assert roughness(points("noisy-neighbor")) > 2.0 * roughness(
        points("diurnal-office")
    )


def test_scale_multiplies_demand():
    full = points("diurnal-office", seed=3)
    half = points("diurnal-office", seed=3, scale=0.5)
    for a, b in zip(full[:-1], half[:-1]):
        assert b.percent == pytest.approx(a.percent * 0.5)


def test_dayshape_csv_round_trips_through_the_trace_loader(tmp_path):
    path = dayshape_csv(
        "flash-crowd", tmp_path / "crowd.csv", seed=5, day_length=DAY, step=STEP
    )
    loaded = load_trace_csv(path)
    direct = dayshape_points("flash-crowd", random.Random(5), day_length=DAY, step=STEP)
    assert [(p.start, p.percent) for p in loaded] == [
        (p.start, p.percent) for p in direct
    ]


def test_workload_spec_accepts_a_dayshape():
    from repro.experiments import ScenarioConfig
    from repro.experiments.scenario import GuestSpec, WorkloadSpec

    spec = WorkloadSpec(kind="trace", dayshape="flash-crowd", repeat=True)
    assert spec.describe() == "trace:flash-crowd"
    assert WorkloadSpec.from_dict(spec.to_dict()) == spec
    config = ScenarioConfig(
        guests=(GuestSpec(name="F30", credit=30.0, workloads=(spec,)),),
        duration=60.0,
    )
    assert ScenarioConfig.from_dict(config.to_dict()) == config


def test_workload_spec_rejects_unknown_dayshape():
    from repro.experiments.scenario import WorkloadSpec

    with pytest.raises(ConfigurationError, match="unknown day shape"):
        WorkloadSpec(kind="trace", dayshape="casual-friday")


def test_dayshape_guest_runs_end_to_end():
    from repro.experiments import run_scenario, ScenarioConfig
    from repro.experiments.scenario import GuestSpec, WorkloadSpec

    config = ScenarioConfig(
        guests=(
            GuestSpec(
                name="D25",
                credit=25.0,
                workloads=(WorkloadSpec(kind="trace", dayshape="diurnal-office"),),
            ),
        ),
        duration=120.0,
    )
    result = run_scenario(config)
    assert result.guest_mean("D25", "global", (60.0, 110.0)) > 0.0
