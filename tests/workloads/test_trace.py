"""Unit tests for trace-driven workloads."""

import random

import pytest

from repro.errors import WorkloadError
from repro.workloads import SyntheticTrace, TraceLoad, TracePoint

from ..conftest import make_host


def test_replays_piecewise_demand():
    host = make_host()
    vm = host.create_domain("vm", credit=0)
    trace = TraceLoad(
        [TracePoint(0.0, 40.0), TracePoint(5.0, 10.0), TracePoint(10.0, 0.0)],
        injection_period=0.02,
    )
    vm.attach_workload(trace)
    host.run(until=15.0)
    # 5s at 40% + 5s at 10% = 2.5 abs-seconds.
    assert vm.work_done == pytest.approx(2.5, abs=0.05)


def test_demand_at_lookup():
    trace = TraceLoad([TracePoint(0.0, 40.0), TracePoint(5.0, 10.0)])
    assert trace.demand_at(0.0) == 40.0
    assert trace.demand_at(4.9) == 40.0
    assert trace.demand_at(5.0) == 10.0


def test_repeat_wraps_around():
    trace = TraceLoad(
        [TracePoint(0.0, 40.0), TracePoint(5.0, 10.0), TracePoint(10.0, 0.0)],
        repeat=True,
    )
    assert trace.demand_at(12.0) == 40.0  # 12 % 10 = 2 -> first segment
    assert trace.demand_at(16.0) == 10.0


def test_empty_trace_rejected():
    with pytest.raises(WorkloadError):
        TraceLoad([])


def test_duplicate_times_rejected():
    with pytest.raises(WorkloadError):
        TraceLoad([TracePoint(0.0, 1.0), TracePoint(0.0, 2.0)])


def test_stop_halts_injection():
    host = make_host()
    vm = host.create_domain("vm", credit=0)
    trace = TraceLoad([TracePoint(0.0, 50.0)])
    vm.attach_workload(trace)
    host.run(until=2.0)
    trace.stop()
    done = vm.work_done
    host.run(until=5.0)
    assert vm.work_done == pytest.approx(done, abs=0.05)


def test_synthetic_trace_shape():
    generator = SyntheticTrace(
        base_percent=25.0, swing_percent=15.0, noise_percent=0.0, bursts=0
    )
    points = generator.generate(random.Random(1))
    demands = [p.percent for p in points[:-1]]
    # Trough at t=0 (cos phase), peak mid-day.
    assert demands[0] == pytest.approx(10.0, abs=0.5)
    assert max(demands) == pytest.approx(40.0, abs=0.5)
    assert points[-1].percent == 0.0


def test_synthetic_trace_bursts_visible():
    quiet = SyntheticTrace(noise_percent=0.0, bursts=0).generate(random.Random(1))
    bursty = SyntheticTrace(noise_percent=0.0, bursts=2, burst_percent=30.0).generate(
        random.Random(1)
    )
    # Bursts land mid-half-day (on the diurnal shoulder, demand ~25%), so
    # the bursty peak is shoulder + burst = ~55 vs the quiet peak of ~40.
    assert max(p.percent for p in bursty) > max(p.percent for p in quiet) + 10.0


def test_synthetic_trace_reproducible():
    a = SyntheticTrace().generate(random.Random(7))
    b = SyntheticTrace().generate(random.Random(7))
    assert a == b


def test_synthetic_trace_clamped_to_valid_range():
    points = SyntheticTrace(
        base_percent=95.0, swing_percent=20.0, noise_percent=10.0, bursts=3
    ).generate(random.Random(3))
    assert all(0.0 <= p.percent <= 100.0 for p in points)


def test_synthetic_drives_trace_load_end_to_end():
    host = make_host(seed=11)
    vm = host.create_domain("vm", credit=0)
    points = SyntheticTrace(day_length=50.0, step=1.0).generate(
        host.rng.stream("trace")
    )
    vm.attach_workload(TraceLoad(points))
    host.run(until=50.0)
    mean_load = host.recorder.series("vm.global_load").window(5, 50).mean()
    assert 10.0 <= mean_load <= 50.0
