"""Unit tests for the Web-app workload."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    exact_rate,
    LoadProfile,
    thrashing_rate,
    WebApp,
)

from ..conftest import make_host


def test_exact_rate_formula():
    # 20% credit at 5ms per request -> 40 req/s.
    assert exact_rate(20.0, 0.005) == pytest.approx(40.0)


def test_thrashing_rate_formula():
    assert thrashing_rate(20.0, 0.005, factor=5.0) == pytest.approx(200.0)


def test_thrashing_factor_must_exceed_one():
    with pytest.raises(ConfigurationError):
        thrashing_rate(20.0, 0.005, factor=1.0)


def test_exact_load_produces_credit_level_demand():
    host = make_host()
    vm = host.create_domain("vm", credit=0)  # uncapped: serve everything
    app = WebApp(LoadProfile.constant(exact_rate(20, 0.005)))
    vm.attach_workload(app)
    host.run(until=20.0)
    assert vm.work_done / 20.0 == pytest.approx(0.20, abs=0.01)
    assert app.drop_fraction < 0.01


def test_bounded_queue_sheds_overload():
    host = make_host()
    vm = host.create_domain("vm", credit=20)  # capped at 20%
    app = WebApp(LoadProfile.constant(thrashing_rate(20, 0.005)), max_backlog=1.0)
    vm.attach_workload(app)
    host.run(until=20.0)
    assert app.backlog_work <= 1.0 + 1e-6
    assert app.dropped_work > 0.0
    # Served exactly the cap's worth.
    assert vm.work_done / 20.0 == pytest.approx(0.20, abs=0.01)


def test_backlog_drains_after_active_phase():
    host = make_host()
    vm = host.create_domain("vm", credit=20)
    app = WebApp(LoadProfile.three_phase(0.0, 10.0, thrashing_rate(20, 0.005)), max_backlog=1.0)
    vm.attach_workload(app)
    host.run(until=10.0)
    assert app.backlog_work > 0.5
    host.run(until=18.0)
    assert app.backlog_work == 0.0


def test_requests_completed_counts_served_work():
    host = make_host()
    vm = host.create_domain("vm", credit=0)
    app = WebApp(LoadProfile.constant(10.0), request_cost=0.01)
    vm.attach_workload(app)
    host.run(until=10.0)
    assert app.requests_completed == pytest.approx(100.0, rel=0.02)
    assert app.requests_sent == pytest.approx(100.0, rel=0.02)


def test_offered_accepted_dropped_invariant():
    host = make_host()
    vm = host.create_domain("vm", credit=10)
    app = WebApp(LoadProfile.constant(thrashing_rate(10, 0.005)), max_backlog=0.5)
    vm.attach_workload(app)
    host.run(until=10.0)
    assert app.offered_work == pytest.approx(app.accepted_work + app.dropped_work)


def test_poisson_mode_uses_host_stream():
    host = make_host(seed=3)
    vm = host.create_domain("vm", credit=0)
    app = WebApp(LoadProfile.constant(40.0), poisson=True)
    vm.attach_workload(app)
    host.run(until=20.0)
    assert app.requests_sent == pytest.approx(800.0, rel=0.15)


def test_drop_fraction_zero_when_no_offers():
    host = make_host()
    vm = host.create_domain("vm", credit=0)
    app = WebApp(LoadProfile.three_phase(50.0, 60.0, 10.0))
    vm.attach_workload(app)
    host.run(until=10.0)
    assert app.drop_fraction == 0.0
