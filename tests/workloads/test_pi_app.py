"""Unit tests for pi-app."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.workloads import PiApp

from ..conftest import make_host


def test_execution_time_full_speed_uncapped():
    host = make_host()
    vm = host.create_domain("vm", credit=100)
    app = PiApp(2.0)
    vm.attach_workload(app)
    host.run(until=5.0)
    assert app.done
    assert app.execution_time == pytest.approx(2.0, rel=0.01)


def test_execution_time_scales_inverse_to_credit():
    # Eq. 3 at workload level.
    times = {}
    for credit in (25, 50):
        host = make_host()
        vm = host.create_domain("vm", credit=credit)
        app = PiApp(1.0)
        vm.attach_workload(app)
        host.run(until=20.0)
        times[credit] = app.execution_time
    assert times[25] / times[50] == pytest.approx(2.0, rel=0.03)


def test_start_at_delays_work():
    host = make_host()
    vm = host.create_domain("vm", credit=100)
    app = PiApp(0.5, start_at=3.0)
    vm.attach_workload(app)
    host.run(until=2.0)
    assert app.started_at is None
    host.run(until=5.0)
    assert app.started_at == pytest.approx(3.0)
    assert app.finished_at == pytest.approx(3.5, abs=0.01)


def test_execution_time_before_done_raises():
    host = make_host()
    vm = host.create_domain("vm", credit=1)
    app = PiApp(10.0)
    vm.attach_workload(app)
    host.run(until=1.0)
    assert not app.done
    with pytest.raises(WorkloadError):
        _ = app.execution_time


def test_nonpositive_work_rejected():
    with pytest.raises(ConfigurationError):
        PiApp(0.0)


def test_negative_start_rejected():
    with pytest.raises(ConfigurationError):
        PiApp(1.0, start_at=-1.0)


def test_done_flag_lifecycle():
    host = make_host()
    vm = host.create_domain("vm", credit=100)
    app = PiApp(0.5)
    vm.attach_workload(app)
    assert not app.done
    host.run(until=1.0)
    assert app.done


def test_two_pi_apps_on_separate_domains():
    host = make_host()
    a = host.create_domain("a", credit=50)
    b = host.create_domain("b", credit=50)
    app_a, app_b = PiApp(1.0), PiApp(1.0)
    a.attach_workload(app_a)
    b.attach_workload(app_b)
    host.run(until=10.0)
    assert app_a.execution_time == pytest.approx(2.0, rel=0.05)
    assert app_b.execution_time == pytest.approx(2.0, rel=0.05)
