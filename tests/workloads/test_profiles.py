"""Unit tests for load profiles."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.workloads import LoadProfile, Phase


def test_three_phase_profile():
    profile = LoadProfile.three_phase(50.0, 750.0, 40.0)
    assert profile.rate_at(0.0) == 0.0
    assert profile.rate_at(49.9) == 0.0
    assert profile.rate_at(50.0) == 40.0
    assert profile.rate_at(400.0) == 40.0
    assert profile.rate_at(750.0) == 0.0
    assert profile.rate_at(10000.0) == 0.0


def test_constant_profile():
    profile = LoadProfile.constant(25.0)
    assert profile.rate_at(0.0) == 25.0
    assert profile.rate_at(1e6) == 25.0


def test_phases_sorted_regardless_of_input_order():
    profile = LoadProfile([Phase(100, 5), Phase(0, 0), Phase(50, 10)])
    assert [p.start for p in profile.phases] == [0, 50, 100]


def test_multi_step_profile():
    profile = LoadProfile([Phase(0, 10), Phase(10, 20), Phase(20, 5)])
    assert profile.rate_at(5) == 10
    assert profile.rate_at(15) == 20
    assert profile.rate_at(25) == 5


def test_rate_before_first_phase_is_zero():
    profile = LoadProfile([Phase(10, 40)])
    assert profile.rate_at(5.0) == 0.0


def test_end_of_activity():
    profile = LoadProfile.three_phase(50, 750, 40)
    assert profile.end_of_activity == 750.0


def test_end_of_activity_never_stops():
    assert LoadProfile.constant(10.0).end_of_activity == float("inf")


def test_empty_profile_rejected():
    with pytest.raises(WorkloadError):
        LoadProfile([])


def test_duplicate_starts_rejected():
    with pytest.raises(WorkloadError):
        LoadProfile([Phase(0, 1), Phase(0, 2)])


def test_inverted_three_phase_rejected():
    with pytest.raises(WorkloadError):
        LoadProfile.three_phase(100, 50, 10)


def test_negative_phase_values_rejected():
    with pytest.raises(ConfigurationError):
        Phase(-1.0, 10.0)
    with pytest.raises(ConfigurationError):
        Phase(0.0, -10.0)


def test_windows_single_window_matches_three_phase():
    assert (
        LoadProfile.windows([(50.0, 750.0)], 40.0).phases
        == LoadProfile.three_phase(50.0, 750.0, 40.0).phases
    )


def test_windows_multiple_windows_toggle_rate():
    profile = LoadProfile.windows([(10.0, 20.0), (40.0, 50.0)], 8.0)
    assert profile.rate_at(5.0) == 0.0
    assert profile.rate_at(15.0) == 8.0
    assert profile.rate_at(30.0) == 0.0
    assert profile.rate_at(45.0) == 8.0
    assert profile.rate_at(60.0) == 0.0


def test_windows_adjacent_windows_merge():
    profile = LoadProfile.windows([(10.0, 20.0), (20.0, 30.0)], 8.0)
    assert profile.rate_at(20.0) == 8.0
    assert profile.rate_at(25.0) == 8.0
    assert profile.rate_at(31.0) == 0.0


def test_windows_overlap_rejected():
    import pytest
    from repro.errors import WorkloadError

    with pytest.raises(WorkloadError, match="overlap"):
        LoadProfile.windows([(10.0, 30.0), (20.0, 40.0)], 8.0)
    with pytest.raises(WorkloadError):
        LoadProfile.windows([], 8.0)
    with pytest.raises(WorkloadError):
        LoadProfile.windows([(30.0, 10.0)], 8.0)
