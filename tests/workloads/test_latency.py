"""Unit tests for the request-latency tracker."""

import pytest

from repro.errors import WorkloadError
from repro.workloads import LatencyTracker, LoadProfile, WebApp, exact_rate

from ..conftest import make_host


def test_single_batch_latency():
    tracker = LatencyTracker()
    tracker.on_arrival(0.0, work=1.0, requests=10.0)
    tracker.on_progress(2.5, work_done=1.0)
    assert tracker.completed_requests == 10.0
    assert tracker.mean_response_time == pytest.approx(2.5)


def test_fifo_ordering_of_completions():
    tracker = LatencyTracker()
    tracker.on_arrival(0.0, work=1.0, requests=1.0)
    tracker.on_arrival(1.0, work=1.0, requests=1.0)
    tracker.on_progress(3.0, work_done=1.0)  # drains the first chunk only
    assert tracker.completed_requests == 1.0
    assert tracker.mean_response_time == pytest.approx(3.0)
    tracker.on_progress(5.0, work_done=1.0)  # now the second
    assert tracker.mean_response_time == pytest.approx((3.0 + 4.0) / 2)


def test_partial_drain_keeps_chunk_queued():
    tracker = LatencyTracker()
    tracker.on_arrival(0.0, work=2.0, requests=4.0)
    tracker.on_progress(1.0, work_done=1.0)
    assert tracker.completed_requests == 0.0
    assert tracker.queued_requests == 4.0
    tracker.on_progress(2.0, work_done=1.0)
    assert tracker.completed_requests == 4.0


def test_progress_across_multiple_chunks():
    tracker = LatencyTracker()
    for t in (0.0, 1.0, 2.0):
        tracker.on_arrival(t, work=0.5, requests=1.0)
    tracker.on_progress(4.0, work_done=1.5)
    assert tracker.completed_requests == 3.0
    assert tracker.max_response_time == pytest.approx(4.0)


def test_percentiles_weighted():
    tracker = LatencyTracker()
    tracker.on_arrival(0.0, work=1.0, requests=99.0)
    tracker.on_arrival(0.0, work=1.0, requests=1.0)
    tracker.on_progress(1.0, work_done=1.0)   # 99 fast requests at 1s
    tracker.on_progress(10.0, work_done=1.0)  # 1 slow request at 10s
    assert tracker.percentile(50) == pytest.approx(1.0)
    assert tracker.percentile(100) == pytest.approx(10.0)


def test_percentile_requires_samples():
    tracker = LatencyTracker()
    with pytest.raises(WorkloadError):
        tracker.percentile(50)
    with pytest.raises(WorkloadError):
        _ = tracker.mean_response_time


def test_percentile_range_validated():
    tracker = LatencyTracker()
    tracker.on_arrival(0.0, 1.0, 1.0)
    tracker.on_progress(1.0, 1.0)
    with pytest.raises(WorkloadError):
        tracker.percentile(120.0)


def test_zero_weight_arrivals_ignored():
    tracker = LatencyTracker()
    tracker.on_arrival(0.0, work=0.0, requests=0.0)
    assert tracker.queued_requests == 0.0


def test_webapp_integration_fast_service():
    host = make_host()
    vm = host.create_domain("vm", credit=0)  # uncapped
    app = WebApp(LoadProfile.constant(exact_rate(20, 0.005)))
    vm.attach_workload(app)
    host.run(until=20.0)
    # Served immediately: responses bounded by the injection period.
    assert app.latency.percentile(99) <= 0.15
    assert app.latency.completed_requests > 700


def test_webapp_integration_starved_service():
    host = make_host(governor="powersave")  # pinned at 1600 MHz
    vm = host.create_domain("vm", credit=20)
    app = WebApp(LoadProfile.constant(exact_rate(20, 0.005)), max_backlog=1.0)
    vm.attach_workload(app)
    host.run(until=60.0)
    # Service at 12% vs demand 20%: the bounded queue stays full, so every
    # accepted request waits ~1.0/0.12 = 8.3s.
    assert app.latency.percentile(50) > 5.0
    assert app.drop_fraction > 0.2


def test_webapp_latency_tracking_can_be_disabled():
    host = make_host()
    vm = host.create_domain("vm", credit=0)
    app = WebApp(LoadProfile.constant(10.0), track_latency=False)
    vm.attach_workload(app)
    host.run(until=5.0)
    assert app.latency is None
