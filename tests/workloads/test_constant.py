"""Unit tests for the constant duty-cycle load."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import ConstantLoad

from ..conftest import make_host


def test_generates_requested_duty_cycle():
    host = make_host()
    vm = host.create_domain("vm", credit=0)
    vm.attach_workload(ConstantLoad(30, injection_period=0.02))
    host.run(until=10.0)
    assert vm.work_done / 10.0 == pytest.approx(0.30, abs=0.01)


def test_start_at_window():
    host = make_host()
    vm = host.create_domain("vm", credit=0)
    vm.attach_workload(ConstantLoad(50, start_at=5.0))
    host.run(until=4.9)
    assert vm.work_done == 0.0
    host.run(until=10.0)
    assert vm.work_done / 5.0 == pytest.approx(0.50, abs=0.03)


def test_stop_at_ends_injection():
    host = make_host()
    vm = host.create_domain("vm", credit=0)
    vm.attach_workload(ConstantLoad(50, stop_at=5.0))
    host.run(until=10.0)
    assert vm.work_done == pytest.approx(0.5 * 5.0, abs=0.1)


def test_injected_work_counter():
    host = make_host()
    vm = host.create_domain("vm", credit=0)
    load = ConstantLoad(40, injection_period=0.02)
    vm.attach_workload(load)
    host.run(until=5.0)
    assert load.injected_work == pytest.approx(2.0, abs=0.05)


def test_stop_method():
    host = make_host()
    vm = host.create_domain("vm", credit=0)
    load = ConstantLoad(40)
    vm.attach_workload(load)
    host.run(until=2.0)
    load.stop()
    done = vm.work_done
    host.run(until=5.0)
    assert vm.work_done == pytest.approx(done, abs=0.05)


def test_invalid_percent_rejected():
    with pytest.raises(ConfigurationError):
        ConstantLoad(150.0)
    with pytest.raises(ConfigurationError):
        ConstantLoad(-5.0)
