"""Unit tests for the httperf-style injector."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import Engine, RngStreams
from repro.workloads import HttperfInjector, LoadProfile


def collect(profile, *, duration=10.0, period=0.05, poisson=False, seed=0):
    engine = Engine()
    batches = []
    rng = RngStreams(seed).stream("injector") if poisson else None
    injector = HttperfInjector(
        engine,
        profile,
        lambda n, now: batches.append((now, n)),
        injection_period=period,
        poisson=poisson,
        rng=rng,
    )
    injector.start()
    engine.run_until(duration)
    return injector, batches


def test_fluid_rate_is_exact():
    injector, batches = collect(LoadProfile.constant(40.0))
    total = sum(n for _, n in batches)
    assert total == pytest.approx(40.0 * 10.0, rel=0.01)


def test_fractional_rates_carry_over():
    injector, batches = collect(LoadProfile.constant(0.3), period=1.0)
    total = sum(n for _, n in batches)
    assert total == pytest.approx(3.0, abs=0.4)


def test_zero_rate_produces_no_batches():
    injector, batches = collect(LoadProfile.constant(0.0))
    assert batches == []
    assert injector.requests_sent == 0


def test_profile_phases_respected():
    profile = LoadProfile.three_phase(3.0, 7.0, 10.0)
    injector, batches = collect(profile)
    before = [n for t, n in batches if t < 3.0]
    during = sum(n for t, n in batches if 3.0 <= t < 7.0)
    after = [n for t, n in batches if t >= 7.05]
    assert not before
    assert during == pytest.approx(40.0, rel=0.05)
    assert not after


def test_poisson_mode_total_approximates_rate():
    injector, batches = collect(LoadProfile.constant(40.0), poisson=True, duration=50.0)
    total = sum(n for _, n in batches)
    assert total == pytest.approx(2000.0, rel=0.1)


def test_poisson_batches_are_integers():
    injector, batches = collect(LoadProfile.constant(40.0), poisson=True)
    assert all(float(n).is_integer() for _, n in batches)


def test_poisson_reproducible_with_seed():
    _, first = collect(LoadProfile.constant(10.0), poisson=True, seed=5)
    _, second = collect(LoadProfile.constant(10.0), poisson=True, seed=5)
    assert first == second


def test_poisson_requires_rng():
    engine = Engine()
    with pytest.raises(ConfigurationError):
        HttperfInjector(engine, LoadProfile.constant(1.0), lambda n, t: None, poisson=True)


def test_stop_halts_injection():
    engine = Engine()
    batches = []
    injector = HttperfInjector(engine, LoadProfile.constant(10.0), lambda n, t: batches.append(n))
    injector.start()
    engine.run_until(1.0)
    injector.stop()
    count = len(batches)
    engine.run_until(5.0)
    assert len(batches) == count
