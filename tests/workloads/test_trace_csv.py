"""load_trace_csv: real utilisation time-series into declarative scenarios."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.experiments import run_scenario, ScenarioConfig
from repro.experiments.scenario import GuestSpec, WorkloadSpec
from repro.workloads import load_trace_csv, TraceLoad


def write(tmp_path, text, name="trace.csv"):
    path = tmp_path / name
    path.write_text(text)
    return path


def test_headered_csv(tmp_path):
    path = write(tmp_path, "time,percent\n0,10\n50,35.5\n100,0\n")
    points = load_trace_csv(path)
    assert [(p.start, p.percent) for p in points] == [
        (0.0, 10.0),
        (50.0, 35.5),
        (100.0, 0.0),
    ]


def test_header_aliases_and_extra_columns(tmp_path):
    path = write(
        tmp_path,
        "host,seconds,mem,utilization\nweb01,0,512,12\nweb01,30,514,44\n",
    )
    points = load_trace_csv(path)
    assert [(p.start, p.percent) for p in points] == [(0.0, 12.0), (30.0, 44.0)]


def test_headerless_two_column_csv(tmp_path):
    path = write(tmp_path, "0,25\n\n60,75\n")
    assert [(p.start, p.percent) for p in load_trace_csv(path)] == [
        (0.0, 25.0),
        (60.0, 75.0),
    ]


def test_missing_file_is_clean(tmp_path):
    with pytest.raises(WorkloadError, match="cannot read trace file"):
        load_trace_csv(tmp_path / "nope.csv")


def test_empty_and_header_only_files_rejected(tmp_path):
    with pytest.raises(WorkloadError, match="no data rows"):
        load_trace_csv(write(tmp_path, "\n\n"))
    with pytest.raises(WorkloadError, match="header but no data"):
        load_trace_csv(write(tmp_path, "time,percent\n"))


def test_unrecognised_header_names_are_named(tmp_path):
    with pytest.raises(WorkloadError, match="no recognised"):
        load_trace_csv(write(tmp_path, "when,how_much\n0,10\n"))


def test_bad_row_names_file_and_line(tmp_path):
    with pytest.raises(WorkloadError, match="line 3"):
        load_trace_csv(write(tmp_path, "time,percent\n0,10\n50,lots\n"))


def test_negative_values_surface_with_line(tmp_path):
    with pytest.raises(WorkloadError, match="line 2"):
        load_trace_csv(write(tmp_path, "time,percent\n0,-5\n"))


def test_points_feed_trace_load(tmp_path):
    points = load_trace_csv(write(tmp_path, "time,percent\n0,10\n100,0\n"))
    load = TraceLoad(points)
    assert load.demand_at(50.0) == 10.0
    assert load.demand_at(150.0) == 0.0


# ----------------------------------------------------------- spec wiring


def test_workload_spec_trace_file_round_trip(tmp_path):
    path = str(write(tmp_path, "time,percent\n0,10\n100,0\n"))
    spec = WorkloadSpec(kind="trace", trace_file=path)
    assert spec.to_dict() == {"kind": "trace", "trace_file": path}
    assert WorkloadSpec.from_dict(spec.to_dict()) == spec
    assert spec.describe() == "trace:trace.csv"


def test_trace_spec_still_requires_a_source():
    with pytest.raises(ConfigurationError, match="trace_file"):
        WorkloadSpec(kind="trace")


def test_scenario_runs_a_trace_file_guest(tmp_path):
    path = str(write(tmp_path, "time,percent\n0,30\n150,30\n200,0\n"))
    # Pin max frequency: under credit+stable the guest would be throttled
    # below its trace demand (the paper's §3 effect), which isn't the point
    # of this loader test.
    config = ScenarioConfig(
        duration=200.0,
        governor="performance",
        guests=(
            GuestSpec(
                name="T40",
                credit=40.0,
                workloads=(WorkloadSpec(kind="trace", trace_file=path),),
            ),
        ),
    )
    result = run_scenario(config)
    window = result.guest_window("T40")
    assert result.guest_mean("T40", "absolute", window) == pytest.approx(30.0, abs=3.0)
