"""Property-based tests for the Credit scheduler's core invariants.

These drive whole (small) host simulations from hypothesis-generated domain
configurations, asserting the two contractual properties of fix-credit
scheduling: caps are never exceeded, and under full contention every
credited domain receives at least its credit.
"""

from hypothesis import given, settings, strategies as st

from repro import Host
from repro.workloads import ConstantLoad


@st.composite
def credit_partitions(draw):
    """2-4 credits summing to at most 100, each at least 5%."""
    count = draw(st.integers(min_value=2, max_value=4))
    credits = [draw(st.integers(min_value=5, max_value=40)) for _ in range(count)]
    total = sum(credits)
    if total > 100:
        credits = [c * 100 // total for c in credits]
        credits = [max(c, 1) for c in credits]
    return credits


@given(credits=credit_partitions())
@settings(max_examples=15, deadline=None)
def test_caps_never_exceeded(credits):
    host = Host(scheduler="credit", governor="performance")
    for index, credit in enumerate(credits):
        domain = host.create_domain(f"vm{index}", credit=credit)
        domain.attach_workload(ConstantLoad(100, injection_period=0.01))
    duration = 5.0
    host.run(until=duration)
    for index, credit in enumerate(credits):
        used = host.domain(f"vm{index}").cpu_seconds / duration
        assert used <= credit / 100.0 + 0.01


@given(credits=credit_partitions())
@settings(max_examples=15, deadline=None)
def test_credit_guaranteed_under_contention(credits):
    host = Host(scheduler="credit", governor="performance")
    for index, credit in enumerate(credits):
        domain = host.create_domain(f"vm{index}", credit=credit)
        domain.attach_workload(ConstantLoad(100, injection_period=0.01))
    duration = 5.0
    host.run(until=duration)
    for index, credit in enumerate(credits):
        used = host.domain(f"vm{index}").cpu_seconds / duration
        assert used >= credit / 100.0 - 0.02


@given(
    credits=credit_partitions(),
    demand=st.integers(min_value=10, max_value=100),
)
@settings(max_examples=10, deadline=None)
def test_total_usage_never_exceeds_capacity(credits, demand):
    host = Host(scheduler="credit", governor="performance")
    for index, credit in enumerate(credits):
        domain = host.create_domain(f"vm{index}", credit=credit)
        domain.attach_workload(ConstantLoad(demand, injection_period=0.01))
    duration = 5.0
    host.run(until=duration)
    total = sum(host.domain(f"vm{index}").cpu_seconds for index in range(len(credits)))
    assert total <= duration + 1e-6
