"""Property-based tests for the latency tracker."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.workloads import LatencyTracker

events = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),  # inter-arrival gap
        st.floats(min_value=0.001, max_value=5.0, allow_nan=False),  # work
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False),  # requests
    ),
    min_size=1,
    max_size=30,
)


@given(batches=events, drain_steps=st.integers(min_value=1, max_value=20))
@settings(max_examples=50, deadline=None)
def test_conservation_of_requests(batches, drain_steps):
    tracker = LatencyTracker()
    now = 0.0
    total_requests = 0.0
    total_work = 0.0
    for gap, work, requests in batches:
        now += gap
        tracker.on_arrival(now, work, requests)
        total_requests += requests
        total_work += work
    # Drain in uneven slices; completed + queued must always equal sent.
    for step in range(drain_steps):
        now += 1.0
        tracker.on_progress(now, total_work / drain_steps)
        assert tracker.completed_requests + tracker.queued_requests == (
            pytest.approx(total_requests, rel=1e-6)
        )
    tracker.on_progress(now + 1.0, total_work)  # over-drain is safe
    assert tracker.completed_requests == pytest.approx(total_requests, rel=1e-6)
    assert tracker.queued_requests == pytest.approx(0.0, abs=1e-6)


@given(batches=events)
@settings(max_examples=50, deadline=None)
def test_latencies_nonnegative_and_ordered_percentiles(batches):
    tracker = LatencyTracker()
    now = 0.0
    total_work = 0.0
    for gap, work, requests in batches:
        now += gap
        tracker.on_arrival(now, work, requests)
        total_work += work
    tracker.on_progress(now + 5.0, total_work)
    p50 = tracker.percentile(50)
    p90 = tracker.percentile(90)
    p100 = tracker.percentile(100)
    assert 0.0 <= p50 <= p90 <= p100
    assert p100 == tracker.max_response_time
    # 1e-9 slack: the weighted running sum accumulates float rounding.
    assert 0.0 <= tracker.mean_response_time <= p100 + 1e-9


@given(batches=events)
@settings(max_examples=30, deadline=None)
def test_fifo_completion_latencies_reflect_arrival_order(batches):
    tracker = LatencyTracker()
    now = 0.0
    arrivals = []
    for gap, work, requests in batches:
        now += gap
        tracker.on_arrival(now, work, requests)
        arrivals.append((now, work))
    completion = now + 100.0
    tracker.on_progress(completion, sum(work for _, work in arrivals))
    # All drained at one instant: the earliest arrival has the largest
    # latency, so max latency == completion - first arrival.
    expected_max = completion - arrivals[0][0]
    assert tracker.max_response_time == pytest.approx(expected_max)
