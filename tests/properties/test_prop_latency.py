"""Property-based tests for the latency tracker."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.workloads import LatencyTracker

events = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),  # inter-arrival gap
        st.floats(min_value=0.001, max_value=5.0, allow_nan=False),  # work
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False),  # requests
    ),
    min_size=1,
    max_size=30,
)


@given(batches=events, drain_steps=st.integers(min_value=1, max_value=20))
@settings(max_examples=50, deadline=None)
def test_conservation_of_requests(batches, drain_steps):
    tracker = LatencyTracker()
    now = 0.0
    total_requests = 0.0
    total_work = 0.0
    for gap, work, requests in batches:
        now += gap
        tracker.on_arrival(now, work, requests)
        total_requests += requests
        total_work += work
    # Drain in uneven slices; completed + queued must always equal sent.
    for _ in range(drain_steps):
        now += 1.0
        tracker.on_progress(now, total_work / drain_steps)
        assert tracker.completed_requests + tracker.queued_requests == (
            pytest.approx(total_requests, rel=1e-6)
        )
    tracker.on_progress(now + 1.0, total_work)  # over-drain is safe
    assert tracker.completed_requests == pytest.approx(total_requests, rel=1e-6)
    assert tracker.queued_requests == pytest.approx(0.0, abs=1e-6)


@given(batches=events)
@settings(max_examples=50, deadline=None)
def test_latencies_nonnegative_and_ordered_percentiles(batches):
    tracker = LatencyTracker()
    now = 0.0
    total_work = 0.0
    for gap, work, requests in batches:
        now += gap
        tracker.on_arrival(now, work, requests)
        total_work += work
    tracker.on_progress(now + 5.0, total_work)
    p50 = tracker.percentile(50)
    p90 = tracker.percentile(90)
    p100 = tracker.percentile(100)
    assert 0.0 <= p50 <= p90 <= p100
    assert p100 == tracker.max_response_time
    # 1e-9 slack: the weighted running sum accumulates float rounding.
    assert 0.0 <= tracker.mean_response_time <= p100 + 1e-9


class _ReferenceTracker:
    """The pre-insort model: record in completion order, sort at query time.

    The production tracker keeps its samples sorted incrementally with
    ``bisect.insort`` over ``(latency, weight)`` pairs; this reference keeps
    the raw completion-order list and sorts (stably, by latency alone) only
    when queried.  Every exported number must agree between the two, which
    pins down that the insort rewrite changed neither completion ordering
    nor percentile/mean/max outputs.
    """

    def __init__(self):
        self.samples = []  # (latency, weight), completion order

    def record(self, latency, weight):
        self.samples.append((max(latency, 0.0), weight))

    def percentile(self, p):
        ordered = sorted(self.samples, key=lambda sample: sample[0])
        total = sum(weight for _, weight in ordered)
        target = total * p / 100.0
        cumulative = 0.0
        for latency, weight in ordered:
            cumulative += weight
            if cumulative >= target:
                return latency
        return ordered[-1][0]

    @property
    def mean(self):
        total = sum(weight for _, weight in self.samples)
        return sum(latency * weight for latency, weight in self.samples) / total

    @property
    def max(self):
        return max(latency for latency, _ in self.samples)


@given(
    batches=events,
    drain_steps=st.integers(min_value=1, max_value=10),
    percentiles=st.lists(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=5,
    ),
)
@settings(max_examples=50, deadline=None)
def test_insort_rewrite_preserves_ordering_and_percentiles(
    batches, drain_steps, percentiles
):
    tracker = LatencyTracker()
    reference = _ReferenceTracker()
    now = 0.0
    fifo = []  # (arrival, remaining_work, requests) — reference FIFO
    total_work = 0.0
    for gap, work, requests in batches:
        now += gap
        tracker.on_arrival(now, work, requests)
        fifo.append([now, work, requests])
        total_work += work
    # Drain in uneven slices, mirroring the drain against the reference
    # FIFO so the reference records samples in true completion order.
    for _ in range(drain_steps):
        now += 1.0
        budget = total_work / drain_steps
        tracker.on_progress(now, budget)
        while budget > 1e-12 and fifo:
            head = fifo[0]
            if head[1] <= budget + 1e-12:
                budget -= head[1]
                fifo.pop(0)
                reference.record(now - head[0], head[2])
            else:
                head[1] -= budget
                budget = 0.0
    tracker.on_progress(now + 1.0, total_work)  # flush any float residue
    while fifo:
        head = fifo.pop(0)
        reference.record(now + 1.0 - head[0], head[2])
    assert tracker.completed_requests == pytest.approx(
        sum(weight for _, weight in reference.samples)
    )
    for p in percentiles:
        assert tracker.percentile(p) == pytest.approx(reference.percentile(p))
    assert tracker.mean_response_time == pytest.approx(reference.mean)
    assert tracker.max_response_time == pytest.approx(reference.max)


@given(batches=events)
@settings(max_examples=30, deadline=None)
def test_fifo_completion_latencies_reflect_arrival_order(batches):
    tracker = LatencyTracker()
    now = 0.0
    arrivals = []
    for gap, work, requests in batches:
        now += gap
        tracker.on_arrival(now, work, requests)
        arrivals.append((now, work))
    completion = now + 100.0
    tracker.on_progress(completion, sum(work for _, work in arrivals))
    # All drained at one instant: the earliest arrival has the largest
    # latency, so max latency == completion - first arrival.
    expected_max = completion - arrivals[0][0]
    assert tracker.max_response_time == pytest.approx(expected_max)
