"""Property-based tests for the PAS scheduler's SLA invariant.

Whatever the booked credit and demand level, PAS must deliver (a) no more
than the booked absolute capacity, and (b) all of it when the VM is hungry
— at whatever frequency PAS chose.  This is the paper's contribution stated
as a property.
"""

from hypothesis import given, settings, strategies as st

from repro import catalog, Host
from repro.workloads import ConstantLoad


@given(
    credit=st.integers(min_value=5, max_value=60),
    demand_factor=st.floats(min_value=1.5, max_value=6.0),
)
@settings(max_examples=10, deadline=None)
def test_pas_delivers_exactly_booked_capacity_to_hungry_vm(credit, demand_factor):
    host = Host(scheduler="pas", governor="userspace")
    vm = host.create_domain("vm", credit=credit)
    demand = min(100.0, credit * demand_factor)
    vm.attach_workload(ConstantLoad(demand, injection_period=0.01))
    host.run(until=30.0)
    # Skip the first 10s (sampling warm-up), measure the steady window.
    start = vm.work_done
    host.run(until=60.0)
    delivered = (vm.work_done - start) / 30.0 * 100.0
    booked = min(credit, demand)
    assert delivered <= booked + 1.5
    assert delivered >= booked - 1.5


@given(credit=st.integers(min_value=5, max_value=40))
@settings(max_examples=8, deadline=None)
def test_pas_frequency_matches_listing11_for_the_load(credit):
    host = Host(scheduler="pas", governor="userspace")
    vm = host.create_domain("vm", credit=credit)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=30.0)
    from repro.core import laws

    expected = laws.compute_new_frequency(host.processor.table, float(credit))
    # Allow one step of slack for measurement quantisation near boundaries.
    table = host.processor.table
    allowed = {expected, table.step_up(expected).freq_mhz}
    assert host.processor.frequency_mhz in allowed


@given(
    credit=st.integers(min_value=5, max_value=60),
    processor=st.sampled_from(
        [catalog.OPTIPLEX_755, catalog.CORE_I7_3770, catalog.XEON_E5_2620]
    ),
)
@settings(max_examples=10, deadline=None)
def test_pas_caps_equal_eq4_for_current_state(credit, processor):
    host = Host(processor=processor, scheduler="pas", governor="userspace")
    vm = host.create_domain("vm", credit=credit)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=30.0)
    state = host.processor.state
    expected_cap = credit / (state.ratio_to(host.processor.max_frequency_mhz) * state.cf)
    assert abs(host.scheduler.cap_of(vm) - expected_cap) < 0.01
