"""Property-based tests for SEDF's guarantee and work-conservation."""

from hypothesis import given, settings, strategies as st

from repro import Host
from repro.workloads import ConstantLoad


@st.composite
def sedf_sets(draw):
    """2-4 (credit, extra) pairs with total utilization <= 100."""
    count = draw(st.integers(min_value=2, max_value=4))
    credits = [draw(st.integers(min_value=5, max_value=40)) for _ in range(count)]
    total = sum(credits)
    if total > 100:
        credits = [max(1, c * 100 // total) for c in credits]
    extras = [draw(st.booleans()) for _ in range(count)]
    return list(zip(credits, extras))


@given(config=sedf_sets())
@settings(max_examples=12, deadline=None)
def test_guaranteed_slices_under_contention(config):
    host = Host(scheduler="sedf", governor="performance")
    for index, (credit, extra) in enumerate(config):
        domain = host.create_domain(f"vm{index}", credit=credit, sedf_extra=extra)
        domain.attach_workload(ConstantLoad(100, injection_period=0.01))
    duration = 5.0
    host.run(until=duration)
    for index, (credit, _) in enumerate(config):
        used = host.domain(f"vm{index}").cpu_seconds / duration
        assert used >= credit / 100.0 - 0.025


@given(config=sedf_sets())
@settings(max_examples=12, deadline=None)
def test_work_conserving_iff_any_extra_flag(config):
    host = Host(scheduler="sedf", governor="performance")
    for index, (credit, extra) in enumerate(config):
        domain = host.create_domain(f"vm{index}", credit=credit, sedf_extra=extra)
        domain.attach_workload(ConstantLoad(100, injection_period=0.01))
    duration = 5.0
    host.run(until=duration)
    total_used = sum(host.domain(f"vm{index}").cpu_seconds for index in range(len(config)))
    total_credit = sum(credit for credit, _ in config) / 100.0
    if any(extra for _, extra in config):
        # All unused capacity flows to extra-eligible VMs.
        assert total_used / duration >= 0.97
    else:
        assert total_used / duration <= total_credit + 0.02


@given(config=sedf_sets())
@settings(max_examples=8, deadline=None)
def test_non_extra_vms_capped_at_slice(config):
    host = Host(scheduler="sedf", governor="performance")
    for index, (credit, extra) in enumerate(config):
        domain = host.create_domain(f"vm{index}", credit=credit, sedf_extra=extra)
        domain.attach_workload(ConstantLoad(100, injection_period=0.01))
    duration = 5.0
    host.run(until=duration)
    for index, (credit, extra) in enumerate(config):
        if not extra:
            used = host.domain(f"vm{index}").cpu_seconds / duration
            assert used <= credit / 100.0 + 0.02
