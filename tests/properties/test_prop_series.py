"""Property-based tests for time series and smoothing."""

import pytest

from hypothesis import given, strategies as st

from repro import rolling_mean, TimeSeries

samples = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    ),
    min_size=1,
    max_size=60,
).map(lambda items: sorted(items, key=lambda pair: pair[0]))


@given(data=samples)
def test_mean_bounded_by_min_max(data):
    series = TimeSeries("s", data)
    assert series.min() - 1e-9 <= series.mean() <= series.max() + 1e-9


@given(data=samples, window=st.integers(min_value=1, max_value=10))
def test_rolling_mean_stays_within_range(data, window):
    series = TimeSeries("s", data)
    smoothed = rolling_mean(series, window)
    assert len(smoothed) == len(series)
    for value in smoothed.values:
        assert series.min() - 1e-9 <= value <= series.max() + 1e-9


@given(data=samples)
def test_rolling_mean_window1_identity(data):
    series = TimeSeries("s", data)
    assert rolling_mean(series, 1).values == pytest.approx(series.values)


@given(
    data=samples,
    start=st.floats(min_value=0.0, max_value=1000.0),
    width=st.floats(min_value=0.0, max_value=1000.0),
)
def test_window_subset_property(data, start, width):
    series = TimeSeries("s", data)
    piece = series.window(start, start + width)
    assert len(piece) <= len(series)
    for t in piece.times:
        assert start <= t < start + width


@given(data=samples)
def test_changes_bounded_by_length(data):
    series = TimeSeries("s", data)
    assert 0 <= series.changes() <= max(0, len(series) - 1)


@given(data=samples, scale=st.floats(min_value=-10.0, max_value=10.0, allow_nan=False))
def test_map_linearity_of_mean(data, scale):
    series = TimeSeries("s", data)
    scaled = series.map(lambda v: v * scale)
    assert scaled.mean() == pytest.approx(series.mean() * scale, abs=1e-6)
