"""Property-based tests for cluster placement and fleet accounting."""

from hypothesis import given, settings, strategies as st

from repro.cluster import (
    ClusterSim,
    ClusterVM,
    consolidate_first_fit,
    Machine,
    MachineSpec,
    PlacementError,
    spread_round_robin,
)


@st.composite
def populations(draw):
    count = draw(st.integers(min_value=1, max_value=10))
    vms = []
    for index in range(count):
        memory = draw(st.sampled_from([1024, 2048, 4096, 8192]))
        demand = draw(st.floats(min_value=0.0, max_value=30.0))
        vms.append(
            ClusterVM(
                f"vm{index}",
                credit=30.0,
                memory_mb=memory,
                demand=lambda t, d=demand: d,
            )
        )
    return vms


def fleet(n=6, memory=16384):
    return [Machine(f"m{i}", MachineSpec(memory_mb=memory)) for i in range(n)]


@given(vms=populations())
@settings(max_examples=40, deadline=None)
def test_consolidation_never_violates_memory(vms):
    machines = fleet()
    try:
        consolidate_first_fit(machines, vms)
    except PlacementError:
        return
    for machine in machines:
        assert machine.memory_used_mb <= machine.spec.memory_mb


@given(vms=populations())
@settings(max_examples=40, deadline=None)
def test_every_vm_placed_exactly_once(vms):
    machines = fleet()
    try:
        consolidate_first_fit(machines, vms)
    except PlacementError:
        return
    placed = [vm.name for machine in machines for vm in machine.vms]
    assert sorted(placed) == sorted(vm.name for vm in vms)


@given(vms=populations())
@settings(max_examples=40, deadline=None)
def test_consolidation_uses_no_more_machines_than_spread(vms):
    packed, spread = fleet(), fleet()
    try:
        used_packed = consolidate_first_fit(packed, vms)
        spread_round_robin(spread, vms)
    except PlacementError:
        return
    used_spread = sum(1 for machine in spread if machine.powered_on)
    assert used_packed <= used_spread


@given(vms=populations())
@settings(max_examples=25, deadline=None)
def test_fleet_energy_with_dvfs_never_exceeds_without(vms):
    try:
        with_dvfs = ClusterSim(
            n_machines=6, vms=vms, policy=consolidate_first_fit, dvfs=True
        )
        without = ClusterSim(
            n_machines=6, vms=vms, policy=consolidate_first_fit, dvfs=False
        )
        with_dvfs.run(50.0)
        without.run(50.0)
    except PlacementError:
        return
    assert with_dvfs.fleet_energy_joules <= without.fleet_energy_joules + 1e-6


@given(vms=populations())
@settings(max_examples=25, deadline=None)
def test_served_never_exceeds_demand(vms):
    try:
        sim = ClusterSim(n_machines=6, vms=vms, policy=consolidate_first_fit, dvfs=True)
        sim.run(50.0)
    except PlacementError:
        return
    for stat in sim.stats:
        assert stat.served_percent <= stat.demand_percent + 1e-9
        assert 0.0 <= stat.sla_fraction <= 1.0 + 1e-9
