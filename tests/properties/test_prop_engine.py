"""Property-based tests for the event engine."""

from hypothesis import given, strategies as st

from repro.sim import Engine

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=40
)


@given(delays=delays)
def test_events_fire_in_nondecreasing_time_order(delays):
    engine = Engine()
    fired = []
    for delay in delays:
        engine.schedule(delay, lambda: fired.append(engine.now))
    engine.run_until(200.0)
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(delays=delays)
def test_same_delay_events_fifo(delays):
    engine = Engine()
    order = []
    for index, delay in enumerate(delays):
        engine.schedule(delay, lambda index=index: order.append(index))
    engine.run_until(200.0)
    # For equal-time events, indices must be ascending.
    by_time = {}
    for index in order:
        by_time.setdefault(delays[index], []).append(index)
    for indices in by_time.values():
        assert indices == sorted(indices)


@given(delays=delays, cancel_mask=st.lists(st.booleans(), min_size=1, max_size=40))
def test_cancelled_events_never_fire(delays, cancel_mask):
    engine = Engine()
    fired = []
    handles = []
    for index, delay in enumerate(delays):
        handles.append(engine.schedule(delay, lambda index=index: fired.append(index)))
    cancelled = set()
    for index, (handle, cancel) in enumerate(zip(handles, cancel_mask)):
        if cancel:
            handle.cancel()
            cancelled.add(index)
    engine.run_until(200.0)
    assert not (set(fired) & cancelled)
    assert set(fired) == set(range(len(delays))) - cancelled


@given(delays=delays)
def test_clock_never_runs_backwards(delays):
    engine = Engine()
    observed = []
    for delay in delays:
        engine.schedule(delay, lambda: observed.append(engine.now))
    last = [0.0]

    engine.run_until(200.0)
    for t in observed:
        assert t >= last[0]
        last[0] = t


@given(
    delays=delays,
    split=st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
)
def test_split_run_equals_single_run(delays, split):
    def run(boundaries):
        engine = Engine()
        fired = []
        for delay in delays:
            engine.schedule(delay, lambda: fired.append(round(engine.now, 9)))
        for boundary in boundaries:
            engine.run_until(boundary)
        return fired

    assert run([200.0]) == run(sorted([split, 200.0]))
