"""Property-based tests for the paper's laws (Eqs. 1-4, Listing 1.1)."""

import math

from hypothesis import given, strategies as st

from repro import FrequencyTable
from repro.core import laws
from repro.cpu.processor import make_states

ratios = st.floats(min_value=0.05, max_value=1.0, allow_nan=False)
cfs = st.floats(min_value=0.5, max_value=1.0, allow_nan=False)
credits = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)
loads = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


@st.composite
def freq_tables(draw):
    freqs = draw(
        st.lists(st.integers(min_value=200, max_value=5000), min_size=1, max_size=8, unique=True)
    )
    cf_min = draw(cfs)
    ordered = sorted(freqs)
    if len(ordered) == 1:
        cf_values = [1.0]
    else:
        low, high = ordered[0], ordered[-1]
        cf_values = [1.0 - (1.0 - cf_min) * (high - f) / (high - low) for f in ordered]
    return FrequencyTable(make_states(ordered, cf=cf_values))


@given(credit=credits, ratio=ratios, cf=cfs)
def test_eq4_compensation_preserves_absolute_capacity(credit, ratio, cf):
    # Eq. 4's whole point: compensated credit x effective speed == original.
    compensated = laws.compensated_credit(credit, ratio, cf)
    assert math.isclose(compensated * ratio * cf, credit, rel_tol=1e-9)


@given(credit=credits, ratio=ratios, cf=cfs)
def test_eq4_never_reduces_credit(credit, ratio, cf):
    assert laws.compensated_credit(credit, ratio, cf) >= credit - 1e-12


@given(load=loads, ratio=ratios, cf=cfs)
def test_eq1_round_trip(load, ratio, cf):
    nominal = laws.load_at_frequency(load, ratio, cf)
    assert math.isclose(laws.absolute_load(nominal, ratio, cf), load, abs_tol=1e-9)


@given(time=st.floats(min_value=0.1, max_value=1e6), ratio=ratios, cf=cfs)
def test_eq2_slower_frequency_never_speeds_up(time, ratio, cf):
    assert laws.execution_time_at_frequency(time, ratio, cf) >= time - 1e-9


@given(
    time=st.floats(min_value=0.1, max_value=1e6),
    c_init=credits,
    c_new=credits,
)
def test_eq3_monotone_in_credit(time, c_init, c_new):
    result = laws.execution_time_at_credit(time, c_init, c_new)
    if c_new >= c_init:
        assert result <= time + 1e-9
    else:
        assert result >= time - 1e-9


@given(table=freq_tables(), load=loads)
def test_listing11_always_returns_table_frequency(table, load):
    assert laws.compute_new_frequency(table, load) in table.frequencies


@given(table=freq_tables(), load=loads)
def test_listing11_choice_absorbs_load_or_is_max(table, load):
    freq = laws.compute_new_frequency(table, load)
    state = table.state_for(freq)
    capacity = state.capacity_fraction(table.max_state.freq_mhz) * 100.0
    if freq != table.max_state.freq_mhz:
        assert capacity > load


@given(table=freq_tables(), load_a=loads, load_b=loads)
def test_listing11_monotone_in_load(table, load_a, load_b):
    lo, hi = sorted((load_a, load_b))
    assert laws.compute_new_frequency(table, lo) <= laws.compute_new_frequency(table, hi)


@given(table=freq_tables(), load=loads, margin=st.floats(min_value=0.0, max_value=50.0))
def test_listing11_margin_never_lowers_choice(table, load, margin):
    plain = laws.compute_new_frequency(table, load)
    padded = laws.compute_new_frequency(table, load, margin_percent=margin)
    assert padded >= plain
