"""Property-based tests for governor safety invariants.

Whatever load sequence a governor sees, it must only ever request legal
P-states, and its decisions must respect its own contract (thresholds,
one-step-at-a-time, dwell).
"""

from hypothesis import given, settings, strategies as st

from repro import (
    ConservativeGovernor,
    CpuFreq,
    OndemandGovernor,
    Processor,
    StableGovernor,
)
from repro.cpu.processor import make_states, ProcessorSpec
from repro.sim import Engine

loads = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=50
)


@st.composite
def specs(draw):
    freqs = draw(
        st.lists(st.integers(min_value=400, max_value=4000), min_size=2, max_size=6, unique=True)
    )
    cf_min = draw(st.floats(min_value=0.6, max_value=1.0))
    ordered = sorted(freqs)
    low, high = ordered[0], ordered[-1]
    cfs = [1.0 - (1.0 - cf_min) * (high - f) / (high - low) for f in ordered]
    return ProcessorSpec(name="prop", states=make_states(ordered, cf=cfs))


def drive(governor, spec, load_sequence):
    engine = Engine()
    processor = Processor(spec)
    cpufreq = CpuFreq(engine, processor)
    governor.attach(cpufreq)
    chosen = []
    for index, load in enumerate(load_sequence):
        engine.run_until(float(index + 1))
        target = governor.decide(load, engine.now)
        if target is not None:
            cpufreq.set_speed(target)
        chosen.append(processor.frequency_mhz)
    return processor, chosen


@given(spec=specs(), load_sequence=loads)
@settings(max_examples=40, deadline=None)
def test_ondemand_always_requests_table_entries(spec, load_sequence):
    processor, chosen = drive(OndemandGovernor(), spec, load_sequence)
    table = spec.table()
    assert all(freq in table.frequencies for freq in chosen)


@given(spec=specs(), load_sequence=loads)
@settings(max_examples=40, deadline=None)
def test_ondemand_threshold_contract(spec, load_sequence):
    governor = OndemandGovernor()
    table = spec.table()
    engine = Engine()
    processor = Processor(spec)
    cpufreq = CpuFreq(engine, processor)
    governor.attach(cpufreq)
    for index, load in enumerate(load_sequence):
        engine.run_until(float(index + 1))
        target = governor.decide(load, engine.now)
        if load >= governor.up_threshold:
            assert target == table.max_state.freq_mhz
        elif load < governor.down_threshold:
            assert target == table.min_state.freq_mhz
        if target is not None:
            cpufreq.set_speed(target)


@given(spec=specs(), load_sequence=loads)
@settings(max_examples=40, deadline=None)
def test_conservative_moves_at_most_one_step(spec, load_sequence):
    table = spec.table()
    processor, chosen = drive(ConservativeGovernor(), spec, load_sequence)
    previous = table.max_state.freq_mhz  # processors boot at max
    for freq in chosen:
        index_prev = table.index_of(previous)
        index_now = table.index_of(freq)
        assert abs(index_now - index_prev) <= 1
        previous = freq


@given(spec=specs(), load_sequence=loads, dwell=st.floats(min_value=0.0, max_value=10.0))
@settings(max_examples=30, deadline=None)
def test_stable_respects_dwell(spec, load_sequence, dwell):
    governor = StableGovernor(window=1, dwell=dwell, sampling_period=1.0)
    engine = Engine()
    processor = Processor(spec)
    cpufreq = CpuFreq(engine, processor)
    governor.attach(cpufreq)
    last_change_time = None
    for index, load in enumerate(load_sequence):
        engine.run_until(float(index + 1))
        target = governor.decide(load, engine.now)
        if target is not None and cpufreq.set_speed(target):
            if last_change_time is not None:
                assert engine.now - last_change_time >= dwell - 1e-9
            last_change_time = engine.now


@given(spec=specs(), load_sequence=loads)
@settings(max_examples=30, deadline=None)
def test_stable_only_requests_table_entries(spec, load_sequence):
    processor, chosen = drive(StableGovernor(window=2, dwell=0.0), spec, load_sequence)
    assert all(freq in spec.table().frequencies for freq in chosen)
