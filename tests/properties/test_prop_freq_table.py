"""Property-based tests for frequency tables."""

from hypothesis import given, strategies as st

from repro import FrequencyTable
from repro.cpu.processor import make_states


@st.composite
def tables(draw):
    freqs = draw(
        st.lists(st.integers(min_value=100, max_value=6000), min_size=1, max_size=10, unique=True)
    )
    return FrequencyTable(make_states(sorted(freqs)))


@given(table=tables())
def test_states_strictly_ascending(table):
    freqs = list(table.frequencies)
    assert freqs == sorted(freqs)
    assert len(set(freqs)) == len(freqs)


@given(table=tables(), freq=st.integers(min_value=0, max_value=7000))
def test_clamp_is_lowest_at_or_above(table, freq):
    state = table.clamp(freq)
    if freq <= table.max_state.freq_mhz:
        assert state.freq_mhz >= freq
        below = [f for f in table.frequencies if f >= freq]
        assert state.freq_mhz == min(below)
    else:
        assert state is table.max_state


@given(table=tables(), freq=st.integers(min_value=0, max_value=7000))
def test_clamp_down_is_highest_at_or_below(table, freq):
    state = table.clamp_down(freq)
    if freq >= table.min_state.freq_mhz:
        assert state.freq_mhz <= freq
    else:
        assert state is table.min_state


@given(table=tables())
def test_step_up_down_are_adjacent(table):
    for index, state in enumerate(table):
        up = table.step_up(state.freq_mhz)
        down = table.step_down(state.freq_mhz)
        assert up.freq_mhz == table.frequencies[min(index + 1, len(table) - 1)]
        assert down.freq_mhz == table.frequencies[max(index - 1, 0)]


@given(table=tables())
def test_capacity_fraction_monotone(table):
    capacities = [table.capacity_fraction(f) for f in table.frequencies]
    assert capacities == sorted(capacities)
    assert capacities[-1] == 1.0
