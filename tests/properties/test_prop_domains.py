"""Property-based tests for frequency-domain coupling and idle accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import catalog, DomainSpec, FrequencyDomain, make_cstates
from repro.cpu.processor import make_states
from repro.cpu.power import PowerModel


def little_domain() -> FrequencyDomain:
    return FrequencyDomain(
        DomainSpec(
            name="little",
            cores=4,
            states=make_states([600, 1000, 1400], cf=1.0),
            power=PowerModel(2.5, 9.0),
            cstates=make_cstates(
                [("C1", 1.0, 0.0005), ("C2", 0.4, 0.002), ("C3", 0.1, 0.05)]
            ),
            capacity_scale=0.30,
        )
    )


@given(freqs=st.lists(st.sampled_from([600, 1000, 1400]), max_size=12))
@settings(max_examples=40, deadline=None)
def test_cores_never_disagree_with_their_domain_pstate(freqs):
    # The coupling invariant the issue names: after any sequence of
    # frequency changes, every core's capacity is its domain's P-state's.
    domain = little_domain()
    for freq in freqs:
        domain.set_frequency(freq)
        expected = domain.state.capacity_fraction(domain.table.max_state.freq_mhz)
        for core in range(domain.spec.cores):
            assert domain.core_capacity_fraction(core) == expected
        assert domain.freq_mhz == freq
        assert domain.capacity_percent == pytest.approx(
            expected * 100.0 * domain.spec.capacity_scale
        )


@given(
    epochs=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=20.0),
            st.floats(min_value=0.0, max_value=1.0),
            st.sampled_from([600, 1000, 1400]),
        ),
        max_size=20,
    )
)
@settings(max_examples=40, deadline=None)
def test_residency_plus_busy_always_sums_to_elapsed(epochs):
    # The accounting invariant: C-state residency (including shallow C0)
    # plus busy time covers the whole wall sim-time, at any P-state mix.
    domain = little_domain()
    for dt, util, freq in epochs:
        domain.set_frequency(freq)
        domain.account_epoch(dt, util)
    total = domain.busy_seconds + sum(domain.residency_s.values())
    assert total == pytest.approx(domain.elapsed_seconds, abs=1e-9)
    assert domain.energy_joules >= 0.0


@given(
    epochs=st.lists(
        st.tuples(
            st.floats(min_value=0.01, max_value=20.0),
            st.floats(min_value=0.0, max_value=1.0),
        ),
        min_size=1,
        max_size=10,
    )
)
@settings(max_examples=40, deadline=None)
def test_energy_is_bounded_by_the_pstate_power_envelope(epochs):
    # Every epoch's mean power sits between the deepest idle power and the
    # current P-state's full-load power.
    domain = little_domain()
    floor = min(state.power_w for state in domain.spec.cstates)
    for dt, util in epochs:
        joules = domain.account_epoch(dt, util)
        ceiling = domain.spec.power.power(domain.state, domain.table, 1.0)
        assert floor * dt - 1e-9 <= joules <= ceiling * dt + 1e-9


@given(freqs=st.lists(st.sampled_from([1000, 1400, 1800, 2000]), max_size=8))
@settings(max_examples=40, deadline=None)
def test_catalog_big_little_clusters_hold_the_coupling(freqs):
    # Same invariant on the shipped catalog part (both clusters).
    for spec in catalog.BIG_LITTLE_44.domains:
        domain = FrequencyDomain(spec)
        table_freqs = [state.freq_mhz for state in spec.states]
        for freq in freqs:
            snapped = domain.table.clamp(min(freq, table_freqs[-1]))
            domain.set_frequency(snapped.freq_mhz)
            fractions = {
                domain.core_capacity_fraction(core) for core in range(spec.cores)
            }
            assert len(fractions) == 1
