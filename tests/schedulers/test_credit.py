"""Unit tests for the Xen Credit scheduler."""

import pytest

from repro import CreditScheduler
from repro.errors import SchedulerError
from repro.workloads import ConstantLoad, PiApp

from ..conftest import make_host


def shares(host, duration, *names):
    host.run(until=duration)
    return {name: host.domain(name).cpu_seconds / duration for name in names}


def test_fix_credit_caps_consumption():
    # The paper's fix-credit property: at most the credit, even when alone.
    host = make_host(scheduler="credit")
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    result = shares(host, 10.0, "vm")
    assert result["vm"] == pytest.approx(0.20, abs=0.01)


def test_credit_guaranteed_under_contention():
    host = make_host(scheduler="credit")
    small = host.create_domain("small", credit=20)
    big = host.create_domain("big", credit=70)
    small.attach_workload(ConstantLoad(100, injection_period=0.01))
    big.attach_workload(ConstantLoad(100, injection_period=0.01))
    result = shares(host, 10.0, "small", "big")
    assert result["small"] == pytest.approx(0.20, abs=0.015)
    assert result["big"] == pytest.approx(0.70, abs=0.015)


def test_null_credit_vm_is_work_conserving():
    # §3.1: a null-credit VM "can use any CPU time slices that are not used
    # by other VMs".
    host = make_host(scheduler="credit")
    capped = host.create_domain("capped", credit=30)
    free = host.create_domain("free", credit=0)
    capped.attach_workload(ConstantLoad(100, injection_period=0.01))
    free.attach_workload(ConstantLoad(100, injection_period=0.01))
    result = shares(host, 10.0, "capped", "free")
    assert result["capped"] == pytest.approx(0.30, abs=0.02)
    assert result["free"] >= 0.65


def test_unused_slices_not_redistributed_to_capped_vms():
    # Fix credit: the idle V70 share must NOT flow to the capped V20.
    host = make_host(scheduler="credit")
    v20 = host.create_domain("V20", credit=20)
    host.create_domain("V70", credit=70)  # idle
    v20.attach_workload(ConstantLoad(100, injection_period=0.01))
    result = shares(host, 10.0, "V20")
    assert result["V20"] == pytest.approx(0.20, abs=0.01)


def test_weights_divide_cpu_proportionally():
    host = make_host(scheduler="credit")
    a = host.create_domain("a", credit=0, weight=100)
    b = host.create_domain("b", credit=0, weight=200)
    a.attach_workload(ConstantLoad(100, injection_period=0.01))
    b.attach_workload(ConstantLoad(100, injection_period=0.01))
    result = shares(host, 10.0, "a", "b")
    assert result["b"] / result["a"] == pytest.approx(2.0, rel=0.1)


def test_dom0_runs_first():
    host = make_host(scheduler="credit")
    dom0 = host.create_domain("Dom0", credit=10, dom0=True)
    guest = host.create_domain("guest", credit=0)
    dom0.attach_workload(ConstantLoad(8, injection_period=0.05))
    guest.attach_workload(ConstantLoad(100, injection_period=0.01))
    result = shares(host, 10.0, "Dom0", "guest")
    # Dom0's full (light) demand served despite a saturating guest.
    assert result["Dom0"] == pytest.approx(0.08, abs=0.01)


def test_dom0_cap_still_applies():
    host = make_host(scheduler="credit")
    dom0 = host.create_domain("Dom0", credit=10, dom0=True)
    guest = host.create_domain("guest", credit=0)
    dom0.attach_workload(ConstantLoad(50, injection_period=0.01))  # wants 50%
    guest.attach_workload(ConstantLoad(100, injection_period=0.01))
    result = shares(host, 10.0, "Dom0", "guest")
    assert result["Dom0"] == pytest.approx(0.10, abs=0.015)


def test_set_cap_at_runtime():
    host = make_host(scheduler="credit")
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=5.0)
    host.scheduler.set_cap(host.domain("vm"), 40.0)
    before = vm.cpu_seconds
    host.run(until=10.0)
    assert (vm.cpu_seconds - before) / 5.0 == pytest.approx(0.40, abs=0.02)


def test_cap_of_reports_current_cap():
    host = make_host(scheduler="credit")
    vm = host.create_domain("vm", credit=20)
    assert host.scheduler.cap_of(vm) == 20.0
    host.scheduler.set_cap(vm, 33.3)
    assert host.scheduler.cap_of(vm) == pytest.approx(33.3)


def test_negative_cap_rejected():
    host = make_host(scheduler="credit")
    vm = host.create_domain("vm", credit=20)
    with pytest.raises(SchedulerError):
        host.scheduler.set_cap(vm, -5.0)


def test_cap_above_100_effectively_uncapped():
    host = make_host(scheduler="credit")
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.scheduler.set_cap(vm, 150.0)
    result = shares(host, 10.0, "vm")
    assert result["vm"] >= 0.95


def test_cap_enforced_per_accounting_window():
    # Within any 3 accounting periods, a 20% cap must hold (not just long-run).
    host = make_host(scheduler="credit")
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.005))
    host.start()
    period = host.scheduler.accounting_period
    host.run(until=1.0)
    for k in range(10):
        start_usage = vm.cpu_seconds
        host.run(until=1.0 + (k + 1) * 3 * period)
        used = vm.cpu_seconds - start_usage
        assert used <= 0.20 * 3 * period + 0.002


def test_blocked_vcpu_accrues_no_credits():
    host = make_host(scheduler="credit")
    sleeper = host.create_domain("sleeper", credit=50)
    worker = host.create_domain("worker", credit=0)
    worker.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=5.0)
    # Blocked throughout: balance must not exceed the hoard clamp and the
    # worker must have received effectively the whole machine.
    assert worker.cpu_seconds / 5.0 >= 0.95
    assert host.scheduler.credits_of(sleeper) <= host.scheduler.credit_clamp + 1e-9


def test_admission_rejects_duplicate_vcpu():
    host = make_host(scheduler="credit")
    vm = host.create_domain("vm", credit=10)
    with pytest.raises(SchedulerError):
        host.scheduler.add_vcpu(vm.vcpu)


def test_remove_vcpu_forgets_account():
    host = make_host(scheduler="credit")
    vm = host.create_domain("vm", credit=10)
    host.scheduler.remove_vcpu(vm.vcpu)
    with pytest.raises(SchedulerError):
        host.scheduler.cap_of(vm)


def test_charge_unknown_vcpu_raises():
    host = make_host(scheduler="credit")
    other_host = make_host(scheduler="credit")
    foreign = other_host.create_domain("foreign", credit=10)
    with pytest.raises(SchedulerError):
        host.scheduler.charge(foreign.vcpu, 0.01, 0.0)


def test_quantum_and_periods_configurable():
    scheduler = CreditScheduler(quantum=0.05, tick_interval=0.005, ticks_per_accounting=4)
    assert scheduler.quantum == 0.05
    assert scheduler.accounting_period == pytest.approx(0.02)


def test_pi_app_completion_time_under_cap():
    host = make_host(scheduler="credit")
    vm = host.create_domain("vm", credit=25)
    app = PiApp(1.0)
    vm.attach_workload(app)
    host.run(until=10.0)
    assert app.execution_time == pytest.approx(4.0, rel=0.02)


def test_stats_track_charges():
    host = make_host(scheduler="credit")
    vm = host.create_domain("vm", credit=50)
    vm.attach_workload(PiApp(0.5))
    host.run(until=5.0)
    # 0.5 absolute seconds at max frequency = 0.5 seconds of CPU time
    # (the 50% cap stretches the wall-clock, not the CPU time).
    assert host.scheduler.stats.charged_seconds == pytest.approx(0.5, rel=0.05)
    assert host.scheduler.stats.charged_by_domain["vm"] == pytest.approx(0.5, rel=0.05)
