"""SEDF weight control: the QoS-controller surface on the EDF scheduler."""

import pytest

from repro.errors import SchedulerError
from repro.workloads import ConstantLoad

from ..conftest import make_host


def shares(host, duration, *names):
    host.run(until=duration)
    return {name: host.domain(name).cpu_seconds / duration for name in names}


def test_initial_weight_mirrors_the_credit_allocation():
    host = make_host(scheduler="sedf")
    vm = host.create_domain("vm", credit=30, sedf_extra=False)
    assert host.scheduler.weight_of(vm) == vm.config.effective_weight


def test_doubling_the_weight_doubles_the_guaranteed_slice():
    host = make_host(scheduler="sedf")
    vm = host.create_domain("vm", credit=20, sedf_extra=False)
    host.create_domain("other", credit=30, sedf_extra=False)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.scheduler.set_weight(vm, 2 * host.scheduler.weight_of(vm))
    result = shares(host, 10.0, "vm")
    assert result["vm"] == pytest.approx(0.40, abs=0.02)


def test_halving_the_weight_halves_the_slice():
    host = make_host(scheduler="sedf")
    vm = host.create_domain("vm", credit=40, sedf_extra=False)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.scheduler.set_weight(vm, 0.5 * host.scheduler.weight_of(vm))
    result = shares(host, 10.0, "vm")
    assert result["vm"] == pytest.approx(0.20, abs=0.02)


def test_boost_then_restore_returns_the_booked_share():
    host = make_host(scheduler="sedf")
    vm = host.create_domain("vm", credit=30, sedf_extra=False)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    base = host.scheduler.weight_of(vm)
    host.scheduler.set_weight(vm, 3 * base)
    host.scheduler.set_weight(vm, base)
    assert host.scheduler.weight_of(vm) == base
    result = shares(host, 10.0, "vm")
    assert result["vm"] == pytest.approx(0.30, abs=0.02)


def test_weight_growth_is_clamped_to_edf_feasibility():
    # Two 40 % reservations leave 60 % of the period free: boosting one
    # domain 10x cannot overbook the EDF schedule past 100 % utilisation.
    host = make_host(scheduler="sedf")
    a = host.create_domain("a", credit=40, sedf_extra=False)
    b = host.create_domain("b", credit=40, sedf_extra=False)
    for domain in (a, b):
        domain.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.scheduler.set_weight(a, 10 * host.scheduler.weight_of(a))
    result = shares(host, 10.0, "a", "b")
    # a grows only into the free 20 %; b's guarantee survives untouched.
    assert result["a"] == pytest.approx(0.60, abs=0.03)
    assert result["b"] == pytest.approx(0.40, abs=0.03)


def test_non_positive_weights_are_rejected():
    host = make_host(scheduler="sedf")
    vm = host.create_domain("vm", credit=30, sedf_extra=False)
    with pytest.raises(SchedulerError):
        host.scheduler.set_weight(vm, 0.0)
    with pytest.raises(SchedulerError):
        host.scheduler.set_weight(vm, -1.0)


def test_unadmitted_domains_are_rejected():
    host = make_host(scheduler="sedf")
    other = make_host(scheduler="sedf")
    stranger = other.create_domain("stranger", credit=30, sedf_extra=False)
    with pytest.raises(SchedulerError):
        host.scheduler.set_weight(stranger, 2.0)
    with pytest.raises(SchedulerError):
        host.scheduler.weight_of(stranger)


def test_all_three_schedulers_expose_the_weight_surface():
    # The QoS controllers call set_weight/weight_of polymorphically; every
    # registered scheduler must answer.
    for scheduler in ("credit", "pas", "sedf"):
        host = make_host(scheduler=scheduler)
        vm = host.create_domain("vm", credit=30, sedf_extra=False)
        base = host.scheduler.weight_of(vm)
        assert base > 0
        host.scheduler.set_weight(vm, 2 * base)
        assert host.scheduler.weight_of(vm) == 2 * base
