"""Fidelity tests for preemption decisions (credit BOOST, SEDF EDF)."""

import pytest

from repro.workloads import ConstantLoad

from ..conftest import make_host


def test_credit_waking_under_preempts_over():
    # Xen's BOOST: an I/O-ish VM that wakes with credit left preempts a
    # CPU hog that has burnt through its balance.
    host = make_host(scheduler="credit")
    hog = host.create_domain("hog", credit=0, weight=10)
    sleeper = host.create_domain("sleeper", credit=50)
    hog.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.start()
    host.run(until=1.005)  # hog is mid-slice, deeply OVER
    scheduler = host.scheduler
    assert scheduler.credits_of(hog) < 0
    before = host.preemptions
    sleeper.add_work(0.001)  # wakes UNDER (fresh credits accrue on wake)
    # sleeper accrued no credits while blocked, so the boost only fires
    # once accounting has granted it credit; drive one accounting period.
    host.run(until=1.05)
    assert sleeper.cpu_seconds > 0.0
    assert host.preemptions >= before


def test_credit_waking_parked_vcpu_does_not_preempt():
    host = make_host(scheduler="credit")
    hog = host.create_domain("hog", credit=0)
    capped = host.create_domain("capped", credit=10)
    hog.attach_workload(ConstantLoad(100, injection_period=0.01))
    capped.attach_workload(ConstantLoad(100, injection_period=0.005))
    host.run(until=2.0)
    # The capped VM still gets exactly its share despite constant wakes.
    assert capped.cpu_seconds / 2.0 == pytest.approx(0.10, abs=0.02)


def test_sedf_earlier_deadline_preempts():
    host = make_host(scheduler="sedf")
    long_period = host.create_domain("long", credit=50, sedf_period=0.4, sedf_extra=False)
    short_period = host.create_domain("short", credit=20, sedf_period=0.05, sedf_extra=False)
    long_period.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.start()
    host.run(until=1.002)  # long is mid-slice (its slice is 200ms)
    before = host.preemptions
    short_period.add_work(0.5)
    host.run(until=1.4)
    # The 50ms-period vCPU must have run well before 'long' exhausted its
    # 200ms slice, i.e. a preemption happened and it met its utilization.
    assert host.preemptions > before
    assert short_period.cpu_seconds >= 0.35 * 0.2 - 0.03


def test_sedf_guaranteed_time_preempts_extra_time():
    host = make_host(scheduler="sedf")
    extra_user = host.create_domain("extra", credit=10, sedf_extra=True)
    guaranteed = host.create_domain("guaranteed", credit=50, sedf_extra=False)
    extra_user.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.start()
    host.run(until=1.0)
    # 'extra' is coasting on extra time (its guarantee is only 10%).
    assert extra_user.cpu_seconds / 1.0 > 0.9
    guaranteed.add_work(1.0)
    start = guaranteed.cpu_seconds
    host.run(until=1.2)
    # The guaranteed vCPU gets its slices immediately.
    assert guaranteed.cpu_seconds - start >= 0.5 * 0.2 - 0.03


def test_dom0_wake_latency_bounded_under_saturation():
    host = make_host(scheduler="credit")
    dom0 = host.create_domain("Dom0", credit=10, dom0=True)
    hog = host.create_domain("hog", credit=0)
    hog.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.start()
    host.run(until=2.003)
    dom0.add_work(0.005)
    # Dom0 preempts instantly (higher class) and serves up to its per-period
    # cap budget (10% of 30ms = 3ms) right away...
    host.run(until=2.01)
    assert dom0.work_done == pytest.approx(0.003, abs=1e-4)
    # ...and the remainder in the next accounting period (still capped).
    host.run(until=2.06)
    assert dom0.work_done == pytest.approx(0.005, abs=1e-4)
