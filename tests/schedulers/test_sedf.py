"""Unit tests for the SEDF scheduler."""

import pytest

from repro.errors import AdmissionError
from repro.workloads import ConstantLoad, PiApp

from ..conftest import make_host


def shares(host, duration, *names):
    host.run(until=duration)
    return {name: host.domain(name).cpu_seconds / duration for name in names}


def test_guaranteed_slice_respected():
    host = make_host(scheduler="sedf")
    vm = host.create_domain("vm", credit=30, sedf_extra=False)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    result = shares(host, 10.0, "vm")
    assert result["vm"] == pytest.approx(0.30, abs=0.02)


def test_extra_flag_enables_work_conserving():
    # §3.1 variable credit: with b=1, unused slices go to the active VM.
    host = make_host(scheduler="sedf")
    vm = host.create_domain("vm", credit=30, sedf_extra=True)
    host.create_domain("idle", credit=60, sedf_extra=True)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    result = shares(host, 10.0, "vm")
    assert result["vm"] >= 0.95


def test_no_extra_without_flag():
    host = make_host(scheduler="sedf")
    vm = host.create_domain("vm", credit=30, sedf_extra=False)
    host.create_domain("idle", credit=60, sedf_extra=False)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    result = shares(host, 10.0, "vm")
    assert result["vm"] == pytest.approx(0.30, abs=0.02)


def test_guarantees_hold_under_full_contention():
    host = make_host(scheduler="sedf")
    a = host.create_domain("a", credit=20, sedf_extra=True)
    b = host.create_domain("b", credit=70, sedf_extra=True)
    c = host.create_domain("c", credit=10, sedf_extra=False)
    for domain in (a, b, c):
        domain.attach_workload(ConstantLoad(100, injection_period=0.01))
    result = shares(host, 10.0, "a", "b", "c")
    assert result["a"] >= 0.185
    assert result["b"] >= 0.665
    assert result["c"] >= 0.09


def test_extra_time_shared_round_robin():
    host = make_host(scheduler="sedf")
    a = host.create_domain("a", credit=10, sedf_extra=True)
    b = host.create_domain("b", credit=10, sedf_extra=True)
    a.attach_workload(ConstantLoad(100, injection_period=0.01))
    b.attach_workload(ConstantLoad(100, injection_period=0.01))
    result = shares(host, 10.0, "a", "b")
    # Equal guarantees + fair extra ring -> about half each.
    assert result["a"] == pytest.approx(0.5, abs=0.05)
    assert result["b"] == pytest.approx(0.5, abs=0.05)


def test_admission_control_rejects_over_commitment():
    host = make_host(scheduler="sedf")
    host.create_domain("a", credit=70)
    host.create_domain("b", credit=30)
    with pytest.raises(AdmissionError):
        host.create_domain("c", credit=10)


def test_admission_exactly_100_percent_allowed():
    host = make_host(scheduler="sedf")
    host.create_domain("a", credit=20)
    host.create_domain("b", credit=70)
    host.create_domain("c", credit=10)  # sums to exactly 1.0


def test_custom_period_keeps_utilization():
    host = make_host(scheduler="sedf")
    vm = host.create_domain("vm", credit=25, sedf_period=0.2, sedf_extra=False)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    result = shares(host, 10.0, "vm")
    assert result["vm"] == pytest.approx(0.25, abs=0.02)


def test_sleeping_vcpu_does_not_bank_budget():
    host = make_host(scheduler="sedf")
    vm = host.create_domain("vm", credit=50, sedf_extra=False)
    other = host.create_domain("other", credit=50, sedf_extra=False)
    other.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.start()
    host.run(until=5.0)
    # vm slept for 5s; once it wakes it gets one period's slice, not 25.
    vm.attach_workload  # no-op: direct add_work below
    host.domain("vm").add_work(10.0)
    start = vm.cpu_seconds
    host.run(until=5.3)
    # In 0.3s it can get at most ~3 periods' slices (plus one partial).
    assert vm.cpu_seconds - start <= 0.5 * 0.3 + 0.06


def test_edf_meets_deadlines_when_schedulable():
    host = make_host(scheduler="sedf")
    a = host.create_domain("a", credit=40, sedf_period=0.1, sedf_extra=False)
    b = host.create_domain("b", credit=50, sedf_period=0.2, sedf_extra=False)
    a.attach_workload(ConstantLoad(100, injection_period=0.005))
    b.attach_workload(ConstantLoad(100, injection_period=0.005))
    host.start()
    host.run(until=2.0)
    # Over any window >> periods, each gets at least its utilization share.
    starts = {name: host.domain(name).cpu_seconds for name in ("a", "b")}
    host.run(until=4.0)
    for name, utilization in (("a", 0.40), ("b", 0.50)):
        got = (host.domain(name).cpu_seconds - starts[name]) / 2.0
        assert got >= utilization - 0.03


def test_pi_app_execution_time_with_guarantee():
    host = make_host(scheduler="sedf")
    vm = host.create_domain("vm", credit=25, sedf_extra=False)
    host.create_domain("rest", credit=75, sedf_extra=False)
    app = PiApp(1.0)
    vm.attach_workload(app)
    host.run(until=10.0)
    assert app.execution_time == pytest.approx(4.0, rel=0.05)


def test_set_cap_is_accepted_noop():
    host = make_host(scheduler="sedf")
    vm = host.create_domain("vm", credit=30)
    host.scheduler.set_cap(vm, 55.0)  # must not raise
    assert host.scheduler.cap_of(vm) == 0.0  # SEDF has no cap notion


def test_remaining_and_deadline_queries():
    host = make_host(scheduler="sedf")
    vm = host.create_domain("vm", credit=30)
    host.start()
    host.domain("vm").add_work(1.0)
    host.run(until=0.05)
    assert host.scheduler.deadline_of(vm.vcpu) > 0.0
    assert host.scheduler.remaining_of(vm.vcpu) >= 0.0
