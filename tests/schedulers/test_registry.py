"""Unit tests for the scheduler registry."""

import pytest

from repro import make_scheduler, SCHEDULER_NAMES
from repro.core import PasScheduler
from repro.errors import ConfigurationError


def test_all_names_instantiate():
    for name in SCHEDULER_NAMES:
        assert make_scheduler(name).name == name


def test_names_cover_paper_schedulers():
    assert set(SCHEDULER_NAMES) == {"credit", "credit2", "sedf", "pas"}


def test_pas_resolves_lazily_to_core_class():
    assert isinstance(make_scheduler("pas"), PasScheduler)


def test_unknown_name_raises():
    with pytest.raises(ConfigurationError):
        make_scheduler("cfs")


def test_kwargs_forwarded():
    scheduler = make_scheduler("credit", quantum=0.05)
    assert scheduler.quantum == 0.05
