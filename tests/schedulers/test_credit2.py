"""Unit tests for the simplified Credit2 scheduler."""

import pytest

from repro.workloads import ConstantLoad

from ..conftest import make_host


def shares(host, duration, *names):
    host.run(until=duration)
    return {name: host.domain(name).cpu_seconds / duration for name in names}


def test_weighted_fair_sharing():
    host = make_host(scheduler="credit2")
    a = host.create_domain("a", credit=20)
    b = host.create_domain("b", credit=60)
    a.attach_workload(ConstantLoad(100, injection_period=0.01))
    b.attach_workload(ConstantLoad(100, injection_period=0.01))
    result = shares(host, 10.0, "a", "b")
    assert result["b"] / result["a"] == pytest.approx(3.0, rel=0.15)


def test_work_conserving_no_caps():
    # Credit2 (4.1-era beta) cannot enforce a fixed credit at all.
    host = make_host(scheduler="credit2")
    vm = host.create_domain("vm", credit=20)
    host.create_domain("idle", credit=70)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    result = shares(host, 10.0, "vm")
    assert result["vm"] >= 0.95


def test_set_cap_ignored():
    host = make_host(scheduler="credit2")
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.scheduler.set_cap(vm, 10.0)
    result = shares(host, 5.0, "vm")
    assert result["vm"] >= 0.95  # cap had no effect


def test_single_vcpu_gets_everything():
    host = make_host(scheduler="credit2")
    vm = host.create_domain("vm", credit=50)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    result = shares(host, 5.0, "vm")
    assert result["vm"] >= 0.97


def test_credit_resets_occur():
    host = make_host(scheduler="credit2")
    vm = host.create_domain("vm", credit=50)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=5.0)
    assert host.scheduler.resets > 0


def test_blocked_vcpu_not_picked():
    host = make_host(scheduler="credit2")
    worker = host.create_domain("worker", credit=50)
    host.create_domain("sleeper", credit=50)
    worker.attach_workload(ConstantLoad(100, injection_period=0.01))
    result = shares(host, 5.0, "worker", "sleeper")
    assert result["worker"] >= 0.95
    assert result["sleeper"] == 0.0


def test_equal_weights_split_evenly():
    host = make_host(scheduler="credit2")
    a = host.create_domain("a", credit=50)
    b = host.create_domain("b", credit=50)
    a.attach_workload(ConstantLoad(100, injection_period=0.01))
    b.attach_workload(ConstantLoad(100, injection_period=0.01))
    result = shares(host, 10.0, "a", "b")
    assert result["a"] == pytest.approx(0.5, abs=0.05)


def test_credits_query():
    host = make_host(scheduler="credit2")
    vm = host.create_domain("vm", credit=50)
    assert host.scheduler.credits_of(vm.vcpu) > 0.0
