"""Controller-on runs must stay deterministic and observation-neutral.

The contract mirrors ``tests/obs/test_determinism.py``: (1) a qos sweep
exports byte-identically across serial/parallel and cold/store-resumed
executions; (2) installing a tracer or metrics registry during a
controller-on run never changes the exported results; (3) controller
decisions are a pure function of (spec, seed).
"""

import pytest

from repro.cluster.scenario import run_cluster_scenario
from repro.experiments import get_preset, run_scenario
from repro.obs import MetricsRegistry, observed, Tracer
from repro.sweep import SweepGrid, SweepRunner


_QOS_METRICS = ("qos", "qos_control")


def _qos_grid() -> SweepGrid:
    base = get_preset("qos-noisy-neighbor").config.with_changes(duration=60.0)
    return SweepGrid({"qos": ["none", "naive", "ladder"]}, base=base)


def test_serial_and_parallel_qos_sweeps_match():
    exports = {}
    for workers in (1, 2):
        registry = MetricsRegistry()
        with observed(metrics=registry):
            results = SweepRunner(
                _qos_grid(), workers=workers, metrics=_QOS_METRICS
            ).run()
        exports[workers] = results.to_json()
        assert registry.counter("sweep.cells") == 3
    assert exports[1] == exports[2]


def test_cold_and_resumed_qos_sweeps_match(tmp_path):
    store = tmp_path / "store"
    exports = {}
    hits = {}
    for phase in ("cold", "resumed"):
        registry = MetricsRegistry()
        with observed(metrics=registry):
            results = SweepRunner(
                _qos_grid(), store=store, metrics=_QOS_METRICS
            ).run()
        exports[phase] = results.to_json()
        hits[phase] = registry.counter("store.cache_hits")
    assert exports["cold"] == exports["resumed"]
    assert hits == {"cold": 0, "resumed": 3}


def test_controller_decisions_are_reproducible():
    config = get_preset("qos-noisy-neighbor").config.with_changes(duration=120.0)
    ledgers = []
    for _ in range(2):
        result = run_scenario(config)
        stats = result.host.qos_controller.stats
        ledgers.append(
            (stats.decisions, stats.steps_down, stats.steps_up, stats.contention_peak)
        )
    assert ledgers[0] == ledgers[1]


def test_observation_does_not_change_qos_results():
    config = get_preset("qos-noisy-neighbor").config.with_changes(duration=60.0)
    plain = run_scenario(config)
    tracer = Tracer()
    registry = MetricsRegistry()
    with observed(tracer=tracer, metrics=registry):
        watched = run_scenario(config)
    assert watched.energy_joules == pytest.approx(plain.energy_joules, abs=0.0)
    plain_stats = plain.host.qos_controller.stats
    watched_stats = watched.host.qos_controller.stats
    assert watched_stats.steps_down == plain_stats.steps_down
    assert watched_stats.contention_peak == plain_stats.contention_peak


def test_qos_trace_is_byte_identical_across_runs():
    config = get_preset("qos-noisy-neighbor").config.with_changes(duration=60.0)
    documents = []
    for _ in range(2):
        tracer = Tracer(categories=("qos",))
        with observed(tracer=tracer):
            run_scenario(config)
        documents.append(tracer.to_json())
    assert documents[0] == documents[1]
    assert "qos_decision" in documents[0] or "qos" in documents[0]


def test_qos_metrics_snapshot_is_identical_across_runs():
    from repro.obs import collect_outcome

    config = get_preset("qos-noisy-neighbor").config.with_changes(duration=60.0)
    snapshots = []
    for _ in range(2):
        registry = MetricsRegistry()
        with observed(metrics=registry):
            result = run_scenario(config)
        collect_outcome(registry, result)
        snapshots.append(registry.to_json())
    assert snapshots[0] == snapshots[1]
    assert "qos.steps_down" in snapshots[0]


def test_cluster_qos_trace_is_byte_identical_across_runs():
    from repro.cluster.scenario import ClusterScenarioConfig

    config = ClusterScenarioConfig.from_dict(
        get_preset("dc-diurnal-small").config.to_dict()
    ).with_changes(qos="ladder", lc_vms=2)
    documents = []
    for _ in range(2):
        tracer = Tracer()
        with observed(tracer=tracer):
            run_cluster_scenario(config)
        documents.append(tracer.to_json())
    assert documents[0] == documents[1]
