"""Unit tests for the contention monitor (the sensor half of the loop)."""

import pytest

from repro.errors import ConfigurationError
from repro.qos import ContentionMonitor, make_controller
from repro.workloads import ConstantLoad

from ..conftest import make_host


def monitored_host(*, lc_load=None, be_load=None, controller="none", **kwargs):
    """A host with one LC and one BE guest and a started monitor."""
    host = make_host()
    lc = host.create_domain("web", credit=30)
    be = host.create_domain("batch", credit=0)
    if lc_load is not None:
        lc.attach_workload(ConstantLoad(lc_load, injection_period=0.02))
    if be_load is not None:
        be.attach_workload(ConstantLoad(be_load, injection_period=0.02))
    ctrl = make_controller(controller)
    ctrl.bind(host, [lc], [be])
    monitor = ContentionMonitor(host, ctrl, [lc], host.recorder, **kwargs)
    monitor.start()
    return host, ctrl, monitor


def test_monitor_rejects_empty_window():
    host = make_host()
    controller = make_controller("none")
    with pytest.raises(ConfigurationError, match="window"):
        ContentionMonitor(host, controller, [], window=0)


def test_monitor_rejects_non_positive_period():
    host = make_host()
    controller = make_controller("none")
    with pytest.raises(ConfigurationError):
        ContentionMonitor(host, controller, [], period=0.0)


def test_monitor_samples_on_its_cadence():
    host, controller, _ = monitored_host(lc_load=10.0, period=1.0)
    host.run(until=20.0)
    # One control decision per period (the t=0 tick fires before any load).
    assert controller.stats.decisions == pytest.approx(20, abs=1)


def test_idle_lc_guest_scores_zero():
    host, controller, _ = monitored_host(lc_load=None, be_load=80.0)
    host.run(until=20.0)
    assert controller.stats.contention_peak == 0.0
    assert host.recorder.series("qos.score").max() == 0.0


def test_content_lc_guest_scores_low():
    # 10% demand against a 30% booking: no backlog, no starvation.
    host, controller, _ = monitored_host(lc_load=10.0)
    host.run(until=20.0)
    assert controller.stats.contention_peak < 0.3


def test_starved_lc_guest_scores_high():
    # Demand far above the booked share piles up backlog behind the cap.
    host, controller, _ = monitored_host(lc_load=90.0)
    host.run(until=20.0)
    assert controller.stats.contention_peak > 0.6


def test_scores_stay_in_unit_interval():
    host, _, _ = monitored_host(lc_load=95.0, be_load=95.0)
    host.run(until=30.0)
    for series in ("qos.contention", "qos.score"):
        trace = host.recorder.series(series)
        assert trace.min() >= 0.0
        assert trace.max() <= 1.0


def test_windowing_smooths_the_raw_signal():
    host, _, _ = monitored_host(lc_load=90.0, window=5)
    host.run(until=10.0)
    raw = host.recorder.series("qos.contention")
    smooth = host.recorder.series("qos.score")
    # The window mean lags the raw signal on the rising edge.
    assert smooth.values[3] < raw.values[3]


def test_monitor_stop_halts_sampling():
    host, controller, monitor = monitored_host(lc_load=50.0)
    host.run(until=5.0)
    monitor.stop()
    seen = controller.stats.decisions
    host.run(until=15.0)
    assert controller.stats.decisions == seen


def test_closed_loop_relieves_starvation():
    # End to end on a raw host: a starved LC guest trips the ladder, BE caps
    # step down, and the LC guest's backlog drains.
    host, controller, _ = monitored_host(
        lc_load=60.0, be_load=80.0, controller="ladder"
    )
    host.run(until=60.0)
    assert controller.stats.steps_down >= 1
    late = host.recorder.series("qos.score").window(40, 60).mean()
    assert late < controller.stats.contention_peak
