"""Unit tests for the QoS controllers and the shared quota ladder."""

import pytest

from repro.errors import ConfigurationError
from repro.qos import (
    CONTROLLER_REGISTRY,
    LadderController,
    NaiveController,
    NoneController,
    QuotaLadder,
    controller_names,
    make_controller,
)

from ..conftest import make_host


# --------------------------------------------------------------- QuotaLadder


def test_ladder_rejects_levels_not_starting_at_one():
    with pytest.raises(ConfigurationError):
        QuotaLadder(levels=(0.9, 0.5))


def test_ladder_rejects_non_decreasing_levels():
    with pytest.raises(ConfigurationError):
        QuotaLadder(levels=(1.0, 0.5, 0.5))


def test_ladder_rejects_inverted_hysteresis():
    with pytest.raises(ConfigurationError):
        QuotaLadder(high=0.2, low=0.6)


def test_ladder_steps_one_rung_at_a_time():
    ladder = QuotaLadder(levels=(1.0, 0.8, 0.6), high=0.6, low=0.2, cooldown_s=0.0)
    assert ladder.step(0.0, 0.9) == 0.8
    assert ladder.step(1.0, 0.9) == 0.6
    assert ladder.step(2.0, 0.9) is None  # bottom rung
    assert ladder.fraction == 0.6


def test_ladder_cooldown_blocks_back_to_back_steps():
    ladder = QuotaLadder(high=0.6, low=0.2, cooldown_s=5.0)
    assert ladder.step(0.0, 1.0) is not None
    assert ladder.step(2.0, 1.0) is None  # inside the cooldown
    assert ladder.step(5.0, 1.0) is not None


def test_ladder_dead_band_holds_level():
    ladder = QuotaLadder(high=0.6, low=0.2, cooldown_s=0.0)
    ladder.step(0.0, 0.9)
    assert ladder.level == 1
    assert ladder.step(1.0, 0.4) is None  # between low and high: no move
    assert ladder.level == 1
    assert ladder.step(2.0, 0.1) == 1.0
    assert ladder.level == 0


# ------------------------------------------------------------------ registry


def test_registry_names():
    assert controller_names() == ("none", "naive", "ladder")
    assert set(CONTROLLER_REGISTRY) == {"none", "naive", "ladder"}


def test_make_controller_builds_each_registered_name():
    assert isinstance(make_controller("none"), NoneController)
    assert isinstance(make_controller("naive"), NaiveController)
    assert isinstance(make_controller("ladder"), LadderController)


def test_make_controller_unknown_name_lists_choices():
    with pytest.raises(ConfigurationError, match="none.*naive.*ladder"):
        make_controller("aggressive")


def test_make_controller_forwards_kwargs():
    controller = make_controller("ladder", high=0.8, low=0.1, cooldown_s=2.0)
    assert controller._ladder.high == 0.8


def test_naive_rejects_bad_threshold():
    with pytest.raises(ConfigurationError):
        make_controller("naive", threshold=1.5)


# ------------------------------------------------------------------- binding


def bound(name, **kwargs):
    host = make_host()
    lc = host.create_domain("web", credit=30)
    be = host.create_domain("batch", credit=40)
    controller = make_controller(name, **kwargs)
    controller.bind(host, [lc], [be])
    return host, lc, be, controller


def test_controller_host_raises_before_bind():
    with pytest.raises(ConfigurationError, match="not bound"):
        make_controller("ladder").host


def test_controller_rejects_double_bind():
    host, lc, be, controller = bound("ladder")
    with pytest.raises(ConfigurationError, match="bound twice"):
        controller.bind(host, [lc], [be])


def test_none_controller_only_counts():
    _, _, _, controller = bound("none")
    controller.control(1.0, 0.9)
    controller.control(2.0, 0.9)
    assert controller.stats.decisions == 2
    assert controller.stats.steps_down == 0
    assert controller.quota_fraction() == 1.0
    assert controller.stats.contention_peak == 0.9


# ----------------------------------------------------------------- actuation


def test_naive_throttles_be_and_boosts_lc():
    host, lc, be, controller = bound("naive", lc_boost=2.0)
    scheduler = host.scheduler
    be_cap = scheduler.cap_of(be)
    lc_weight = scheduler.weight_of(lc)
    controller.control(1.0, 0.9)
    assert controller.stats.steps_down == 1
    assert controller.quota_fraction() == pytest.approx(0.8)
    assert scheduler.cap_of(be) == pytest.approx(be_cap * 0.8)
    assert scheduler.cap_of(lc) == 0.0  # uncapped during the episode
    assert scheduler.weight_of(lc) == pytest.approx(lc_weight * 2.0)


def test_naive_restores_baselines_exactly():
    host, lc, be, controller = bound("naive")
    scheduler = host.scheduler
    baseline = (scheduler.cap_of(be), scheduler.cap_of(lc), scheduler.weight_of(lc))
    controller.control(1.0, 0.9)
    controller.control(2.0, 0.0)
    assert controller.quota_fraction() == 1.0
    assert controller.stats.steps_up == 1
    assert controller.stats.lc_sla_saves == 1
    after = (scheduler.cap_of(be), scheduler.cap_of(lc), scheduler.weight_of(lc))
    assert after == baseline


def test_naive_respects_floor():
    _, _, _, controller = bound("naive", step=0.5, floor=0.25)
    for t in range(1, 6):
        controller.control(float(t), 1.0)
    assert controller.quota_fraction() == pytest.approx(0.25)


def test_ladder_controller_walks_the_ladder():
    host, lc, be, controller = bound("ladder", cooldown_s=0.0)
    scheduler = host.scheduler
    be_cap = scheduler.cap_of(be)
    controller.control(1.0, 0.9)
    controller.control(2.0, 0.9)
    assert controller.level == 2
    assert controller.stats.steps_down == 2
    assert scheduler.cap_of(be) == pytest.approx(be_cap * 0.6)
    controller.control(3.0, 0.0)
    controller.control(4.0, 0.0)
    assert controller.level == 0
    assert controller.stats.lc_sla_saves == 1
    assert scheduler.cap_of(be) == pytest.approx(be_cap)


def test_ladder_controller_honours_cooldown():
    _, _, _, controller = bound("ladder", cooldown_s=10.0)
    controller.control(1.0, 0.9)
    controller.control(2.0, 0.9)  # inside cooldown: no second step
    assert controller.stats.steps_down == 1
    assert controller.level == 1


def test_stats_accrue_time_at_level():
    _, _, _, controller = bound("ladder", cooldown_s=0.0)
    controller.control(0.0, 0.9)  # -> level 1 (no prior sample to charge)
    controller.control(5.0, 0.4)  # 5 s at level 1, dead band holds
    controller.control(8.0, 0.0)  # 3 s more at level 1, then restore
    stats = controller.stats
    assert stats.time_at_level[1] == pytest.approx(8.0)
    assert stats.time_throttled_s == pytest.approx(8.0)


def test_uncapped_be_guest_throttles_against_its_credit():
    host = make_host()
    lc = host.create_domain("web", credit=30)
    be = host.create_domain("batch", credit=50)
    host.scheduler.set_cap(be, 0.0)  # running uncapped (the null-credit case)
    controller = make_controller("naive")
    controller.bind(host, [lc], [be])
    controller.control(1.0, 0.9)
    # cap 0 means "no cap", so the booked credit is the 100% point instead.
    assert host.scheduler.cap_of(be) == pytest.approx(be.credit * 0.8)
