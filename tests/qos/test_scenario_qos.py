"""QoS through the experiment layer: specs, wiring, presets, acceptance."""

import pytest

from repro.cluster.scenario import ClusterScenarioConfig, run_cluster_scenario
from repro.errors import ConfigurationError
from repro.experiments import get_preset, run_scenario
from repro.experiments.scenario import (
    GuestSpec,
    ScenarioConfig,
    WorkloadSpec,
    build_scenario,
)


def qos_config(**changes) -> ScenarioConfig:
    """The noisy-neighbor preset, shortened for unit-test budgets."""
    return get_preset("qos-noisy-neighbor").config.with_changes(
        duration=60.0, **changes
    )


# ---------------------------------------------------------------- GuestSpec


def test_guest_spec_defaults_to_best_effort():
    spec = GuestSpec(name="vm", credit=20.0)
    assert spec.service_class == "be"
    assert "service_class" not in spec.to_dict()  # byte-identity of old specs


def test_guest_spec_service_class_round_trips():
    spec = GuestSpec(name="web", credit=30.0, service_class="lc")
    data = spec.to_dict()
    assert data["service_class"] == "lc"
    assert GuestSpec.from_dict(data) == spec


def test_guest_spec_rejects_unknown_service_class():
    with pytest.raises(ConfigurationError, match="service class"):
        GuestSpec(name="vm", credit=20.0, service_class="gold")


def test_guest_spec_describe_marks_lc_guests():
    lc = GuestSpec(name="web", credit=30.0, service_class="lc")
    be = GuestSpec(name="batch", credit=30.0)
    assert "!lc" in lc.describe()
    assert "!lc" not in be.describe()


# ----------------------------------------------------------- ScenarioConfig


def test_scenario_config_qos_round_trips():
    config = qos_config(qos="naive", qos_kwargs={"threshold": 0.4})
    data = config.to_dict()
    assert data["qos"] == "naive"
    assert ScenarioConfig.from_dict(data) == config


def test_scenario_config_omits_default_qos():
    assert "qos" not in ScenarioConfig().to_dict()
    assert "qos_kwargs" not in ScenarioConfig().to_dict()


def test_scenario_config_rejects_unknown_controller():
    with pytest.raises(ConfigurationError, match="naive"):
        ScenarioConfig(qos="bogus")


def test_build_scenario_installs_controller_and_monitor():
    host = build_scenario(qos_config(qos="ladder"))
    assert host.qos_controller is not None
    assert host.qos_monitor is not None
    assert host.qos_controller.name == "ladder"


def test_build_scenario_none_installs_nothing():
    host = build_scenario(qos_config(qos="none"))
    assert getattr(host, "qos_controller", None) is None
    assert getattr(host, "qos_monitor", None) is None


def test_qos_kwargs_reach_controller_and_monitor():
    config = qos_config(
        qos="ladder",
        qos_kwargs={"cooldown_s": 2.0, "monitor": {"period": 0.5, "window": 3}},
    )
    host = build_scenario(config)
    assert host.qos_controller._ladder.cooldown_s == 2.0
    assert host.qos_monitor.period == 0.5


def test_qos_requires_an_lc_guest_to_matter():
    # All-BE fleets are legal; the monitor just never sees contention.
    guests = (
        GuestSpec(name="a", credit=40.0, workloads=(WorkloadSpec(kind="constant", demand_percent=80.0),)),
        GuestSpec(name="b", credit=40.0, workloads=(WorkloadSpec(kind="constant", demand_percent=80.0),)),
    )
    config = ScenarioConfig(guests=guests, duration=30.0, qos="ladder")
    result = run_scenario(config)
    assert result.host.qos_controller.stats.steps_down == 0


# ------------------------------------------------------------ cluster specs


def test_cluster_config_qos_round_trips():
    config = ClusterScenarioConfig(qos="ladder", lc_vms=3)
    data = config.to_dict()
    assert data["qos"] == "ladder"
    assert data["lc_vms"] == 3
    assert ClusterScenarioConfig.from_dict(data) == config


def test_cluster_config_omits_defaults():
    data = ClusterScenarioConfig().to_dict()
    assert "qos" not in data
    assert "lc_vms" not in data


def test_cluster_config_validates_qos_and_lc_vms():
    with pytest.raises(ConfigurationError):
        ClusterScenarioConfig(qos="bogus")
    with pytest.raises(ConfigurationError):
        ClusterScenarioConfig(n_vms=4, lc_vms=5)


def test_cluster_qos_run_throttles_under_shortfall():
    config = ClusterScenarioConfig.from_dict(
        get_preset("dc-diurnal-small").config.to_dict()
    ).with_changes(qos="ladder", lc_vms=2)
    sim = run_cluster_scenario(config)
    assert sim.fleet_qos is not None
    assert sim.fleet_qos.stats.decisions >= 0  # ledger present and harvested


# -------------------------------------------------------------- the preset


def lc_latency(result):
    web = next(d for d in result.host.domains if d.name == "web")
    workload = next(w for w in web.workloads if getattr(w, "latency", None))
    return workload.latency


def be_cpu_seconds(result):
    return sum(
        d.cpu_seconds for d in result.host.domains if d.name.startswith("batch")
    )


def test_preset_exists_with_qos_axis():
    preset = get_preset("qos-noisy-neighbor")
    assert preset.axes["qos"] == ("none", "naive", "ladder")
    assert preset.config.qos == "ladder"
    assert any(g.service_class == "lc" for g in preset.config.guests)


def test_ladder_improves_lc_latency_without_tanking_be():
    """The headline acceptance claim, at the preset's pinned seed."""
    base = get_preset("qos-noisy-neighbor").config
    uncontrolled = run_scenario(base.with_changes(qos="none"))
    controlled = run_scenario(base.with_changes(qos="ladder"))
    assert controlled.host.qos_controller.stats.steps_down >= 1
    # LC p95 improves by well over the "improves" bar...
    assert lc_latency(controlled).percentile(95) < lc_latency(uncontrolled).percentile(95) / 2
    assert (
        lc_latency(controlled).mean_response_time
        < lc_latency(uncontrolled).mean_response_time
    )
    # ... while BE guests keep at least 80% of their uncontrolled service.
    assert be_cpu_seconds(controlled) >= 0.8 * be_cpu_seconds(uncontrolled)


def test_naive_controller_also_reacts_on_the_preset():
    result = run_scenario(qos_config(qos="naive"))
    stats = result.host.qos_controller.stats
    assert stats.steps_down >= 1
    assert stats.contention_peak > 0.5


def test_qos_decisions_show_up_in_sweep_metrics():
    from repro.sweep.metrics import qos_control_metrics

    controlled = run_scenario(qos_config(qos="ladder"))
    values = qos_control_metrics(controlled)
    assert values["qos_steps_down"] >= 1
    assert values["qos_time_throttled_s"] > 0.0
    uncontrolled = run_scenario(qos_config(qos="none"))
    assert qos_control_metrics(uncontrolled)["qos_steps_down"] is None
