"""Unit tests for the §5.2 calibration procedure."""

import pytest

from repro import catalog
from repro.platforms import calibrate_cf_min, calibrate_cf_table


def test_recovers_cf_min_on_e5_2620():
    result = calibrate_cf_min(catalog.XEON_E5_2620)
    assert result.cf_measured == pytest.approx(0.80338, rel=0.01)
    assert result.error < 0.01


def test_recovers_cf_min_on_two_frequency_machine():
    result = calibrate_cf_min(catalog.OPTERON_6164_HE)
    assert result.cf_measured == pytest.approx(0.99508, rel=0.01)


def test_cf_table_covers_all_non_max_states():
    results = calibrate_cf_table(catalog.OPTIPLEX_755)
    assert [r.freq_mhz for r in results] == [1600, 1867, 2133, 2400]


def test_cf_table_matches_spec_everywhere():
    for result in calibrate_cf_table(catalog.XEON_X3440):
        assert result.cf_measured == pytest.approx(result.cf_spec, rel=0.01)


def test_measurement_independent_of_demand_level():
    low = calibrate_cf_min(catalog.CORE_I7_3770, demand_percent=8.0)
    high = calibrate_cf_min(catalog.CORE_I7_3770, demand_percent=20.0)
    assert low.cf_measured == pytest.approx(high.cf_measured, rel=0.01)


def test_result_carries_measurement_context():
    result = calibrate_cf_min(catalog.XEON_L5420)
    assert result.processor == catalog.XEON_L5420.name
    assert result.freq_mhz == 2000
    assert 0 < result.ratio < 1
    assert result.load_at_freq > result.load_at_max
