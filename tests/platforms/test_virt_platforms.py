"""Unit tests for the Table 2 platform models."""

import pytest

from repro.platforms import PLATFORMS
from repro.platforms.virt_platforms import platform_config, run_platform


def platform(name):
    return next(p for p in PLATFORMS if p.name == name)


def test_seven_platforms_in_paper_order():
    assert [p.name for p in PLATFORMS] == [
        "Hyper-V",
        "VMware",
        "Xen/credit",
        "Xen/PAS",
        "Xen/SEDF",
        "KVM",
        "Vbox",
    ]


def test_disciplines_match_table2_layout():
    fix = [p.name for p in PLATFORMS if p.discipline == "fix"]
    variable = [p.name for p in PLATFORMS if p.discipline == "variable"]
    assert fix == ["Hyper-V", "VMware", "Xen/credit", "Xen/PAS"]
    assert variable == ["Xen/SEDF", "KVM", "Vbox"]


def test_paper_degradation_computed_from_times():
    hyperv = platform("Hyper-V")
    assert hyperv.paper_degradation == pytest.approx(50.0, abs=0.5)
    assert platform("Xen/PAS").paper_degradation == pytest.approx(0.0, abs=0.5)


def test_vendor_floor_ordering():
    # Hyper-V clocks the deepest, ESXi is most conservative.
    assert platform("Hyper-V").ondemand_floor_mhz < platform("Xen/credit").ondemand_floor_mhz
    assert platform("Xen/credit").ondemand_floor_mhz < platform("VMware").ondemand_floor_mhz


def test_platform_config_is_a_declarative_spec():
    config = platform_config(platform("Hyper-V"), "ondemand")
    assert [g.name for g in config.guests] == ["V20", "V70"]
    assert config.guests[0].workloads[0].kind == "pi"
    assert config.guests[1].workloads[0].kind == "web"
    assert config.cpufreq_min_mhz == 1600
    assert config.stop_when_batch_done
    # And it round-trips like any other scenario spec.
    from repro.experiments import ScenarioConfig

    assert ScenarioConfig.from_dict(config.to_dict()) == config


def test_platform_config_performance_mode_has_no_floor():
    config = platform_config(platform("Hyper-V"), "performance")
    assert config.cpufreq_min_mhz is None
    assert config.governor == "performance"


def test_platform_config_rejects_unknown_mode():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError, match="mode"):
        platform_config(platform("Hyper-V"), "turbo")


def test_run_platform_pas_cancels_degradation():
    row = run_platform(platform("Xen/PAS"))
    assert abs(row.degradation) < 2.0


def test_run_platform_hyperv_degrades_most():
    hyperv = run_platform(platform("Hyper-V"))
    assert hyperv.degradation > 35.0


def test_run_platform_sedf_fast_and_flat():
    row = run_platform(platform("Xen/SEDF"))
    assert abs(row.degradation) < 2.0
    assert row.time_performance < 800.0
