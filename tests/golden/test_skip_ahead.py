"""Property tests for the injector skip-ahead (timer retirement).

The optimised :class:`HttperfInjector` retires its timer once the load
profile is permanently over, and replaces the per-fire
:meth:`LoadProfile.rate_at` scan with a monotone phase cursor.  Neither
may change a single observable: the batch sequence must equal the dense
reference (fire at every grid instant, scan the profile each time), the
injector must never retire inside or before an activity window, and a
full host run must keep every governor sample and monitor sample —
skip-ahead must never cross an activity-window or sample-tick boundary.
"""

import random

import pytest

from repro.sim import Engine
from repro.workloads import LoadProfile
from repro.workloads.injector import HttperfInjector
from repro.workloads.profiles import Phase


def random_profile(rng: random.Random) -> LoadProfile:
    """A random piecewise-constant profile, usually ending at rate zero."""
    phases = [Phase(0.0, 0.0)] if rng.random() < 0.5 else []
    t = 0.0
    for _ in range(rng.randint(1, 5)):
        t += rng.uniform(0.3, 30.0)
        rate = rng.choice([0.0, rng.uniform(0.5, 80.0)])
        phases.append(Phase(round(t, 3), rate))
    if rng.random() < 0.8:
        t += rng.uniform(0.3, 30.0)
        phases.append(Phase(round(t, 3), 0.0))
    if not phases:
        phases = [Phase(0.0, 10.0)]
    return LoadProfile(phases)


def reference_batches(
    profile: LoadProfile, period: float, horizon: float
) -> list[tuple[float, float]]:
    """The dense-stepping reference: what the seed injector emitted.

    Replays the original algorithm exactly — fire at every grid instant,
    look the rate up with :meth:`LoadProfile.rate_at`, keep the fluid
    carry — including its float arithmetic (``now`` accumulates the same
    way the periodic timer accumulates it).
    """
    batches: list[tuple[float, float]] = []
    carry = 0.0
    now = 0.0
    while now <= horizon:
        rate = profile.rate_at(now)
        if rate <= 0.0:
            carry = 0.0
        else:
            total = rate * period + carry
            carry = 0.0
            if total > 0:
                batches.append((now, total))
        now = now + period
    return batches


@pytest.mark.parametrize("seed", range(25))
def test_skip_ahead_matches_dense_reference(seed):
    rng = random.Random(seed)
    profile = random_profile(rng)
    period = rng.choice([0.05, 0.1, 0.25])
    horizon = profile.phases[-1].start + rng.uniform(5.0, 40.0)

    engine = Engine()
    batches: list[tuple[float, float]] = []
    injector = HttperfInjector(
        engine, profile, lambda n, now: batches.append((now, n)), injection_period=period
    )
    injector.start()
    engine.run_until(horizon)

    assert batches == reference_batches(profile, period, horizon)


@pytest.mark.parametrize("seed", range(25))
def test_retirement_never_crosses_an_activity_window(seed):
    rng = random.Random(seed)
    profile = random_profile(rng)
    period = rng.choice([0.05, 0.1, 0.25])
    horizon = profile.phases[-1].start + rng.uniform(5.0, 40.0)

    engine = Engine()
    injector = HttperfInjector(engine, profile, lambda n, now: None, injection_period=period)
    injector.start()
    engine.run_until(horizon)

    if injector.retired:
        # Retiring is only legal once the rate is zero forever.
        assert profile.end_of_activity <= horizon
        assert profile.rate_at(horizon) == 0.0
    elif profile.end_of_activity <= horizon - period:
        # Conversely the dead tail must actually retire (the skip-ahead
        # exists); one grace period covers a horizon between grid points.
        assert injector.retired or engine.pending_count == 0


def test_full_run_keeps_every_sample_tick():
    """Retirement must not swallow governor or monitor sample events."""
    from repro.experiments import ScenarioConfig, run_scenario

    config = ScenarioConfig(duration=120.0, v20_active=(5.0, 40.0), v70_active=(10.0, 30.0))
    result = run_scenario(config)
    host = result.host
    # The load monitor samples every second of the whole run, activity or
    # not — 120 samples per series, none skipped after the windows close.
    series = host.recorder.series("host.global_load")
    assert len(series) == 120
    assert series.times[-1] == pytest.approx(120.0)
    # The governor kept sampling to the end as well (stable governor: 1 s).
    sampler = host.cpufreq._timer
    assert sampler is not None and sampler.running
    assert sampler.fire_count >= 119
