"""Golden-trace tests: the optimised engine must reproduce the seed engine.

The fixtures under ``fixtures/`` were rendered by the pre-overhaul
dispatch engine at full float precision.  Every case must match byte for
byte — a single low-order energy bit moving means an accounting fold was
added, removed or reordered, which is exactly the class of bug a
performance refactor of the hot path can introduce.
"""

import pytest

from . import cases


@pytest.mark.parametrize("stem", sorted(cases.all_cases()))
def test_export_byte_identical_to_seed_engine(stem):
    render, suffix = cases.all_cases()[stem]
    path = cases.FIXTURE_DIR / f"{stem}{suffix}"
    assert path.exists(), (
        f"missing fixture {path}; regenerate with "
        "'python -m tests.golden.generate_fixtures' on a known-good tree"
    )
    rendered = render(stem)
    expected = path.read_text()
    if rendered != expected:  # pinpoint the first divergence for the report
        got_lines = rendered.splitlines()
        want_lines = expected.splitlines()
        for index, (got, want) in enumerate(zip(got_lines, want_lines)):
            assert got == want, (
                f"{stem}: first divergence at line {index}: {got!r} != {want!r}"
            )
        assert len(got_lines) == len(want_lines), (
            f"{stem}: line count {len(got_lines)} != fixture {len(want_lines)}"
        )
    assert rendered == expected
