"""Regenerate the golden-trace fixtures under ``tests/golden/fixtures/``.

Run from the repo root::

    python -m tests.golden.generate_fixtures

Only regenerate when a change *intends* to alter simulation physics — the
whole point of the fixtures is that pure performance work must not move a
single output bit.  Review the diff of every fixture this touches.
"""

from __future__ import annotations

from . import cases


def main() -> int:
    cases.FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    for stem, (render, suffix) in cases.all_cases().items():
        path = cases.FIXTURE_DIR / f"{stem}{suffix}"
        text = render(stem)
        changed = not path.exists() or path.read_text() != text
        path.write_text(text)
        print(f"{'wrote' if changed else 'unchanged'} {path} ({len(text)} bytes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
