"""ExperimentStore robustness: integrity, versioning, concurrency, GC."""

import json
import multiprocessing

import pytest

from repro.errors import (
    ConfigurationError,
    StoreCorruptionError,
    StoreError,
    StoreVersionError,
)
from repro.experiments import ScenarioConfig
from repro.store import (
    cell_key,
    config_payload,
    encode_blob,
    ExperimentStore,
    metric_names,
    STORE_SCHEMA_VERSION,
)


def put_cell(store: ExperimentStore, key: str, label: str = "cell", **metrics):
    """Store one synthetic cell (tests don't need a real simulation)."""
    return store.put(
        key,
        config_payload={"type": "ScenarioConfig", "spec": {"label": label}},
        label=label,
        params={"axis": label},
        seed=1,
        metrics_list=["loads"],
        metrics=metrics or {"energy_joules": 42.0},
    )


# ------------------------------------------------------------------ the key


def test_cell_key_is_deterministic_and_config_sensitive():
    config = ScenarioConfig(duration=100.0)
    key = cell_key(config, ["loads"], 1)
    assert key == cell_key(ScenarioConfig(duration=100.0), ["loads"], 1)
    assert key != cell_key(ScenarioConfig(duration=200.0), ["loads"], 1)
    assert key != cell_key(config, ["loads", "energy"], 1)
    assert key != cell_key(config, ["loads"], 2)
    assert len(key) == 64  # sha256 hex


def test_cell_key_rejects_unstorable_configs():
    with pytest.raises(ConfigurationError, match="to_dict"):
        cell_key(object(), ["loads"], 1)


def test_metric_names_reject_callables():
    with pytest.raises(ConfigurationError, match="named metrics"):
        metric_names(["loads", lambda result: {}])


def test_config_payload_carries_type_and_spec():
    payload = config_payload(ScenarioConfig(scheduler="pas"))
    assert payload["type"] == "ScenarioConfig"
    assert payload["spec"]["scheduler"] == "pas"


# ------------------------------------------------------------- round trips


def test_put_read_round_trip(tmp_path):
    store = ExperimentStore(tmp_path / "st")
    key = "a" * 64
    put_cell(store, key, "one", energy_joules=7.5, dvfs_transitions=3)
    payload = store.read(key)
    assert payload["metrics"] == {"energy_joules": 7.5, "dvfs_transitions": 3}
    assert payload["label"] == "one"
    assert payload["schema"] == STORE_SCHEMA_VERSION
    assert key in store
    assert len(store) == 1


def test_lookup_missing_is_none_and_read_raises(tmp_path):
    store = ExperimentStore(tmp_path / "st")
    assert store.lookup("b" * 64) is None
    with pytest.raises(StoreError, match="no stored cell"):
        store.read("b" * 64)


def test_overwrite_replaces_blob_and_dedups_index(tmp_path):
    store = ExperimentStore(tmp_path / "st")
    key = "c" * 64
    put_cell(store, key, "old", energy_joules=1.0)
    put_cell(store, key, "new", energy_joules=2.0)
    assert store.read(key)["metrics"]["energy_joules"] == 2.0
    assert len(store) == 1
    assert [e["label"] for e in store.entries()] == ["new"]


# ---------------------------------------------------- damage and versioning


def test_corrupted_blob_detected_and_degrades_to_miss(tmp_path):
    store = ExperimentStore(tmp_path / "st")
    key = "d" * 64
    put_cell(store, key)
    path = store.blob_path(key)
    path.write_text(path.read_text().replace("42.0", "43.0"))  # flip a bit
    with pytest.raises(StoreCorruptionError, match="digest mismatch"):
        store.read(key)
    assert store.lookup(key) is None  # resume sees a miss, not a crash
    path.write_text("{not json")
    with pytest.raises(StoreCorruptionError, match="not valid JSON"):
        store.read(key)


def test_blob_claiming_wrong_key_is_corruption(tmp_path):
    store = ExperimentStore(tmp_path / "st")
    put_cell(store, "e" * 64)
    # A blob renamed (or copied) to another address must not be served.
    store.blob_path("f" * 64).write_text(store.blob_path("e" * 64).read_text())
    with pytest.raises(StoreCorruptionError, match="claims key"):
        store.read("f" * 64)


def test_schema_version_mismatch_detected(tmp_path):
    store = ExperimentStore(tmp_path / "st")
    key = "1" * 64
    payload = put_cell(store, key)
    stale = dict(payload, schema=STORE_SCHEMA_VERSION + 1)
    store.blob_path(key).write_text(encode_blob(stale))
    with pytest.raises(StoreVersionError, match="schema"):
        store.read(key)
    assert store.lookup(key) is None


# ---------------------------------------------------------------------- gc


def test_gc_removes_damage_and_rebuilds_index(tmp_path):
    store = ExperimentStore(tmp_path / "st")
    put_cell(store, "a" * 64, "keep")
    put_cell(store, "b" * 64, "corrupt")
    put_cell(store, "c" * 64, "stale")
    put_cell(store, "d" * 64, "old-schema")
    store.blob_path("b" * 64).write_text("garbage")
    store.blob_path("c" * 64).unlink()  # index line now points nowhere
    old = dict(store.read("d" * 64), schema=0)
    store.blob_path("d" * 64).write_text(encode_blob(old))
    # An unindexed blob (e.g. the index line was lost to a crash).
    orphan = put_cell(store, "e" * 64, "orphan")
    store.index_path.write_text(
        "".join(
            line + "\n"
            for line in store.index_path.read_text().splitlines()
            if "orphan" not in line
        )
        + "torn-tail-line-without-newline"
    )
    stats = store.gc()
    assert stats == {
        "kept": 2,
        "corrupt": 1,
        "version_mismatch": 1,
        # The 'corrupt', 'stale' and 'old-schema' lines all point at nothing
        # once their blobs are gone.
        "stale_index": 3,
        "reindexed": 1,
    }
    assert sorted(e["label"] for e in store.entries()) == ["keep", "orphan"]
    assert store.read("e" * 64) == orphan
    assert not store.blob_path("b" * 64).exists()
    assert not store.blob_path("d" * 64).exists()


def test_torn_index_line_is_skipped_not_fatal(tmp_path):
    store = ExperimentStore(tmp_path / "st")
    put_cell(store, "9" * 64, "good")
    with open(store.index_path, "a") as handle:
        handle.write('{"key": "trunc')  # a torn concurrent append
    assert [e["label"] for e in store.entries()] == ["good"]


# ---------------------------------------------------------------- queries


def test_find_by_label_and_ambiguity(tmp_path):
    store = ExperimentStore(tmp_path / "st")
    put_cell(store, "a" * 64, "alpha")
    put_cell(store, "b" * 64, "beta")
    assert store.find("alpha")["key"] == "a" * 64
    assert store.find("b" * 64)["label"] == "beta"
    with pytest.raises(StoreError, match="no stored cell"):
        store.find("gamma")
    put_cell(store, "c" * 64, "alpha")  # same label, different content
    with pytest.raises(StoreError, match="ambiguous"):
        store.find("alpha")


def test_to_results_orders_by_label_and_skips_damage(tmp_path):
    store = ExperimentStore(tmp_path / "st")
    put_cell(store, "a" * 64, "zz", energy_joules=1.0)
    put_cell(store, "b" * 64, "aa", energy_joules=2.0)
    put_cell(store, "c" * 64, "mm", energy_joules=3.0)
    store.blob_path("c" * 64).write_text("broken")
    results = store.to_results()
    assert results.labels == ("aa", "zz")
    assert [cell.index for cell in results] == [0, 1]
    assert results.metric("aa", "energy_joules") == 2.0


# ------------------------------------------------------------- concurrency


def _hammer(args):
    root, worker = args
    store = ExperimentStore(root)
    for index in range(25):
        key = f"{worker}{index:02d}".ljust(64, "0")
        put_cell(store, key, f"w{worker}-c{index}", energy_joules=float(index))
    return worker


def test_concurrent_writers_never_corrupt_the_store(tmp_path):
    root = tmp_path / "st"
    ExperimentStore(root)  # create layout up front
    with multiprocessing.get_context("fork").Pool(4) as pool:
        done = pool.map(_hammer, [(root, w) for w in range(4)])
    assert sorted(done) == [0, 1, 2, 3]
    store = ExperimentStore(root)
    assert len(store) == 100
    # Every blob reads back clean and every index line parses.
    for key in store.keys():
        assert store.read(key)["key"] == key
    assert len(store.entries()) == 100
    for line in store.index_path.read_text().splitlines():
        json.loads(line)
    stats = store.gc()
    assert stats["kept"] == 100
    assert stats["corrupt"] == stats["stale_index"] == 0


# ------------------------------------------------- referenced-file identity


def test_trace_file_contents_join_the_key(tmp_path):
    from repro.experiments.scenario import GuestSpec, WorkloadSpec

    csv = tmp_path / "day.csv"
    csv.write_text("time,percent\n0,10\n100,0\n")
    def config():
        return ScenarioConfig(
            duration=100.0,
            guests=(
                GuestSpec(
                    name="T",
                    credit=30.0,
                    workloads=(WorkloadSpec(kind="trace", trace_file=str(csv)),),
                ),
            ),
        )

    before = cell_key(config(), ["loads"], 1)
    assert before == cell_key(config(), ["loads"], 1)  # stable while unchanged
    csv.write_text("time,percent\n0,90\n100,0\n")  # same path, new contents
    assert cell_key(config(), ["loads"], 1) != before
    payload = config_payload(config())
    assert str(csv) in payload["files"]
    csv.unlink()
    missing = cell_key(config(), ["loads"], 1)  # unreadable: miss, don't serve
    assert missing != before


def test_unusable_store_root_is_a_clean_error(tmp_path):
    blocker = tmp_path / "a-file"
    blocker.write_text("not a directory")
    with pytest.raises(ConfigurationError, match="cannot open experiment store"):
        ExperimentStore(blocker)
