"""Resumable sweeps: warm-cache determinism, interruption, force-recompute."""

import pytest

from repro.cluster import ClusterScenarioConfig
from repro.errors import ConfigurationError
from repro.experiments import ScenarioConfig
from repro.store import ExperimentStore
from repro.sweep import run_sweep, SweepGrid, SweepRunner
from repro.sweep import runner as runner_module

FAST = ScenarioConfig(
    duration=200.0, v20_active=(20.0, 180.0), v70_active=(60.0, 140.0)
)


def small_grid() -> SweepGrid:
    return SweepGrid(
        {"scheduler": ["credit", "pas"], "v20_load": ["exact", "thrashing"]},
        base=FAST,
        vary_seed=True,
    )


@pytest.fixture(scope="module")
def cold_json() -> str:
    """The reference export: no store, serial — the seed-era code path."""
    return run_sweep(small_grid(), workers=1).to_json()


def test_warm_cache_byte_identical_at_any_worker_count(tmp_path, cold_json):
    store = ExperimentStore(tmp_path / "st")
    cold = SweepRunner(small_grid(), workers=2, store=store)
    assert cold.run().to_json() == cold_json
    assert (cold.cache_hits, cold.computed) == (0, 4)
    for workers in (1, 3):
        warm = SweepRunner(small_grid(), workers=workers, store=store)
        assert warm.run().to_json() == cold_json
        assert (warm.cache_hits, warm.computed) == (4, 0)


def test_interrupted_sweep_resumes_only_missing_cells(
    tmp_path, cold_json, monkeypatch
):
    store = ExperimentStore(tmp_path / "st")
    real = runner_module.execute_config
    calls = {"n": 0}

    def dies_after_two(config):
        if calls["n"] >= 2:
            raise KeyboardInterrupt("killed mid-sweep")
        calls["n"] += 1
        return real(config)

    monkeypatch.setattr(runner_module, "execute_config", dies_after_two)
    with pytest.raises(KeyboardInterrupt):
        run_sweep(small_grid(), store=store)
    # The two finished cells streamed to disk before the crash.
    assert len(store) == 2
    monkeypatch.setattr(runner_module, "execute_config", real)
    resumed = SweepRunner(small_grid(), store=store)
    results = resumed.run()
    assert (resumed.cache_hits, resumed.computed) == (2, 2)
    assert results.to_json() == cold_json  # byte-identical to uninterrupted


def test_partial_grid_warms_a_superset_grid(tmp_path, cold_json):
    # Content addressing: a different grid that enumerates some of the same
    # (config, metrics, seed) cells shares their entries.
    store = ExperimentStore(tmp_path / "st")
    partial = SweepGrid(
        {"scheduler": ["credit", "pas"], "v20_load": ["exact"]},
        base=FAST,
        vary_seed=True,
    )
    run_sweep(partial, store=store)
    full = SweepRunner(small_grid(), store=store)
    assert full.run().to_json() == cold_json
    assert (full.cache_hits, full.computed) == (2, 2)


def test_force_recomputes_and_overwrites(tmp_path):
    store = ExperimentStore(tmp_path / "st")
    grid_cells = 2
    grid = SweepGrid({"scheduler": ["credit", "pas"]}, base=FAST, vary_seed=True)
    first = SweepRunner(grid, store=store)
    first.run()
    assert first.computed == grid_cells
    forced = SweepRunner(grid, store=store, resume=False)
    forced.run()
    assert (forced.cache_hits, forced.computed) == (0, grid_cells)
    assert len(store) == grid_cells  # overwritten in place, not duplicated


def test_corrupted_entry_recomputed_on_resume(tmp_path):
    store = ExperimentStore(tmp_path / "st")
    grid = SweepGrid({"scheduler": ["credit", "pas"]}, base=FAST, vary_seed=True)
    reference = run_sweep(grid, store=store).to_json()
    victim = store.keys()[0]
    store.blob_path(victim).write_text("scribbled over by a crash")
    again = SweepRunner(grid, store=store)
    assert again.run().to_json() == reference
    assert (again.cache_hits, again.computed) == (1, 1)
    assert store.read(victim)["key"] == victim  # healed in place


def test_store_path_accepted_directly(tmp_path):
    grid = SweepGrid({"scheduler": ["credit"]}, base=FAST)
    results = run_sweep(grid, store=tmp_path / "st")
    assert (tmp_path / "st" / "index.jsonl").exists()
    assert len(results) == 1


def test_store_rejects_callable_metrics(tmp_path):
    def my_metric(result):
        return {"x": 1}

    grid = SweepGrid({"scheduler": ["credit"]}, base=FAST)
    with pytest.raises(ConfigurationError, match="named metrics"):
        SweepRunner(grid, metrics=(my_metric,), store=tmp_path / "st")


def test_cluster_cells_are_cacheable_too(tmp_path):
    store = ExperimentStore(tmp_path / "st")
    grid = SweepGrid(
        {"policy": ["spread", "consolidate"], "dvfs": [False, True]},
        base=ClusterScenarioConfig(n_machines=2, n_vms=3, duration=100.0),
    )
    cold = SweepRunner(grid, store=store)
    reference = cold.run().to_json()
    assert cold.computed == 4
    warm = SweepRunner(grid, store=store)
    assert warm.run().to_json() == reference
    assert (warm.cache_hits, warm.computed) == (4, 0)


def test_aborted_parallel_sweep_discards_the_pool(tmp_path):
    from repro.sweep import WorkerPool

    bad = SweepGrid(
        {"scheduler": ["credit", "xenomorph", "pas", "sedf"]}, base=FAST
    )
    with pytest.raises(ConfigurationError):
        run_sweep(bad, workers=2)
    # The failing stream tore its pool down; queued cells aren't left
    # running into a dead iterator, and the next sweep gets a fresh pool.
    assert 2 not in WorkerPool._pools
    good = SweepGrid({"scheduler": ["credit", "pas"]}, base=FAST, vary_seed=True)
    assert run_sweep(good, workers=2).to_json() == run_sweep(good).to_json()


def test_late_registered_metric_reaches_forked_workers():
    # Metrics resolve in the parent, so a reducer registered *after* the
    # pool first forked still works in a parallel sweep.
    from repro.sweep import WorkerPool
    from repro.sweep.metrics import energy_metrics, METRICS

    grid = SweepGrid({"scheduler": ["credit", "pas"]}, base=FAST, vary_seed=True)
    run_sweep(grid, workers=2)  # fork the pool before registering
    METRICS["late_energy"] = energy_metrics
    try:
        results = run_sweep(grid, metrics=("late_energy",), workers=2)
    finally:
        del METRICS["late_energy"]
    assert all(cell.metrics["energy_joules"] > 0 for cell in results)


def test_unknown_metric_fails_before_any_simulation(tmp_path):
    grid = SweepGrid({"scheduler": ["credit"]}, base=FAST)
    with pytest.raises(ConfigurationError, match="unknown metric"):
        SweepRunner(grid, metrics=("nope",))
