"""Unit tests for the PAS scheduler (the paper's contribution)."""

import pytest

from repro import Host, catalog
from repro.core import PasScheduler
from repro.errors import ConfigurationError
from repro.workloads import ConstantLoad

from ..conftest import make_host


def make_pas_host(**kwargs):
    kwargs.setdefault("scheduler", PasScheduler())
    kwargs.setdefault("governor", "userspace")
    return Host(**kwargs)


def test_requires_userspace_governor():
    host = make_host(scheduler=PasScheduler(), governor="performance")
    host.create_domain("vm", credit=20)
    with pytest.raises(ConfigurationError):
        host.run(until=1.0)


def test_clocks_down_when_underloaded():
    host = make_pas_host()
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=20.0)
    assert host.processor.frequency_mhz == 1600


def test_compensates_credit_at_low_frequency():
    host = make_pas_host()
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=20.0)
    # Eq. 4 at 1600/2667: cap = 20 / 0.6 = 33.3%.
    assert host.scheduler.cap_of(vm) == pytest.approx(20.0 / (1600 / 2667), abs=0.1)


def test_absolute_capacity_preserved():
    host = make_pas_host()
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=40.0)
    # Delivered absolute work over the run ~ 20% of elapsed time.
    assert vm.work_done / 40.0 == pytest.approx(0.20, abs=0.012)


def test_never_grants_more_than_booked_absolute_capacity():
    # §3.2 design principle 3 - this is what enables frequency reduction.
    host = make_pas_host()
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=40.0)
    series = host.recorder.series("vm.absolute_load")
    assert series.window(10, 40).max() <= 21.5


def test_scales_up_under_combined_load():
    host = make_pas_host()
    a = host.create_domain("a", credit=45)
    b = host.create_domain("b", credit=45)
    a.attach_workload(ConstantLoad(100, injection_period=0.01))
    b.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=40.0)
    assert host.processor.frequency_mhz == 2667


def test_caps_return_to_credits_at_max_frequency():
    host = make_pas_host()
    a = host.create_domain("a", credit=45)
    b = host.create_domain("b", credit=45)
    a.attach_workload(ConstantLoad(100, injection_period=0.01))
    b.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=40.0)
    assert host.scheduler.cap_of(a) == pytest.approx(45.0, abs=0.1)


def test_idle_host_sits_at_lowest_frequency():
    host = make_pas_host()
    host.create_domain("vm", credit=20)
    host.run(until=20.0)
    assert host.processor.frequency_mhz == 1600


def test_cf_aware_compensation_on_i7():
    host = make_pas_host(processor=catalog.CORE_I7_3770)
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=40.0)
    state = host.processor.state
    expected_cap = 20.0 / (state.freq_mhz / 3400 * state.cf)
    assert host.scheduler.cap_of(vm) == pytest.approx(expected_cap, rel=0.01)
    assert vm.work_done / 40.0 == pytest.approx(0.20, abs=0.015)


def test_cf_blind_variant_undercompensates():
    host = Host(
        processor=catalog.XEON_E5_2620,
        scheduler=PasScheduler(use_cf=False),
        governor="userspace",
    )
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=40.0)
    # Under-compensated: delivered < booked when cf < 1 at the chosen state.
    if host.processor.cf < 0.999:
        assert vm.work_done / 40.0 < 0.195


def test_dom0_cap_rescaled_when_enabled():
    host = make_pas_host()
    dom0 = host.create_domain("Dom0", credit=10, dom0=True)
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=20.0)
    assert host.scheduler.cap_of(dom0) == pytest.approx(10.0 / (1600 / 2667), abs=0.1)


def test_dom0_rescaling_can_be_disabled():
    host = Host(scheduler=PasScheduler(update_dom0=False), governor="userspace")
    dom0 = host.create_domain("Dom0", credit=10, dom0=True)
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=20.0)
    assert host.scheduler.cap_of(dom0) == 10.0


def test_counters_track_updates():
    host = make_pas_host()
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=20.0)
    assert host.scheduler.frequency_updates >= 1
    assert host.scheduler.cap_updates >= 1


def test_averaged_absolute_load_reflects_demand():
    host = make_pas_host()
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=20.0)
    assert host.scheduler.averaged_absolute_load == pytest.approx(20.0, abs=1.5)


def test_window_and_sample_period_configurable():
    scheduler = PasScheduler(sample_period=0.5, window=5)
    assert scheduler.sample_period == 0.5
    assert scheduler.window == 5


def test_invalid_window_rejected():
    with pytest.raises(ConfigurationError):
        PasScheduler(window=0)


def test_registry_name():
    assert PasScheduler().name == "pas"
