"""Unit tests for the paper's proportionality laws (Eqs. 1-4, Listing 1.1)."""

import pytest

from repro import FrequencyTable, PState, catalog
from repro.core import laws
from repro.errors import ConfigurationError


def test_frequency_ratio():
    assert laws.frequency_ratio(1600, 2667) == pytest.approx(1600 / 2667)
    assert laws.frequency_ratio(2667, 2667) == 1.0


def test_frequency_ratio_above_max_rejected():
    with pytest.raises(ConfigurationError):
        laws.frequency_ratio(3000, 2667)


def test_eq1_load_at_frequency_paper_example():
    # §4.2: Fmax 3000, Fi 1500, load 10% at max -> 20% at Fi.
    assert laws.load_at_frequency(10.0, 0.5) == pytest.approx(20.0)


def test_eq1_absolute_load_inverts():
    nominal = laws.load_at_frequency(30.0, 0.6, 0.95)
    assert laws.absolute_load(nominal, 0.6, 0.95) == pytest.approx(30.0)


def test_eq2_execution_time_at_frequency():
    # Halving the frequency doubles the time (cf = 1).
    assert laws.execution_time_at_frequency(100.0, 0.5) == pytest.approx(200.0)


def test_eq2_with_cf():
    assert laws.execution_time_at_frequency(100.0, 0.5, 0.8) == pytest.approx(250.0)


def test_eq3_execution_time_at_credit_paper_example():
    # §4.2: credits 10% -> 20% halves the execution time.
    assert laws.execution_time_at_credit(100.0, 10.0, 20.0) == pytest.approx(50.0)


def test_eq4_paper_example():
    # §4.2: 20% credit, ratio 0.5, cf 1 -> 40% credit.
    assert laws.compensated_credit(20.0, 0.5) == pytest.approx(40.0)


def test_eq4_fig9_value():
    # Fig. 9: 20% at 1600/2667 -> 33.3%.
    ratio = 1600 / 2667
    assert laws.compensated_credit(20.0, ratio) == pytest.approx(33.34, abs=0.01)


def test_eq4_with_cf():
    assert laws.compensated_credit(20.0, 0.5, 0.8) == pytest.approx(50.0)


def test_eq4_may_exceed_100():
    # Listing 1.2 remark: "the sum of the VM credits may be more than 100%".
    assert laws.compensated_credit(70.0, 0.6) > 100.0


def test_eq4_round_trip_preserves_absolute_capacity():
    for ratio in (0.5, 0.6, 0.8):
        for cf in (0.8, 0.95, 1.0):
            credit = laws.compensated_credit(20.0, ratio, cf)
            assert credit * ratio * cf == pytest.approx(20.0)


def test_listing11_picks_lowest_absorbing():
    table = catalog.OPTIPLEX_755.table()
    assert laws.compute_new_frequency(table, 20.0) == 1600
    assert laws.compute_new_frequency(table, 55.0) == 1600
    assert laws.compute_new_frequency(table, 65.0) == 1867
    assert laws.compute_new_frequency(table, 95.0) == 2667


def test_listing11_strict_inequality():
    table = catalog.OPTIPLEX_755.table()
    capacity_1600 = 1600 / 2667 * 100
    # Exactly at capacity: NOT absorbed (strict >), go one state up.
    assert laws.compute_new_frequency(table, capacity_1600) == 1867


def test_listing11_saturates_at_max():
    table = catalog.OPTIPLEX_755.table()
    assert laws.compute_new_frequency(table, 150.0) == 2667


def test_listing11_margin():
    table = catalog.OPTIPLEX_755.table()
    assert laws.compute_new_frequency(table, 58.0, margin_percent=5.0) == 1867


def test_listing11_cf_blind_mode():
    table = FrequencyTable([PState(1000, cf=0.5), PState(2000)])
    # With cf: capacity(1000) = 25% -> cannot absorb 30%.
    assert laws.compute_new_frequency(table, 30.0, use_cf=True) == 2000
    # Blind: believes capacity is 50% -> wrongly picks 1000.
    assert laws.compute_new_frequency(table, 30.0, use_cf=False) == 1000


def test_compensated_caps_for_all_domains():
    table = catalog.OPTIPLEX_755.table()
    caps = laws.compensated_caps(table, 1600, {"V20": 20.0, "V70": 70.0, "Dom0": 10.0})
    ratio = 1600 / 2667
    assert caps["V20"] == pytest.approx(20.0 / ratio)
    assert caps["V70"] == pytest.approx(70.0 / ratio)
    assert caps["Dom0"] == pytest.approx(10.0 / ratio)


def test_compensated_caps_at_max_are_original_credits():
    table = catalog.OPTIPLEX_755.table()
    caps = laws.compensated_caps(table, 2667, {"V20": 20.0})
    assert caps["V20"] == pytest.approx(20.0)


def test_invalid_inputs_rejected():
    with pytest.raises(ConfigurationError):
        laws.load_at_frequency(-1.0, 0.5)
    with pytest.raises(ConfigurationError):
        laws.compensated_credit(20.0, 0.0)
    with pytest.raises(ConfigurationError):
        laws.execution_time_at_credit(10.0, 0.0, 20.0)
