"""Unit tests for the §4.1 user-level manager designs."""

import pytest

from repro import StableGovernor, UserCreditManager, UserFullManager
from repro.errors import ConfigurationError
from repro.workloads import ConstantLoad

from ..conftest import make_host


def test_user_credit_manager_rescales_caps_under_autonomous_governor():
    host = make_host(scheduler="credit", governor=StableGovernor(dwell=0.0))
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    manager = UserCreditManager(host, reaction_latency_s=0.0)
    host.start()
    manager.start()
    host.run(until=30.0)
    # Governor settles at 1600; manager must have compensated the cap.
    assert host.processor.frequency_mhz == 1600
    assert host.scheduler.cap_of(vm) == pytest.approx(20.0 / (1600 / 2667), abs=0.1)


def test_user_credit_manager_restores_absolute_capacity():
    host = make_host(scheduler="credit", governor=StableGovernor(dwell=0.0))
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    manager = UserCreditManager(host)
    host.start()
    manager.start()
    host.run(until=40.0)
    assert vm.work_done / 40.0 == pytest.approx(0.20, abs=0.015)


def test_user_credit_manager_reaction_latency_defers_caps():
    host = make_host(scheduler="credit", governor="userspace")
    vm = host.create_domain("vm", credit=20)
    manager = UserCreditManager(host, poll_period=1.0, reaction_latency_s=0.5)
    host.start()
    manager.start()
    host.cpufreq.set_speed(1600)
    host.run(until=1.2)  # poll at 1.0, apply at 1.5
    assert host.scheduler.cap_of(vm) == pytest.approx(20.0)
    host.run(until=1.6)
    assert host.scheduler.cap_of(vm) == pytest.approx(20.0 / (1600 / 2667), abs=0.1)


def test_user_credit_manager_stop():
    host = make_host(scheduler="credit", governor="userspace")
    host.create_domain("vm", credit=20)
    manager = UserCreditManager(host, reaction_latency_s=0.0)
    host.start()
    manager.start()
    host.run(until=2.0)
    applied = manager.applied_caps
    manager.stop()
    host.run(until=5.0)
    assert manager.applied_caps == applied


def test_user_full_manager_requires_userspace():
    host = make_host(scheduler="credit", governor="performance")
    with pytest.raises(ConfigurationError):
        UserFullManager(host)


def test_user_full_manager_controls_frequency_and_caps():
    host = make_host(scheduler="credit", governor="userspace")
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    manager = UserFullManager(host)
    host.start()
    manager.start()
    host.run(until=30.0)
    assert host.processor.frequency_mhz == 1600
    assert host.scheduler.cap_of(vm) == pytest.approx(20.0 / (1600 / 2667), abs=0.1)
    assert manager.decisions > 0


def test_user_full_manager_restores_absolute_capacity():
    host = make_host(scheduler="credit", governor="userspace")
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    manager = UserFullManager(host)
    host.start()
    manager.start()
    host.run(until=40.0)
    assert vm.work_done / 40.0 == pytest.approx(0.20, abs=0.015)


def test_user_full_manager_scales_up_under_load():
    host = make_host(scheduler="credit", governor="userspace")
    a = host.create_domain("a", credit=45)
    b = host.create_domain("b", credit=45)
    a.attach_workload(ConstantLoad(100, injection_period=0.01))
    b.attach_workload(ConstantLoad(100, injection_period=0.01))
    manager = UserFullManager(host)
    host.start()
    manager.start()
    host.run(until=40.0)
    assert host.processor.frequency_mhz == 2667


def test_user_full_manager_averaged_load():
    host = make_host(scheduler="credit", governor="userspace")
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    manager = UserFullManager(host)
    host.start()
    manager.start()
    host.run(until=20.0)
    assert manager.averaged_absolute_load == pytest.approx(20.0, abs=2.0)


def test_user_full_manager_invalid_window():
    host = make_host(scheduler="credit", governor="userspace")
    with pytest.raises(ConfigurationError):
        UserFullManager(host, window=0)


def test_managers_apply_dom0_policy_flag():
    host = make_host(scheduler="credit", governor="userspace")
    dom0 = host.create_domain("Dom0", credit=10, dom0=True)
    manager = UserCreditManager(host, reaction_latency_s=0.0, update_dom0=False)
    host.start()
    manager.start()
    host.cpufreq.set_speed(1600)
    host.run(until=2.0)
    assert host.scheduler.cap_of(dom0) == pytest.approx(10.0)
