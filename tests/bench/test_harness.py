"""Unit tests for the unified benchmark harness and its regression gate."""

import json

import pytest

from benchmarks import harness


def make_report(benches: dict, *, calibration: float | None = None) -> dict:
    entries = {}
    if calibration is not None:
        entries["calibration"] = {
            "ok": True,
            "wall_s": calibration,
            "metrics": {"best_spin_s": calibration},
        }
    for name, wall in benches.items():
        if isinstance(wall, dict):
            entries[name] = wall
        else:
            entries[name] = {"ok": True, "wall_s": wall, "metrics": {}}
    return {"schema": harness.SCHEMA, "rev": "test", "benches": entries}


# ------------------------------------------------------------ parse_regress


@pytest.mark.parametrize(
    "text,expected",
    [
        ("25%", 0.25),
        ("25", 0.25),
        ("0.25", 0.25),
        ("15%", 0.15),
        ("0", 0.0),
        ("1%", 0.01),
        ("0.5%", 0.005),
    ],
)
def test_parse_regress(text, expected):
    assert harness.parse_regress(text) == pytest.approx(expected)


def test_parse_regress_rejects_negative():
    with pytest.raises(ValueError):
        harness.parse_regress("-5%")


# ---------------------------------------------------------- compare_reports


def test_compare_passes_within_threshold():
    base = make_report({"a": 1.0})
    cur = make_report({"a": 1.1})
    lines, regressed = harness.compare_reports(cur, base, max_regress=0.15)
    assert regressed == []
    assert any("a:" in line for line in lines)


def test_compare_flags_regression_beyond_threshold():
    base = make_report({"a": 1.0})
    cur = make_report({"a": 1.3})
    lines, regressed = harness.compare_reports(cur, base, max_regress=0.15)
    assert regressed == ["a"]
    assert any("REGRESSED" in line for line in lines)


def test_compare_small_benches_get_absolute_grace():
    # 3 ms vs 2 ms is a 1.5x ratio but far inside the absolute grace:
    # millisecond benches must not be gated on timer noise.
    base = make_report({"tiny": 0.002})
    cur = make_report({"tiny": 0.003})
    _, regressed = harness.compare_reports(cur, base, max_regress=0.1)
    assert regressed == []


def test_compare_flags_missing_and_failed_benches():
    base = make_report({"a": 1.0, "b": 1.0})
    cur = make_report(
        {"a": {"ok": False, "wall_s": 0.1, "error": "boom", "metrics": {}}}
    )
    _, regressed = harness.compare_reports(cur, base, max_regress=0.5)
    assert sorted(regressed) == ["a", "b"]  # a failed, b missing


def test_compare_normalizes_by_calibration():
    # Current machine is 2x slower (calibration 2.0 vs 1.0): a 2x wall is
    # expected, not a regression; without normalisation it flags.
    base = make_report({"a": 1.0}, calibration=1.0)
    cur = make_report({"a": 2.0}, calibration=2.0)
    _, regressed = harness.compare_reports(cur, base, max_regress=0.15)
    assert regressed == []
    _, raw_regressed = harness.compare_reports(
        cur, base, max_regress=0.15, normalize=False
    )
    assert raw_regressed == ["a"]


def test_compare_calibration_itself_is_not_gated():
    base = make_report({}, calibration=1.0)
    cur = make_report({}, calibration=99.0)
    _, regressed = harness.compare_reports(cur, base, max_regress=0.1)
    assert regressed == []


# ------------------------------------------------------------- run_benches


def test_run_benches_report_shape(monkeypatch, tmp_path):
    monkeypatch.setattr(
        harness, "NATIVE_BENCHES", {"tiny": lambda: {"value": 42}}
    )
    report = harness.run_benches(["tiny"], suite="smoke")
    assert report["schema"] == harness.SCHEMA
    assert report["benches"]["tiny"]["ok"] is True
    assert report["benches"]["tiny"]["metrics"] == {"value": 42}
    assert report["benches"]["tiny"]["wall_s"] >= 0.0
    path = harness.write_report(report, tmp_path / "BENCH_test.json")
    loaded = harness.load_report(path)
    assert loaded["benches"]["tiny"]["metrics"]["value"] == 42


def test_run_benches_captures_bench_failure(monkeypatch):
    def explode() -> dict:
        raise RuntimeError("kaput")

    monkeypatch.setattr(harness, "NATIVE_BENCHES", {"bad": explode})
    report = harness.run_benches(["bad"], suite="smoke")
    entry = report["benches"]["bad"]
    assert entry["ok"] is False
    assert "kaput" in entry["error"]


def test_run_benches_unknown_name_raises(monkeypatch):
    with pytest.raises(KeyError):
        harness.run_benches(["no-such-bench"], suite="smoke")


def test_load_report_rejects_foreign_json(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text(json.dumps({"hello": 1}))
    with pytest.raises(ValueError):
        harness.load_report(path)


def test_suites_cover_pytest_benches():
    smoke = harness.available_benches("smoke")
    full = harness.available_benches("full")
    assert set(smoke) <= set(full)
    assert "stress-fleet-cold" in smoke
    assert "tracing-off" in smoke
    assert any(name.startswith("bench_") for name in full)


# -------------------------------------------------------------------- CLI


def test_cli_bench_list(capsys):
    from repro.cli import main

    assert main(["bench", "--list"]) == 0
    out = capsys.readouterr().out
    assert "stress-fleet-cold" in out


def test_cli_bench_compare_roundtrip(tmp_path, monkeypatch, capsys):
    from benchmarks import harness as real_harness
    from repro.cli import main

    monkeypatch.setattr(
        real_harness, "NATIVE_BENCHES", {"tiny": lambda: {"value": 1}}
    )
    first = tmp_path / "base.json"
    assert main(["bench", "--bench", "tiny", "--out", str(first)]) == 0
    second = tmp_path / "next.json"
    assert (
        main(
            [
                "bench",
                "--bench",
                "tiny",
                "--out",
                str(second),
                "--compare",
                str(first),
                "--max-regress",
                "10000%",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "no regressions" in out


def test_cli_bench_compare_retries_before_failing(tmp_path, monkeypatch, capsys):
    import time as time_mod

    from benchmarks import harness as real_harness
    from repro.cli import main

    calls = []

    def slow() -> dict:
        calls.append(1)
        time_mod.sleep(0.12)
        return {}

    monkeypatch.setattr(real_harness, "NATIVE_BENCHES", {"slow": slow})
    baseline = tmp_path / "base.json"
    baseline.write_text(json.dumps(make_report({"slow": 0.001})))
    code = main(
        [
            "bench",
            "--bench",
            "slow",
            "--out",
            str(tmp_path / "out.json"),
            "--compare",
            str(baseline),
            "--max-regress",
            "10%",
        ]
    )
    assert code == 1  # a genuine (reproduced) regression still fails
    # best-of-2 initial run + best-of-2 re-measure before the verdict.
    assert len(calls) == 4
    assert "regressed" in capsys.readouterr().out


def test_cli_bench_rejects_unknown_bench(capsys):
    from repro.cli import main

    assert main(["bench", "--bench", "nope"]) == 2
