"""Unit tests for time-weighted series operations."""

import pytest

from repro import TimeSeries
from repro.errors import TelemetryError


def test_integrate_step_function():
    series = TimeSeries("s", [(0.0, 10.0), (2.0, 20.0), (3.0, 0.0)])
    # 10*2 + 20*1, final sample holds zero width.
    assert series.integrate() == pytest.approx(40.0)


def test_integrate_until_extends_last_segment():
    series = TimeSeries("s", [(0.0, 10.0), (2.0, 20.0)])
    assert series.integrate(until=5.0) == pytest.approx(10 * 2 + 20 * 3)


def test_integrate_until_before_last_sample_truncates():
    series = TimeSeries("s", [(0.0, 10.0), (2.0, 20.0), (4.0, 30.0)])
    assert series.integrate(until=3.0) == pytest.approx(10 * 2 + 20 * 1)


def test_integrate_single_sample_zero_width():
    series = TimeSeries("s", [(1.0, 42.0)])
    assert series.integrate() == 0.0
    assert series.integrate(until=3.0) == pytest.approx(84.0)


def test_integrate_empty_raises():
    with pytest.raises(TelemetryError):
        TimeSeries("e").integrate()


def test_time_weighted_mean_uneven_sampling():
    # Plain mean would be 15; time-weighted favours the long 10-segment.
    series = TimeSeries("s", [(0.0, 10.0), (9.0, 20.0), (10.0, 20.0)])
    assert series.time_weighted_mean() == pytest.approx((10 * 9 + 20 * 1) / 10)
    assert series.mean() == pytest.approx(50 / 3)


def test_time_weighted_mean_zero_span_returns_last():
    series = TimeSeries("s", [(5.0, 7.0)])
    assert series.time_weighted_mean() == 7.0


def test_energy_series_consistency():
    # power integrated over time should track the energy counter shape.
    power = TimeSeries("p", [(0.0, 100.0), (10.0, 50.0), (20.0, 50.0)])
    assert power.integrate() == pytest.approx(100 * 10 + 50 * 10)
