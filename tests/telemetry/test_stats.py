"""Unit tests for series statistics."""

import pytest

from repro import rolling_mean, TimeSeries
from repro.errors import TelemetryError
from repro.telemetry import phase_mean, summarize


def test_rolling_mean_window3():
    series = TimeSeries("s", [(0, 3.0), (1, 6.0), (2, 9.0), (3, 12.0)])
    smoothed = rolling_mean(series, 3)
    assert smoothed.values == pytest.approx([3.0, 4.5, 6.0, 9.0])


def test_rolling_mean_preserves_length_and_times():
    series = TimeSeries("s", [(0, 1.0), (5, 2.0), (9, 3.0)])
    smoothed = rolling_mean(series, 3)
    assert smoothed.times == series.times
    assert len(smoothed) == len(series)


def test_rolling_mean_window1_is_identity():
    series = TimeSeries("s", [(0, 1.0), (1, 5.0)])
    assert rolling_mean(series, 1).values == series.values


def test_rolling_mean_invalid_window():
    with pytest.raises(TelemetryError):
        rolling_mean(TimeSeries("s"), 0)


def test_rolling_mean_renames():
    series = TimeSeries("s", [(0, 1.0)])
    assert rolling_mean(series, 3).name == "s~mean3"


def test_phase_mean():
    series = TimeSeries("s", [(0, 10.0), (1, 20.0), (2, 30.0), (3, 40.0)])
    assert phase_mean(series, 1.0, 3.0) == pytest.approx(25.0)


def test_phase_mean_empty_window_raises():
    series = TimeSeries("s", [(0, 10.0)])
    with pytest.raises(TelemetryError):
        phase_mean(series, 5.0, 6.0)


def test_summarize():
    series = TimeSeries("s", [(0, 1.0), (1, 3.0), (2, 2.0)])
    summary = summarize(series)
    assert summary.count == 3
    assert summary.mean == pytest.approx(2.0)
    assert summary.minimum == 1.0
    assert summary.maximum == 3.0
    assert summary.last == 2.0
    assert "s" in str(summary)


def test_summarize_empty_raises():
    with pytest.raises(TelemetryError):
        summarize(TimeSeries("empty"))
