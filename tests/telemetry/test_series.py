"""Unit tests for time series."""

import pytest

from repro import TimeSeries
from repro.errors import TelemetryError


@pytest.fixture
def series() -> TimeSeries:
    return TimeSeries("s", [(0.0, 10.0), (1.0, 20.0), (2.0, 30.0), (3.0, 20.0)])


def test_construction_from_samples(series):
    assert len(series) == 4
    assert series.name == "s"


def test_append_monotone_time(series):
    series.append(3.5, 5.0)
    assert series.last() == 5.0


def test_append_same_time_allowed(series):
    series.append(3.0, 99.0)
    assert series.last() == 99.0


def test_append_backwards_raises(series):
    with pytest.raises(TelemetryError):
        series.append(2.5, 1.0)


def test_iteration_yields_pairs(series):
    assert next(iter(series)) == (0.0, 10.0)


def test_mean_min_max_last(series):
    assert series.mean() == pytest.approx(20.0)
    assert series.min() == 10.0
    assert series.max() == 30.0
    assert series.last() == 20.0


def test_empty_series_stats_raise():
    empty = TimeSeries("e")
    for fn in (empty.mean, empty.min, empty.max, empty.last):
        with pytest.raises(TelemetryError):
            fn()


def test_window_half_open(series):
    piece = series.window(1.0, 3.0)
    assert piece.values == [20.0, 30.0]


def test_window_empty(series):
    assert len(series.window(10.0, 20.0)) == 0


def test_window_inverted_raises(series):
    with pytest.raises(TelemetryError):
        series.window(3.0, 1.0)


def test_value_at_step_interpolation(series):
    assert series.value_at(0.5) == 10.0
    assert series.value_at(1.0) == 20.0
    assert series.value_at(99.0) == 20.0


def test_value_at_before_first_sample_raises(series):
    series2 = TimeSeries("x", [(5.0, 1.0)])
    with pytest.raises(TelemetryError):
        series2.value_at(4.0)


def test_changes_counts_transitions():
    flat = TimeSeries("f", [(0, 1), (1, 1), (2, 1)])
    assert flat.changes() == 0
    wavy = TimeSeries("w", [(0, 1), (1, 2), (2, 2), (3, 1)])
    assert wavy.changes() == 2


def test_map_transforms_values(series):
    doubled = series.map(lambda v: v * 2)
    assert doubled.values == [20.0, 40.0, 60.0, 40.0]
    assert doubled.times == series.times


def test_times_values_are_copies(series):
    series.times.append(99.0)
    series.values.append(99.0)
    assert len(series) == 4
