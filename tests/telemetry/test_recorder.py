"""Unit tests for the recorder."""

import pytest

from repro import Recorder
from repro.errors import TelemetryError


def test_record_creates_series_lazily():
    recorder = Recorder()
    recorder.record("a.load", 0.0, 1.0)
    recorder.record("a.load", 1.0, 2.0)
    assert recorder.series("a.load").values == [1.0, 2.0]


def test_unknown_series_raises_with_known_names():
    recorder = Recorder()
    recorder.record("known", 0.0, 1.0)
    with pytest.raises(TelemetryError, match="known"):
        recorder.series("unknown")


def test_has():
    recorder = Recorder()
    recorder.record("x", 0.0, 1.0)
    assert recorder.has("x")
    assert not recorder.has("y")


def test_names_sorted_with_prefix_filter():
    recorder = Recorder()
    for name in ("b.load", "a.load", "a.freq"):
        recorder.record(name, 0.0, 1.0)
    assert recorder.names() == ["a.freq", "a.load", "b.load"]
    assert recorder.names("a.") == ["a.freq", "a.load"]


def test_matching_yields_series():
    recorder = Recorder()
    recorder.record("vm.load", 0.0, 1.0)
    recorder.record("vm.freq", 0.0, 2.0)
    assert {s.name for s in recorder.matching("vm.")} == {"vm.load", "vm.freq"}


def test_matching_is_a_snapshot_safe_during_recording():
    # Regression: matching() used to return a live generator over the
    # internal dict; a probe creating a new series mid-iteration raised
    # "RuntimeError: dictionary changed size during iteration".
    recorder = Recorder()
    recorder.record("vm.a", 0.0, 1.0)
    recorder.record("vm.b", 0.0, 2.0)
    seen = []
    for series in recorder.matching("vm."):
        # A lazily created series appearing mid-walk must not blow up ...
        recorder.record(f"other.{series.name}", 0.0, 3.0)
        seen.append(series.name)
    # ... and the snapshot holds the names present when matching() ran.
    assert seen == ["vm.a", "vm.b"]
    assert isinstance(recorder.matching("vm."), list)


def test_len_counts_series():
    recorder = Recorder()
    recorder.record("a", 0.0, 1.0)
    recorder.record("a", 1.0, 1.0)
    recorder.record("b", 0.0, 1.0)
    assert len(recorder) == 2
