"""Unit tests for the recorder."""

import pytest

from repro import Recorder
from repro.errors import TelemetryError


def test_record_creates_series_lazily():
    recorder = Recorder()
    recorder.record("a.load", 0.0, 1.0)
    recorder.record("a.load", 1.0, 2.0)
    assert recorder.series("a.load").values == [1.0, 2.0]


def test_unknown_series_raises_with_known_names():
    recorder = Recorder()
    recorder.record("known", 0.0, 1.0)
    with pytest.raises(TelemetryError, match="known"):
        recorder.series("unknown")


def test_has():
    recorder = Recorder()
    recorder.record("x", 0.0, 1.0)
    assert recorder.has("x")
    assert not recorder.has("y")


def test_names_sorted_with_prefix_filter():
    recorder = Recorder()
    for name in ("b.load", "a.load", "a.freq"):
        recorder.record(name, 0.0, 1.0)
    assert recorder.names() == ["a.freq", "a.load", "b.load"]
    assert recorder.names("a.") == ["a.freq", "a.load"]


def test_matching_yields_series():
    recorder = Recorder()
    recorder.record("vm.load", 0.0, 1.0)
    recorder.record("vm.freq", 0.0, 2.0)
    assert {s.name for s in recorder.matching("vm.")} == {"vm.load", "vm.freq"}


def test_len_counts_series():
    recorder = Recorder()
    recorder.record("a", 0.0, 1.0)
    recorder.record("a", 1.0, 1.0)
    recorder.record("b", 0.0, 1.0)
    assert len(recorder) == 2
