"""Unit tests for ASCII chart rendering."""

import pytest

from repro import render_chart, TimeSeries
from repro.errors import TelemetryError


@pytest.fixture
def series():
    return TimeSeries("load", [(float(t), float(t * 10 % 100)) for t in range(20)])


def test_render_contains_title_and_legend(series):
    chart = render_chart([series], title="my chart")
    assert "my chart" in chart
    assert "load" in chart


def test_render_has_requested_dimensions(series):
    chart = render_chart([series], width=40, height=8)
    grid_lines = [line for line in chart.splitlines() if "|" in line]
    assert len(grid_lines) == 8


def test_multiple_series_use_distinct_markers(series):
    other = TimeSeries("freq", [(float(t), 50.0) for t in range(20)])
    chart = render_chart([series, other])
    assert "*" in chart and "+" in chart


def test_custom_labels(series):
    chart = render_chart([series], labels=["custom label"])
    assert "custom label" in chart


def test_label_count_mismatch_raises(series):
    with pytest.raises(TelemetryError):
        render_chart([series], labels=["a", "b"])


def test_empty_input_raises():
    with pytest.raises(TelemetryError):
        render_chart([])


def test_too_small_chart_raises(series):
    with pytest.raises(TelemetryError):
        render_chart([series], width=5, height=2)


def test_y_axis_labels_present(series):
    chart = render_chart([series], y_min=0.0, y_max=100.0)
    assert "100.0" in chart
    assert "0.0" in chart
