"""Unit tests for CSV/table exporters."""

import pytest

from repro import TimeSeries
from repro.errors import TelemetryError
from repro.telemetry import records_to_csv, series_to_csv, table_to_text


def test_csv_header_and_rows():
    series = TimeSeries("a", [(0.0, 1.0), (1.0, 2.0)])
    csv = series_to_csv([series])
    lines = csv.strip().splitlines()
    assert lines[0] == "a.t,a.v"
    assert lines[1] == "0,1"
    assert lines[2] == "1,2"


def test_csv_multiple_series_with_different_lengths():
    a = TimeSeries("a", [(0.0, 1.0), (1.0, 2.0)])
    b = TimeSeries("b", [(0.0, 9.0)])
    lines = series_to_csv([a, b]).strip().splitlines()
    assert lines[0] == "a.t,a.v,b.t,b.v"
    assert lines[2] == "1,2,,"


def test_csv_empty_input_raises():
    with pytest.raises(TelemetryError):
        series_to_csv([])


def test_records_csv_field_order_first_seen():
    csv = records_to_csv([{"b": 1, "a": 2}, {"a": 3, "c": 4}])
    lines = csv.splitlines()
    assert lines[0] == "b,a,c"
    assert lines[1] == "1,2,"
    assert lines[2] == ",3,4"


def test_records_csv_explicit_fieldnames():
    csv = records_to_csv([{"a": 1, "b": 2}], fieldnames=["b", "a"])
    assert csv.splitlines()[0] == "b,a"


def test_records_csv_cell_encoding():
    csv = records_to_csv(
        [{"none": None, "flag": True, "f": 0.1, "text": "has,comma", "obj": {"k": 1}}]
    )
    row = csv.splitlines()[1]
    assert row == ',true,0.1,"has,comma","{""k"":1}"'


def test_records_csv_float_repr_roundtrips():
    # repr (not str formatting) so exported floats parse back bit-equal.
    value = 9671.723155231544
    csv = records_to_csv([{"v": value}])
    assert float(csv.splitlines()[1]) == value


def test_records_csv_empty_raises():
    with pytest.raises(TelemetryError):
        records_to_csv([])


def test_table_alignment():
    text = table_to_text(["name", "value"], [["x", 1.5], ["longer", 22.25]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert "1.50" in text
    assert "22.25" in text


def test_table_title():
    text = table_to_text(["a"], [["x"]], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_table_row_width_mismatch_raises():
    with pytest.raises(TelemetryError):
        table_to_text(["a", "b"], [["only one"]])


def test_table_empty_headers_raise():
    with pytest.raises(TelemetryError):
        table_to_text([], [])


def test_table_formats_floats_two_decimals():
    text = table_to_text(["v"], [[3.14159]])
    assert "3.14" in text
    assert "3.14159" not in text
