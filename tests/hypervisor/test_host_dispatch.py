"""Unit tests for the host dispatch loop."""

import pytest

from repro import Host, catalog
from repro.errors import ConfigurationError
from repro.workloads import ConstantLoad, PiApp

from ..conftest import make_host


def test_single_vcpu_gets_full_cpu():
    host = make_host()
    vm = host.create_domain("vm", credit=100)
    app = PiApp(1.0)
    vm.attach_workload(app)
    host.run(until=2.0)
    assert app.done
    assert app.execution_time == pytest.approx(1.0, rel=0.01)


def test_work_scales_with_frequency():
    host = make_host(governor="userspace")
    vm = host.create_domain("vm", credit=100)
    app = PiApp(1.0)
    vm.attach_workload(app)
    host.start()
    host.cpufreq.set_speed(1600)  # ratio 0.6
    host.run(until=3.0)
    assert app.execution_time == pytest.approx(1.0 / (1600 / 2667), rel=0.01)


def test_idle_host_accounts_idle_energy():
    host = make_host()
    host.create_domain("vm", credit=100)
    host.run(until=10.0)
    assert host.processor.busy_seconds == 0.0
    assert host.processor.elapsed_seconds == pytest.approx(10.0)
    assert host.processor.energy_joules > 0.0


def test_busy_seconds_match_work():
    host = make_host()
    vm = host.create_domain("vm", credit=100)
    vm.attach_workload(PiApp(2.0))
    host.run(until=10.0)
    assert host.processor.busy_seconds == pytest.approx(2.0, rel=0.01)


def test_frequency_change_mid_slice_preserves_work_accounting():
    host = make_host(governor="userspace")
    vm = host.create_domain("vm", credit=100)
    app = PiApp(1.0)
    vm.attach_workload(app)
    host.start()
    host.run(until=0.5)  # half the work done at full speed
    host.cpufreq.set_speed(1600)
    host.run(until=3.0)
    # Remaining 0.5 abs-seconds at capacity 0.6 takes 0.8333 wall seconds.
    assert app.execution_time == pytest.approx(0.5 + 0.5 / (1600 / 2667), rel=0.01)


def test_two_domains_share_by_weight_when_uncapped():
    host = make_host()
    a = host.create_domain("a", credit=0, weight=100)
    b = host.create_domain("b", credit=0, weight=300)
    a.attach_workload(ConstantLoad(100, injection_period=0.01))
    b.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=10.0)
    share_a = a.cpu_seconds / 10.0
    share_b = b.cpu_seconds / 10.0
    assert share_b / share_a == pytest.approx(3.0, rel=0.1)


def test_cap_limits_consumption():
    host = make_host()
    vm = host.create_domain("vm", credit=25)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=10.0)
    assert vm.cpu_seconds / 10.0 == pytest.approx(0.25, abs=0.01)


def test_sync_accounting_mid_slice():
    host = make_host()
    vm = host.create_domain("vm", credit=100)
    vm.attach_workload(PiApp(5.0))
    host.start()
    host.engine.run_until(1.0)
    host.sync_accounting()
    assert vm.cpu_seconds == pytest.approx(1.0, abs=0.05)


def test_run_auto_starts():
    host = make_host()
    vm = host.create_domain("vm", credit=100)
    app = PiApp(0.5)
    vm.attach_workload(app)
    host.run(until=1.0)  # no explicit start()
    assert app.done


def test_double_start_rejected():
    host = make_host()
    host.start()
    with pytest.raises(ConfigurationError):
        host.start()


def test_dom0_preempts_guest():
    host = make_host()
    dom0 = host.create_domain("Dom0", credit=10, dom0=True)
    guest = host.create_domain("guest", credit=0)
    guest.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.start()
    host.run(until=1.005)
    before = host.preemptions
    dom0.add_work(0.001)  # wakes mid-slice; higher class must preempt
    assert host.preemptions == before + 1


def test_kick_dispatches_when_idle():
    host = make_host()
    vm = host.create_domain("vm", credit=50)
    host.start()
    host.run(until=1.0)
    # Queue work through the vcpu directly (no wake notification), then kick.
    vm.vcpu.add_work(0.1)
    vm.vcpu.mark_runnable()
    host.scheduler.wake(vm.vcpu)
    host.kick()
    host.run(until=2.0)
    assert vm.work_done > 0.0


def test_preemptions_counted():
    host = make_host(scheduler="credit")
    a = host.create_domain("a", credit=50)
    b = host.create_domain("b", credit=50)
    a.attach_workload(ConstantLoad(50, injection_period=0.01))
    b.attach_workload(ConstantLoad(50, injection_period=0.01))
    host.run(until=5.0)
    assert host.preemptions > 0


def test_host_on_different_processor():
    host = make_host(processor=catalog.CORE_I7_3770, governor="userspace")
    vm = host.create_domain("vm", credit=100)
    app = PiApp(1.0)
    vm.attach_workload(app)
    host.start()
    host.cpufreq.set_speed(1600)  # ratio 0.4706, cf 0.86206
    host.run(until=5.0)
    expected = 1.0 / (1600 / 3400 * 0.86206)
    assert app.execution_time == pytest.approx(expected, rel=0.01)


def test_string_and_instance_construction():
    from repro import CreditScheduler, PerformanceGovernor

    host = Host(scheduler=CreditScheduler(), governor=PerformanceGovernor())
    assert host.scheduler.name == "credit"
    host2 = Host(scheduler="sedf", governor="stable")
    assert host2.scheduler.name == "sedf"
    assert host2.governor.name == "stable"


def test_absolute_load_scale_property():
    host = make_host(governor="userspace")
    host.create_domain("vm", credit=10)
    host.start()
    host.cpufreq.set_speed(1600)
    assert host.absolute_load_scale == pytest.approx(1600 / 2667)
