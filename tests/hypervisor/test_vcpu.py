"""Unit tests for vCPUs."""

import pytest

from repro import VCpuState
from repro.errors import ConfigurationError, SchedulerError

from ..conftest import make_host


@pytest.fixture
def vcpu():
    host = make_host()
    domain = host.create_domain("vm", credit=50)
    return domain.vcpu


def test_starts_blocked_without_work(vcpu):
    assert vcpu.state is VCpuState.BLOCKED
    assert not vcpu.has_work
    assert vcpu.pending_work == 0.0


def test_add_work_queues_demand(vcpu):
    vcpu.add_work(1.5)
    assert vcpu.pending_work == pytest.approx(1.5)
    assert vcpu.has_work


def test_add_work_accumulates(vcpu):
    vcpu.add_work(1.0)
    vcpu.add_work(0.5)
    assert vcpu.pending_work == pytest.approx(1.5)


def test_negative_work_rejected(vcpu):
    with pytest.raises(ConfigurationError):
        vcpu.add_work(-1.0)


def test_consume_reduces_pending(vcpu):
    vcpu.add_work(1.0)
    vcpu.consume(0.4, wall_dt=0.8)
    assert vcpu.pending_work == pytest.approx(0.6)
    assert vcpu.work_done == pytest.approx(0.4)
    assert vcpu.cpu_seconds == pytest.approx(0.8)


def test_consume_clamps_float_fuzz(vcpu):
    vcpu.add_work(1.0)
    vcpu.consume(1.0 - 1e-12, wall_dt=1.0)
    assert vcpu.pending_work == 0.0
    assert not vcpu.has_work


def test_tiny_residual_counts_as_drained(vcpu):
    vcpu.add_work(1e-12)
    assert not vcpu.has_work


def test_state_transitions(vcpu):
    vcpu.add_work(1.0)  # domain.add_work would do this; direct queue here
    vcpu.mark_runnable()
    assert vcpu.state is VCpuState.RUNNABLE
    vcpu.mark_running()
    assert vcpu.state is VCpuState.RUNNING
    vcpu.mark_blocked()
    assert vcpu.state is VCpuState.BLOCKED


def test_cannot_dispatch_blocked(vcpu):
    with pytest.raises(SchedulerError):
        vcpu.mark_running()


def test_runnable_covers_runnable_and_running(vcpu):
    assert not vcpu.runnable
    vcpu.mark_runnable()
    assert vcpu.runnable
    vcpu.mark_running()
    assert vcpu.runnable


def test_dispatch_count(vcpu):
    vcpu.mark_runnable()
    vcpu.mark_running()
    vcpu.mark_runnable()
    vcpu.mark_running()
    assert vcpu.dispatch_count == 2


def test_name_follows_domain(vcpu):
    assert vcpu.name == "vm"
    assert vcpu.domain.name == "vm"
