"""Unit tests for domains."""

import pytest

from repro import DomainConfig
from repro.errors import ConfigurationError, WorkloadError
from repro.hypervisor.domain import DOM0_CLASS
from repro.workloads import ConstantLoad

from ..conftest import make_host


def test_create_domain_defaults():
    host = make_host()
    domain = host.create_domain("vm", credit=30)
    assert domain.credit == 30
    assert domain.config.effective_weight == 30
    assert domain.config.effective_cap == 30
    assert not domain.is_dom0


def test_dom0_flag_sets_priority_class():
    host = make_host()
    dom0 = host.create_domain("Dom0", credit=10, dom0=True)
    assert dom0.is_dom0
    assert dom0.config.priority_class == DOM0_CLASS


def test_null_credit_is_uncapped():
    # The paper's exception: a null credit VM has no credit limit (§3.1).
    config = DomainConfig(credit=0)
    assert config.effective_cap == 0  # Xen convention: cap 0 = no cap
    assert config.effective_weight == 1.0  # scavenger: leftovers only


def test_explicit_weight_and_cap_override():
    config = DomainConfig(credit=20, weight=512, cap=45)
    assert config.effective_weight == 512
    assert config.effective_cap == 45


def test_credit_above_100_rejected():
    with pytest.raises(ConfigurationError):
        DomainConfig(credit=120)


def test_unknown_priority_class_rejected():
    with pytest.raises(ConfigurationError):
        DomainConfig(credit=10, priority_class=7)


def test_duplicate_domain_name_rejected():
    host = make_host()
    host.create_domain("vm", credit=10)
    with pytest.raises(ConfigurationError):
        host.create_domain("vm", credit=20)


def test_empty_domain_name_rejected():
    host = make_host()
    with pytest.raises(ConfigurationError):
        host.create_domain("", credit=10)


def test_cannot_add_domain_after_start():
    host = make_host()
    host.create_domain("vm", credit=10)
    host.start()
    with pytest.raises(ConfigurationError):
        host.create_domain("late", credit=10)


def test_add_work_wakes_blocked_vcpu():
    host = make_host()
    domain = host.create_domain("vm", credit=50)
    host.start()
    domain.add_work(0.1)
    assert domain.vcpu.runnable


def test_attach_multiple_workloads_accumulates():
    host = make_host()
    domain = host.create_domain("vm", credit=50)
    first, second = ConstantLoad(10), ConstantLoad(10)
    domain.attach_workload(first)
    domain.attach_workload(second)
    assert domain.workload is first  # single-workload shorthand: first attached
    assert domain.workloads == (first, second)


def test_workload_bound_to_single_domain():
    host = make_host()
    a = host.create_domain("a", credit=10)
    b = host.create_domain("b", credit=10)
    workload = ConstantLoad(10)
    a.attach_workload(workload)
    with pytest.raises(WorkloadError):
        b.attach_workload(workload)


def test_on_idle_callback_fires_when_drained():
    host = make_host()
    domain = host.create_domain("vm", credit=100)
    drained = []
    domain.on_idle(drained.append)
    host.start()
    domain.add_work(0.05)
    host.run(until=1.0)
    assert len(drained) == 1
    assert drained[0] == pytest.approx(0.05, abs=0.02)


def test_domain_lookup():
    host = make_host()
    host.create_domain("vm", credit=10)
    assert host.domain("vm").name == "vm"
    with pytest.raises(ConfigurationError):
        host.domain("ghost")


def test_cpu_seconds_and_work_done_track_vcpu():
    host = make_host()
    domain = host.create_domain("vm", credit=100)
    host.start()
    domain.add_work(0.2)
    host.run(until=1.0)
    assert domain.work_done == pytest.approx(0.2)
    assert domain.cpu_seconds == pytest.approx(0.2)
