"""Unit tests for per-domain energy attribution (charge-back)."""

import pytest

from repro.errors import ConfigurationError
from repro.workloads import ConstantLoad, PiApp

from ..conftest import make_host


def test_energy_conserved_across_domains_and_idle():
    host = make_host()
    a = host.create_domain("a", credit=30)
    b = host.create_domain("b", credit=20)
    a.attach_workload(ConstantLoad(30, injection_period=0.02))
    b.attach_workload(ConstantLoad(20, injection_period=0.02))
    host.run(until=20.0)
    attributed = (
        host.domain_energy_joules("a")
        + host.domain_energy_joules("b")
        + host.idle_energy_joules
    )
    assert attributed == pytest.approx(host.processor.energy_joules, rel=1e-9)


def test_busier_domain_pays_more():
    host = make_host()
    heavy = host.create_domain("heavy", credit=60)
    light = host.create_domain("light", credit=10)
    heavy.attach_workload(ConstantLoad(60, injection_period=0.02))
    light.attach_workload(ConstantLoad(10, injection_period=0.02))
    host.run(until=20.0)
    assert host.domain_energy_joules("heavy") > 4 * host.domain_energy_joules("light")


def test_idle_host_charges_only_idle_energy():
    host = make_host()
    host.create_domain("vm", credit=50)
    host.run(until=10.0)
    assert host.domain_energy_joules("vm") == 0.0
    assert host.idle_energy_joules == pytest.approx(host.processor.energy_joules)


def test_energy_attribution_scales_with_frequency():
    # The same work costs fewer joules at a lower P-state: the customer's
    # bill under PAS reflects the frequency the provider chose.
    expensive = make_host(governor="performance")
    cheap = make_host(governor="powersave")
    for host in (expensive, cheap):
        vm = host.create_domain("vm", credit=100)
        vm.attach_workload(PiApp(2.0))
        host.run(until=10.0)
    assert cheap.domain_energy_joules("vm") < expensive.domain_energy_joules("vm")


def test_unknown_domain_rejected():
    host = make_host()
    host.create_domain("vm", credit=50)
    with pytest.raises(ConfigurationError):
        host.domain_energy_joules("ghost")


def test_attribution_survives_preemption_and_dvfs():
    host = make_host(scheduler="pas", governor="userspace")
    dom0 = host.create_domain("Dom0", credit=10, dom0=True)
    dom0.attach_workload(ConstantLoad(8, injection_period=0.05))
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=30.0)
    total = (
        host.domain_energy_joules("Dom0")
        + host.domain_energy_joules("vm")
        + host.idle_energy_joules
    )
    assert total == pytest.approx(host.processor.energy_joules, rel=1e-9)
    assert host.domain_energy_joules("vm") > host.domain_energy_joules("Dom0")
