"""Edge-case and failure-injection tests for the host dispatch loop."""

import pytest

from repro import Host, catalog, VCpuState
from repro.cpu.power import PowerModel
from repro.cpu.processor import ProcessorSpec, make_states
from repro.errors import SchedulerError
from repro.workloads import ConstantLoad, PiApp

from ..conftest import make_host


def test_frequency_change_while_idle_is_harmless():
    host = make_host(governor="userspace")
    host.create_domain("vm", credit=50)
    host.start()
    host.run(until=1.0)
    host.cpufreq.set_speed(1600)
    host.run(until=2.0)
    assert host.processor.frequency_mhz == 1600
    assert host.processor.busy_seconds == 0.0


def test_rapid_frequency_flapping_preserves_work_conservation():
    host = make_host(governor="userspace")
    vm = host.create_domain("vm", credit=100)
    app = PiApp(1.0)
    vm.attach_workload(app)
    host.start()
    freqs = [1600, 2667, 1867, 2400, 2133]
    expected_wall = 0.0
    for index, freq in enumerate(freqs):
        host.cpufreq.set_speed(freq)
        host.run(until=(index + 1) * 0.1)
        expected_wall += 0.1 * (freq / 2667)
    # Work done must equal the integral of capacity over busy time.
    assert vm.work_done == pytest.approx(expected_wall, rel=0.01)


def test_workload_stop_mid_run_blocks_vcpu():
    host = make_host()
    vm = host.create_domain("vm", credit=100)
    load = ConstantLoad(50, injection_period=0.02)
    vm.attach_workload(load)
    host.run(until=2.0)
    load.stop()
    host.run(until=5.0)
    assert vm.vcpu.state is VCpuState.BLOCKED


def test_zero_credit_zero_weight_domain_starves_only_under_contention():
    host = make_host()
    scavenger = host.create_domain("scavenger", credit=0)
    hog = host.create_domain("hog", credit=0, weight=1000)
    scavenger.attach_workload(ConstantLoad(100, injection_period=0.01))
    hog.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=5.0)
    assert hog.cpu_seconds > scavenger.cpu_seconds * 10


def test_sync_accounting_idempotent():
    host = make_host()
    vm = host.create_domain("vm", credit=100)
    vm.attach_workload(PiApp(5.0))
    host.start()
    host.engine.run_until(1.0)
    host.sync_accounting()
    first = vm.cpu_seconds
    host.sync_accounting()
    host.sync_accounting()
    assert vm.cpu_seconds == first


def test_end_slice_while_idle_raises():
    host = make_host()
    host.create_domain("vm", credit=50)
    host.start()
    with pytest.raises(SchedulerError):
        host._end_current_slice()


def test_many_tiny_work_injections():
    host = make_host()
    vm = host.create_domain("vm", credit=100)
    host.start()
    for index in range(100):
        host.run(until=(index + 1) * 0.001)
        host.domain("vm").add_work(1e-4)
    host.run(until=1.0)
    assert vm.work_done == pytest.approx(0.01, rel=0.01)


def test_work_added_exactly_at_run_boundary():
    host = make_host()
    vm = host.create_domain("vm", credit=100)
    host.start()
    host.run(until=1.0)
    host.domain("vm").add_work(0.5)
    host.run(until=2.0)
    assert vm.work_done == pytest.approx(0.5)


def test_kick_noop_before_start():
    host = make_host()
    host.create_domain("vm", credit=50)
    host.kick()  # must not dispatch or raise before start()


def test_host_with_two_frequency_processor():
    host = Host(
        processor=catalog.OPTERON_6164_HE, scheduler="pas", governor="userspace"
    )
    vm = host.create_domain("vm", credit=20)
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=30.0)
    # 20% absolute fits the 800 MHz state (ratio 0.47, cf 0.995 -> 46.8%).
    assert host.processor.frequency_mhz == 800
    assert vm.work_done / 30.0 == pytest.approx(0.20, abs=0.015)


def test_cap_tighter_than_quantum_still_precise():
    host = make_host()
    vm = host.create_domain("vm", credit=2)  # 0.6ms budget per 30ms period
    vm.attach_workload(ConstantLoad(100, injection_period=0.01))
    host.run(until=20.0)
    assert vm.cpu_seconds / 20.0 == pytest.approx(0.02, abs=0.004)


def test_same_capacity_frequency_change_does_not_preempt():
    # 1000 MHz at cf=1.0 and 2000 MHz at cf=0.5 deliver the identical
    # effective capacity (ratio * cf = 0.5): switching between them must not
    # end the in-flight slice, because its work accounting is still valid.
    spec = ProcessorSpec(
        name="iso-capacity",
        states=make_states([1000, 2000], cf=[1.0, 0.5]),
        power=PowerModel(idle_watts=10.0, busy_watts=30.0),
    )
    host = Host(processor=spec, scheduler="credit", governor="userspace")
    vm = host.create_domain("vm", credit=100)
    vm.attach_workload(PiApp(10.0))
    host.start()
    host.run(until=1.0)
    before = host.preemptions
    host.cpufreq.set_speed(1000)  # real P-state change, same capacity
    assert host.processor.transitions == 1
    assert host.preemptions == before
    host.run(until=2.0)
    # Work conservation: 2 wall seconds at capacity 0.5 throughout.
    assert vm.work_done == pytest.approx(1.0, rel=0.01)


def test_mid_slice_frequency_change_bills_prefix_at_old_state():
    # The slice prefix before a P-state flip ran at the old state's wattage
    # and must land in the old state's energy/time-in-state books, even when
    # the flip happens between accounting boundaries.
    spec = ProcessorSpec(
        name="iso-capacity",
        states=make_states([1000, 2000], cf=[1.0, 0.5]),
        power=PowerModel(idle_watts=10.0, busy_watts=30.0),
    )
    host = Host(processor=spec, scheduler="credit", governor="userspace")
    vm = host.create_domain("vm", credit=100)
    vm.attach_workload(PiApp(10.0))
    host.start()
    host.run(until=1.5)  # mid-way between the 1 s monitor samples
    host.cpufreq.set_speed(1000)
    host.run(until=3.0)
    table = host.processor.table
    state_2000, state_1000 = table.state_for(2000), table.state_for(1000)
    expected = spec.power.energy(state_2000, table, 1.0, 1.5) + spec.power.energy(
        state_1000, table, 1.0, 1.5
    )
    assert host.processor.energy_joules == pytest.approx(expected, rel=1e-9)
    assert host.processor.time_in_state(2000) == pytest.approx(1.5)
    assert host.processor.time_in_state(1000) == pytest.approx(1.5)


def test_capacity_changing_frequency_change_still_preempts():
    host = make_host(governor="userspace")
    vm = host.create_domain("vm", credit=100)
    vm.attach_workload(PiApp(10.0))
    host.start()
    host.run(until=1.0)
    before = host.preemptions
    host.cpufreq.set_speed(1600)
    assert host.preemptions == before + 1


def test_all_domains_idle_whole_run_consumes_only_idle_power():
    host = make_host()
    for index in range(3):
        host.create_domain(f"vm{index}", credit=30)
    host.run(until=10.0)
    idle_watts = host.processor.spec.power.idle_watts
    assert host.processor.energy_joules == pytest.approx(idle_watts * 10.0, rel=0.01)
