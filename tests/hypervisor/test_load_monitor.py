"""Unit tests for the load monitor."""

import pytest

from repro.workloads import ConstantLoad

from ..conftest import make_host


def run_with_load(percent, *, governor="performance", duration=20.0, **host_kwargs):
    host = make_host(governor=governor, **host_kwargs)
    vm = host.create_domain("vm", credit=0)  # uncapped
    vm.attach_workload(ConstantLoad(percent, injection_period=0.02))
    host.run(until=duration)
    return host


def test_global_load_tracks_demand():
    host = run_with_load(40.0)
    load = host.recorder.series("vm.global_load").window(5, 20).mean()
    assert load == pytest.approx(40.0, abs=1.0)


def test_host_global_load_sums_domains():
    host = make_host()
    a = host.create_domain("a", credit=0, weight=10)
    b = host.create_domain("b", credit=0, weight=10)
    a.attach_workload(ConstantLoad(20, injection_period=0.02))
    b.attach_workload(ConstantLoad(30, injection_period=0.02))
    host.run(until=20.0)
    total = host.recorder.series("host.global_load").window(5, 20).mean()
    assert total == pytest.approx(50.0, abs=1.5)


def test_absolute_load_scales_with_frequency():
    host = make_host(governor="userspace")
    vm = host.create_domain("vm", credit=0)
    vm.attach_workload(ConstantLoad(20, injection_period=0.02))
    host.start()
    host.cpufreq.set_speed(1600)
    host.run(until=20.0)
    nominal = host.recorder.series("vm.global_load").window(5, 20).mean()
    absolute = host.recorder.series("vm.absolute_load").window(5, 20).mean()
    # Demand 20% absolute at ratio 0.6 -> nominal 33.3, absolute back to 20.
    assert nominal == pytest.approx(33.3, abs=1.5)
    assert absolute == pytest.approx(20.0, abs=1.0)


def test_vm_load_relative_to_credit():
    host = make_host()
    vm = host.create_domain("vm", credit=40)
    vm.attach_workload(ConstantLoad(20, injection_period=0.02))
    host.run(until=20.0)
    vm_load = host.recorder.series("vm.vm_load").window(5, 20).mean()
    # Using 20% of the host = 50% of its 40% credit.
    assert vm_load == pytest.approx(50.0, abs=2.5)


def test_frequency_series_recorded():
    host = run_with_load(10.0)
    series = host.recorder.series("host.freq_mhz")
    assert series.min() == 2667.0  # performance governor


def test_power_and_energy_series():
    host = run_with_load(50.0)
    power = host.recorder.series("host.power_w")
    energy = host.recorder.series("host.energy_j")
    assert power.min() > 0.0
    values = energy.values
    assert values == sorted(values)  # energy is cumulative


def test_idle_host_records_zero_load():
    host = make_host()
    host.create_domain("vm", credit=50)
    host.run(until=5.0)
    assert host.recorder.series("host.global_load").max() == 0.0


def test_sample_count_matches_period():
    host = run_with_load(10.0, duration=10.0)
    assert len(host.recorder.series("host.global_load")) == 10


def test_custom_monitor_period():
    host = make_host(monitor_period=0.5)
    vm = host.create_domain("vm", credit=0)
    vm.attach_workload(ConstantLoad(30, injection_period=0.02))
    host.run(until=10.0)
    assert len(host.recorder.series("host.global_load")) == 20


def test_loads_clamped_to_valid_range():
    host = run_with_load(100.0)
    series = host.recorder.series("host.global_load")
    assert 0.0 <= series.min() and series.max() <= 100.0
