"""Governor test harness: a cpufreq stack without a full host."""

from __future__ import annotations

import pytest

from repro import CpuFreq, Processor
from repro.cpu import catalog
from repro.sim import Engine


class GovernorHarness:
    """Drives a governor with synthetic load samples."""

    def __init__(self, spec=catalog.OPTIPLEX_755):
        self.engine = Engine()
        self.processor = Processor(spec)
        self.cpufreq = CpuFreq(self.engine, self.processor)

    def install(self, governor):
        # Attach without set_governor: that would start the real sampling
        # timer, whose measured (zero) loads would interleave with the
        # synthetic samples feed() delivers.
        governor.attach(self.cpufreq)
        initial = governor.initial_frequency()
        if initial is not None:
            self.cpufreq.set_speed(initial)
        return governor

    def feed(self, governor, load_percent, *, advance=None):
        """Advance time one sampling period and deliver one sample."""
        period = governor.sampling_period or 1.0
        self.engine.run_until(self.engine.now + (advance or period))
        target = governor.decide(load_percent, self.engine.now)
        if target is not None:
            self.cpufreq.set_speed(target)
        return self.processor.frequency_mhz


@pytest.fixture
def harness() -> GovernorHarness:
    return GovernorHarness()
