"""Unit tests for the paper's stable governor."""

import pytest

from repro.errors import ConfigurationError
from repro import StableGovernor


def make(harness, **kwargs):
    kwargs.setdefault("dwell", 0.0)
    return harness.install(StableGovernor(**kwargs))


def test_no_decision_before_window_filled(harness):
    governor = make(harness, window=3)
    harness.processor.set_frequency(2667)
    assert harness.feed(governor, 10.0) == 2667
    assert harness.feed(governor, 10.0) == 2667
    # Third sample completes the window; now it may act.
    assert harness.feed(governor, 10.0) == 1600


def test_averages_three_samples(harness):
    governor = make(harness, window=3, margin_percent=0.0)
    # Mean nominal of (10, 10, 100) = 40 < 80; mean absolute = 40 -> 1600
    # has capacity 60 > 40.
    harness.feed(governor, 10.0)
    harness.feed(governor, 10.0)
    assert harness.feed(governor, 100.0) == 1600


def test_high_average_jumps_to_max(harness):
    governor = make(harness, window=3)
    harness.processor.set_frequency(1600)
    for _ in range(3):
        harness.feed(governor, 95.0)
    assert harness.processor.frequency_mhz == 2667


def test_up_threshold_uses_nominal_not_absolute(harness):
    governor = make(harness, window=1, up_threshold=80.0)
    harness.processor.set_frequency(1600)
    # Nominal 90 at 1600 -> absolute only 54, but nominal saturation means
    # demand is being clipped: jump to max.
    assert harness.feed(governor, 90.0) == 2667


def test_fit_band_respects_margin(harness):
    governor = make(harness, window=1, margin_percent=5.0)
    # Absolute 58 + margin 5 = 63 > capacity(1600) = 60 -> 1867.
    assert harness.feed(governor, 58.0) == 1867


def test_dwell_blocks_rapid_changes(harness):
    governor = harness.install(StableGovernor(window=1, dwell=10.0, sampling_period=1.0))
    assert harness.feed(governor, 5.0) == 1600  # first change allowed
    assert harness.feed(governor, 95.0) == 1600  # blocked by dwell
    for _ in range(9):
        harness.feed(governor, 95.0)
    assert harness.processor.frequency_mhz == 2667  # dwell expired


def test_no_change_does_not_reset_dwell(harness):
    governor = harness.install(StableGovernor(window=1, dwell=5.0, sampling_period=1.0))
    harness.feed(governor, 5.0)  # change to 1600 at t=1
    for _ in range(4):
        harness.feed(governor, 5.0)  # no-ops
    # t=6 now; last change at t=1; dwell satisfied.
    assert harness.feed(governor, 95.0) == 2667


def test_averaged_absolute_load_property(harness):
    governor = make(harness, window=2)
    harness.feed(governor, 10.0)
    harness.feed(governor, 30.0)
    assert governor.averaged_absolute_load == pytest.approx(20.0)


def test_averaged_properties_empty():
    governor = StableGovernor()
    assert governor.averaged_absolute_load == 0.0
    assert governor.averaged_nominal_load == 0.0


def test_default_parameters_match_paper():
    governor = StableGovernor()
    assert governor.window == 3
    assert governor.sampling_period == pytest.approx(1.0)


def test_invalid_window_rejected():
    with pytest.raises(ConfigurationError):
        StableGovernor(window=0)


def test_name():
    assert StableGovernor().name == "stable"
