"""Unit tests for the conservative governor."""

import pytest

from repro.errors import ConfigurationError
from repro import ConservativeGovernor


def test_steps_up_one_level(harness):
    governor = harness.install(ConservativeGovernor())
    harness.processor.set_frequency(1600)
    assert harness.feed(governor, 90.0) == 1867


def test_steps_down_one_level(harness):
    governor = harness.install(ConservativeGovernor())
    assert harness.feed(governor, 5.0) == 2400


def test_holds_in_midband(harness):
    governor = harness.install(ConservativeGovernor())
    harness.processor.set_frequency(2133)
    assert harness.feed(governor, 50.0) == 2133


def test_saturates_at_top(harness):
    governor = harness.install(ConservativeGovernor())
    assert harness.feed(governor, 95.0) == 2667


def test_saturates_at_bottom(harness):
    governor = harness.install(ConservativeGovernor())
    harness.processor.set_frequency(1600)
    assert harness.feed(governor, 1.0) == 1600


def test_climbs_full_range_one_step_per_sample(harness):
    governor = harness.install(ConservativeGovernor())
    harness.processor.set_frequency(1600)
    freqs = [harness.feed(governor, 95.0) for _ in range(5)]
    assert freqs == [1867, 2133, 2400, 2667, 2667]


def test_invalid_thresholds_rejected():
    with pytest.raises(ConfigurationError):
        ConservativeGovernor(up_threshold=10.0, down_threshold=10.0)


def test_name():
    assert ConservativeGovernor().name == "conservative"
