"""Unit tests for the stock ondemand governor."""

import pytest

from repro.errors import ConfigurationError
from repro import OndemandGovernor


def test_high_load_jumps_to_max(harness):
    governor = harness.install(OndemandGovernor())
    harness.processor.set_frequency(1600)
    assert harness.feed(governor, 85.0) == 2667


def test_low_load_drops_to_min(harness):
    governor = harness.install(OndemandGovernor())
    assert harness.feed(governor, 10.0) == 1600


def test_threshold_boundary_jumps_at_up_threshold(harness):
    governor = harness.install(OndemandGovernor(up_threshold=80.0))
    harness.processor.set_frequency(1600)
    assert harness.feed(governor, 80.0) == 2667


def test_below_down_threshold_hits_min(harness):
    governor = harness.install(OndemandGovernor(down_threshold=20.0))
    assert harness.feed(governor, 19.9) == 1600


def test_midband_fits_cheapest_sufficient_frequency(harness):
    governor = harness.install(OndemandGovernor())
    # At 2667 with nominal 50%: absolute = 50, required = 62.5 -> 1867
    # (capacity 70) is the lowest absorbing state.
    assert harness.feed(governor, 50.0) == 1867


def test_midband_accounts_for_current_frequency(harness):
    governor = harness.install(OndemandGovernor())
    harness.processor.set_frequency(1600)
    # At 1600 nominal 50% -> absolute 30 -> required 37.5 -> 1600 has 60.
    assert harness.feed(governor, 50.0) == 1600


def test_invalid_thresholds_rejected():
    with pytest.raises(ConfigurationError):
        OndemandGovernor(up_threshold=20.0, down_threshold=30.0)


def test_default_sampling_is_10ms():
    assert OndemandGovernor().sampling_period == pytest.approx(0.01)


def test_oscillates_between_extremes_on_alternating_load(harness):
    governor = harness.install(OndemandGovernor())
    freqs = [harness.feed(governor, load) for load in (90, 5, 90, 5, 90, 5)]
    assert freqs == [2667, 1600, 2667, 1600, 2667, 1600]


def test_name():
    assert OndemandGovernor().name == "ondemand"
