"""Unit tests for the governor registry."""

import pytest

from repro import GOVERNOR_NAMES, make_governor
from repro.errors import ConfigurationError


def test_all_names_instantiate():
    for name in GOVERNOR_NAMES:
        assert make_governor(name).name == name


def test_names_cover_the_paper_set():
    # §2.2 + the authors' own governor.
    assert set(GOVERNOR_NAMES) == {
        "performance",
        "powersave",
        "userspace",
        "ondemand",
        "conservative",
        "stable",
    }


def test_unknown_name_raises():
    with pytest.raises(ConfigurationError):
        make_governor("turbo")


def test_kwargs_forwarded():
    governor = make_governor("ondemand", up_threshold=70.0)
    assert governor.up_threshold == 70.0


def test_each_call_returns_fresh_instance():
    assert make_governor("stable") is not make_governor("stable")
