"""Unit tests for ondemand's sampling_down_factor anti-flap tunable."""

import pytest

from repro.errors import ConfigurationError
from repro import OndemandGovernor


def test_default_factor_allows_immediate_drop(harness):
    governor = harness.install(OndemandGovernor())
    harness.feed(governor, 90.0)
    assert harness.feed(governor, 5.0) == 1600


def test_down_factor_holds_max_after_jump(harness):
    governor = harness.install(OndemandGovernor(sampling_down_factor=3))
    harness.feed(governor, 90.0)
    assert harness.processor.frequency_mhz == 2667
    # Two idle samples are swallowed by the hold window...
    assert harness.feed(governor, 5.0) == 2667
    assert harness.feed(governor, 5.0) == 2667
    # ...the third takes effect.
    assert harness.feed(governor, 5.0) == 1600


def test_new_jump_rearms_hold(harness):
    governor = harness.install(OndemandGovernor(sampling_down_factor=2))
    harness.feed(governor, 90.0)
    harness.feed(governor, 90.0)  # re-jump re-arms the hold
    assert harness.feed(governor, 5.0) == 2667
    assert harness.feed(governor, 5.0) == 1600


def test_down_factor_reduces_transitions_under_flapping_load(harness):
    plain = OndemandGovernor()
    damped = OndemandGovernor(sampling_down_factor=5)
    pattern = [90.0, 5.0, 90.0, 5.0, 90.0, 5.0, 90.0, 5.0]

    harness.install(plain)
    for load in pattern:
        harness.feed(plain, load)
    plain_transitions = harness.processor.transitions

    from .conftest import GovernorHarness

    fresh = GovernorHarness()
    fresh.install(damped)
    for load in pattern:
        fresh.feed(damped, load)
    assert fresh.processor.transitions < plain_transitions


def test_invalid_factor_rejected():
    with pytest.raises(ConfigurationError):
        OndemandGovernor(sampling_down_factor=0)
