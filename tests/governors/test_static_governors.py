"""Unit tests for performance / powersave / userspace governors."""

import pytest

from repro import (
    PerformanceGovernor,
    PowersaveGovernor,
    UserspaceGovernor,
)
from repro.errors import ConfigurationError, FrequencyError


def test_performance_pins_max(harness):
    harness.processor.set_frequency(1600)
    harness.install(PerformanceGovernor())
    assert harness.processor.frequency_mhz == 2667


def test_performance_has_no_sampling_timer(harness):
    harness.install(PerformanceGovernor())
    assert harness.engine.pending_count == 0


def test_powersave_pins_min(harness):
    harness.install(PowersaveGovernor())
    assert harness.processor.frequency_mhz == 1600


def test_powersave_has_no_sampling_timer(harness):
    harness.install(PowersaveGovernor())
    assert harness.engine.pending_count == 0


def test_userspace_keeps_current_frequency_on_install(harness):
    harness.processor.set_frequency(2133)
    harness.install(UserspaceGovernor())
    assert harness.processor.frequency_mhz == 2133


def test_userspace_set_speed(harness):
    governor = harness.install(UserspaceGovernor())
    assert governor.set_speed(1867) is True
    assert harness.processor.frequency_mhz == 1867


def test_userspace_set_speed_rejects_unknown(harness):
    governor = harness.install(UserspaceGovernor())
    with pytest.raises(FrequencyError):
        governor.set_speed(1700)


def test_governor_unattached_raises():
    governor = UserspaceGovernor()
    with pytest.raises(ConfigurationError):
        governor.set_speed(1600)


def test_absolute_load_helper(harness):
    governor = harness.install(UserspaceGovernor())
    governor.set_speed(1600)
    # Absolute load = nominal * ratio * cf; Optiplex cf = 1.
    assert governor.absolute_load_percent(50.0) == pytest.approx(50.0 * 1600 / 2667)


def test_names():
    assert PerformanceGovernor().name == "performance"
    assert PowersaveGovernor().name == "powersave"
    assert UserspaceGovernor().name == "userspace"
