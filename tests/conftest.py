"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Host, catalog
from repro.cpu.power import PowerModel
from repro.cpu.processor import ProcessorSpec, make_states
from repro.sim import Engine


@pytest.fixture
def engine() -> Engine:
    """A fresh event engine."""
    return Engine()


@pytest.fixture
def two_state_spec() -> ProcessorSpec:
    """A minimal two-frequency processor (1000 / 2000 MHz, cf = 1)."""
    return ProcessorSpec(
        name="two-state",
        states=make_states([1000, 2000]),
        power=PowerModel(idle_watts=10.0, busy_watts=30.0),
    )


@pytest.fixture
def paper_spec() -> ProcessorSpec:
    """The Optiplex 755 testbed processor."""
    return catalog.OPTIPLEX_755


def make_host(**kwargs) -> Host:
    """A host with test-friendly defaults (credit scheduler, performance)."""
    kwargs.setdefault("scheduler", "credit")
    kwargs.setdefault("governor", "performance")
    return Host(**kwargs)


@pytest.fixture
def host() -> Host:
    """A default host on the paper's testbed processor."""
    return make_host()
