"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "figures" in out and "tables" in out and "ablations" in out


def test_figure_command_passes(capsys):
    assert main(["figure", "4"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert "[PASS]" in out
    assert "[FAIL]" not in out


def test_table_command_passes(capsys):
    assert main(["table", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "0.80338" in out  # the E5-2620 outlier


def test_validate_command(capsys):
    assert main(["validate", "eq3"]) == 0
    assert "Eq. 3" in capsys.readouterr().out


def test_calibrate_command(capsys):
    assert main(["calibrate", "Intel Xeon E5-2620"]) == 0
    out = capsys.readouterr().out
    assert "0.80338" in out


def test_calibrate_unknown_processor(capsys):
    assert main(["calibrate", "Pentium III"]) == 2
    assert "unknown processor" in capsys.readouterr().err


def test_scenario_command(capsys):
    assert (
        main(
            [
                "scenario",
                "--scheduler",
                "pas",
                "--v20-load",
                "thrashing",
                "--duration",
                "800",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "V20.absolute_load" in out
    assert "energy" in out


_FAST_GRID = (
    '{"scheduler": ["credit", "pas"], "v20_load": ["exact", "thrashing"],'
    ' "duration": [200.0], "v20_active": [[20.0, 180.0]], "v70_active": [[60.0, 140.0]]}'
)


def test_sweep_command_json_grid(capsys, tmp_path):
    out_path = tmp_path / "results.json"
    assert main(["sweep", "--grid", _FAST_GRID, "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "4 cells" in out
    assert "energy_joules" in out
    text = out_path.read_text()
    assert '"scheduler=pas,' in text


def test_sweep_workers_output_byte_identical(capsys, tmp_path):
    serial_path = tmp_path / "serial.json"
    parallel_path = tmp_path / "parallel.json"
    assert main(["sweep", "--grid", _FAST_GRID, "--workers", "1", "--out", str(serial_path)]) == 0
    assert main(["sweep", "--grid", _FAST_GRID, "--workers", "4", "--out", str(parallel_path)]) == 0
    capsys.readouterr()
    assert serial_path.read_bytes() == parallel_path.read_bytes()


def test_sweep_csv_output(capsys, tmp_path):
    out_path = tmp_path / "results.csv"
    assert main(["sweep", "--grid", _FAST_GRID, "--out", str(out_path)]) == 0
    capsys.readouterr()
    lines = out_path.read_text().splitlines()
    assert lines[0].startswith("label,")
    assert len(lines) == 5


def test_sweep_rejects_non_object_grid(capsys):
    assert main(["sweep", "--grid", "[1, 2]"]) == 2
    assert "JSON object" in capsys.readouterr().err


def test_sweep_rejects_invalid_json_grid(capsys):
    assert main(["sweep", "--grid", "{oops}"]) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_sweep_rejects_unknown_axis(capsys):
    assert main(["sweep", "--grid", '{"flux": [1]}']) == 2
    assert "unknown sweep axis" in capsys.readouterr().err


def test_sweep_reports_bad_cell_value_cleanly(capsys):
    # The failure happens inside a worker cell; it must still surface as a
    # clean one-line error and exit 2, not a traceback.
    code = main(
        ["sweep", "--grid", '{"scheduler": ["xenomorph"], "duration": [50.0]}']
    )
    assert code == 2
    assert "unknown scheduler" in capsys.readouterr().err


def test_sweep_default_grid_is_24_cells():
    from repro.cli import _SWEEP_DEFAULTS

    cells = 1
    for axis in _SWEEP_DEFAULTS.values():
        cells *= len(axis.split(","))
    assert cells >= 24


def test_sweep_list_presets(capsys):
    assert main(["sweep", "--list-presets"]) == 0
    out = capsys.readouterr().out
    for name in ("paper-5.3", "governors", "diurnal-web", "pi-batch", "mixed-guests"):
        assert name in out


def test_sweep_preset_runs_a_grid(capsys, tmp_path):
    out_path = tmp_path / "governors.json"
    assert (
        main(
            [
                "sweep",
                "--preset",
                "governors",
                "--duration",
                "100",
                "--workers",
                "2",
                "--out",
                str(out_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "8 cells" in out
    assert out_path.exists()


def test_sweep_unknown_preset_lists_choices(capsys):
    assert main(["sweep", "--preset", "nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown preset" in err and "governors" in err


def test_sweep_preset_rejects_conflicting_axis_flags(capsys):
    assert main(["sweep", "--preset", "governors", "--grid", '{"scheduler": ["sedf"]}']) == 2
    assert "--grid" in capsys.readouterr().err
    assert main(["sweep", "--preset", "governors", "--schedulers", "sedf"]) == 2
    assert "--schedulers" in capsys.readouterr().err


def test_sweep_replicates_expand_cells(capsys):
    assert (
        main(
            [
                "sweep",
                "--grid",
                '{"scheduler": ["credit"], "duration": [60.0],'
                ' "v20_active": [[10.0, 50.0]], "v70_active": [[20.0, 40.0]]}',
                "--replicates",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "2 cells" in out
    assert "rep=1" in out


def test_run_preset(capsys):
    assert main(["run", "--preset", "stress-fleet"]) == 0
    out = capsys.readouterr().out
    assert "S00" in out and "S07" in out
    assert "energy" in out


def test_run_unknown_preset(capsys):
    assert main(["run", "--preset", "nope"]) == 2
    assert "unknown preset" in capsys.readouterr().err


def test_run_scenario_file_round_trip(capsys, tmp_path):
    import json

    from repro.experiments import preset_config

    spec = preset_config("mixed-guests").with_changes(duration=120.0).to_dict()
    path = tmp_path / "fleet.json"
    path.write_text(json.dumps(spec))
    assert main(["run", "--scenario", str(path)]) == 0
    out = capsys.readouterr().out
    assert "W20" in out and "B30" in out and "T25" in out


def test_run_scenario_file_unknown_field_is_clean(capsys, tmp_path):
    import json

    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schedular": "pas"}))
    assert main(["run", "--scenario", str(path)]) == 2
    err = capsys.readouterr().err
    assert "valid fields" in err and "scheduler" in err


def test_run_scenario_file_invalid_json(capsys, tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{oops}")
    assert main(["run", "--scenario", str(path)]) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_run_requires_a_source():
    with pytest.raises(SystemExit):
        main(["run"])


def test_invalid_figure_number_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "11"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_parser_builds():
    parser = build_parser()
    args = parser.parse_args(["figure", "9"])
    assert args.number == 9


# ------------------------------------------------------------ store surface


def test_sweep_store_warm_rerun_is_all_hits_and_byte_identical(capsys, tmp_path):
    store_dir = str(tmp_path / "st")
    cold_path, warm_path = tmp_path / "cold.json", tmp_path / "warm.json"
    base = ["sweep", "--grid", _FAST_GRID, "--store", store_dir]
    assert main(base + ["--out", str(cold_path)]) == 0
    assert "0 cells warm, 4 computed" in capsys.readouterr().out
    assert main(base + ["--resume", "--out", str(warm_path)]) == 0
    assert "4 cells warm, 0 computed" in capsys.readouterr().out
    assert cold_path.read_bytes() == warm_path.read_bytes()


def test_sweep_store_force_recomputes(capsys, tmp_path):
    store_dir = str(tmp_path / "st")
    base = ["sweep", "--grid", _FAST_GRID, "--store", store_dir]
    assert main(base) == 0
    capsys.readouterr()
    assert main(base + ["--force"]) == 0
    assert "0 cells warm, 4 computed" in capsys.readouterr().out


def test_sweep_resume_and_force_are_exclusive(capsys, tmp_path):
    code = main(
        ["sweep", "--store", str(tmp_path / "st"), "--resume", "--force"]
    )
    assert code == 2
    assert "opposites" in capsys.readouterr().err


def test_sweep_resume_requires_store(capsys):
    assert main(["sweep", "--resume"]) == 2
    assert "--store" in capsys.readouterr().err


def test_sweep_out_aggregated(capsys, tmp_path):
    agg = tmp_path / "agg.csv"
    assert (
        main(["sweep", "--grid", _FAST_GRID, "--replicates", "2", "--out-aggregated", str(agg)])
        == 0
    )
    assert "aggregated rows" in capsys.readouterr().out
    lines = agg.read_text().splitlines()
    assert len(lines) == 1 + 4  # 4 logical cells, replicates collapsed
    assert "energy_joules_ci95" in lines[0]


def test_store_ls_show_gc_export(capsys, tmp_path):
    store_dir = str(tmp_path / "st")
    assert main(["sweep", "--grid", _FAST_GRID, "--store", store_dir]) == 0
    capsys.readouterr()
    assert main(["store", "ls", "--store", store_dir]) == 0
    out = capsys.readouterr().out
    assert "4 cells" in out and "scheduler=pas" in out
    assert main(["store", "show", "--store", store_dir, "scheduler=pas,v20_load=exact,duration=200.0,v20_active=[20.0,180.0],v70_active=[60.0,140.0]"]) == 0
    out = capsys.readouterr().out
    assert '"metrics"' in out and '"seed"' in out
    assert main(["store", "gc", "--store", store_dir]) == 0
    assert "kept 4 cells" in capsys.readouterr().out
    export = tmp_path / "corpus.csv"
    assert main(["store", "export", "--store", store_dir, "--out", str(export)]) == 0
    capsys.readouterr()
    assert len(export.read_text().splitlines()) == 5


def test_store_show_unknown_cell(capsys, tmp_path):
    store_dir = str(tmp_path / "st")
    assert main(["sweep", "--grid", _FAST_GRID, "--store", store_dir]) == 0
    capsys.readouterr()
    assert main(["store", "show", "--store", store_dir, "nope"]) == 2
    assert "no stored cell" in capsys.readouterr().err


def test_store_on_non_store_directory(capsys, tmp_path):
    assert main(["store", "ls", "--store", str(tmp_path / "empty")]) == 2
    assert "not an experiment store" in capsys.readouterr().err


def test_ablation_accepts_store(capsys, tmp_path):
    # The cf ablation hand-builds its runs; --store must warn, not crash.
    assert main(["ablation", "cf", "--store", str(tmp_path / "st")]) in (0, 1)
    assert "does not support --store" in capsys.readouterr().err


def test_run_cluster_scenario_file(capsys, tmp_path):
    import json

    from repro.cluster import ClusterScenarioConfig

    spec = ClusterScenarioConfig(n_machines=2, n_vms=3, duration=100.0).to_dict()
    path = tmp_path / "fleet.json"
    path.write_text(json.dumps(spec))
    out_path = tmp_path / "resolved.json"
    assert main(["run", "--scenario", str(path), "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "3 VMs on 2 machines" in out
    assert "fleet energy" in out
    assert json.loads(out_path.read_text())["kind"] == "cluster"


def test_run_cluster_scenario_bad_field(capsys, tmp_path):
    import json

    path = tmp_path / "fleet.json"
    path.write_text(json.dumps({"kind": "cluster", "n_machines": 2, "warp": 1}))
    assert main(["run", "--scenario", str(path)]) == 2
    assert "unknown cluster scenario field" in capsys.readouterr().err


# ------------------------------------------------------------- cluster CLI


def test_cluster_run_preset(capsys, tmp_path):
    series = tmp_path / "epochs.csv"
    assert (
        main(
            [
                "cluster",
                "run",
                "--preset",
                "dc-diurnal-small",
                "--out-series",
                str(series),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "8 VMs on 4 machines" in out
    assert "peak power" in out
    lines = series.read_text().splitlines()
    assert lines[0].startswith("epoch,time,machines_on,")
    assert len(lines) == 21  # header + 20 epochs


def test_cluster_run_rejects_scenario_presets(capsys):
    assert main(["cluster", "run", "--preset", "governors"]) == 2
    assert "kind:cluster" in capsys.readouterr().err


def test_cluster_run_policy_override(capsys):
    assert (
        main(
            ["cluster", "run", "--preset", "dc-diurnal-small", "--policy", "static"]
        )
        == 0
    )
    assert "policy=static" in capsys.readouterr().out


def test_cluster_compare_writes_series_and_passes_checks(capsys, tmp_path):
    out_dir = tmp_path / "series"
    assert (
        main(
            [
                "cluster",
                "compare",
                "--preset",
                "dc-diurnal-small",
                "--out-dir",
                str(out_dir),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "[PASS] power-budget respects the 80 W cap every epoch" in out
    assert "[PASS] consolidate yields lower mean energy than static" in out
    assert "[FAIL]" not in out
    for policy in ("static", "consolidate", "load-balance", "power-budget"):
        path = out_dir / f"dc-diurnal-small.{policy}.epochs.csv"
        assert path.exists()
        assert path.read_text().startswith("epoch,time,machines_on,")


def test_cluster_compare_replicates_reports_ci(capsys, tmp_path):
    out_dir = tmp_path / "series"
    main(
        [
            "cluster",
            "compare",
            "--preset",
            "dc-diurnal-small",
            "--policies",
            "static,consolidate",
            "--replicates",
            "3",
            "--out-dir",
            str(out_dir),
        ]
    )
    out = capsys.readouterr().out
    assert "3 replicates (mean ±ci95)" in out
    assert "±" in out  # at least one metric spreads across seeds
    assert "[PASS] consolidate yields lower mean energy than static" in out
    # Replicate runs still write one epochs CSV per policy (first replicate).
    assert (out_dir / "dc-diurnal-small.static.epochs.csv").exists()


def test_cluster_compare_rejects_bad_replicates(capsys):
    assert (
        main(
            [
                "cluster",
                "compare",
                "--preset",
                "dc-diurnal-small",
                "--replicates",
                "0",
            ]
        )
        == 2
    )
    assert "--replicates must be >= 1" in capsys.readouterr().err


def test_cluster_sweep_store_resumes_warm(capsys, tmp_path):
    store = str(tmp_path / "store")
    assert main(["cluster", "sweep", "--preset", "dc-diurnal-small", "--store", store]) == 0
    capsys.readouterr()
    assert (
        main(
            [
                "cluster",
                "sweep",
                "--preset",
                "dc-diurnal-small",
                "--store",
                store,
                "--resume",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "4 cells warm, 0 computed" in out
    assert "energy_kwh" in out


def test_run_routes_cluster_presets(capsys):
    assert main(["run", "--preset", "dc-diurnal-small"]) == 0
    assert "fleet energy" in capsys.readouterr().out


def test_list_presets_tags_cluster_presets(capsys):
    assert main(["sweep", "--list-presets"]) == 0
    out = capsys.readouterr().out
    assert "kind:cluster" in out
    assert "dc-diurnal" in out


# ------------------------------------------------------------ store --where


def _populate_mixed_store(tmp_path):
    store = str(tmp_path / "store")
    grid = (
        '{"scheduler": ["credit", "pas"], "duration": [60.0], '
        '"v20_active": [[10.0, 50.0]], "v70_active": [[20.0, 40.0]]}'
    )
    assert main(["sweep", "--grid", grid, "--store", store]) == 0
    assert main(["cluster", "sweep", "--preset", "dc-diurnal-small", "--store", store]) == 0
    return store


def test_store_ls_where_filters_cells(capsys, tmp_path):
    store = _populate_mixed_store(tmp_path)
    capsys.readouterr()
    assert main(["store", "ls", "--store", store, "--where", "scheduler=pas"]) == 0
    out = capsys.readouterr().out
    assert "1 cells" in out
    assert "scheduler=pas" in out
    assert main(["store", "ls", "--store", store, "--where", "policy=static"]) == 0
    out = capsys.readouterr().out
    assert "policy=static" in out and "scheduler" not in out


def test_store_ls_where_no_match(capsys, tmp_path):
    store = _populate_mixed_store(tmp_path)
    capsys.readouterr()
    assert main(["store", "ls", "--store", store, "--where", "scheduler=sedf"]) == 0
    assert "no cells matching scheduler=sedf" in capsys.readouterr().out


def test_store_export_where_is_filtered(capsys, tmp_path):
    store = _populate_mixed_store(tmp_path)
    out_path = tmp_path / "pas.csv"
    capsys.readouterr()
    assert (
        main(
            [
                "store",
                "export",
                "--store",
                store,
                "--out",
                str(out_path),
                "--where",
                "scheduler=pas",
            ]
        )
        == 0
    )
    lines = out_path.read_text().splitlines()
    assert len(lines) == 2  # header + the one pas cell
    assert "pas" in lines[1]


def test_store_where_rejects_malformed_clause(capsys, tmp_path):
    store = _populate_mixed_store(tmp_path)
    capsys.readouterr()
    assert main(["store", "ls", "--store", store, "--where", "scheduler"]) == 2
    assert "KEY=VALUE" in capsys.readouterr().err


def test_store_where_numeric_values_match(capsys, tmp_path):
    store = _populate_mixed_store(tmp_path)
    capsys.readouterr()
    assert main(["store", "ls", "--store", store, "--where", "n_machines=4"]) == 0
    out = capsys.readouterr().out
    assert "4 cells" in out  # the four dc-diurnal-small policy cells


def test_store_where_accepts_inequality_bounds(capsys, tmp_path):
    store = _populate_mixed_store(tmp_path)
    capsys.readouterr()
    # The scenario cells ran 60 s, the dc-diurnal-small cluster cells 200 s.
    assert main(["store", "ls", "--store", store, "--where", "duration<=100"]) == 0
    assert "2 cells" in capsys.readouterr().out
    assert main(["store", "ls", "--store", store, "--where", "duration>=100"]) == 0
    assert "4 cells" in capsys.readouterr().out
    assert main(["store", "ls", "--store", store, "--where", "n_machines>=5"]) == 0
    assert "no cells matching n_machines>=5" in capsys.readouterr().out


def test_store_where_inequality_composes_with_equality(capsys, tmp_path):
    store = _populate_mixed_store(tmp_path)
    capsys.readouterr()
    assert (
        main(
            [
                "store",
                "ls",
                "--store",
                store,
                "--where",
                "scheduler=pas",
                "--where",
                "duration>=50",
            ]
        )
        == 0
    )
    assert "1 cells" in capsys.readouterr().out


def test_store_where_rejects_non_numeric_bound(capsys, tmp_path):
    store = _populate_mixed_store(tmp_path)
    capsys.readouterr()
    assert main(["store", "ls", "--store", store, "--where", "scheduler>=pas"]) == 2
    assert "numeric bound" in capsys.readouterr().err


# ------------------------------------------------------------ run --preset all


def test_run_preset_all_smokes_every_scenario_preset(capsys):
    assert main(["run", "--preset", "all"]) == 0
    out = capsys.readouterr().out
    assert "ok    qos-noisy-neighbor" in out
    assert "skip  dc-fleet-large (xlarge)" in out
    assert "skip  dc-diurnal-small (cluster" in out
    assert "preset smoke:" in out
    assert "failed" not in out


def test_run_preset_all_rejects_single_run_outputs(capsys, tmp_path):
    trace = str(tmp_path / "t.json")
    assert main(["run", "--preset", "all", "--trace", trace]) == 2
    assert "--preset all" in capsys.readouterr().err
