"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "figures" in out and "tables" in out and "ablations" in out


def test_figure_command_passes(capsys):
    assert main(["figure", "4"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert "[PASS]" in out
    assert "[FAIL]" not in out


def test_table_command_passes(capsys):
    assert main(["table", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "0.80338" in out  # the E5-2620 outlier


def test_validate_command(capsys):
    assert main(["validate", "eq3"]) == 0
    assert "Eq. 3" in capsys.readouterr().out


def test_calibrate_command(capsys):
    assert main(["calibrate", "Intel Xeon E5-2620"]) == 0
    out = capsys.readouterr().out
    assert "0.80338" in out


def test_calibrate_unknown_processor(capsys):
    assert main(["calibrate", "Pentium III"]) == 2
    assert "unknown processor" in capsys.readouterr().err


def test_scenario_command(capsys):
    assert (
        main(
            [
                "scenario",
                "--scheduler",
                "pas",
                "--v20-load",
                "thrashing",
                "--duration",
                "800",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "V20.absolute_load" in out
    assert "energy" in out


_FAST_GRID = (
    '{"scheduler": ["credit", "pas"], "v20_load": ["exact", "thrashing"],'
    ' "duration": [200.0], "v20_active": [[20.0, 180.0]], "v70_active": [[60.0, 140.0]]}'
)


def test_sweep_command_json_grid(capsys, tmp_path):
    out_path = tmp_path / "results.json"
    assert main(["sweep", "--grid", _FAST_GRID, "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "4 cells" in out
    assert "energy_joules" in out
    text = out_path.read_text()
    assert '"scheduler=pas,' in text


def test_sweep_workers_output_byte_identical(capsys, tmp_path):
    serial_path = tmp_path / "serial.json"
    parallel_path = tmp_path / "parallel.json"
    assert main(["sweep", "--grid", _FAST_GRID, "--workers", "1", "--out", str(serial_path)]) == 0
    assert main(["sweep", "--grid", _FAST_GRID, "--workers", "4", "--out", str(parallel_path)]) == 0
    capsys.readouterr()
    assert serial_path.read_bytes() == parallel_path.read_bytes()


def test_sweep_csv_output(capsys, tmp_path):
    out_path = tmp_path / "results.csv"
    assert main(["sweep", "--grid", _FAST_GRID, "--out", str(out_path)]) == 0
    capsys.readouterr()
    lines = out_path.read_text().splitlines()
    assert lines[0].startswith("label,")
    assert len(lines) == 5


def test_sweep_rejects_non_object_grid(capsys):
    assert main(["sweep", "--grid", "[1, 2]"]) == 2
    assert "JSON object" in capsys.readouterr().err


def test_sweep_rejects_invalid_json_grid(capsys):
    assert main(["sweep", "--grid", "{oops}"]) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_sweep_rejects_unknown_axis(capsys):
    assert main(["sweep", "--grid", '{"flux": [1]}']) == 2
    assert "unknown sweep axis" in capsys.readouterr().err


def test_sweep_reports_bad_cell_value_cleanly(capsys):
    # The failure happens inside a worker cell; it must still surface as a
    # clean one-line error and exit 2, not a traceback.
    code = main(
        ["sweep", "--grid", '{"scheduler": ["xenomorph"], "duration": [50.0]}']
    )
    assert code == 2
    assert "unknown scheduler" in capsys.readouterr().err


def test_sweep_default_grid_is_24_cells():
    from repro.cli import _SWEEP_DEFAULTS

    cells = 1
    for axis in _SWEEP_DEFAULTS.values():
        cells *= len(axis.split(","))
    assert cells >= 24


def test_sweep_list_presets(capsys):
    assert main(["sweep", "--list-presets"]) == 0
    out = capsys.readouterr().out
    for name in ("paper-5.3", "governors", "diurnal-web", "pi-batch", "mixed-guests"):
        assert name in out


def test_sweep_preset_runs_a_grid(capsys, tmp_path):
    out_path = tmp_path / "governors.json"
    assert (
        main(
            [
                "sweep",
                "--preset",
                "governors",
                "--duration",
                "100",
                "--workers",
                "2",
                "--out",
                str(out_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "8 cells" in out
    assert out_path.exists()


def test_sweep_unknown_preset_lists_choices(capsys):
    assert main(["sweep", "--preset", "nope"]) == 2
    err = capsys.readouterr().err
    assert "unknown preset" in err and "governors" in err


def test_sweep_preset_rejects_conflicting_axis_flags(capsys):
    assert main(["sweep", "--preset", "governors", "--grid", '{"scheduler": ["sedf"]}']) == 2
    assert "--grid" in capsys.readouterr().err
    assert main(["sweep", "--preset", "governors", "--schedulers", "sedf"]) == 2
    assert "--schedulers" in capsys.readouterr().err


def test_sweep_replicates_expand_cells(capsys):
    assert (
        main(
            [
                "sweep",
                "--grid",
                '{"scheduler": ["credit"], "duration": [60.0],'
                ' "v20_active": [[10.0, 50.0]], "v70_active": [[20.0, 40.0]]}',
                "--replicates",
                "2",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "2 cells" in out
    assert "rep=1" in out


def test_run_preset(capsys):
    assert main(["run", "--preset", "stress-fleet"]) == 0
    out = capsys.readouterr().out
    assert "S00" in out and "S07" in out
    assert "energy" in out


def test_run_unknown_preset(capsys):
    assert main(["run", "--preset", "nope"]) == 2
    assert "unknown preset" in capsys.readouterr().err


def test_run_scenario_file_round_trip(capsys, tmp_path):
    import json

    from repro.experiments import preset_config

    spec = preset_config("mixed-guests").with_changes(duration=120.0).to_dict()
    path = tmp_path / "fleet.json"
    path.write_text(json.dumps(spec))
    assert main(["run", "--scenario", str(path)]) == 0
    out = capsys.readouterr().out
    assert "W20" in out and "B30" in out and "T25" in out


def test_run_scenario_file_unknown_field_is_clean(capsys, tmp_path):
    import json

    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schedular": "pas"}))
    assert main(["run", "--scenario", str(path)]) == 2
    err = capsys.readouterr().err
    assert "valid fields" in err and "scheduler" in err


def test_run_scenario_file_invalid_json(capsys, tmp_path):
    path = tmp_path / "bad.json"
    path.write_text("{oops}")
    assert main(["run", "--scenario", str(path)]) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_run_requires_a_source():
    with pytest.raises(SystemExit):
        main(["run"])


def test_invalid_figure_number_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "11"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_parser_builds():
    parser = build_parser()
    args = parser.parse_args(["figure", "9"])
    assert args.number == 9
