"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "figures" in out and "tables" in out and "ablations" in out


def test_figure_command_passes(capsys):
    assert main(["figure", "4"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert "[PASS]" in out
    assert "[FAIL]" not in out


def test_table_command_passes(capsys):
    assert main(["table", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "0.80338" in out  # the E5-2620 outlier


def test_validate_command(capsys):
    assert main(["validate", "eq3"]) == 0
    assert "Eq. 3" in capsys.readouterr().out


def test_calibrate_command(capsys):
    assert main(["calibrate", "Intel Xeon E5-2620"]) == 0
    out = capsys.readouterr().out
    assert "0.80338" in out


def test_calibrate_unknown_processor(capsys):
    assert main(["calibrate", "Pentium III"]) == 2
    assert "unknown processor" in capsys.readouterr().err


def test_scenario_command(capsys):
    assert (
        main(
            [
                "scenario",
                "--scheduler",
                "pas",
                "--v20-load",
                "thrashing",
                "--duration",
                "800",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "V20.absolute_load" in out
    assert "energy" in out


def test_invalid_figure_number_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "11"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_parser_builds():
    parser = build_parser()
    args = parser.parse_args(["figure", "9"])
    assert args.number == 9
