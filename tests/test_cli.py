"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "figures" in out and "tables" in out and "ablations" in out


def test_figure_command_passes(capsys):
    assert main(["figure", "4"]) == 0
    out = capsys.readouterr().out
    assert "Figure 4" in out
    assert "[PASS]" in out
    assert "[FAIL]" not in out


def test_table_command_passes(capsys):
    assert main(["table", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "0.80338" in out  # the E5-2620 outlier


def test_validate_command(capsys):
    assert main(["validate", "eq3"]) == 0
    assert "Eq. 3" in capsys.readouterr().out


def test_calibrate_command(capsys):
    assert main(["calibrate", "Intel Xeon E5-2620"]) == 0
    out = capsys.readouterr().out
    assert "0.80338" in out


def test_calibrate_unknown_processor(capsys):
    assert main(["calibrate", "Pentium III"]) == 2
    assert "unknown processor" in capsys.readouterr().err


def test_scenario_command(capsys):
    assert (
        main(
            [
                "scenario",
                "--scheduler",
                "pas",
                "--v20-load",
                "thrashing",
                "--duration",
                "800",
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "V20.absolute_load" in out
    assert "energy" in out


_FAST_GRID = (
    '{"scheduler": ["credit", "pas"], "v20_load": ["exact", "thrashing"],'
    ' "duration": [200.0], "v20_active": [[20.0, 180.0]], "v70_active": [[60.0, 140.0]]}'
)


def test_sweep_command_json_grid(capsys, tmp_path):
    out_path = tmp_path / "results.json"
    assert main(["sweep", "--grid", _FAST_GRID, "--out", str(out_path)]) == 0
    out = capsys.readouterr().out
    assert "4 cells" in out
    assert "energy_joules" in out
    text = out_path.read_text()
    assert '"scheduler=pas,' in text


def test_sweep_workers_output_byte_identical(capsys, tmp_path):
    serial_path = tmp_path / "serial.json"
    parallel_path = tmp_path / "parallel.json"
    assert main(["sweep", "--grid", _FAST_GRID, "--workers", "1", "--out", str(serial_path)]) == 0
    assert main(["sweep", "--grid", _FAST_GRID, "--workers", "4", "--out", str(parallel_path)]) == 0
    capsys.readouterr()
    assert serial_path.read_bytes() == parallel_path.read_bytes()


def test_sweep_csv_output(capsys, tmp_path):
    out_path = tmp_path / "results.csv"
    assert main(["sweep", "--grid", _FAST_GRID, "--out", str(out_path)]) == 0
    capsys.readouterr()
    lines = out_path.read_text().splitlines()
    assert lines[0].startswith("label,")
    assert len(lines) == 5


def test_sweep_rejects_non_object_grid(capsys):
    assert main(["sweep", "--grid", "[1, 2]"]) == 2
    assert "JSON object" in capsys.readouterr().err


def test_sweep_rejects_invalid_json_grid(capsys):
    assert main(["sweep", "--grid", "{oops}"]) == 2
    assert "not valid JSON" in capsys.readouterr().err


def test_sweep_rejects_unknown_axis(capsys):
    assert main(["sweep", "--grid", '{"flux": [1]}']) == 2
    assert "unknown sweep axis" in capsys.readouterr().err


def test_sweep_reports_bad_cell_value_cleanly(capsys):
    # The failure happens inside a worker cell; it must still surface as a
    # clean one-line error and exit 2, not a traceback.
    code = main(
        ["sweep", "--grid", '{"scheduler": ["xenomorph"], "duration": [50.0]}']
    )
    assert code == 2
    assert "unknown scheduler" in capsys.readouterr().err


def test_sweep_default_grid_is_24_cells():
    from repro.cli import _SWEEP_DEFAULTS

    cells = 1
    for axis in _SWEEP_DEFAULTS.values():
        cells *= len(axis.split(","))
    assert cells >= 24


def test_invalid_figure_number_rejected():
    with pytest.raises(SystemExit):
        main(["figure", "11"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_parser_builds():
    parser = build_parser()
    args = parser.parse_args(["figure", "9"])
    assert args.number == 9
