"""Integration tests: the paper's §5 scenarios on a compressed timeline.

Same structure as the figure benchmarks but with 4x shorter phases so the
whole file runs in seconds.  The shape criteria are identical; only the
analysis windows move.
"""

import pytest

from repro.experiments import ScenarioConfig, run_scenario

#: Compressed timeline: V20 active [20, 180), V70 active [60, 140).
FAST = dict(
    v20_active=(20.0, 180.0),
    v70_active=(60.0, 140.0),
    duration=200.0,
)
SOLO = (35.0, 58.0)
BOTH = (80.0, 138.0)
LATE = (155.0, 178.0)


def fast_config(**changes):
    return ScenarioConfig(**FAST).with_changes(**changes)


def test_credit_scheduler_sla_violation_shape():
    # Figs. 4-5: capped at 20 nominal, absolute collapses when solo.
    result = run_scenario(fast_config(scheduler="credit", governor="stable"))
    assert result.phase_mean("V20.global_load", SOLO) == pytest.approx(20.0, abs=1.5)
    assert result.phase_mean("V20.absolute_load", SOLO) < 15.0
    assert result.phase_mean("V20.absolute_load", BOTH) == pytest.approx(20.0, abs=1.5)
    assert result.phase_mean("host.freq_mhz", SOLO, smooth=False) == 1600.0
    assert result.phase_mean("host.freq_mhz", BOTH, smooth=False) == 2667.0


def test_sedf_exact_load_shape():
    # Figs. 6-7: extra slices keep V20's absolute at ~20 while solo.
    result = run_scenario(fast_config(scheduler="sedf", governor="stable"))
    solo_global = result.phase_mean("V20.global_load", SOLO)
    assert 30.0 <= solo_global <= 40.0
    assert result.phase_mean("V20.absolute_load", SOLO) == pytest.approx(20.0, abs=2.0)
    assert result.phase_mean("V20.absolute_load", LATE) == pytest.approx(20.0, abs=2.0)


def test_sedf_thrashing_shape():
    # Fig. 8: V20 eats the machine, frequency pinned at max.
    result = run_scenario(
        fast_config(scheduler="sedf", governor="stable", v20_load="thrashing")
    )
    assert result.phase_mean("V20.global_load", SOLO) >= 80.0
    assert result.phase_mean("host.freq_mhz", SOLO, smooth=False) == 2667.0


def test_pas_thrashing_shape():
    # Figs. 9-10: compensated credit at 1600, absolute pinned at 20.
    result = run_scenario(fast_config(scheduler="pas", v20_load="thrashing"))
    assert result.phase_mean("V20.global_load", SOLO) == pytest.approx(33.3, abs=1.5)
    assert result.phase_mean("V20.absolute_load", SOLO) == pytest.approx(20.0, abs=1.5)
    assert result.phase_mean("V20.absolute_load", BOTH) == pytest.approx(20.0, abs=1.5)
    assert result.phase_mean("host.freq_mhz", SOLO, smooth=False) == 1600.0
    assert result.phase_mean("host.freq_mhz", BOTH, smooth=False) == 2667.0
    assert result.series("V20.absolute_load").max() <= 23.0


def test_pas_saves_energy_vs_sedf_under_thrashing():
    pas = run_scenario(fast_config(scheduler="pas", v20_load="thrashing"))
    sedf = run_scenario(
        fast_config(scheduler="sedf", governor="stable", v20_load="thrashing")
    )
    assert pas.energy_joules < sedf.energy_joules * 0.9


def test_ondemand_unstable_vs_stable():
    ondemand = run_scenario(fast_config(scheduler="credit", governor="ondemand"))
    stable = run_scenario(fast_config(scheduler="credit", governor="stable"))
    assert ondemand.frequency_transitions >= 50 * max(stable.frequency_transitions, 1)


def test_performance_governor_baseline():
    # Fig. 2: both VMs get exactly their credits at constant max frequency.
    result = run_scenario(fast_config(scheduler="credit", governor="performance"))
    assert result.phase_mean("V20.global_load", BOTH) == pytest.approx(20.0, abs=1.5)
    assert result.phase_mean("V70.global_load", BOTH) == pytest.approx(70.0, abs=2.0)
    assert result.series("host.freq_mhz", smooth=False).min() == 2667.0


def test_credit2_behaves_as_variable_credit():
    # The "beta" scheduler inherits the Fig. 6-8 family behaviour.
    result = run_scenario(fast_config(scheduler="credit2", governor="stable"))
    assert result.phase_mean("V20.absolute_load", SOLO) == pytest.approx(20.0, abs=2.0)


def test_deterministic_reruns_are_identical():
    a = run_scenario(fast_config(scheduler="pas", v20_load="thrashing"))
    b = run_scenario(fast_config(scheduler="pas", v20_load="thrashing"))
    assert a.series("V20.global_load", smooth=False).values == b.series(
        "V20.global_load", smooth=False
    ).values
    assert a.energy_joules == b.energy_joules
