"""Integration tests for the public API surface."""

import repro
from repro import Host, catalog
from repro.workloads import exact_rate, LoadProfile, WebApp


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_readme_quickstart_flow():
    host = Host(processor=catalog.OPTIPLEX_755, scheduler="pas", governor="userspace")
    host.create_domain("Dom0", credit=10, dom0=True)
    v20 = host.create_domain("V20", credit=20)
    rate = exact_rate(20, request_cost=0.005)
    v20.attach_workload(WebApp(LoadProfile.three_phase(5, 60, rate)))
    host.run(until=90)
    mean = host.recorder.series("V20.absolute_load").window(30, 60).mean()
    assert mean >= 18.0


def test_module_docstring_doctest():
    import doctest

    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0


def test_scheduler_and_governor_name_lists_exported():
    assert "pas" in repro.SCHEDULER_NAMES
    assert "stable" in repro.GOVERNOR_NAMES


def test_error_hierarchy():
    assert issubclass(repro.SchedulerError, repro.ReproError)
    assert issubclass(repro.AdmissionError, repro.SchedulerError)
    assert issubclass(repro.FrequencyError, repro.ConfigurationError)


def test_experiments_package_importable():
    import repro.experiments as ex

    for name in ex.__all__:
        assert hasattr(ex, name), name


def test_platforms_package_importable():
    import repro.platforms as platforms

    assert len(platforms.PLATFORMS) == 7
