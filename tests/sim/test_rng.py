"""Unit tests for named RNG streams."""

from repro.sim import RngStreams


def test_same_name_returns_same_stream():
    streams = RngStreams(seed=42)
    assert streams.stream("a") is streams.stream("a")


def test_different_names_are_independent():
    streams = RngStreams(seed=42)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_same_seed_reproduces_draws():
    first = [RngStreams(seed=7).stream("x").random() for _ in range(3)]
    second = [RngStreams(seed=7).stream("x").random() for _ in range(3)]
    assert first == second


def test_different_seeds_differ():
    a = RngStreams(seed=1).stream("x").random()
    b = RngStreams(seed=2).stream("x").random()
    assert a != b


def test_new_consumer_does_not_perturb_existing_stream():
    plain = RngStreams(seed=3)
    first = [plain.stream("keep").random() for _ in range(3)]

    mixed = RngStreams(seed=3)
    mixed.stream("other").random()  # extra consumer created first
    second = [mixed.stream("keep").random() for _ in range(3)]
    assert first == second


def test_names_lists_created_streams():
    streams = RngStreams()
    streams.stream("one")
    streams.stream("two")
    assert streams.names() == ["one", "two"]


def test_seed_property():
    assert RngStreams(seed=99).seed == 99
