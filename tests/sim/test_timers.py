"""Unit tests for periodic timers."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim import PeriodicTimer


def test_fires_every_period(engine):
    times = []
    timer = PeriodicTimer(engine, 1.0, times.append)
    timer.start()
    engine.run_until(3.5)
    assert times == [1.0, 2.0, 3.0]


def test_fire_immediately_includes_start_time(engine):
    times = []
    timer = PeriodicTimer(engine, 1.0, times.append, fire_immediately=True)
    timer.start()
    engine.run_until(2.5)
    assert times == [0.0, 1.0, 2.0]


def test_stop_prevents_future_firings(engine):
    times = []
    timer = PeriodicTimer(engine, 1.0, times.append)
    timer.start()
    engine.run_until(2.0)
    timer.stop()
    engine.run_until(5.0)
    assert times == [1.0, 2.0]


def test_stop_from_inside_callback(engine):
    times = []
    timer = PeriodicTimer(engine, 1.0, lambda now: (times.append(now), timer.stop()))
    timer.start()
    engine.run_until(5.0)
    assert times == [1.0]


def test_double_start_raises(engine):
    timer = PeriodicTimer(engine, 1.0, lambda now: None)
    timer.start()
    with pytest.raises(SimulationError):
        timer.start()


def test_stop_when_not_started_is_safe(engine):
    timer = PeriodicTimer(engine, 1.0, lambda now: None)
    timer.stop()
    assert not timer.running


def test_restart_after_stop(engine):
    times = []
    timer = PeriodicTimer(engine, 1.0, times.append)
    timer.start()
    engine.run_until(1.0)
    timer.stop()
    timer.start()
    engine.run_until(3.0)
    assert times == [1.0, 2.0, 3.0]


def test_fire_count(engine):
    timer = PeriodicTimer(engine, 0.5, lambda now: None)
    timer.start()
    engine.run_until(2.0)
    assert timer.fire_count == 4


def test_reschedule_changes_period_from_next_firing(engine):
    times = []
    timer = PeriodicTimer(engine, 1.0, times.append)
    timer.start()
    engine.run_until(1.0)
    timer.reschedule(2.0)
    engine.run_until(6.0)
    assert times == [1.0, 2.0, 4.0, 6.0]


def test_invalid_period_rejected(engine):
    with pytest.raises(ConfigurationError):
        PeriodicTimer(engine, 0.0, lambda now: None)
    with pytest.raises(ConfigurationError):
        PeriodicTimer(engine, -1.0, lambda now: None)


def test_running_property(engine):
    timer = PeriodicTimer(engine, 1.0, lambda now: None)
    assert not timer.running
    timer.start()
    assert timer.running
    timer.stop()
    assert not timer.running


def test_two_timers_interleave_deterministically(engine):
    order = []
    a = PeriodicTimer(engine, 1.0, lambda now: order.append(("a", now)))
    b = PeriodicTimer(engine, 1.0, lambda now: order.append(("b", now)))
    a.start()
    b.start()
    engine.run_until(2.0)
    assert order == [("a", 1.0), ("b", 1.0), ("a", 2.0), ("b", 2.0)]
