"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Engine


def test_starts_at_time_zero(engine):
    assert engine.now == 0.0


def test_schedule_and_run_fires_callback(engine):
    fired = []
    engine.schedule(1.5, lambda: fired.append(engine.now))
    engine.run_until(2.0)
    assert fired == [1.5]


def test_run_until_advances_clock_even_without_events(engine):
    engine.run_until(10.0)
    assert engine.now == 10.0


def test_events_fire_in_time_order(engine):
    order = []
    engine.schedule(3.0, lambda: order.append("c"))
    engine.schedule(1.0, lambda: order.append("a"))
    engine.schedule(2.0, lambda: order.append("b"))
    engine.run_until(5.0)
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_fifo(engine):
    order = []
    for tag in ("first", "second", "third"):
        engine.schedule(1.0, lambda tag=tag: order.append(tag))
    engine.run_until(1.0)
    assert order == ["first", "second", "third"]


def test_event_not_due_does_not_fire(engine):
    fired = []
    engine.schedule(5.0, lambda: fired.append(1))
    engine.run_until(4.999)
    assert fired == []
    assert engine.now == 4.999


def test_boundary_event_fires_at_exact_run_until_time(engine):
    fired = []
    engine.schedule(5.0, lambda: fired.append(1))
    engine.run_until(5.0)
    assert fired == [1]


def test_cancelled_event_does_not_fire(engine):
    fired = []
    handle = engine.schedule(1.0, lambda: fired.append(1))
    handle.cancel()
    engine.run_until(2.0)
    assert fired == []
    assert handle.cancelled


def test_cancel_is_idempotent(engine):
    handle = engine.schedule(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    assert handle.cancelled


def test_schedule_in_past_raises(engine):
    engine.run_until(10.0)
    with pytest.raises(SimulationError):
        engine.schedule(-1.0, lambda: None)
    with pytest.raises(SimulationError):
        engine.schedule_at(5.0, lambda: None)


def test_run_backwards_raises(engine):
    engine.run_until(10.0)
    with pytest.raises(SimulationError):
        engine.run_until(5.0)


def test_zero_delay_event_fires(engine):
    fired = []
    engine.schedule(0.0, lambda: fired.append(engine.now))
    engine.run_until(0.0)
    assert fired == [0.0]


def test_callback_can_schedule_more_events(engine):
    fired = []

    def chain():
        fired.append(engine.now)
        if len(fired) < 3:
            engine.schedule(1.0, chain)

    engine.schedule(1.0, chain)
    engine.run_until(10.0)
    assert fired == [1.0, 2.0, 3.0]


def test_event_scheduled_inside_window_fires_in_same_run(engine):
    fired = []
    engine.schedule(1.0, lambda: engine.schedule(0.5, lambda: fired.append(engine.now)))
    engine.run_until(2.0)
    assert fired == [1.5]


def test_event_scheduled_beyond_window_waits(engine):
    fired = []
    engine.schedule(1.0, lambda: engine.schedule(5.0, lambda: fired.append(engine.now)))
    engine.run_until(2.0)
    assert fired == []
    engine.run_until(6.0)
    assert fired == [6.0]


def test_step_fires_single_event(engine):
    fired = []
    engine.schedule(1.0, lambda: fired.append("a"))
    engine.schedule(2.0, lambda: fired.append("b"))
    assert engine.step()
    assert fired == ["a"]
    assert engine.now == 1.0


def test_step_on_empty_heap_returns_false(engine):
    assert not engine.step()


def test_step_skips_cancelled(engine):
    fired = []
    handle = engine.schedule(1.0, lambda: fired.append("a"))
    engine.schedule(2.0, lambda: fired.append("b"))
    handle.cancel()
    assert engine.step()
    assert fired == ["b"]


def test_events_fired_counts_only_executed(engine):
    handle = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    handle.cancel()
    engine.run_until(3.0)
    assert engine.events_fired == 1


def test_pending_count_excludes_cancelled(engine):
    handle = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    handle.cancel()
    assert engine.pending_count == 1


def test_run_until_idle_drains_heap(engine):
    fired = []
    engine.schedule(1.0, lambda: fired.append(1))
    engine.schedule(7.0, lambda: fired.append(2))
    engine.run_until_idle()
    assert fired == [1, 2]
    assert engine.pending_count == 0


def test_run_until_idle_max_events_guard(engine):
    def forever():
        engine.schedule(1.0, forever)

    engine.schedule(1.0, forever)
    with pytest.raises(SimulationError):
        engine.run_until_idle(max_events=100)


def test_reentrant_run_until_raises(engine):
    def reenter():
        engine.run_until(10.0)

    engine.schedule(1.0, reenter)
    with pytest.raises(SimulationError):
        engine.run_until(2.0)


def test_clock_matches_event_time_inside_callback(engine):
    seen = []
    engine.schedule(2.5, lambda: seen.append(engine.now))
    engine.run_until(9.0)
    assert seen == [2.5]
    assert engine.now == 9.0


def test_deterministic_across_identical_runs():
    def build():
        engine = Engine()
        order = []
        engine.schedule(1.0, lambda: order.append("x"))
        engine.schedule(1.0, lambda: order.append("y"))
        engine.schedule(0.5, lambda: engine.schedule(0.5, lambda: order.append("z")))
        engine.run_until(2.0)
        return order

    assert build() == build()
