"""repro — reproduction of *DVFS Aware CPU Credit Enforcement in a
Virtualized System* (Hagimont et al., Middleware 2013).

The package builds, from scratch, everything the paper's evaluation needs:
a deterministic Xen-like hypervisor simulator, the Credit/SEDF/Credit2
schedulers, the stock and stabilised DVFS governors, the paper's Web-app and
pi-app workloads — and the contribution itself, the Power-Aware Scheduler
(PAS), which rescales VM credits whenever the processor frequency changes so
that every VM keeps exactly the absolute computing capacity it was sold.

Quickstart
----------
>>> from repro import Host, catalog
>>> from repro.workloads import WebApp, LoadProfile, exact_rate
>>> host = Host(processor=catalog.OPTIPLEX_755, scheduler="pas", governor="userspace")
>>> dom0 = host.create_domain("Dom0", credit=10, dom0=True)
>>> v20 = host.create_domain("V20", credit=20)
>>> rate = exact_rate(20, request_cost=0.005)
>>> v20.attach_workload(WebApp(LoadProfile.three_phase(5, 60, rate)))
>>> host.run(until=90)
>>> round(host.recorder.series("V20.absolute_load").window(30, 60).mean(), 0) >= 18
True

See ``examples/`` for complete scenarios and ``benchmarks/`` for the
regeneration of every table and figure in the paper.
"""

from .cpu import catalog, CpuFreq, FrequencyTable, PowerModel, Processor, ProcessorSpec, PState
from .core import laws, PasScheduler, UserCreditManager, UserFullManager
from .errors import (
    AdmissionError,
    ConfigurationError,
    FrequencyError,
    ReproError,
    SchedulerError,
    SimulationError,
    TelemetryError,
    WorkloadError,
)
from .governors import (
    ConservativeGovernor,
    Governor,
    GOVERNOR_NAMES,
    make_governor,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    StableGovernor,
    UserspaceGovernor,
)
from .hypervisor import Domain, DomainConfig, Host, LoadMonitor, VCpu, VCpuState
from .schedulers import (
    Credit2Scheduler,
    CreditScheduler,
    make_scheduler,
    Scheduler,
    SCHEDULER_NAMES,
    SedfScheduler,
)
from .sim import Engine, PeriodicTimer, RngStreams
from .telemetry import Recorder, render_chart, rolling_mean, TimeSeries

__version__ = "1.0.0"

__all__ = [
    # hypervisor
    "Host",
    "Domain",
    "DomainConfig",
    "VCpu",
    "VCpuState",
    "LoadMonitor",
    # cpu
    "catalog",
    "CpuFreq",
    "FrequencyTable",
    "PowerModel",
    "Processor",
    "ProcessorSpec",
    "PState",
    # core (the contribution)
    "laws",
    "PasScheduler",
    "UserCreditManager",
    "UserFullManager",
    # schedulers
    "Scheduler",
    "CreditScheduler",
    "Credit2Scheduler",
    "SedfScheduler",
    "make_scheduler",
    "SCHEDULER_NAMES",
    # governors
    "Governor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "UserspaceGovernor",
    "OndemandGovernor",
    "ConservativeGovernor",
    "StableGovernor",
    "make_governor",
    "GOVERNOR_NAMES",
    # sim & telemetry
    "Engine",
    "PeriodicTimer",
    "RngStreams",
    "Recorder",
    "TimeSeries",
    "rolling_mean",
    "render_chart",
    # errors
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "SchedulerError",
    "AdmissionError",
    "FrequencyError",
    "WorkloadError",
    "TelemetryError",
]
