"""Exception hierarchy for the repro library.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Each subsystem raises the most specific subclass available;
messages always name the offending value to make failures actionable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class SimulationError(ReproError):
    """The simulation kernel was used incorrectly (e.g. scheduling in the past)."""


class SchedulerError(ReproError):
    """A VM scheduler was driven into an illegal state."""


class AdmissionError(SchedulerError):
    """A domain could not be admitted under the scheduler's admission test."""


class FrequencyError(ConfigurationError):
    """A frequency outside the processor's P-state table was requested."""


class WorkloadError(ReproError):
    """A workload was attached or driven incorrectly."""


class TelemetryError(ReproError):
    """A telemetry probe or series was queried incorrectly."""


class StoreError(ReproError):
    """The experiment store was used incorrectly or has no such entry."""


class StoreCorruptionError(StoreError):
    """A stored cell blob failed its integrity check (damaged on disk)."""


class StoreVersionError(StoreError):
    """A stored cell blob was written under an incompatible schema version."""
