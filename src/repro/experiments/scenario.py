"""The §5.3 execution profile — the scenario behind Figs. 2–10.

Two guests on the Optiplex 755: **V20** (20 % credit) and **V70** (70 %
credit); "the remaining 10 % of credit are allocated for the hypervisor (the
Dom0 in Xen) which is configured with the highest priority".  Both guests
run the Web-app with a three-phase profile (inactive / active / inactive);
the active phase carries either the *exact* rate (100 % of the VM's booked
capacity) or a *thrashing* rate (exceeding it).

Timeline (seconds):

* V20 active over ``[50, 750)``;
* V70 active over ``[250, 550)``;

giving the three analysis windows the figure benchmarks reduce over —
V20 solo (early), both active, V20 solo (late) — each trimmed well clear of
governor transients.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..cpu import catalog
from ..cpu.processor import ProcessorSpec
from ..errors import ConfigurationError
from ..hypervisor.host import Host
from ..telemetry import TimeSeries, rolling_mean
from ..workloads import ConstantLoad, LoadProfile, WebApp, exact_rate, thrashing_rate

#: Analysis windows (start, end) for the *default* timeline: V20 alone,
#: both active, V20 alone again.  For custom timelines use
#: :func:`analysis_windows`, which derives them from the config.
PHASE_SOLO_EARLY = (100.0, 240.0)
PHASE_BOTH = (300.0, 540.0)
PHASE_SOLO_LATE = (600.0, 740.0)


@dataclass(frozen=True)
class ScenarioConfig:
    """Parameters of the §5.3 scenario.

    ``v20_load`` / ``v70_load`` select the active-phase intensity:
    ``"exact"``, ``"thrashing"`` or ``"idle"``.
    """

    scheduler: str = "credit"
    governor: str = "stable"
    processor: ProcessorSpec = field(default=catalog.OPTIPLEX_755)
    v20_load: str = "exact"
    v70_load: str = "exact"
    v20_active: tuple[float, float] = (50.0, 750.0)
    v70_active: tuple[float, float] = (250.0, 550.0)
    duration: float = 800.0
    request_cost: float = 0.005
    thrashing_factor: float = 5.0
    dom0_demand_percent: float = 8.0
    poisson: bool = False
    seed: int = 1
    scheduler_kwargs: dict = field(default_factory=dict)
    governor_kwargs: dict = field(default_factory=dict)

    def with_changes(self, **changes) -> "ScenarioConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass
class ScenarioResult:
    """A finished run plus the reductions the figures need."""

    config: ScenarioConfig
    host: Host

    def series(self, name: str, *, smooth: bool = True) -> TimeSeries:
        """A recorded series, 3-sample averaged by default (footnote 5)."""
        raw = self.host.recorder.series(name)
        return rolling_mean(raw, 3) if smooth else raw

    def phase_mean(self, name: str, phase: tuple[float, float], *, smooth: bool = True) -> float:
        """Mean of *name* over the analysis window *phase*."""
        return self.series(name, smooth=smooth).window(*phase).mean()

    @property
    def frequency_transitions(self) -> int:
        """DVFS transitions over the whole run."""
        return self.host.processor.transitions

    @property
    def energy_joules(self) -> float:
        """Total energy over the whole run."""
        return self.host.processor.energy_joules


def analysis_windows(
    config: ScenarioConfig,
) -> tuple[tuple[float, float], tuple[float, float], tuple[float, float]]:
    """Derive (solo-early, both, solo-late) windows from the timeline.

    Each window is trimmed: a lead margin (the larger of 10 s or a quarter
    of the segment, capped at 50 s) lets governor averaging and the PAS
    frequency ladder settle, and a 10 s tail margin avoids the edge itself.
    On the default timeline this reproduces the module-level constants.
    """
    v20_start, v20_end = config.v20_active
    v70_start, v70_end = config.v70_active

    def window(start: float, end: float) -> tuple[float, float]:
        lead = min(50.0, max(10.0, 0.25 * (end - start)))
        tail = min(10.0, 0.25 * (end - start))
        return (start + lead, end - tail)

    return (
        window(v20_start, v70_start),
        window(v70_start, v70_end),
        window(v70_end, min(v20_end, config.duration)),
    )


def _rate_for(load: str, credit: float, config: ScenarioConfig) -> float | None:
    if load == "idle":
        return None
    if load == "exact":
        return exact_rate(credit, config.request_cost)
    if load == "near_exact":
        # 90% of the booked capacity: the standard operating point for
        # response-time measurements (at exactly 100% any transient backlog
        # persists forever; queues need slack to drain).
        return 0.9 * exact_rate(credit, config.request_cost)
    if load == "thrashing":
        return thrashing_rate(credit, config.request_cost, factor=config.thrashing_factor)
    raise ConfigurationError(
        f"unknown load kind {load!r}; use exact/near_exact/thrashing/idle"
    )


def build_scenario(config: ScenarioConfig) -> Host:
    """Construct (but do not run) the §5.3 scenario host."""
    needs_userspace = config.scheduler == "pas"
    governor = "userspace" if needs_userspace else config.governor
    from ..governors import make_governor
    from ..schedulers import make_scheduler

    host = Host(
        processor=config.processor,
        scheduler=make_scheduler(config.scheduler, **config.scheduler_kwargs),
        governor=make_governor(governor, **config.governor_kwargs),
        seed=config.seed,
    )
    dom0 = host.create_domain("Dom0", credit=10, dom0=True)
    dom0.attach_workload(ConstantLoad(config.dom0_demand_percent))
    v20 = host.create_domain("V20", credit=20, sedf_extra=True)
    v70 = host.create_domain("V70", credit=70, sedf_extra=True)
    for domain, credit, load, active in (
        (v20, 20.0, config.v20_load, config.v20_active),
        (v70, 70.0, config.v70_load, config.v70_active),
    ):
        rate = _rate_for(load, credit, config)
        if rate is None:
            continue
        profile = LoadProfile.three_phase(active[0], active[1], rate)
        domain.attach_workload(
            WebApp(profile, request_cost=config.request_cost, poisson=config.poisson)
        )
    return host


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Build and run the scenario to its configured duration."""
    host = build_scenario(config)
    host.run(until=config.duration)
    return ScenarioResult(config=config, host=host)
