"""Declarative scenario specs: arbitrary guest fleets behind one config.

A scenario is described, not hand-built: a :class:`ScenarioConfig` carries a
tuple of :class:`GuestSpec` entries (name, credit, scheduler parameters),
each of which carries :class:`WorkloadSpec` entries (what the guest runs).
:func:`build_scenario` is a single generic interpreter over those specs, and
:func:`run_scenario` executes the result.  Everything is JSON-round-trippable
(:meth:`ScenarioConfig.to_dict` / :meth:`ScenarioConfig.from_dict`), which is
what lets sweep grids vary whole guest fleets and lets the CLI load scenario
files (``python -m repro run --scenario file.json``).

Workload kinds
--------------

``web``
    The paper's Joomla/httperf service (§5.1): an open-loop injector driving
    a rate derived from the guest's credit.  ``load`` selects the intensity
    (``exact`` / ``near_exact`` / ``thrashing`` / ``idle``), or ``rate_rps``
    fixes an explicit rate; ``active`` lists (start, end) windows (the
    three-phase profile of §5.3 is one window).
``pi``
    The fixed-work batch job (§5.1): ``work`` absolute seconds queued at
    ``start_at``; pairs with ``ScenarioConfig.stop_when_batch_done``.
``constant``
    A duty-cycle source of ``demand_percent`` (Dom0 housekeeping, filler
    guests); optionally windowed by the first ``active`` entry.
``trace``
    Replays explicit ``trace`` points, or a seeded diurnal
    :class:`~repro.workloads.trace.SyntheticTrace` when ``diurnal``
    parameters are given — the hosting-center shape of the paper's
    motivation.

The default (§5.3) scenario
---------------------------

The paper's evaluation profile — **V20** (20 % credit) active over
``[50, 750)``, **V70** (70 % credit) active over ``[250, 550)``, Dom0 at the
highest priority with the remaining 10 % — is the *legacy surface* of
:class:`ScenarioConfig`: when ``guests`` is empty, the two-guest fields
(``v20_load`` / ``v70_load`` / ``v20_active`` / ``v70_active``) are expanded
by :func:`effective_guests` into the equivalent spec, so
``ScenarioConfig()`` still reproduces Figs. 2-10 exactly.  Named scenarios
(including ``paper-5.3`` itself) live in :mod:`repro.experiments.presets`.
"""

from __future__ import annotations

import dataclasses
import pathlib
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from ..cpu import catalog
from ..cpu.processor import ProcessorSpec
from ..errors import ConfigurationError
from ..hypervisor.host import Host
from ..telemetry import TimeSeries, rolling_mean
from ..workloads import (
    ConstantLoad,
    LoadProfile,
    PiApp,
    SyntheticTrace,
    TraceLoad,
    TracePoint,
    WebApp,
    exact_rate,
    load_trace_csv,
    thrashing_rate,
)

#: Analysis windows (start, end) for the *default* timeline: V20 alone,
#: both active, V20 alone again.  For custom timelines use
#: :func:`analysis_windows`, which derives them from the config.
PHASE_SOLO_EARLY = (100.0, 240.0)
PHASE_BOTH = (300.0, 540.0)
PHASE_SOLO_LATE = (600.0, 740.0)

#: Workload kinds a :class:`WorkloadSpec` can describe.
WORKLOAD_KINDS = ("web", "pi", "constant", "trace")

#: Web-app intensity kinds (the paper's §5.3 vocabulary plus helpers).
LOAD_KINDS = ("exact", "near_exact", "thrashing", "idle")

#: User-level manager designs of §4.1 (None = no manager).
MANAGER_KINDS = ("user-credit", "user-full")

#: Guest service classes for the QoS control plane (:mod:`repro.qos`):
#: latency-critical guests are protected, best-effort guests are throttled.
SERVICE_CLASSES = ("lc", "be")


def _window_tuple(value: Any, what: str) -> tuple[float, float]:
    if not isinstance(value, (tuple, list)) or len(value) != 2:
        raise ConfigurationError(f"{what} must be a (start, end) pair, got {value!r}")
    start, end = float(value[0]), float(value[1])
    if end <= start:
        raise ConfigurationError(f"{what} end ({end}) must follow start ({start})")
    return (start, end)


def _known_fields(cls) -> tuple[str, ...]:
    return tuple(f.name for f in dataclasses.fields(cls))


def _reject_unknown(cls, data: Mapping[str, Any], what: str) -> None:
    unknown = sorted(set(data) - set(_known_fields(cls)))
    if unknown:
        known = ", ".join(_known_fields(cls))
        raise ConfigurationError(
            f"unknown {what} field(s) {', '.join(map(repr, unknown))}; "
            f"valid fields: {known}"
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload a guest runs — declarative, JSON-round-trippable.

    Only the fields relevant to ``kind`` are read; the rest keep their
    defaults so any spec serialises the same way.  See the module docstring
    for the per-kind semantics.
    """

    kind: str = "web"
    #: web: intensity relative to the guest's credit (or ``idle``).
    load: str = "exact"
    #: web/constant: (start, end) active windows; empty = always on.
    active: tuple[tuple[float, float], ...] = ()
    #: web: explicit request rate overriding the credit-derived one.
    rate_rps: float | None = None
    #: web: per-request CPU cost override (None = config default).
    request_cost: float | None = None
    #: web: Poisson arrivals override (None = config default).
    poisson: bool | None = None
    #: pi: absolute seconds of work and its queue time.
    work: float = 280.0
    start_at: float = 0.0
    #: constant: duty-cycle demand in percent of max capacity.
    demand_percent: float = 8.0
    #: trace: explicit (time, percent) points.
    trace: tuple[tuple[float, float], ...] = ()
    #: trace: :class:`SyntheticTrace` keyword parameters (diurnal shape).
    diurnal: Mapping[str, float] | None = None
    #: trace: path to a real utilisation time-series CSV
    #: (:func:`~repro.workloads.trace.load_trace_csv` format).
    trace_file: str | None = None
    #: trace: a named day from the catalog
    #: (:data:`repro.workloads.dayshapes.DAYSHAPES`), generated on the
    #: guest's seeded stream.
    dayshape: str | None = None
    #: trace: loop the trace past its last point.
    repeat: bool = False

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ConfigurationError(
                f"unknown workload kind {self.kind!r}; "
                f"use one of: {', '.join(WORKLOAD_KINDS)}"
            )
        if self.load not in LOAD_KINDS:
            raise ConfigurationError(
                f"unknown load kind {self.load!r}; use one of: {', '.join(LOAD_KINDS)}"
            )
        object.__setattr__(
            self,
            "active",
            tuple(_window_tuple(w, "active window") for w in self.active),
        )
        object.__setattr__(
            self,
            "trace",
            tuple((float(t), float(p)) for t, p in self.trace),
        )
        if self.diurnal is not None:
            object.__setattr__(self, "diurnal", dict(self.diurnal))
        if (
            self.kind == "trace"
            and not self.trace
            and self.diurnal is None
            and self.trace_file is None
            and self.dayshape is None
        ):
            raise ConfigurationError(
                "a trace workload needs explicit 'trace' points, 'diurnal' "
                "parameters, a 'trace_file' CSV path, or a catalog 'dayshape'"
            )
        if self.dayshape is not None:
            from ..workloads.dayshapes import require_dayshape

            require_dayshape(self.dayshape)
        if self.active and self.kind not in ("web", "constant"):
            raise ConfigurationError(
                f"'active' windows apply to web/constant workloads, not {self.kind!r} "
                "(pi uses start_at; traces carry their own timeline)"
            )
        if self.kind == "constant" and len(self.active) > 1:
            raise ConfigurationError(
                "a constant workload takes at most one 'active' window"
            )

    def describe(self) -> str:
        """Compact human-readable label (grid cell labelling)."""
        if self.kind == "web":
            rate = f"@{self.rate_rps:g}rps" if self.rate_rps is not None else f":{self.load}"
            return f"web{rate}"
        if self.kind == "pi":
            return f"pi:{self.work:g}s"
        if self.kind == "constant":
            return f"const:{self.demand_percent:g}%"
        if self.diurnal is not None:
            return "trace:diurnal"
        if self.trace_file is not None:
            return f"trace:{pathlib.PurePath(self.trace_file).name}"
        if self.dayshape is not None:
            return f"trace:{self.dayshape}"
        return f"trace:{len(self.trace)}pt"

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form; :meth:`from_dict` round-trips it exactly."""
        out: dict[str, Any] = {"kind": self.kind}
        if self.kind == "web":
            out["load"] = self.load
            if self.rate_rps is not None:
                out["rate_rps"] = self.rate_rps
            if self.request_cost is not None:
                out["request_cost"] = self.request_cost
            if self.poisson is not None:
                out["poisson"] = self.poisson
        if self.active:
            out["active"] = [list(w) for w in self.active]
        if self.kind == "pi":
            out["work"] = self.work
            if self.start_at:
                out["start_at"] = self.start_at
        if self.kind == "constant":
            out["demand_percent"] = self.demand_percent
        if self.kind == "trace":
            if self.trace:
                out["trace"] = [list(p) for p in self.trace]
            if self.diurnal is not None:
                out["diurnal"] = dict(self.diurnal)
            if self.trace_file is not None:
                out["trace_file"] = self.trace_file
            if self.dayshape is not None:
                out["dayshape"] = self.dayshape
            if self.repeat:
                out["repeat"] = self.repeat
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkloadSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written JSON)."""
        _reject_unknown(cls, data, "workload spec")
        return cls(**data)


@dataclass(frozen=True)
class GuestSpec:
    """One guest VM: identity, SLA, scheduler parameters and workloads."""

    name: str
    credit: float
    sedf_extra: bool = True
    weight: float | None = None
    cap: float | None = None
    sedf_period: float = 0.1
    workloads: tuple[WorkloadSpec, ...] = ()
    #: QoS service class: ``lc`` (latency-critical, protected) or ``be``
    #: (best-effort, throttled under contention).  Inert unless the
    #: scenario's ``qos`` controller is enabled.
    service_class: str = "be"

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("guest name must be non-empty")
        if self.service_class not in SERVICE_CLASSES:
            raise ConfigurationError(
                f"unknown service class {self.service_class!r}; "
                f"use one of: {', '.join(SERVICE_CLASSES)}"
            )
        object.__setattr__(
            self,
            "workloads",
            tuple(
                WorkloadSpec.from_dict(w) if isinstance(w, Mapping) else w
                for w in self.workloads
            ),
        )

    def describe(self) -> str:
        """Compact human-readable label (grid cell labelling)."""
        loads = "+".join(w.describe() for w in self.workloads) or "idle"
        marker = "!lc" if self.service_class == "lc" else ""
        return f"{self.name}({self.credit:g}%{marker}:{loads})"

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form; :meth:`from_dict` round-trips it exactly."""
        out: dict[str, Any] = {"name": self.name, "credit": self.credit}
        if not self.sedf_extra:
            out["sedf_extra"] = self.sedf_extra
        if self.weight is not None:
            out["weight"] = self.weight
        if self.cap is not None:
            out["cap"] = self.cap
        if self.sedf_period != 0.1:
            out["sedf_period"] = self.sedf_period
        if self.service_class != "be":
            out["service_class"] = self.service_class
        out["workloads"] = [w.to_dict() for w in self.workloads]
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GuestSpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written JSON)."""
        _reject_unknown(cls, data, "guest spec")
        return cls(**data)


@dataclass(frozen=True)
class ScenarioConfig:
    """Parameters of a single-host scenario.

    Two surfaces share this dataclass:

    * the **legacy two-guest fields** (``v20_load`` / ``v70_load`` /
      ``v20_active`` / ``v70_active``) describe the paper's §5.3 profile and
      apply when ``guests`` is empty — the compatibility preset;
    * the **declarative surface**: a non-empty ``guests`` tuple of
      :class:`GuestSpec` overrides them entirely and may describe any fleet.

    ``manager`` optionally runs one of §4.1's user-level designs beside the
    scheduler; ``cpufreq_min_mhz`` floors the governor (the Table 2 vendor
    models); ``stop_when_batch_done`` ends the run early once every batch
    (pi) workload finished — ``duration`` is then the horizon.
    """

    scheduler: str = "credit"
    governor: str = "stable"
    processor: ProcessorSpec = field(default=catalog.OPTIPLEX_755)
    v20_load: str = "exact"
    v70_load: str = "exact"
    v20_active: tuple[float, float] = (50.0, 750.0)
    v70_active: tuple[float, float] = (250.0, 550.0)
    duration: float = 800.0
    request_cost: float = 0.005
    thrashing_factor: float = 5.0
    dom0_demand_percent: float = 8.0
    poisson: bool = False
    seed: int = 1
    scheduler_kwargs: dict = field(default_factory=dict)
    governor_kwargs: dict = field(default_factory=dict)
    guests: tuple[GuestSpec, ...] = ()
    manager: str | None = None
    manager_kwargs: dict = field(default_factory=dict)
    cpufreq_min_mhz: int | None = None
    #: Ceiling on the governor (``scaling_max_freq``); with the
    #: ``performance`` governor this *pins* the frequency, which is how the
    #: calibration presets hold each Eq. 1–3 measurement at one P-state.
    cpufreq_max_mhz: int | None = None
    stop_when_batch_done: bool = False
    #: QoS controller name (:data:`repro.qos.controllers.CONTROLLER_REGISTRY`);
    #: ``"none"`` installs no contention monitor at all.
    qos: str = "none"
    qos_kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "v20_active", _window_tuple(self.v20_active, "v20_active"))
        object.__setattr__(self, "v70_active", _window_tuple(self.v70_active, "v70_active"))
        object.__setattr__(
            self,
            "guests",
            tuple(
                GuestSpec.from_dict(g) if isinstance(g, Mapping) else g
                for g in self.guests
            ),
        )
        # Case-insensitive: metric keys lower-case guest names, so names
        # differing only in case would silently overwrite each other.
        names = [g.name.casefold() for g in self.guests]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"duplicate guest names (case-insensitive): {[g.name for g in self.guests]}"
            )
        if "dom0" in names:
            raise ConfigurationError(
                "'Dom0' is reserved; its demand is set by dom0_demand_percent"
            )
        if self.manager is not None and self.manager not in MANAGER_KINDS:
            raise ConfigurationError(
                f"unknown manager {self.manager!r}; "
                f"use one of: {', '.join(MANAGER_KINDS)} (or None)"
            )
        if self.qos != "none":
            from ..qos.controllers import CONTROLLER_REGISTRY

            if self.qos not in CONTROLLER_REGISTRY:
                raise ConfigurationError(
                    f"unknown QoS controller {self.qos!r}; "
                    f"use one of: {', '.join(CONTROLLER_REGISTRY)}"
                )

    def with_changes(self, **changes) -> "ScenarioConfig":
        """A copy with the given fields replaced.

        Unknown field names raise a :class:`ConfigurationError` naming the
        valid choices (not a bare ``TypeError``), so preset/CLI overrides
        fail with an actionable message.
        """
        _reject_unknown(type(self), changes, "scenario config")
        return replace(self, **changes)

    @classmethod
    def coerce_field(cls, name: str, value: Any) -> Any:
        """Coerce a JSON-ish axis value for field *name* to its spec type.

        Sweep grids call this so ``guests`` axes may be given as lists of
        dicts (straight from JSON) and window fields as 2-lists.
        """
        if name == "guests" and isinstance(value, (list, tuple)):
            return tuple(
                GuestSpec.from_dict(g) if isinstance(g, Mapping) else g for g in value
            )
        if name == "processor" and isinstance(value, str):
            return catalog.processor_from_name(value)
        if isinstance(value, list):
            return tuple(value)
        return value

    # ------------------------------------------------------------- serialise

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form of the whole config (processor by catalog name)."""
        out: dict[str, Any] = {
            "scheduler": self.scheduler,
            "governor": self.governor,
            "processor": self.processor.name,
            "duration": self.duration,
            "request_cost": self.request_cost,
            "thrashing_factor": self.thrashing_factor,
            "dom0_demand_percent": self.dom0_demand_percent,
            "poisson": self.poisson,
            "seed": self.seed,
            "scheduler_kwargs": dict(self.scheduler_kwargs),
            "governor_kwargs": dict(self.governor_kwargs),
        }
        if self.guests:
            out["guests"] = [g.to_dict() for g in self.guests]
        else:
            out["v20_load"] = self.v20_load
            out["v70_load"] = self.v70_load
            out["v20_active"] = list(self.v20_active)
            out["v70_active"] = list(self.v70_active)
        if self.manager is not None:
            out["manager"] = self.manager
            out["manager_kwargs"] = dict(self.manager_kwargs)
        if self.cpufreq_min_mhz is not None:
            out["cpufreq_min_mhz"] = self.cpufreq_min_mhz
        if self.cpufreq_max_mhz is not None:
            out["cpufreq_max_mhz"] = self.cpufreq_max_mhz
        if self.stop_when_batch_done:
            out["stop_when_batch_done"] = self.stop_when_batch_done
        if self.qos != "none":
            out["qos"] = self.qos
            out["qos_kwargs"] = dict(self.qos_kwargs)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioConfig":
        """Rebuild a config from :meth:`to_dict` output or a scenario file.

        Unknown keys raise a :class:`ConfigurationError` naming the valid
        fields; the processor may be given as a catalog name.
        """
        kwargs = dict(data)
        kind = kwargs.pop("kind", "scenario")
        if kind != "scenario":
            raise ConfigurationError(
                f"not a single-host scenario spec: kind={kind!r} (cluster specs "
                "load via ClusterScenarioConfig.from_dict)"
            )
        _reject_unknown(cls, kwargs, "scenario config")
        processor = kwargs.get("processor")
        if isinstance(processor, str):
            kwargs["processor"] = catalog.processor_from_name(processor)
        for key in ("v20_active", "v70_active"):
            if key in kwargs:
                kwargs[key] = tuple(kwargs[key])
        return cls(**kwargs)


# ----------------------------------------------------------- interpretation


def effective_guests(config: ScenarioConfig) -> tuple[GuestSpec, ...]:
    """The guest fleet a config describes.

    Explicit ``guests`` win; otherwise the legacy two-guest fields expand to
    the paper's V20/V70 spec (the compatibility preset) — so every consumer
    of specs sees one surface.
    """
    if config.guests:
        return config.guests
    return (
        GuestSpec(
            name="V20",
            credit=20.0,
            sedf_extra=True,
            workloads=(
                WorkloadSpec(kind="web", load=config.v20_load, active=(config.v20_active,)),
            ),
        ),
        GuestSpec(
            name="V70",
            credit=70.0,
            sedf_extra=True,
            workloads=(
                WorkloadSpec(kind="web", load=config.v70_load, active=(config.v70_active,)),
            ),
        ),
    )


def _rate_for(load: str, credit: float, config: ScenarioConfig, spec: WorkloadSpec) -> float | None:
    request_cost = spec.request_cost if spec.request_cost is not None else config.request_cost
    if load == "idle":
        return None
    if load == "exact":
        return exact_rate(credit, request_cost)
    if load == "near_exact":
        # 90% of the booked capacity: the standard operating point for
        # response-time measurements (at exactly 100% any transient backlog
        # persists forever; queues need slack to drain).
        return 0.9 * exact_rate(credit, request_cost)
    if load == "thrashing":
        return thrashing_rate(credit, request_cost, factor=config.thrashing_factor)
    raise ConfigurationError(
        f"unknown load kind {load!r}; use exact/near_exact/thrashing/idle"
    )


def _build_workload(spec: WorkloadSpec, guest: GuestSpec, config: ScenarioConfig, host: Host):
    """Interpret one workload spec into a live workload (or None for idle)."""
    if spec.kind == "web":
        rate = spec.rate_rps
        if rate is None:
            rate = _rate_for(spec.load, guest.credit, config, spec)
        if rate is None:
            return None
        if spec.active:
            profile = LoadProfile.windows(spec.active, rate)
        else:
            profile = LoadProfile.constant(rate)
        request_cost = (
            spec.request_cost if spec.request_cost is not None else config.request_cost
        )
        poisson = config.poisson if spec.poisson is None else spec.poisson
        return WebApp(profile, request_cost=request_cost, poisson=poisson)
    if spec.kind == "pi":
        return PiApp(spec.work, start_at=spec.start_at)
    if spec.kind == "constant":
        if spec.active:
            start, stop = spec.active[0]
            return ConstantLoad(spec.demand_percent, start_at=start, stop_at=stop)
        return ConstantLoad(spec.demand_percent)
    if spec.kind == "trace":
        if spec.trace:
            points = [TracePoint(start=t, percent=p) for t, p in spec.trace]
        elif spec.trace_file is not None:
            points = load_trace_csv(spec.trace_file)
        elif spec.dayshape is not None:
            from ..workloads.dayshapes import dayshape_points

            rng = host.rng.stream(f"trace.{guest.name}")
            points = dayshape_points(spec.dayshape, rng)
        else:
            rng = host.rng.stream(f"trace.{guest.name}")
            points = SyntheticTrace(**spec.diurnal).generate(rng)
        return TraceLoad(points, repeat=spec.repeat)
    raise ConfigurationError(f"unknown workload kind {spec.kind!r}")  # pragma: no cover


def build_scenario(config: ScenarioConfig) -> Host:
    """Construct (but do not run) the host a config describes.

    One generic interpreter: Dom0 plus one domain per guest spec (created
    first, in order — scheduler admission order matters), then workloads,
    then the optional §4.1 user-level manager.
    """
    needs_userspace = config.scheduler == "pas"
    governor = "userspace" if needs_userspace else config.governor
    from ..governors import make_governor
    from ..schedulers import make_scheduler

    host = Host(
        processor=config.processor,
        scheduler=make_scheduler(config.scheduler, **config.scheduler_kwargs),
        governor=make_governor(governor, **config.governor_kwargs),
        seed=config.seed,
    )
    dom0 = host.create_domain("Dom0", credit=10, dom0=True)
    dom0.attach_workload(ConstantLoad(config.dom0_demand_percent))
    guests = effective_guests(config)
    domains = [
        host.create_domain(
            guest.name,
            credit=guest.credit,
            weight=guest.weight,
            cap=guest.cap,
            sedf_period=guest.sedf_period,
            sedf_extra=guest.sedf_extra,
        )
        for guest in guests
    ]
    for domain, guest in zip(domains, guests):
        for spec in guest.workloads:
            workload = _build_workload(spec, guest, config, host)
            if workload is not None:
                domain.attach_workload(workload)
    if config.manager is not None:
        from ..core.user_credit_manager import UserCreditManager
        from ..core.user_full_manager import UserFullManager

        manager_cls = {
            "user-credit": UserCreditManager,
            "user-full": UserFullManager,
        }[config.manager]
        manager = manager_cls(host, **config.manager_kwargs)
        manager.start()
        host.user_manager = manager
    if config.qos != "none":
        from ..qos import ContentionMonitor, make_controller

        # The monitor's own knobs ride in qos_kwargs under "monitor";
        # everything else goes to the controller constructor.
        qos_kwargs = dict(config.qos_kwargs)
        monitor_kwargs = dict(qos_kwargs.pop("monitor", {}))
        controller = make_controller(config.qos, **qos_kwargs)
        lc_domains = [
            domain
            for domain, guest in zip(domains, guests)
            if guest.service_class == "lc"
        ]
        be_domains = [
            domain
            for domain, guest in zip(domains, guests)
            if guest.service_class == "be"
        ]
        controller.bind(host, lc_domains, be_domains)
        monitor = ContentionMonitor(
            host, controller, lc_domains, host.recorder, **monitor_kwargs
        )
        monitor.start()
        host.qos_controller = controller
        host.qos_monitor = monitor
    return host


def _batch_workloads(host: Host) -> list[PiApp]:
    return [
        workload
        for domain in host.domains
        for workload in domain.workloads
        if isinstance(workload, PiApp)
    ]


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Build and run the scenario to its configured duration.

    With ``stop_when_batch_done`` the run advances in bounded steps and
    stops at the first step boundary where every pi workload has finished
    (``duration`` is the horizon) — the Table 2 execution-time pattern.
    """
    host = build_scenario(config)
    host.start()
    if config.cpufreq_min_mhz is not None or config.cpufreq_max_mhz is not None:
        host.cpufreq.set_policy_limits(
            min_mhz=config.cpufreq_min_mhz, max_mhz=config.cpufreq_max_mhz
        )
        if config.cpufreq_max_mhz is not None:
            # Unsampled governors (``performance``) picked their frequency
            # at start(), before the ceiling existed; re-request it so the
            # new limit clamps the running P-state immediately.
            host.cpufreq.set_speed(host.processor.state.freq_mhz)
    batch = _batch_workloads(host) if config.stop_when_batch_done else []
    if batch:
        step = min(200.0, config.duration)
        while host.now < config.duration and not all(pi.done for pi in batch):
            host.run(until=min(config.duration, host.now + step))
    else:
        host.run(until=config.duration)
    return ScenarioResult(config=config, host=host)


@dataclass
class ScenarioResult:
    """A finished run plus the reductions the figures need."""

    config: ScenarioConfig
    host: Host

    def series(self, name: str, *, smooth: bool = True) -> TimeSeries:
        """A recorded series, 3-sample averaged by default (footnote 5)."""
        raw = self.host.recorder.series(name)
        return rolling_mean(raw, 3) if smooth else raw

    def phase_mean(self, name: str, phase: tuple[float, float], *, smooth: bool = True) -> float:
        """Mean of *name* over the analysis window *phase*."""
        return self.series(name, smooth=smooth).window(*phase).mean()

    # ----------------------------------------------------- per-guest queries

    @property
    def guest_names(self) -> tuple[str, ...]:
        """All non-Dom0 domain names, in creation (spec) order."""
        return tuple(d.name for d in self.host.domains if not d.is_dom0)

    def guest_series(self, name: str, kind: str = "global", *, smooth: bool = True) -> TimeSeries:
        """A guest's load series: *kind* is ``global`` or ``absolute``."""
        return self.series(f"{name}.{kind}_load", smooth=smooth)

    def guest_window(self, name: str) -> tuple[float, float]:
        """The guest's trimmed analysis window (see :func:`guest_window`)."""
        return guest_window(self.config, name)

    def guest_mean(
        self,
        name: str,
        kind: str = "global",
        window: tuple[float, float] | None = None,
        *,
        smooth: bool = True,
    ) -> float:
        """Mean load of guest *name* over *window* (default: its own window)."""
        if window is None:
            window = self.guest_window(name)
        return self.phase_mean(f"{name}.{kind}_load", window, smooth=smooth)

    @property
    def frequency_transitions(self) -> int:
        """DVFS transitions over the whole run."""
        return self.host.processor.transitions

    @property
    def energy_joules(self) -> float:
        """Total energy over the whole run."""
        return self.host.processor.energy_joules


# ------------------------------------------------------------------ windows


def _trimmed(start: float, end: float) -> tuple[float, float]:
    """Trim a segment clear of governor transients (lead) and its edge (tail)."""
    lead = min(50.0, max(10.0, 0.25 * (end - start)))
    tail = min(10.0, 0.25 * (end - start))
    return (start + lead, end - tail)


def guest_active_span(config: ScenarioConfig, name: str) -> tuple[float, float] | None:
    """The raw (start, end) span a guest's workloads are active over.

    ``None`` for guests with no demand (idle web load, no workloads).
    Windowless always-on workloads span the whole run; a pi job spans from
    its queue time to the run's end (it finishes when it finishes).
    """
    for guest in effective_guests(config):
        if guest.name != name:
            continue
        spans: list[tuple[float, float]] = []
        for spec in guest.workloads:
            if spec.kind == "web" and spec.load == "idle" and spec.rate_rps is None:
                continue
            if spec.active:
                spans.append((spec.active[0][0], spec.active[-1][1]))
            elif spec.kind == "pi":
                spans.append((spec.start_at, config.duration))
            elif spec.kind == "trace" and spec.trace and not spec.repeat:
                # A final zero-demand point bounds the trace; a nonzero one
                # holds its demand for the rest of the run (TraceLoad keeps
                # the last level).
                end = spec.trace[-1][0] if spec.trace[-1][1] == 0.0 else config.duration
                spans.append((spec.trace[0][0], end))
            else:
                spans.append((0.0, config.duration))
        if not spans:
            return None
        return (min(s for s, _ in spans), max(e for _, e in spans))
    known = ", ".join(g.name for g in effective_guests(config)) or "<none>"
    raise ConfigurationError(f"no guest {name!r}; have: {known}")


def guest_window(config: ScenarioConfig, name: str) -> tuple[float, float]:
    """A guest's trimmed analysis window: its active span, clipped and trimmed."""
    span = guest_active_span(config, name)
    if span is None:
        span = (0.0, config.duration)
    start, end = span[0], min(span[1], config.duration)
    if end > start:
        trimmed = _trimmed(start, end)
        if trimmed[1] > trimmed[0]:
            return trimmed
    raise ConfigurationError(
        f"guest {name!r} has no analysable activity inside the run "
        f"(span {span}, duration {config.duration}: too short once trimmed)"
    )


def analysis_windows(
    config: ScenarioConfig,
) -> tuple[tuple[float, float], tuple[float, float], tuple[float, float]]:
    """Derive (solo-early, both, solo-late) windows from the timeline.

    The three phases are defined by the first two guests with bounded
    activity: primary alone before the secondary starts, both active, then
    primary alone again — each trimmed by :func:`_trimmed` so governor
    averaging and the PAS frequency ladder settle.  On the default §5.3
    timeline this reproduces the module-level constants.  Fleets without
    two such guests fall back to equal thirds of the run.
    """
    guests = effective_guests(config)
    spans = [guest_active_span(config, guest.name) for guest in guests]
    bounded = [span for span in spans if span is not None]
    if len(bounded) >= 2:
        (primary_start, primary_end), (secondary_start, secondary_end) = bounded[0], bounded[1]
        return (
            _trimmed(primary_start, secondary_start),
            _trimmed(secondary_start, secondary_end),
            _trimmed(secondary_end, min(primary_end, config.duration)),
        )
    third = config.duration / 3.0
    return (
        _trimmed(0.0, third),
        _trimmed(third, 2.0 * third),
        _trimmed(2.0 * third, config.duration),
    )


def secondary_activation(config: ScenarioConfig) -> float | None:
    """When the second bounded-activity guest wakes (reactivity reference)."""
    spans = [
        span
        for guest in effective_guests(config)
        if (span := guest_active_span(config, guest.name)) is not None
    ]
    if len(spans) >= 2:
        return spans[1][0]
    return None
