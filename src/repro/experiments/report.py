"""Paper-vs-measured reporting.

Every experiment runner returns an :class:`ExperimentReport`: named rows of
``(metric, paper value, measured value)`` plus boolean shape checks.  The
benchmarks print reports; integration tests assert ``report.all_passed``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..telemetry import table_to_text


@dataclass(frozen=True)
class Check:
    """One shape criterion with its outcome."""

    description: str
    passed: bool

    def __str__(self) -> str:
        marker = "PASS" if self.passed else "FAIL"
        return f"[{marker}] {self.description}"


@dataclass
class ExperimentReport:
    """Rows + checks + optional chart for one table/figure reproduction."""

    experiment: str
    title: str
    rows: list[tuple[str, object, object]] = field(default_factory=list)
    checks: list[Check] = field(default_factory=list)
    chart: str = ""

    def add_row(self, metric: str, paper: object, measured: object) -> None:
        """Record one paper-vs-measured comparison row."""
        self.rows.append((metric, paper, measured))

    def check(self, description: str, passed: bool) -> None:
        """Record one shape criterion."""
        self.checks.append(Check(description, passed))

    @property
    def all_passed(self) -> bool:
        """True when every shape criterion held."""
        return all(check.passed for check in self.checks)

    @property
    def failures(self) -> list[Check]:
        """The criteria that did not hold."""
        return [check for check in self.checks if not check.passed]

    def render(self) -> str:
        """Human-readable report for benchmark output."""
        parts = [f"== {self.experiment}: {self.title} =="]
        if self.rows:
            parts.append(
                table_to_text(["metric", "paper", "measured"], self.rows)
            )
        if self.chart:
            parts.append(self.chart)
        for check in self.checks:
            parts.append(str(check))
        return "\n".join(parts)

    def __str__(self) -> str:
        return self.render()
