"""Runners for Figs. 2–10: the §5.3 execution profile under each scheduler.

Every runner executes the shared scenario (:mod:`.scenario`) with the
figure's scheduler/governor/load combination and reduces the traces to the
plateau values the published plots show.  Expected numbers come from the
paper's text and figures:

========  ==========================  ======================================
Figure    configuration                paper's plateaus (V20 solo / both)
========  ==========================  ======================================
Fig. 2    credit + performance/exact   global 20 / 20 (V70 70), 2667 MHz
Fig. 3    credit + ondemand/exact      as Fig. 4 but wildly oscillating
Fig. 4    credit + stable/exact        global 20 / 20; 1600 MHz when solo
Fig. 5    (absolute of Fig. 4)         absolute ~10-12 / 20  <- the SLA hole
Fig. 6    SEDF + stable/exact          global ~35 / 20 (extra slices)
Fig. 7    (absolute of Fig. 6)         absolute 20 / 20   <- SEDF "solution"
Fig. 8    SEDF + stable/thrashing      global ~85-90 at 2667 MHz <- waste
Fig. 9    PAS + thrashing              global 33 / 20; 1600 MHz when solo
Fig. 10   (absolute of Fig. 9)         absolute 20 / 20 at low frequency
========  ==========================  ======================================
"""

from __future__ import annotations

from ..sweep import run_cells, SweepGrid
from ..telemetry import render_chart
from .presets import preset_config
from .report import ExperimentReport
from .scenario import (
    analysis_windows,
    ScenarioResult,
    run_scenario,
)


def _paper53(**changes):
    """The shared §5.3 base (the ``paper-5.3`` preset) with figure changes."""
    return preset_config("paper-5.3").with_changes(**changes)


def _within(value: float, target: float, tolerance: float) -> bool:
    return abs(value - target) <= tolerance


def _loads_chart(result: ScenarioResult, title: str) -> str:
    freq_percent = result.series("host.freq_mhz").map(
        lambda mhz: 100.0 * mhz / result.host.processor.max_frequency_mhz
    )
    return render_chart(
        [result.series("V20.global_load"), result.series("V70.global_load"), freq_percent],
        title=title,
        y_max=100.0,
        labels=["V20 global load %", "V70 global load %", "frequency (% of max)"],
    )


def _absolute_chart(result: ScenarioResult, title: str) -> str:
    freq_percent = result.series("host.freq_mhz").map(
        lambda mhz: 100.0 * mhz / result.host.processor.max_frequency_mhz
    )
    return render_chart(
        [result.series("V20.absolute_load"), result.series("V70.absolute_load"), freq_percent],
        title=title,
        y_max=100.0,
        labels=["V20 absolute load %", "V70 absolute load %", "frequency (% of max)"],
    )


# --------------------------------------------------------------------- Fig 2


def run_fig2(**overrides) -> tuple[ScenarioResult, ExperimentReport]:
    """Fig. 2: the execution profile at the maximum frequency."""
    config = _paper53(scheduler="credit", governor="performance").with_changes(**overrides)
    result = run_scenario(config)
    solo, both, late = analysis_windows(config)
    report = ExperimentReport(
        experiment="Figure 2",
        title="load profile at the maximum frequency (credit scheduler)",
        chart=_loads_chart(result, "V20/V70 global loads, performance governor"),
    )
    v20_a = result.phase_mean("V20.global_load", solo)
    v20_b = result.phase_mean("V20.global_load", both)
    v70_b = result.phase_mean("V70.global_load", both)
    freq_min = result.series("host.freq_mhz", smooth=False).min()
    report.add_row("V20 global load (solo)", 20.0, round(v20_a, 2))
    report.add_row("V20 global load (both)", 20.0, round(v20_b, 2))
    report.add_row("V70 global load (both)", 70.0, round(v70_b, 2))
    report.add_row("frequency (whole run)", 2667, int(freq_min))
    report.check("V20 holds its 20% credit in both phases", _within(v20_a, 20, 1.5) and _within(v20_b, 20, 1.5))
    report.check("V70 holds its 70% credit when active", _within(v70_b, 70, 2.0))
    report.check("frequency pinned at the maximum", freq_min == result.host.processor.max_frequency_mhz)
    return result, report


# --------------------------------------------------------------------- Fig 3


def run_fig3(**overrides) -> tuple[ScenarioResult, ExperimentReport]:
    """Fig. 3: the stock ondemand governor oscillates (credit scheduler)."""
    config = _paper53(scheduler="credit", governor="ondemand").with_changes(**overrides)
    runs = run_cells(
        SweepGrid.from_variants(
            {
                "ondemand": config,
                "stable": config.with_changes(governor="stable"),
            }
        )
    )
    result, stable = runs["ondemand"], runs["stable"]
    solo, both, late = analysis_windows(config)
    report = ExperimentReport(
        experiment="Figure 3",
        title="global loads with the stock Ondemand governor (aggressive, unstable)",
        chart=_loads_chart(result, "V20/V70 global loads, stock ondemand governor"),
    )
    transitions = result.frequency_transitions
    stable_transitions = stable.frequency_transitions
    report.add_row("governor behaviour", "aggressive and unstable", f"{transitions} DVFS transitions")
    report.add_row("(Fig. 4 comparison)", "stable", f"{stable_transitions} DVFS transitions")
    report.check(
        "ondemand makes at least 50x more transitions than the stable governor",
        transitions >= 50 * max(stable_transitions, 1),
    )
    v20_b = result.phase_mean("V20.global_load", both)
    report.add_row("V20 global load (both)", 20.0, round(v20_b, 2))
    report.check("credit cap still enforced under oscillation", v20_b <= 21.5)
    return result, report


# --------------------------------------------------------------------- Fig 4


def run_fig4(**overrides) -> tuple[ScenarioResult, ExperimentReport]:
    """Fig. 4: the authors' stabilised governor (credit scheduler, exact load)."""
    config = _paper53(scheduler="credit", governor="stable").with_changes(**overrides)
    result = run_scenario(config)
    solo, both, late = analysis_windows(config)
    report = ExperimentReport(
        experiment="Figure 4",
        title="global loads with the authors' governor (credit scheduler, exact load)",
        chart=_loads_chart(result, "V20/V70 global loads, stable governor"),
    )
    v20_a = result.phase_mean("V20.global_load", solo)
    v20_b = result.phase_mean("V20.global_load", both)
    v70_b = result.phase_mean("V70.global_load", both)
    freq_a = result.phase_mean("host.freq_mhz", solo, smooth=False)
    freq_b = result.phase_mean("host.freq_mhz", both, smooth=False)
    report.add_row("V20 global load (solo)", 20.0, round(v20_a, 2))
    report.add_row("V70 global load (both)", 70.0, round(v70_b, 2))
    report.add_row("frequency (solo)", 1600, int(freq_a))
    report.add_row("frequency (both)", 2667, int(freq_b))
    report.add_row("DVFS transitions", "few (stable)", result.frequency_transitions)
    report.check("V20 nominal load capped at its 20% credit", _within(v20_a, 20, 1.5) and _within(v20_b, 20, 1.5))
    report.check("governor clocks down while the host is underloaded", freq_a == 1600)
    report.check("governor reaches the maximum under combined load", freq_b == 2667)
    report.check("stable: fewer than 20 transitions over the run", result.frequency_transitions < 20)
    return result, report


# --------------------------------------------------------------------- Fig 5


def run_fig5(**overrides) -> tuple[ScenarioResult, ExperimentReport]:
    """Fig. 5: absolute loads expose the credit scheduler's SLA violation."""
    config = _paper53(scheduler="credit", governor="stable").with_changes(**overrides)
    result = run_scenario(config)
    solo, both, late = analysis_windows(config)
    report = ExperimentReport(
        experiment="Figure 5",
        title="absolute loads with the credit scheduler: V20 loses capacity when solo",
        chart=_absolute_chart(result, "V20/V70 absolute loads, credit + stable governor"),
    )
    v20_abs_a = result.phase_mean("V20.absolute_load", solo)
    v20_abs_b = result.phase_mean("V20.absolute_load", both)
    v20_abs_c = result.phase_mean("V20.absolute_load", late)
    report.add_row("V20 absolute load (solo)", "~10 (penalized)", round(v20_abs_a, 2))
    report.add_row("V20 absolute load (both)", 20.0, round(v20_abs_b, 2))
    report.add_row("V20 absolute load (solo, late)", "~10 (penalized)", round(v20_abs_c, 2))
    report.check(
        "V20's absolute load collapses well below its 20% SLA while solo",
        v20_abs_a < 15.0 and v20_abs_c < 15.0,
    )
    report.check(
        "V20 only gets its booked 20% when the host load forces max frequency",
        _within(v20_abs_b, 20, 1.5),
    )
    return result, report


# --------------------------------------------------------------------- Fig 6


def run_fig6(**overrides) -> tuple[ScenarioResult, ExperimentReport]:
    """Fig. 6: SEDF hands unused slices to V20 (global loads, exact load)."""
    config = _paper53(scheduler="sedf", governor="stable").with_changes(**overrides)
    result = run_scenario(config)
    solo, both, late = analysis_windows(config)
    report = ExperimentReport(
        experiment="Figure 6",
        title="global loads with SEDF (exact load): extra slices raise V20's share",
        chart=_loads_chart(result, "V20/V70 global loads, SEDF + stable governor"),
    )
    v20_a = result.phase_mean("V20.global_load", solo)
    v20_b = result.phase_mean("V20.global_load", both)
    freq_a = result.phase_mean("host.freq_mhz", solo, smooth=False)
    report.add_row("V20 global load (solo)", "~35 (extra slices)", round(v20_a, 2))
    report.add_row("V20 global load (both)", 20.0, round(v20_b, 2))
    report.add_row("frequency (solo)", 1600, int(freq_a))
    report.check("V20 receives extra slices beyond its credit while solo", 30.0 <= v20_a <= 40.0)
    report.check("credits respected again once V70 is active", _within(v20_b, 20, 2.0))
    report.check("frequency stays low while solo (demand fits)", freq_a == 1600)
    return result, report


# --------------------------------------------------------------------- Fig 7


def run_fig7(**overrides) -> tuple[ScenarioResult, ExperimentReport]:
    """Fig. 7: SEDF's extra slices restore V20's absolute 20% under exact load."""
    config = _paper53(scheduler="sedf", governor="stable").with_changes(**overrides)
    result = run_scenario(config)
    solo, both, late = analysis_windows(config)
    report = ExperimentReport(
        experiment="Figure 7",
        title="absolute loads with SEDF (exact load): V20 keeps 20% throughout",
        chart=_absolute_chart(result, "V20/V70 absolute loads, SEDF + stable governor"),
    )
    v20_abs_a = result.phase_mean("V20.absolute_load", solo)
    v20_abs_b = result.phase_mean("V20.absolute_load", both)
    v20_abs_c = result.phase_mean("V20.absolute_load", late)
    report.add_row("V20 absolute load (solo)", 20.0, round(v20_abs_a, 2))
    report.add_row("V20 absolute load (both)", 20.0, round(v20_abs_b, 2))
    report.add_row("V20 absolute load (solo, late)", 20.0, round(v20_abs_c, 2))
    report.check(
        "V20's absolute load holds at ~20% during the entire experiment",
        all(_within(v, 20, 2.0) for v in (v20_abs_a, v20_abs_b, v20_abs_c)),
    )
    return result, report


# --------------------------------------------------------------------- Fig 8


def run_fig8(**overrides) -> tuple[ScenarioResult, ExperimentReport]:
    """Fig. 8: SEDF under thrashing load — V20 eats the machine, no DVFS saving."""
    config = _paper53(
        scheduler="sedf", governor="stable", v20_load="thrashing"
    ).with_changes(**overrides)
    result = run_scenario(config)
    solo, both, late = analysis_windows(config)
    report = ExperimentReport(
        experiment="Figure 8",
        title="SEDF under thrashing load: V20 consumes far beyond its credit",
        chart=_loads_chart(result, "V20/V70 global loads, SEDF, thrashing V20"),
    )
    v20_a = result.phase_mean("V20.global_load", solo)
    v20_b = result.phase_mean("V20.global_load", both)
    freq_a = result.phase_mean("host.freq_mhz", solo, smooth=False)
    report.add_row("V20 global load (solo)", "~85 (paper)", round(v20_a, 2))
    report.add_row("V20 global load (both)", "~20", round(v20_b, 2))
    report.add_row("frequency (solo)", 2667, int(freq_a))
    report.check("V20 consumes several times its 20% credit while solo", v20_a >= 80.0)
    report.check(
        "the frequency is pinned at the maximum (no energy saving possible)",
        freq_a == result.host.processor.max_frequency_mhz,
    )
    report.check("V70's guaranteed credit still respected when active", result.phase_mean("V70.global_load", both) >= 67.0)
    return result, report


# --------------------------------------------------------------------- Fig 9


def run_fig9(**overrides) -> tuple[ScenarioResult, ExperimentReport]:
    """Fig. 9: PAS under thrashing load — compensated credits at low frequency."""
    config = _paper53(scheduler="pas", v20_load="thrashing").with_changes(**overrides)
    result = run_scenario(config)
    solo, both, late = analysis_windows(config)
    report = ExperimentReport(
        experiment="Figure 9",
        title="global loads with the PAS scheduler (thrashing V20)",
        chart=_loads_chart(result, "V20/V70 global loads, PAS scheduler"),
    )
    v20_a = result.phase_mean("V20.global_load", solo)
    v20_b = result.phase_mean("V20.global_load", both)
    freq_a = result.phase_mean("host.freq_mhz", solo, smooth=False)
    freq_b = result.phase_mean("host.freq_mhz", both, smooth=False)
    report.add_row("V20 global load (solo)", "33 (compensated credit)", round(v20_a, 2))
    report.add_row("V20 global load (both)", 20.0, round(v20_b, 2))
    report.add_row("frequency (solo)", 1600, int(freq_a))
    report.add_row("frequency (both)", 2667, int(freq_b))
    report.check("PAS grants V20 ~33% nominal credit at 1600 MHz", _within(v20_a, 33.3, 1.5))
    report.check("V20 back to 20% when the frequency reaches the maximum", _within(v20_b, 20, 1.5))
    report.check("frequency stays low while the host is underloaded", freq_a == 1600)
    report.check("frequency reaches the maximum under combined load", freq_b == 2667)
    return result, report


# -------------------------------------------------------------------- Fig 10


def run_fig10(**overrides) -> tuple[ScenarioResult, ExperimentReport]:
    """Fig. 10: PAS absolute loads — every VM gets exactly what it bought."""
    config = _paper53(scheduler="pas", v20_load="thrashing").with_changes(**overrides)
    result = run_scenario(config)
    solo, both, late = analysis_windows(config)
    report = ExperimentReport(
        experiment="Figure 10",
        title="absolute loads with the PAS scheduler: SLA held at every frequency",
        chart=_absolute_chart(result, "V20/V70 absolute loads, PAS scheduler"),
    )
    v20_abs_a = result.phase_mean("V20.absolute_load", solo)
    v20_abs_b = result.phase_mean("V20.absolute_load", both)
    v20_abs_c = result.phase_mean("V20.absolute_load", late)
    v70_abs_b = result.phase_mean("V70.absolute_load", both)
    report.add_row("V20 absolute load (solo)", 20.0, round(v20_abs_a, 2))
    report.add_row("V20 absolute load (both)", 20.0, round(v20_abs_b, 2))
    report.add_row("V20 absolute load (solo, late)", 20.0, round(v20_abs_c, 2))
    report.add_row("V70 absolute load (both)", 70.0, round(v70_abs_b, 2))
    report.check(
        "V20's absolute load is ~20% through all three phases",
        all(_within(v, 20, 1.5) for v in (v20_abs_a, v20_abs_b, v20_abs_c)),
    )
    report.check("V70 receives its booked 70% when active", _within(v70_abs_b, 70, 2.5))
    report.check(
        "V20 never exceeds its booked absolute capacity (enables DVFS saving)",
        result.series("V20.absolute_load").max() <= 23.0,
    )
    return result, report
