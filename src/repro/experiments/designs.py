"""Ablation B: the three PAS implementation designs of §4.1.

The paper sketches three ways to build the compensation loop —

1. *user level, credit management*: an autonomous governor owns the
   frequency; a user-level daemon polls it and rescales caps;
2. *user level, credit and DVFS management*: a user-level daemon owns both;
3. *in the hypervisor*: the scheduler itself recomputes frequency and
   credits at each tick —

and reports results for design 3 because "a user level implementation can
be quite intrusive because of system calls and it may lack reactivity".
This runner measures all three on the thrashing profile: SLA accuracy in
steady state and worst-case transient deviation around the V70 activation
edge, where reactivity shows.

Each design is an ordinary :class:`ScenarioConfig` — the ``manager`` field
selects the §4.1 user-level manager beside the chosen scheduler/governor —
so the comparison is a plain variant grid over the spec-based builder.
"""

from __future__ import annotations

from ..sweep import run_sweep, SweepGrid
from .presets import preset_config
from .report import ExperimentReport
from .scenario import effective_guests
from .scenario import ScenarioConfig  # noqa: F401  (re-export for tests/docs)


def design_variants(config) -> dict:
    """The three §4.1 designs as configs derived from *config*.

    * ``in-scheduler`` — PAS recomputes frequency and credits at each tick;
    * ``user-credit`` — §4.1 design 1: "we let the Ondemand governor manage
      the processor frequency" (the stock, oscillating one); caps chase it
      from user level, one poll period behind;
    * ``user-full`` — a user-level daemon owns both frequency and credits
      through the userspace governor.
    """
    return {
        "in-scheduler": config.with_changes(scheduler="pas"),
        "user-credit": config.with_changes(
            scheduler="credit", governor="ondemand", manager="user-credit"
        ),
        "user-full": config.with_changes(
            scheduler="credit", governor="userspace", manager="user-full"
        ),
    }


def run_design_comparison(*, workers: int = 1, store=None, **overrides) -> ExperimentReport:
    """Compare §4.1's three designs on SLA tracking of V20's 20% target.

    The error signal is ``|V20 absolute load - 20|`` over V20's whole active
    window: a design is better the closer it keeps the delivered capacity to
    the booked capacity at every instant, whatever the governor does.  A
    thin reduction over a three-variant sweep with the ``sla`` metric set —
    *workers* fans the designs out, *store* makes repeated builds warm-cache.
    """
    report = ExperimentReport(
        experiment="Ablation B (§4.1 designs)",
        title="in-scheduler PAS vs the two user-level manager designs",
    )
    config = preset_config("paper-5.3").with_changes(v20_load="thrashing").with_changes(**overrides)
    primary = effective_guests(config)[0]
    grid = SweepGrid.from_variants(design_variants(config))
    results = run_sweep(grid, metrics=("sla",), workers=workers, store=store)
    mean_error: dict[str, float] = {}
    max_error: dict[str, float] = {}
    for design in grid.axes["variant"]:
        mean_error[design] = results.metric(design, f"{primary.name.lower()}_sla_mean_error")
        max_error[design] = results.metric(design, f"{primary.name.lower()}_sla_max_error")
        report.add_row(
            design,
            "mean / max SLA error (pp)",
            f"{mean_error[design]:.2f} / {max_error[design]:.2f}",
        )
    report.check(
        "every design keeps the mean SLA error under 3pp",
        all(error < 3.0 for error in mean_error.values()),
    )
    report.check(
        "the in-scheduler design ties or beats both user-level designs (paper's choice)",
        mean_error["in-scheduler"] <= min(mean_error.values()) + 0.1,
    )
    report.check(
        "chasing the stock ondemand governor from user level tracks worst",
        mean_error["user-credit"] >= max(mean_error.values()) - 1e-9,
    )
    return report
