"""Ablation E: consolidation x DVFS — quantifying §2.3 (ours).

§2.3: "even if consolidation can reduce the number of active machines in a
hosting center, it cannot optimally guarantee full usage of CPU on active
machines as it is memory bound.  Consequently, DVFS is complementary to
consolidation."

Setup: a fleet of i7-3770 machines (16 GB each), a population of VMs whose
memory footprints (5 GB) bind at 3 VMs per host while their *CPU* demand
follows light diurnal traces — so even perfectly packed hosts idle around
40-80 % CPU.  Four strategies:

* spread, no DVFS — the worst case (whole fleet on, at max frequency);
* spread + DVFS — what DVFS alone buys;
* consolidation, no DVFS — what packing alone buys;
* consolidation + DVFS — the paper's position: both.

The shape claim: consolidation + DVFS beats consolidation alone by a
meaningful margin *because* packed hosts are still CPU-underloaded, and
every strategy delivers the full SLA (demand never exceeds booked credits).
"""

from __future__ import annotations

from ..cluster import ClusterScenarioConfig, ClusterSim
from ..sweep import run_cells, SweepGrid
from ..sweep.metrics import fleet_metrics
from .report import ExperimentReport


def run_consolidation_ablation(
    *,
    n_machines: int = 8,
    n_vms: int = 12,
    duration: float = 600.0,
    seed: int = 7,
) -> ExperimentReport:
    """Fleet energy under the four strategies of §2.3.

    A thin reduction over a policy x DVFS sweep of the declarative
    :class:`~repro.cluster.scenario.ClusterScenarioConfig` (the raw sims
    are kept for the packed-host memory-bound introspection below).
    """
    report = ExperimentReport(
        experiment="Ablation E (consolidation)",
        title="memory-bound consolidation leaves CPU idle - DVFS is complementary (§2.3)",
    )
    base = ClusterScenarioConfig(
        n_machines=n_machines, n_vms=n_vms, duration=duration, seed=seed
    )
    strategies = {
        "spread, no DVFS": base.with_changes(policy="spread", dvfs=False),
        "spread + DVFS": base.with_changes(policy="spread", dvfs=True),
        "consolidation, no DVFS": base.with_changes(policy="consolidate", dvfs=False),
        "consolidation + DVFS": base.with_changes(policy="consolidate", dvfs=True),
    }
    sims: dict[str, ClusterSim] = run_cells(SweepGrid.from_variants(strategies))
    energy: dict[str, float] = {}
    for label, sim in sims.items():
        metrics = fleet_metrics(sim)
        energy[label] = metrics["fleet_energy_joules"]
        report.add_row(
            label,
            "energy kJ / machines on / SLA",
            f"{metrics['fleet_energy_joules'] / 1000:8.1f} / {metrics['mean_machines_on']:4.1f} "
            f"/ {metrics['mean_sla_fraction'] * 100:5.1f}%",
        )

    consolidated = sims["consolidation + DVFS"]
    packed_hosts = [m for m in consolidated.machines if m.vms]
    cpu_loads = [sum(vm.demand_at(0.0) for vm in m.vms) for m in packed_hosts]
    report.add_row(
        "packed-host CPU demand (t=0)",
        "well under 100% (memory-bound)",
        " / ".join(f"{load:.0f}%" for load in cpu_loads),
    )
    report.check(
        "consolidation alone saves energy vs spread",
        energy["consolidation, no DVFS"] < energy["spread, no DVFS"] * 0.8,
    )
    report.check(
        "DVFS still saves >= 10% on top of consolidation (the §2.3 claim)",
        energy["consolidation + DVFS"] < energy["consolidation, no DVFS"] * 0.9,
    )
    report.check(
        "combining both is the cheapest strategy",
        energy["consolidation + DVFS"] == min(energy.values()),
    )
    report.check(
        "memory binds before CPU: packed hosts stay below 80% CPU demand",
        all(load < 80.0 for load in cpu_loads),
    )
    report.check(
        "every strategy delivers the full SLA",
        all(sim.mean_sla_fraction > 0.999 for sim in sims.values()),
    )
    return report
