"""Ablation E: consolidation x DVFS — quantifying §2.3 (ours).

§2.3: "even if consolidation can reduce the number of active machines in a
hosting center, it cannot optimally guarantee full usage of CPU on active
machines as it is memory bound.  Consequently, DVFS is complementary to
consolidation."

Setup: a fleet of i7-3770 machines (16 GB each), a population of VMs whose
memory footprints (5 GB) bind at 3 VMs per host while their *CPU* demand
follows light diurnal traces — so even perfectly packed hosts idle around
40-80 % CPU.  Four strategies:

* spread, no DVFS — the worst case (whole fleet on, at max frequency);
* spread + DVFS — what DVFS alone buys;
* consolidation, no DVFS — what packing alone buys;
* consolidation + DVFS — the paper's position: both.

The shape claim: consolidation + DVFS beats consolidation alone by a
meaningful margin *because* packed hosts are still CPU-underloaded, and
every strategy delivers the full SLA (demand never exceeds booked credits).
"""

from __future__ import annotations

from ..cluster import ClusterSim, ClusterVM, consolidate_first_fit, MachineSpec, spread_round_robin
from ..cpu import catalog
from ..sim import RngStreams
from ..workloads import SyntheticTrace, TraceLoad, TracePoint
from .report import ExperimentReport


def _make_population(n_vms: int, seed: int) -> list[ClusterVM]:
    streams = RngStreams(seed)
    vms = []
    for index in range(n_vms):
        points = SyntheticTrace(
            base_percent=14.0,
            swing_percent=8.0,
            noise_percent=2.0,
            burst_percent=10.0,
            bursts=1,
            day_length=600.0,
            step=10.0,
        ).generate(streams.stream(f"vm{index}"))
        trace = TraceLoad(points, repeat=True)
        vms.append(
            ClusterVM(
                f"vm{index:02d}",
                credit=30.0,
                memory_mb=5120,
                demand=trace.demand_at,
            )
        )
    return vms


def run_consolidation_ablation(
    *,
    n_machines: int = 8,
    n_vms: int = 12,
    duration: float = 600.0,
    seed: int = 7,
) -> ExperimentReport:
    """Fleet energy under the four strategies of §2.3."""
    report = ExperimentReport(
        experiment="Ablation E (consolidation)",
        title="memory-bound consolidation leaves CPU idle - DVFS is complementary (§2.3)",
    )
    spec = MachineSpec(processor=catalog.CORE_I7_3770, memory_mb=16384)
    strategies = {
        "spread, no DVFS": (spread_round_robin, False),
        "spread + DVFS": (spread_round_robin, True),
        "consolidation, no DVFS": (consolidate_first_fit, False),
        "consolidation + DVFS": (consolidate_first_fit, True),
    }
    energy: dict[str, float] = {}
    sims: dict[str, ClusterSim] = {}
    for label, (policy, dvfs) in strategies.items():
        sim = ClusterSim(
            n_machines=n_machines,
            machine_spec=spec,
            vms=_make_population(n_vms, seed),
            policy=policy,
            dvfs=dvfs,
        )
        sim.run(duration)
        energy[label] = sim.fleet_energy_joules
        sims[label] = sim
        report.add_row(
            label,
            "energy kJ / machines on / SLA",
            f"{sim.fleet_energy_joules / 1000:8.1f} / {sim.mean_machines_on:4.1f} "
            f"/ {sim.mean_sla_fraction * 100:5.1f}%",
        )

    consolidated = sims["consolidation + DVFS"]
    packed_hosts = [m for m in consolidated.machines if m.vms]
    cpu_loads = [sum(vm.demand_at(0.0) for vm in m.vms) for m in packed_hosts]
    report.add_row(
        "packed-host CPU demand (t=0)",
        "well under 100% (memory-bound)",
        " / ".join(f"{load:.0f}%" for load in cpu_loads),
    )
    report.check(
        "consolidation alone saves energy vs spread",
        energy["consolidation, no DVFS"] < energy["spread, no DVFS"] * 0.8,
    )
    report.check(
        "DVFS still saves >= 10% on top of consolidation (the §2.3 claim)",
        energy["consolidation + DVFS"] < energy["consolidation, no DVFS"] * 0.9,
    )
    report.check(
        "combining both is the cheapest strategy",
        energy["consolidation + DVFS"] == min(energy.values()),
    )
    report.check(
        "memory binds before CPU: packed hosts stay below 80% CPU demand",
        all(load < 80.0 for load in cpu_loads),
    )
    report.check(
        "every strategy delivers the full SLA",
        all(sim.mean_sla_fraction > 0.999 for sim in sims.values()),
    )
    return report
