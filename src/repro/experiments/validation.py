"""§5.2: verification of the two proportionality assumptions.

Three sweeps, matching the paper's validation experiments:

* **frequency vs load** (Eq. 1) — Web-app workloads at every frequency;
  the measured ``cf`` must be constant across workload intensities;
* **frequency vs execution time** (Eq. 2) — pi-app at every frequency;
  time ratios must track ``1 / (ratio * cf)``;
* **credit vs execution time** (Eq. 3) — pi-app at credits 10..100 at the
  maximum frequency; ``T * credit`` must be constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu import catalog
from ..cpu.processor import ProcessorSpec
from ..hypervisor.host import Host
from ..workloads import ConstantLoad, PiApp
from .report import ExperimentReport


@dataclass(frozen=True)
class FrequencyLoadPoint:
    """One (workload, frequency) load measurement."""

    demand_percent: float
    freq_mhz: int
    ratio: float
    load_percent: float
    cf_measured: float


def validate_frequency_load(
    *,
    processor: ProcessorSpec = catalog.OPTIPLEX_755,
    demands: tuple[float, ...] = (5.0, 10.0, 15.0, 20.0),
    settle: float = 5.0,
    window: float = 30.0,
) -> tuple[list[FrequencyLoadPoint], ExperimentReport]:
    """Eq. 1 validation: measured cf constant across workloads and frequencies."""
    points: list[FrequencyLoadPoint] = []
    table = processor.table()
    max_freq = table.max_state.freq_mhz
    for demand in demands:
        loads: dict[int, float] = {}
        for state in table:
            host = Host(processor=processor, scheduler="credit", governor="userspace")
            vm = host.create_domain("load", credit=0)
            vm.attach_workload(ConstantLoad(demand, injection_period=0.02))
            host.start()
            host.cpufreq.set_speed(state.freq_mhz)
            host.run(until=settle + window)
            loads[state.freq_mhz] = (
                host.recorder.series("host.global_load").window(settle, settle + window).mean()
            )
        load_max = loads[max_freq]
        for state in table:
            ratio = state.freq_mhz / max_freq
            load = loads[state.freq_mhz]
            cf = load_max / (load * ratio) if load > 0 else float("nan")
            points.append(
                FrequencyLoadPoint(
                    demand_percent=demand,
                    freq_mhz=state.freq_mhz,
                    ratio=ratio,
                    load_percent=load,
                    cf_measured=cf,
                )
            )

    report = ExperimentReport(
        experiment="Validation (Eq. 1)",
        title="proportionality of frequency and load; cf constant across workloads",
    )
    for freq in table.frequencies:
        cfs = [p.cf_measured for p in points if p.freq_mhz == freq]
        spread = max(cfs) - min(cfs)
        spec_cf = table.state_for(freq).cf
        report.add_row(
            f"cf @ {freq} MHz",
            f"{spec_cf:.5f}",
            f"{sum(cfs) / len(cfs):.5f} (spread {spread:.5f})",
        )
        report.check(
            f"cf at {freq} MHz constant across {len(cfs)} workloads (spread < 0.02)",
            spread < 0.02,
        )
        report.check(
            f"cf at {freq} MHz within 2% of the substrate value",
            abs(sum(cfs) / len(cfs) - spec_cf) / spec_cf < 0.02,
        )
    return points, report


def _pi_time_at(
    processor: ProcessorSpec, freq_mhz: int, credit: float, work: float, horizon: float
) -> float:
    host = Host(processor=processor, scheduler="credit", governor="userspace")
    vm = host.create_domain("pi", credit=credit)
    app = PiApp(work)
    vm.attach_workload(app)
    host.start()
    host.cpufreq.set_speed(freq_mhz)
    while not app.done and host.now < horizon:
        host.run(until=host.now + 100.0)
    return app.execution_time


def validate_frequency_time(
    *,
    processor: ProcessorSpec = catalog.OPTIPLEX_755,
    work: float = 30.0,
    credit: float = 50.0,
) -> ExperimentReport:
    """Eq. 2 validation: execution time ratios track 1 / (ratio * cf)."""
    table = processor.table()
    max_freq = table.max_state.freq_mhz
    report = ExperimentReport(
        experiment="Validation (Eq. 2)",
        title="proportionality of frequency and execution time (pi-app)",
    )
    time_max = _pi_time_at(processor, max_freq, credit, work, horizon=4000.0)
    for state in table:
        time_i = _pi_time_at(processor, state.freq_mhz, credit, work, horizon=8000.0)
        ratio = state.freq_mhz / max_freq
        expected = time_max / (ratio * state.cf)
        report.add_row(
            f"T @ {state.freq_mhz} MHz",
            f"{expected:.1f}s (Eq. 2)",
            f"{time_i:.1f}s",
        )
        report.check(
            f"T({state.freq_mhz}) within 3% of Eq. 2 prediction",
            abs(time_i - expected) / expected < 0.03,
        )
    return report


def validate_credit_time(
    *,
    processor: ProcessorSpec = catalog.OPTIPLEX_755,
    work: float = 30.0,
    credits: tuple[float, ...] = (10.0, 20.0, 30.0, 50.0, 70.0, 100.0),
) -> ExperimentReport:
    """Eq. 3 validation: T * credit constant at fixed (max) frequency."""
    table = processor.table()
    max_freq = table.max_state.freq_mhz
    report = ExperimentReport(
        experiment="Validation (Eq. 3)",
        title="proportionality of credit and execution time (pi-app, max frequency)",
    )
    baseline_credit = credits[0]
    time_baseline = _pi_time_at(processor, max_freq, baseline_credit, work, horizon=8000.0)
    for credit in credits:
        time_j = _pi_time_at(processor, max_freq, credit, work, horizon=8000.0)
        # Eq. 3: T_init / T_j = C_j / C_init.
        expected = time_baseline * baseline_credit / credit
        report.add_row(
            f"T @ credit {credit:.0f}%",
            f"{expected:.1f}s (Eq. 3)",
            f"{time_j:.1f}s",
        )
        report.check(
            f"T(credit {credit:.0f}) within 3% of Eq. 3 prediction",
            abs(time_j - expected) / expected < 0.03,
        )
    return report
