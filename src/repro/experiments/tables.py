"""Runners for Table 1 (cf per machine) and Table 2 (platform comparison).

Table 2 is a sweep: every platform/mode pair is an ordinary declarative
:class:`~repro.experiments.scenario.ScenarioConfig`
(:func:`~repro.platforms.virt_platforms.platform_config`), expanded into a
variant grid and reduced with the ``batch`` metric — so the platform rows
ride the same runner (and the same worker pool) as every other experiment.
"""

from __future__ import annotations

from ..cpu import catalog
from ..platforms.calibration import CalibrationResult, calibrate_cf_min
from ..platforms.virt_platforms import build_row, PLATFORMS, platform_config, Table2Row
from ..sweep import run_sweep, SweepGrid
from .report import ExperimentReport

#: Table 1's published cf_min values, by the paper's column headers.
PAPER_TABLE1: dict[str, float] = {
    "Intel Xeon X3440": 0.94867,
    "Intel Xeon L5420": 0.99903,
    "Intel Xeon E5-2620": 0.80338,
    "AMD Opteron 6164 HE": 0.99508,
    "Intel Core i7-3770": 0.86206,
}


def run_table1() -> tuple[list[CalibrationResult], ExperimentReport]:
    """Table 1: measure ``cf_min`` on each Grid'5000 machine model.

    Replays the §5.2 calibration procedure against every catalog processor
    and compares the recovered values against the paper's measurements
    (which are the substrate's spec values — the check is that the
    *procedure* recovers them through the full scheduler/monitor stack).
    """
    report = ExperimentReport(
        experiment="Table 1",
        title="cf_min on different processors (§5.8, Grid'5000 machines)",
    )
    results: list[CalibrationResult] = []
    for name, paper_cf in PAPER_TABLE1.items():
        spec = catalog.TABLE1_PROCESSORS[name]
        result = calibrate_cf_min(spec)
        results.append(result)
        report.add_row(f"cf_min {name}", f"{paper_cf:.5f}", f"{result.cf_measured:.5f}")
        report.check(
            f"{name}: measured cf_min within 1% of the paper's value",
            abs(result.cf_measured - paper_cf) / paper_cf < 0.01,
        )
    ordered = sorted(results, key=lambda r: r.cf_measured)
    report.check(
        "E5-2620 is the strongly non-proportional outlier (smallest cf)",
        ordered[0].processor == "Intel Xeon E5-2620",
    )
    return results, report


def run_table2(
    *, quick: bool = False, workers: int = 1, store=None
) -> tuple[list[Table2Row], ExperimentReport]:
    """Table 2: execution times on the seven virtualization platforms.

    *quick* restricts the run to one platform per discipline plus PAS
    (used by fast integration tests; benchmarks run the full table).
    *workers* fans the platform/mode cells out across a process pool
    (results are identical either way).
    """
    platforms = PLATFORMS
    if quick:
        platforms = tuple(p for p in PLATFORMS if p.name in ("Hyper-V", "Xen/PAS", "Xen/SEDF"))

    report = ExperimentReport(
        experiment="Table 2",
        title="execution times on different virtualization platforms (§5.8)",
    )
    grid = SweepGrid.from_variants(
        {
            f"{platform.name}/{mode}": platform_config(platform, mode)
            for platform in platforms
            for mode in ("performance", "ondemand")
        }
    )
    results = run_sweep(grid, metrics=("batch",), workers=workers, store=store)
    rows: list[Table2Row] = []
    for platform in platforms:
        row = build_row(
            platform,
            {
                mode: results.metric(f"{platform.name}/{mode}", "v20_batch_time_s")
                for mode in ("performance", "ondemand")
            },
        )
        rows.append(row)
        report.add_row(
            f"{row.platform} (performance)",
            f"{row.paper_performance:.0f}s",
            f"{row.time_performance:.0f}s",
        )
        report.add_row(
            f"{row.platform} (ondemand)",
            f"{row.paper_ondemand:.0f}s",
            f"{row.time_ondemand:.0f}s",
        )
        report.add_row(
            f"{row.platform} degradation",
            f"{row.paper_degradation:.0f}%",
            f"{row.degradation:.0f}%",
        )

    by_name = {row.platform: row for row in rows}
    fix_rows = [row for row in rows if row.discipline == "fix" and row.platform != "Xen/PAS"]
    var_rows = [row for row in rows if row.discipline == "variable"]
    report.check(
        "every fix-credit platform (except PAS) degrades by more than 15% under ondemand",
        all(row.degradation > 15.0 for row in fix_rows),
    )
    if "Xen/PAS" in by_name:
        report.check(
            "PAS cancels the degradation (< 2%)",
            abs(by_name["Xen/PAS"].degradation) < 2.0,
        )
    report.check(
        "variable-credit platforms do not degrade (< 2%)",
        all(abs(row.degradation) < 2.0 for row in var_rows),
    )
    if var_rows and fix_rows:
        speedup = min(row.time_performance for row in fix_rows) / max(
            row.time_performance for row in var_rows
        )
        report.add_row("variable vs fix speedup (performance governor)", "~2.5x", f"{speedup:.2f}x")
        report.check(
            "variable-credit platforms run ~2-3x faster under the performance governor",
            1.8 <= speedup <= 3.2,
        )
    if {"Hyper-V", "VMware", "Xen/credit"} <= set(by_name):
        report.check(
            "degradation ordering matches the paper: Hyper-V > Xen/credit > VMware",
            by_name["Hyper-V"].degradation
            > by_name["Xen/credit"].degradation
            > by_name["VMware"].degradation,
        )
    return rows, report
