"""Energy ablations (ours; the paper motivates but does not plot energy).

* :func:`run_energy_ablation` — integrates the power model over the
  thrashing scenario for Credit, SEDF, PAS and the performance governor,
  quantifying §3.2's claim: variable credit "prevents frequency scaling,
  thus wasting energy", while PAS saves energy *and* holds the SLA.
* :func:`run_cf_ablation` — PAS with and without the correction factor
  ``cf`` on the Xeon E5-2620 (cf_min 0.803): ignoring cf under-compensates
  credits by ~20 % on such machines, shrinking the very capacity PAS is
  supposed to protect.
"""

from __future__ import annotations

from ..cpu import catalog
from ..sweep import run_sweep, SweepGrid
from .presets import preset_config
from .report import ExperimentReport
from .scenario import analysis_windows, run_scenario


def run_energy_ablation(*, workers: int = 1, store=None, **overrides) -> ExperimentReport:
    """Energy and SLA across schedulers on the thrashing profile.

    A thin reduction over a four-variant sweep; *workers* fans the variants
    out across a process pool (results are identical either way).
    """
    report = ExperimentReport(
        experiment="Ablation A (energy)",
        title="energy vs SLA on the thrashing profile: PAS saves energy AND holds the SLA",
    )
    base = preset_config("paper-5.3").with_changes(v20_load="thrashing")
    configs = {
        "credit + performance": base.with_changes(
            scheduler="credit", governor="performance"
        ),
        "credit + stable": base.with_changes(scheduler="credit", governor="stable"),
        "sedf + stable": base.with_changes(scheduler="sedf", governor="stable"),
        "pas": base.with_changes(scheduler="pas"),
    }
    grid = SweepGrid.from_variants(
        {label: config.with_changes(**overrides) for label, config in configs.items()}
    )
    results = run_sweep(grid, metrics=("loads", "energy"), workers=workers, store=store)
    energies: dict[str, float] = {}
    slas: dict[str, float] = {}
    for label in grid.axes["variant"]:
        energies[label] = results.metric(label, "energy_joules")
        slas[label] = results.metric(label, "v20_absolute_solo_early")
        report.add_row(
            label,
            "energy J / V20 absolute % (solo)",
            f"{energies[label]:.0f} J / {slas[label]:.1f}%",
        )
    report.check(
        "PAS uses less energy than SEDF under thrashing (frequency can drop)",
        energies["pas"] < energies["sedf + stable"] * 0.9,
    )
    report.check(
        "PAS uses less energy than the performance governor",
        energies["pas"] < energies["credit + performance"] * 0.9,
    )
    report.check(
        "PAS holds V20's 20% SLA while solo",
        abs(slas["pas"] - 20.0) <= 1.5,
    )
    report.check(
        "credit + stable saves energy but breaks the SLA (the paper's problem)",
        energies["credit + stable"] < energies["credit + performance"]
        and slas["credit + stable"] < 15.0,
    )
    report.check(
        "SEDF holds throughput while solo but cannot save energy",
        slas["sedf + stable"] > 20.0
        and energies["sedf + stable"] > energies["pas"],
    )
    return report


def run_cf_ablation(**overrides) -> ExperimentReport:
    """PAS with cf vs cf-blind PAS on the E5-2620 (cf_min = 0.803)."""
    report = ExperimentReport(
        experiment="Ablation C (cf-awareness)",
        title="ignoring Table 1's correction factor under-compensates on low-cf machines",
    )
    base = preset_config("paper-5.3").with_changes(
        scheduler="pas",
        v20_load="thrashing",
        processor=catalog.XEON_E5_2620,
    ).with_changes(**overrides)
    with_cf = run_scenario(base)
    without_cf = run_scenario(
        base.with_changes(scheduler_kwargs={"use_cf": False})
    )
    solo, _, _ = analysis_windows(base)
    sla_with = with_cf.phase_mean("V20.absolute_load", solo)
    sla_without = without_cf.phase_mean("V20.absolute_load", solo)
    freq_with = with_cf.phase_mean("host.freq_mhz", solo, smooth=False)
    freq_without = without_cf.phase_mean("host.freq_mhz", solo, smooth=False)
    report.add_row("V20 absolute load, PAS with cf", 20.0, round(sla_with, 2))
    report.add_row("V20 absolute load, PAS without cf", "< 20 (under-compensated)", round(sla_without, 2))
    report.add_row("frequency while solo (with cf)", "low", int(freq_with))
    report.add_row("frequency while solo (without cf)", "low", int(freq_without))
    report.check("cf-aware PAS holds the 20% SLA on the E5-2620", abs(sla_with - 20.0) <= 1.5)
    report.check(
        "cf-blind PAS under-delivers V20's booked capacity",
        sla_without < sla_with - 1.0,
    )
    return report
