"""Experiment harness (subsystem S10).

One runner per table/figure of the paper's evaluation (§5), all built on the
shared §5.3 scenario (V20/V70 three-phase execution profile).  Benchmarks
under ``benchmarks/`` call these runners and print paper-vs-measured
reports; integration tests assert the shape criteria listed in DESIGN.md.
"""

from .scenario import (
    analysis_windows,
    build_scenario,
    effective_guests,
    guest_active_span,
    guest_window,
    GuestSpec,
    PHASE_BOTH,
    PHASE_SOLO_EARLY,
    PHASE_SOLO_LATE,
    ScenarioConfig,
    ScenarioResult,
    run_scenario,
    WorkloadSpec,
)
from .presets import get_preset, Preset, preset_config, preset_grid, PRESETS
from .report import Check, ExperimentReport
from .validation import (
    validate_credit_time,
    validate_frequency_load,
    validate_frequency_time,
)
from .compensation import CompensationPoint, run_compensation
from .figures import (
    run_fig2,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_fig8,
    run_fig9,
    run_fig10,
)
from .tables import run_table1, run_table2
from .energy import run_energy_ablation, run_cf_ablation
from .designs import run_design_comparison
from .qos import run_qos_ablation
from .consolidation import run_consolidation_ablation
from .sensitivity import run_pas_sensitivity

__all__ = [
    "ScenarioConfig",
    "ScenarioResult",
    "GuestSpec",
    "WorkloadSpec",
    "run_scenario",
    "build_scenario",
    "analysis_windows",
    "effective_guests",
    "guest_active_span",
    "guest_window",
    "PRESETS",
    "Preset",
    "get_preset",
    "preset_config",
    "preset_grid",
    "PHASE_SOLO_EARLY",
    "PHASE_BOTH",
    "PHASE_SOLO_LATE",
    "Check",
    "ExperimentReport",
    "validate_frequency_load",
    "validate_frequency_time",
    "validate_credit_time",
    "CompensationPoint",
    "run_compensation",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_table1",
    "run_table2",
    "run_energy_ablation",
    "run_cf_ablation",
    "run_design_comparison",
    "run_qos_ablation",
    "run_consolidation_ablation",
    "run_pas_sensitivity",
]
