"""Ablation D: what the SLA violation feels like — response times (ours).

The paper's introduction is about QoS, its evaluation about loads.  This
experiment closes the loop: run the §5.3 profile with *exact* V20 load and
latency tracking on, and report V20's client-visible response times and
drop rates under each scheduler.

Under credit + a DVFS governor, V20's 20 % absolute demand is served at
~12 % while the host idles at 1600 MHz, so its bounded request queue sits
full: every accepted request waits behind ~2 s of backlog served at an
eighth of real time — multi-second responses and a steady drop rate, even
though the VM never exceeded its booked load.  PAS serves the same demand
at the compensated credit: millisecond-scale responses, no drops.
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..sweep import run_sweep, SweepGrid
from .presets import preset_config
from .report import ExperimentReport


def run_qos_ablation(*, workers: int = 1, store=None, **overrides) -> ExperimentReport:
    """V20 response times under each scheduler (near-exact load, §5.3 profile).

    V20 runs at 90 % of its booked capacity — the standard operating point
    for latency measurement; at exactly 100 % any transient backlog
    persists forever and hides the steady-state difference.  A thin
    reduction over a four-variant sweep with the ``qos`` metric set.
    """
    report = ExperimentReport(
        experiment="Ablation D (QoS)",
        title="client-visible response times behind the same 20% SLA (90% loaded)",
    )
    base = preset_config("paper-5.3").with_changes(v20_load="near_exact")
    configs = {
        "credit + stable": base.with_changes(scheduler="credit", governor="stable"),
        "credit + performance": base.with_changes(
            scheduler="credit", governor="performance"
        ),
        "sedf + stable": base.with_changes(scheduler="sedf", governor="stable"),
        "pas": base.with_changes(scheduler="pas"),
    }
    grid = SweepGrid.from_variants(
        {label: config.with_changes(**overrides) for label, config in configs.items()}
    )
    results = run_sweep(grid, metrics=("qos",), workers=workers, store=store)
    stats: dict[str, tuple[float, float, float]] = {}
    for label in grid.axes["variant"]:
        p50 = results.metric(label, "v20_latency_p50_s")
        p99 = results.metric(label, "v20_latency_p99_s")
        drops = results.metric(label, "v20_drop_percent")
        if p50 is None or p99 is None:
            raise WorkloadError(
                f"cell {label!r}: V20 completed no requests — timeline too "
                "short to measure response times"
            )
        stats[label] = (p50, p99, drops)
        report.add_row(
            label,
            "p50 / p99 response (s), drops %",
            f"{p50:7.3f} / {p99:7.3f}, {drops:4.1f}%",
        )
    report.check(
        "credit + DVFS governor pushes p50 response beyond 5 seconds",
        stats["credit + stable"][0] > 5.0,
    )
    report.check(
        "credit + DVFS governor drops a substantial share of V20's requests",
        stats["credit + stable"][2] > 10.0,
    )
    report.check(
        "PAS keeps p50 response at injection granularity (< 0.2s)",
        stats["pas"][0] < 0.2,
    )
    report.check(
        "PAS p99 stays within the ladder transient (< 3s, vs ~17s for credit+stable)",
        stats["pas"][1] < 3.0,
    )
    report.check(
        "PAS drops (almost) nothing",
        stats["pas"][2] < 2.0,
    )
    report.check(
        "PAS matches the performance governor's QoS (p50 within 0.5s)",
        abs(stats["pas"][0] - stats["credit + performance"][0]) < 0.5,
    )
    report.check(
        "SEDF also rescues QoS under non-thrashing load (the Fig. 6-7 result)",
        stats["sedf + stable"][1] < 1.0,
    )
    return report
