"""Fig. 1: compensation of a frequency reduction with a credit allocation.

The paper executes pi-app at the maximum frequency (2667 MHz) with initial
credits 10, 20, ..., 100, then repeats at 2133 MHz with the credits computed
by Eq. 4 (13, 25, 38, 50, 63, 75, 88, 100, 113, 125 on the figure's top
axis).  If the compensation law holds, the two execution-time curves
coincide — except where the computed credit exceeds what a single processor
can give (beyond ~80 % initial credit at ratio 0.8), where compensation
saturates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import laws
from ..cpu import catalog
from ..cpu.processor import ProcessorSpec
from ..hypervisor.host import Host
from ..workloads import PiApp
from .report import ExperimentReport


@dataclass(frozen=True)
class CompensationPoint:
    """One initial credit with its times at both frequencies."""

    initial_credit: float
    compensated_credit: float
    time_at_max: float
    time_at_reduced: float

    @property
    def gap_percent(self) -> float:
        """Relative difference between the two execution times."""
        return 100.0 * abs(self.time_at_reduced - self.time_at_max) / self.time_at_max


def _run_pi(
    processor: ProcessorSpec, freq_mhz: int, credit_cap: float, work: float
) -> float:
    host = Host(processor=processor, scheduler="credit", governor="userspace")
    vm = host.create_domain("pi", credit=min(credit_cap, 100.0), cap=credit_cap)
    app = PiApp(work)
    vm.attach_workload(app)
    host.start()
    host.cpufreq.set_speed(freq_mhz)
    while not app.done and host.now < 20000.0:
        host.run(until=host.now + 100.0)
    return app.execution_time


def run_compensation(
    *,
    processor: ProcessorSpec = catalog.OPTIPLEX_755,
    reduced_freq_mhz: int = 2133,
    credits: tuple[float, ...] = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100),
    work: float = 30.0,
) -> tuple[list[CompensationPoint], ExperimentReport]:
    """Reproduce Fig. 1 on *processor* with the paper's credit ladder."""
    table = processor.table()
    max_freq = table.max_state.freq_mhz
    reduced = table.state_for(reduced_freq_mhz)
    ratio = reduced.freq_mhz / max_freq

    points: list[CompensationPoint] = []
    for credit in credits:
        new_credit = laws.compensated_credit(credit, ratio, reduced.cf)
        time_max = _run_pi(processor, max_freq, credit, work)
        time_reduced = _run_pi(processor, reduced.freq_mhz, new_credit, work)
        points.append(
            CompensationPoint(
                initial_credit=credit,
                compensated_credit=new_credit,
                time_at_max=time_max,
                time_at_reduced=time_reduced,
            )
        )

    report = ExperimentReport(
        experiment="Figure 1",
        title=f"compensation of frequency reduction ({max_freq} -> {reduced.freq_mhz} MHz)",
    )
    # The compensated credit saturates once it needs more than the whole
    # processor: beyond that the gap is expected (visible in the paper's
    # figure as the top-axis credits 113 and 125).
    for point in points:
        compensable = point.compensated_credit <= 100.0 + 1e-6
        report.add_row(
            f"credit {point.initial_credit:.0f}% -> {point.compensated_credit:.1f}%",
            f"T identical (Eq. 4)" if compensable else "saturated (credit > 100)",
            f"Tmax={point.time_at_max:.1f}s Tnew={point.time_at_reduced:.1f}s "
            f"(gap {point.gap_percent:.1f}%)",
        )
        if compensable:
            report.check(
                f"credit {point.initial_credit:.0f}%: compensated time within 5%",
                point.gap_percent < 5.0,
            )
        else:
            # Only `min(credit, 100)` can actually be delivered, so the run
            # at the reduced frequency must be `credit/100` times slower.
            expected_slowdown = point.compensated_credit / 100.0
            measured_slowdown = point.time_at_reduced / point.time_at_max
            report.check(
                f"credit {point.initial_credit:.0f}%: saturation slows by ~{expected_slowdown:.2f}x",
                abs(measured_slowdown - expected_slowdown) / expected_slowdown < 0.05,
            )
    return points, report
