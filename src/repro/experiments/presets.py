"""Named scenario presets: the scenario zoo behind ``--preset``.

A :class:`Preset` bundles a fully-specified :class:`ScenarioConfig` with
optional sweep ``axes`` (making it a named *grid*, not just a named config)
and the metric set that makes sense for its workloads.  The registry is the
one config language shared by the CLI (``python -m repro sweep --preset
<name>``, ``python -m repro run --preset <name>``), the experiment runners
and tests; every preset round-trips through
:meth:`ScenarioConfig.to_dict` / :meth:`ScenarioConfig.from_dict`.

Registry
--------

``paper-5.3``
    The paper's evaluation profile exactly as published: V20 (20 %) active
    over [50, 750), V70 (70 %) over [250, 550) on the Optiplex 755 —
    byte-identical to a default ``ScenarioConfig()``.  No axes.
``governors``
    The §5 evaluation plane on a compressed three-phase timeline:
    scheduler (credit, pas) x governor (performance, ondemand,
    conservative, stable) — 8 cells showing the SLA hole and its PAS fix
    under every DVFS policy.
``diurnal-web``
    Two guests replaying seeded diurnal utilisation traces (the
    hosting-center shape of the paper's motivation: base + day/night swing
    + noise + bursts), swept over three governors.
``pi-batch``
    Staggered fixed-work batch jobs (§5.1 pi-app) under performance vs
    stable, with ``stop_when_batch_done`` — the Table 2 execution-time
    pattern as a reusable scenario.
``mixed-guests``
    A web guest, a batch guest and a diurnal-trace guest sharing one host,
    swept over credit/sedf/pas — the consolidation case no single-workload
    scenario covers.
``stress-fleet``
    An 8-guest packing stress: small-credit web guests with staggered
    active windows, credit vs pas — the N-guest scalability check.
``qos-noisy-neighbor``
    One latency-critical web guest beside two best-effort
    ``noisy-neighbor`` batch guests on an overbooked host, swept over the
    QoS controller axis (``none`` / ``naive`` / ``ladder``) — the
    closed-loop control-plane demonstration (``docs/qos.md``).

Calibration presets (the paper's measurement micro-scenarios as named
grids, so ``run --preset all`` exercises every law the model rests on):

``calib-eq1``
    Eq. 1 proportionality: one uncapped pi batch on the Optiplex 755
    (``cf = 1``), pinned at each catalog frequency — execution time must
    scale as ``1/ratio``.
``calib-eq2``
    Eq. 2 correction factor: the same ladder on the i7-3770
    (``cf_min = 0.86``) — the memory-bound deviation from pure
    proportionality.
``calib-eq3``
    Eq. 3 capacity: a credit-cap ladder at the pinned maximum frequency —
    execution time must scale as ``100/cap``.
``calib-compensation``
    Eq. 4 / Fig. 1: the same ladder re-run at 2133 MHz with each cap
    replaced by its compensated value — times should coincide with
    ``calib-eq3`` until compensation saturates past 100 %.

Cluster presets (``kind: cluster`` — fleet specs for ``python -m repro
cluster run/sweep/compare``):

``dc-diurnal``
    The flagship datacenter scenario: 24 VMs mixing all five day shapes
    on 10 machines, swept over every orchestration policy, with a 200 W
    fleet budget for ``power-budget``.
``dc-diurnal-small``
    The same mix shrunk to 4 machines / 8 VMs on a short timeline — the
    CI smoke fleet.
``dc-fleet-medium`` / ``dc-fleet-large``
    Fleet-size scaling points (16 machines / 40 VMs and 32 machines /
    96 VMs) of the same day-shape mix.
``dc-hetero``
    The heterogeneous fleet: 2 i7 hosts beside 2 big.LITTLE 4+4 blades,
    swept over policy x placement preference (efficiency-packing vs
    performance-bursting) — the hardware-tier trade-off demonstration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..cluster import ClusterScenarioConfig
from ..cluster.machine import MachineSpec
from ..core import laws
from ..cpu import catalog
from ..errors import ConfigurationError
from .scenario import GuestSpec, ScenarioConfig, WorkloadSpec


@dataclass(frozen=True)
class Preset:
    """A named scenario (or scenario grid) with its preferred metrics."""

    name: str
    description: str
    config: ScenarioConfig | ClusterScenarioConfig
    #: Sweep axes (field name -> values); empty = a single-cell preset.
    axes: Mapping[str, tuple] = field(default_factory=dict)
    #: Metric-set names for :func:`repro.sweep.run_sweep` (None = defaults).
    metrics: tuple[str, ...] | None = None

    @property
    def cells(self) -> int:
        """Number of grid cells the preset expands to (before replicates)."""
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    @property
    def kind(self) -> str:
        """``"cluster"`` for fleet specs, ``"scenario"`` for single-host."""
        return (
            "cluster" if isinstance(self.config, ClusterScenarioConfig) else "scenario"
        )


def _paper_53() -> Preset:
    return Preset(
        name="paper-5.3",
        description="the paper's V20/V70 execution profile on the Optiplex 755",
        config=ScenarioConfig(),
    )


def _governors() -> Preset:
    return Preset(
        name="governors",
        description="scheduler x governor evaluation plane (compressed timeline)",
        config=ScenarioConfig(
            duration=200.0, v20_active=(20.0, 180.0), v70_active=(60.0, 140.0)
        ),
        axes={
            "scheduler": ("credit", "pas"),
            "governor": ("performance", "ondemand", "conservative", "stable"),
        },
    )


def _diurnal_web() -> Preset:
    guests = (
        GuestSpec(
            name="D40",
            credit=40.0,
            workloads=(
                WorkloadSpec(
                    kind="trace",
                    diurnal={
                        "base_percent": 22.0,
                        "swing_percent": 14.0,
                        "noise_percent": 3.0,
                        "burst_percent": 25.0,
                        "bursts": 2,
                        "day_length": 400.0,
                        "step": 5.0,
                    },
                ),
            ),
        ),
        GuestSpec(
            name="D30",
            credit=30.0,
            workloads=(
                WorkloadSpec(
                    kind="trace",
                    diurnal={
                        "base_percent": 15.0,
                        "swing_percent": 10.0,
                        "noise_percent": 2.0,
                        "burst_percent": 0.0,
                        "bursts": 0,
                        "day_length": 400.0,
                        "step": 5.0,
                    },
                ),
            ),
        ),
    )
    return Preset(
        name="diurnal-web",
        description="two guests replaying seeded diurnal hosting-center traces",
        config=ScenarioConfig(guests=guests, duration=400.0),
        axes={"governor": ("performance", "ondemand", "stable")},
        metrics=("guest_loads", "frequency", "energy"),
    )


def _pi_batch() -> Preset:
    guests = (
        GuestSpec(
            name="B25",
            credit=25.0,
            workloads=(WorkloadSpec(kind="pi", work=30.0),),
        ),
        GuestSpec(
            name="B45",
            credit=45.0,
            workloads=(WorkloadSpec(kind="pi", work=60.0, start_at=50.0),),
        ),
    )
    return Preset(
        name="pi-batch",
        description="staggered fixed-work batch jobs, run-to-completion",
        config=ScenarioConfig(
            guests=guests, duration=1500.0, stop_when_batch_done=True
        ),
        axes={"governor": ("performance", "stable")},
        metrics=("batch", "frequency", "energy"),
    )


def _mixed_guests() -> Preset:
    guests = (
        GuestSpec(
            name="W20",
            credit=20.0,
            workloads=(
                WorkloadSpec(kind="web", load="exact", active=((50.0, 350.0),)),
            ),
        ),
        GuestSpec(
            name="B30",
            credit=30.0,
            workloads=(WorkloadSpec(kind="pi", work=40.0, start_at=100.0),),
        ),
        GuestSpec(
            name="T25",
            credit=25.0,
            workloads=(
                WorkloadSpec(
                    kind="trace",
                    diurnal={
                        "base_percent": 12.0,
                        "swing_percent": 8.0,
                        "noise_percent": 2.0,
                        "burst_percent": 20.0,
                        "bursts": 1,
                        "day_length": 400.0,
                        "step": 5.0,
                    },
                ),
            ),
        ),
    )
    return Preset(
        name="mixed-guests",
        description="web + batch + diurnal-trace guests sharing one host",
        config=ScenarioConfig(guests=guests, duration=400.0),
        axes={"scheduler": ("credit", "sedf", "pas")},
        metrics=("guest_loads", "batch", "frequency", "energy"),
    )


def _stress_fleet() -> Preset:
    # Eight 10%-credit web guests with staggered on/off windows: together
    # with Dom0 they book 90% of the machine, but never all at once.
    guests = tuple(
        GuestSpec(
            name=f"S{index:02d}",
            credit=10.0,
            workloads=(
                WorkloadSpec(
                    kind="web",
                    load="exact",
                    active=((10.0 + 20.0 * index, 130.0 + 20.0 * index),),
                ),
            ),
        )
        for index in range(8)
    )
    return Preset(
        name="stress-fleet",
        description="8-guest staggered web fleet (N-guest scheduler stress)",
        config=ScenarioConfig(guests=guests, duration=300.0),
        axes={"scheduler": ("credit", "pas")},
        metrics=("guest_loads", "frequency", "energy"),
    )


def _qos_noisy_neighbor() -> Preset:
    # 30 + 35 + 35 + 10 (Dom0) books 110% of the machine: whenever the
    # neighbors' day shape peaks while the governor sits at a reduced
    # P-state, the LC guest's fixed cap starves its request queue — the
    # contention episode the controllers exist to catch.  The base config
    # runs the ladder; the `qos` axis compares it against none/naive.
    guests = (
        GuestSpec(
            name="web",
            credit=30.0,
            service_class="lc",
            workloads=(WorkloadSpec(kind="web", load="near_exact"),),
        ),
        GuestSpec(
            name="batch1",
            credit=35.0,
            workloads=(
                WorkloadSpec(kind="trace", dayshape="noisy-neighbor", repeat=True),
            ),
        ),
        GuestSpec(
            name="batch2",
            credit=35.0,
            workloads=(
                WorkloadSpec(kind="trace", dayshape="noisy-neighbor", repeat=True),
            ),
        ),
    )
    return Preset(
        name="qos-noisy-neighbor",
        description="LC web guest vs BE noisy neighbors under the QoS controllers",
        config=ScenarioConfig(
            guests=guests, duration=300.0, seed=20, qos="ladder"
        ),
        axes={"qos": ("none", "naive", "ladder")},
        metrics=("qos", "qos_control", "guest_loads", "energy"),
    )


# ----------------------------------------------------- calibration presets

#: The credit-cap ladder the Eq. 3 / Eq. 4 calibrations sweep.
_CALIB_CAPS = (20.0, 40.0, 60.0, 80.0)

#: The reduced frequency of the Fig. 1 compensation run (Optiplex 755).
_CALIB_REDUCED_MHZ = 2133


def _pi_guest(cap: float) -> tuple[GuestSpec, ...]:
    """One capped pi batch guest (the paper's measurement configuration)."""
    return (
        GuestSpec(
            name="pi",
            credit=min(cap, 100.0),
            cap=cap,
            workloads=(WorkloadSpec(kind="pi", work=20.0),),
        ),
    )


def _calib_config(**changes) -> ScenarioConfig:
    """Common calibration base: one pinned host, run-to-completion.

    ``governor="performance"`` always requests the maximum and the policy
    ceiling (``cpufreq_max_mhz``) clamps it, so each cell executes its
    whole batch at exactly one P-state — the paper's measurement setup.
    """
    base = ScenarioConfig(
        governor="performance",
        processor=catalog.OPTIPLEX_755,
        guests=_pi_guest(100.0),
        duration=4000.0,
        stop_when_batch_done=True,
        dom0_demand_percent=0.0,
        seed=3,
    )
    return base.with_changes(**changes)


def _calib_eq1() -> Preset:
    return Preset(
        name="calib-eq1",
        description="Eq. 1 proportionality: pi time vs pinned frequency (cf = 1)",
        config=_calib_config(),
        axes={
            "cpufreq_max_mhz": tuple(
                state.freq_mhz for state in catalog.OPTIPLEX_755.states
            )
        },
        metrics=("batch", "frequency", "energy"),
    )


def _calib_eq2() -> Preset:
    return Preset(
        name="calib-eq2",
        description="Eq. 2 correction factor: the frequency ladder on the i7-3770",
        config=_calib_config(processor=catalog.CORE_I7_3770),
        axes={
            "cpufreq_max_mhz": tuple(
                state.freq_mhz for state in catalog.CORE_I7_3770.states
            )
        },
        metrics=("batch", "frequency", "energy"),
    )


def _calib_eq3() -> Preset:
    return Preset(
        name="calib-eq3",
        description="Eq. 3 capacity: pi time vs credit cap at the max frequency",
        config=_calib_config(guests=_pi_guest(_CALIB_CAPS[0])),
        axes={"guests": tuple(_pi_guest(cap) for cap in _CALIB_CAPS)},
        metrics=("batch", "frequency", "energy"),
    )


def _calib_compensation() -> Preset:
    table = catalog.OPTIPLEX_755.table()
    reduced = table.state_for(_CALIB_REDUCED_MHZ)
    ratio = reduced.freq_mhz / table.max_state.freq_mhz
    compensated = tuple(
        laws.compensated_credit(cap, ratio, reduced.cf) for cap in _CALIB_CAPS
    )
    return Preset(
        name="calib-compensation",
        description="Eq. 4 / Fig. 1: the Eq. 3 ladder at 2133 MHz, caps compensated",
        config=_calib_config(
            guests=_pi_guest(compensated[0]),
            cpufreq_max_mhz=_CALIB_REDUCED_MHZ,
        ),
        axes={"guests": tuple(_pi_guest(cap) for cap in compensated)},
        metrics=("batch", "frequency", "energy"),
    )


# ------------------------------------------------------ datacenter presets

#: The heterogeneous day mix every datacenter preset deals across its VMs.
_DC_DAYSHAPES = (
    "diurnal-office",
    "flash-crowd",
    "batch-overnight",
    "noisy-neighbor",
    "weekend",
)

#: Policy axis shared by the datacenter presets (the orchestration registry).
_DC_POLICIES = ("static", "consolidate", "load-balance", "power-budget")


def _dc_config(**changes) -> ClusterScenarioConfig:
    """The common datacenter base: day-shape mix, CPU-bound packing.

    ``vm_memory_mb`` is small enough (8 VMs per 16 GB host) that *CPU
    demand*, not memory, binds the packing — the regime where orchestration
    policies actually differ.  ``dayshape_scale=0.45`` puts mean host
    demand in the paper's "below 30 %" hosting-center band.
    """
    base = ClusterScenarioConfig(
        policy="consolidate",
        duration=400.0,
        seed=11,
        vm_credit=30.0,
        vm_memory_mb=2048,
        epoch_s=10.0,
        day_length=400.0,
        trace_step=5.0,
        dayshapes=_DC_DAYSHAPES,
        dayshape_scale=0.45,
    )
    return base.with_changes(**changes)


def _dc_diurnal() -> Preset:
    return Preset(
        name="dc-diurnal",
        description="24-VM day-shape mix on 10 machines, all policies, 200W cap",
        config=_dc_config(n_machines=10, n_vms=24, power_budget_w=200.0),
        axes={"policy": _DC_POLICIES},
        metrics=("fleet", "cluster"),
    )


def _dc_diurnal_small() -> Preset:
    return Preset(
        name="dc-diurnal-small",
        description="CI smoke fleet: the day-shape mix on 4 machines / 8 VMs",
        config=_dc_config(
            n_machines=4,
            n_vms=8,
            duration=200.0,
            day_length=200.0,
            power_budget_w=80.0,
        ),
        axes={"policy": _DC_POLICIES},
        metrics=("fleet", "cluster"),
    )


def _dc_fleet_medium() -> Preset:
    return Preset(
        name="dc-fleet-medium",
        description="fleet-size point: 16 machines / 40 VMs, day-shape mix",
        config=_dc_config(
            n_machines=16, n_vms=40, duration=300.0, day_length=300.0,
            power_budget_w=330.0,
        ),
        axes={"policy": _DC_POLICIES},
        metrics=("fleet", "cluster"),
    )


def _dc_hetero() -> Preset:
    # Two reference i7 hosts next to two big.LITTLE blades: the blades
    # hold 90 % of an i7's capacity at half its full-load draw, so
    # efficiency-packing and performance-bursting genuinely disagree —
    # the placement axis measures the trade.
    machines = (
        MachineSpec(processor=catalog.CORE_I7_3770, memory_mb=16384, count=2),
        MachineSpec(processor=catalog.BIG_LITTLE_44, memory_mb=16384, count=2),
    )
    return Preset(
        name="dc-hetero",
        description="mixed fleet: 2 i7 + 2 big.LITTLE blades, policy x placement",
        config=_dc_config(
            machines=machines,
            n_vms=8,
            duration=200.0,
            day_length=200.0,
            power_budget_w=120.0,
        ),
        axes={
            "policy": ("static", "consolidate", "power-budget"),
            "placement": ("efficiency", "performance"),
        },
        metrics=("fleet", "cluster"),
    )


def _dc_fleet_large() -> Preset:
    return Preset(
        name="dc-fleet-large",
        description="fleet-size point: 32 machines / 96 VMs, day-shape mix",
        config=_dc_config(
            n_machines=32, n_vms=96, duration=200.0, day_length=200.0,
            power_budget_w=800.0,
        ),
        axes={"policy": _DC_POLICIES},
        metrics=("fleet", "cluster"),
    )


#: All presets, keyed by name, in documentation order.
PRESETS: dict[str, Preset] = {
    preset.name: preset
    for preset in (
        _paper_53(),
        _governors(),
        _diurnal_web(),
        _pi_batch(),
        _mixed_guests(),
        _stress_fleet(),
        _qos_noisy_neighbor(),
        _calib_eq1(),
        _calib_eq2(),
        _calib_eq3(),
        _calib_compensation(),
        _dc_diurnal(),
        _dc_diurnal_small(),
        _dc_fleet_medium(),
        _dc_fleet_large(),
        _dc_hetero(),
    )
}


def get_preset(name: str) -> Preset:
    """The preset called *name*; unknown names list the valid choices."""
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ConfigurationError(f"unknown preset {name!r}; presets: {known}") from None


def preset_config(name: str) -> ScenarioConfig:
    """The base config of preset *name* (shorthand for experiment runners)."""
    return get_preset(name).config


def preset_grid(
    name: str,
    *,
    overrides: Mapping[str, Any] | None = None,
    replicates: int = 1,
    vary_seed: bool = True,
):
    """A ready-to-run :class:`~repro.sweep.grid.SweepGrid` for preset *name*.

    Presets without axes become a single-variant grid (so the sweep CLI and
    runner treat every preset uniformly); *overrides* patch the base config
    first (unknown fields raise a :class:`ConfigurationError`).
    """
    from ..sweep import SweepGrid

    preset = get_preset(name)
    config = preset.config.with_changes(**(overrides or {}))
    if not preset.axes:
        return SweepGrid.from_variants({preset.name: config}, replicates=replicates)
    return SweepGrid(
        preset.axes, base=config, vary_seed=vary_seed, replicates=replicates
    )
