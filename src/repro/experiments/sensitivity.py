"""Ablation F: PAS parameter sensitivity (ours).

The paper fixes PAS's control-loop parameters implicitly (scheduler-tick
cadence, three-sample averaging).  This ablation sweeps the two that matter
— the utilisation sample period and the averaging window — and measures the
trade-off every DVFS control loop lives on:

* **reactivity**: how long after V70's activation does the frequency reach
  the maximum (during which V20 is transiently shorted under saturation);
* **stability**: DVFS transitions over the run;
* **accuracy**: V20's steady-state SLA error.

The shape: averaging windows slow reaction roughly linearly (window x
sample period) while steady-state accuracy stays flat — the paper's choice
(1 s x 3) reacts within seconds and is already transition-minimal; a
window of 1 reacts fastest but tracks sampling noise.
"""

from __future__ import annotations

from .report import ExperimentReport
from .scenario import analysis_windows, ScenarioConfig, run_scenario


def _reaction_time(result, activation: float) -> float:
    """Seconds from *activation* until the frequency first hits the max."""
    freq = result.series("host.freq_mhz", smooth=False)
    maximum = result.host.processor.max_frequency_mhz
    for t, value in freq:
        if t >= activation and value == maximum:
            return t - activation
    return float("inf")


def run_pas_sensitivity(**overrides) -> ExperimentReport:
    """Sweep PAS's sample period and averaging window on the §5.3 profile."""
    report = ExperimentReport(
        experiment="Ablation F (PAS sensitivity)",
        title="sample period x averaging window: reactivity vs stability vs accuracy",
    )
    sweeps = [
        (0.5, 1),
        (0.5, 3),
        (1.0, 1),
        (1.0, 3),  # the paper's configuration
        (1.0, 5),
        (2.0, 3),
    ]
    results: dict[tuple[float, int], tuple[float, int, float]] = {}
    for sample_period, window in sweeps:
        config = ScenarioConfig(
            scheduler="pas",
            v20_load="thrashing",
            scheduler_kwargs={"sample_period": sample_period, "window": window},
        ).with_changes(**overrides)
        result = run_scenario(config)
        solo, both, late = analysis_windows(config)
        reaction = _reaction_time(result, config.v70_active[0])
        transitions = result.frequency_transitions
        sla_error = max(
            abs(result.phase_mean("V20.absolute_load", phase) - 20.0)
            for phase in (solo, both, late)
        )
        results[(sample_period, window)] = (reaction, transitions, sla_error)
        marker = "  <- paper" if (sample_period, window) == (1.0, 3) else ""
        report.add_row(
            f"period {sample_period}s x window {window}{marker}",
            "reaction s / transitions / SLA err pp",
            f"{reaction:6.1f} / {transitions:3d} / {sla_error:.2f}",
        )

    paper = results[(1.0, 3)]
    fastest = results[(0.5, 1)]
    slowest = results[(2.0, 3)]
    report.check(
        "every configuration holds the steady-state SLA within 2pp",
        all(sla < 2.0 for _, _, sla in results.values()),
    )
    report.check(
        "shorter period + smaller window reacts fastest",
        fastest[0] <= min(r[0] for r in results.values()) + 1e-9,
    )
    report.check(
        "longer averaging reacts slower (2.0s x 3 vs 0.5s x 1)",
        slowest[0] > fastest[0],
    )
    report.check(
        "the paper's 1s x 3 reaches max frequency within 20s of activation",
        paper[0] < 20.0,
    )
    report.check(
        "no configuration is transition-unstable (< 50 transitions per run)",
        all(transitions < 50 for _, transitions, _ in results.values()),
    )
    return report
