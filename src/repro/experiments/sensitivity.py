"""Ablation F: PAS parameter sensitivity (ours).

The paper fixes PAS's control-loop parameters implicitly (scheduler-tick
cadence, three-sample averaging).  This ablation sweeps the two that matter
— the utilisation sample period and the averaging window — and measures the
trade-off every DVFS control loop lives on:

* **reactivity**: how long after V70's activation does the frequency reach
  the maximum (during which V20 is transiently shorted under saturation);
* **stability**: DVFS transitions over the run;
* **accuracy**: V20's steady-state SLA error.

The shape: averaging windows slow reaction roughly linearly (window x
sample period) while steady-state accuracy stays flat — the paper's choice
(1 s x 3) reacts within seconds and is already transition-minimal; a
window of 1 reacts fastest but tracks sampling noise.
"""

from __future__ import annotations

from ..errors import TelemetryError
from ..sweep import run_sweep, SweepGrid
from .presets import preset_config
from .report import ExperimentReport


def _required(results, label: str, name: str) -> float:
    """A metric that must have samples; None means the window was empty."""
    value = results.metric(label, name)
    if value is None:
        raise TelemetryError(
            f"cell {label!r} has no samples for {name!r} — is the timeline too "
            "short for the analysis windows?"
        )
    return value


def run_pas_sensitivity(*, workers: int = 1, store=None, **overrides) -> ExperimentReport:
    """Sweep PAS's sample period and averaging window on the §5.3 profile.

    A thin reduction over a six-variant sweep with the ``loads``,
    ``frequency`` and ``reaction`` metric sets.
    """
    report = ExperimentReport(
        experiment="Ablation F (PAS sensitivity)",
        title="sample period x averaging window: reactivity vs stability vs accuracy",
    )
    sweeps = [
        (0.5, 1),
        (0.5, 3),
        (1.0, 1),
        (1.0, 3),  # the paper's configuration
        (1.0, 5),
        (2.0, 3),
    ]
    base = preset_config("paper-5.3").with_changes(scheduler="pas", v20_load="thrashing")
    grid = SweepGrid.from_variants(
        {
            f"{sample_period}x{window}": base.with_changes(
                scheduler_kwargs={"sample_period": sample_period, "window": window},
            ).with_changes(**overrides)
            for sample_period, window in sweeps
        }
    )
    sweep_results = run_sweep(grid, metrics=("loads", "frequency", "reaction"), workers=workers, store=store)
    results: dict[tuple[float, int], tuple[float, int, float]] = {}
    for sample_period, window in sweeps:
        label = f"{sample_period}x{window}"
        reaction = sweep_results.metric(label, "freq_reaction_s")
        reaction = float("inf") if reaction is None else reaction
        transitions = sweep_results.metric(label, "dvfs_transitions")
        sla_error = max(
            abs(_required(sweep_results, label, f"v20_absolute_{phase}") - 20.0)
            for phase in ("solo_early", "both", "solo_late")
        )
        results[(sample_period, window)] = (reaction, transitions, sla_error)
        marker = "  <- paper" if (sample_period, window) == (1.0, 3) else ""
        report.add_row(
            f"period {sample_period}s x window {window}{marker}",
            "reaction s / transitions / SLA err pp",
            f"{reaction:6.1f} / {transitions:3d} / {sla_error:.2f}",
        )

    paper = results[(1.0, 3)]
    fastest = results[(0.5, 1)]
    slowest = results[(2.0, 3)]
    report.check(
        "every configuration holds the steady-state SLA within 2pp",
        all(sla < 2.0 for _, _, sla in results.values()),
    )
    report.check(
        "shorter period + smaller window reacts fastest",
        fastest[0] <= min(r[0] for r in results.values()) + 1e-9,
    )
    report.check(
        "longer averaging reacts slower (2.0s x 3 vs 0.5s x 1)",
        slowest[0] > fastest[0],
    )
    report.check(
        "the paper's 1s x 3 reaches max frequency within 20s of activation",
        paper[0] < 20.0,
    )
    report.check(
        "no configuration is transition-unstable (< 50 transitions per run)",
        all(transitions < 50 for _, transitions, _ in results.values()),
    )
    return report
