"""Executing a grid: serial, or fanned out over a persistent worker pool.

The contract is *bit-identical results regardless of worker count*: each
cell is an isolated deterministic simulation (its own engine, its own
seeded RNG streams), results carry their grid index so completion order
never matters, and nothing time- or pid-dependent enters a
:class:`CellResult`.  ``workers=1`` runs everything in-process — the
reference the parallel path is tested against.

Two scaling layers ride on that contract:

* **persistent fan-out** — parallel cells go through :class:`WorkerPool`,
  a process-wide pool reused across sweeps (one fork per pool size per
  process lifetime, not one per sweep), consumed as an ``imap``-style
  completion stream;
* **content-addressed persistence** — with a ``store``
  (:class:`~repro.store.ExperimentStore`), every finished cell is written
  to disk *as it completes*, and re-runs skip cells whose
  :func:`~repro.store.cell_key` is already present (``resume=True``, the
  default) — so an interrupted 1000-cell grid resumes where it died, and
  repeated figure builds are warm-cache.
"""

from __future__ import annotations

import atexit
import multiprocessing
import multiprocessing.pool
import pathlib
from typing import Any, Callable, ClassVar, Iterator, Sequence

from ..errors import ConfigurationError
from ..obs import hooks as _obs
from ..obs.metrics import collect_sweep
from ..store import cell_key, config_payload, ExperimentStore, metric_names
from .grid import describe_value, SweepCell, SweepGrid
from .metrics import (
    DEFAULT_CLUSTER_METRICS,
    DEFAULT_SCENARIO_METRICS,
    reduce_outcome,
    resolve_metrics,
)
from .store import CellResult, SweepResults


def execute_config(config: Any):
    """Run one cell's config to completion and return the raw outcome.

    Dispatches on config type: :class:`ScenarioConfig` runs the §5.3
    single-host scenario, :class:`ClusterScenarioConfig` the fleet model.
    Imports are deferred so this module can be loaded before the
    experiments package finishes initialising (they import each other).
    """
    from ..cluster.scenario import ClusterScenarioConfig, run_cluster_scenario
    from ..experiments.scenario import ScenarioConfig, run_scenario

    if isinstance(config, ScenarioConfig):
        return run_scenario(config)
    if isinstance(config, ClusterScenarioConfig):
        return run_cluster_scenario(config)
    raise ConfigurationError(
        f"no executor for config type {type(config).__name__}"
    )


def default_metrics_for(config: Any) -> tuple[str, ...]:
    """The default metric set for a cell's config type."""
    from ..cluster.scenario import ClusterScenarioConfig

    if isinstance(config, ClusterScenarioConfig):
        return DEFAULT_CLUSTER_METRICS
    return DEFAULT_SCENARIO_METRICS


def _execute_cell(task: tuple[SweepCell, Sequence[str | Callable]]) -> CellResult:
    cell, metrics = task
    outcome = execute_config(cell.config)
    return CellResult(
        index=cell.index,
        label=cell.label,
        params={k: describe_value(v) for k, v in cell.params.items()},
        seed=cell.seed,
        metrics=reduce_outcome(outcome, metrics),
    )


class WorkerPool:
    """Process-wide persistent worker pools, one per size, reused forever.

    ``Pool.map`` per sweep paid a full interpreter fork (plus catalog and
    module imports under ``spawn``) for every grid; experiments that chain
    several sweeps paid it several times.  This registry forks each pool
    once and hands the same one to every subsequent sweep of that size —
    with the POSIX ``fork`` context the children share the parent's
    read-only pages (processor catalog, code) for free.  Pools are torn
    down atexit; :meth:`shutdown` exists for tests and long-lived hosts.
    """

    _pools: ClassVar[dict[int, multiprocessing.pool.Pool]] = {}

    @classmethod
    def get(cls, workers: int) -> multiprocessing.pool.Pool:
        """The persistent pool of *workers* processes (created on first use)."""
        pool = cls._pools.get(workers)
        if pool is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = multiprocessing.get_context("spawn")
            pool = context.Pool(workers)
            cls._pools[workers] = pool
        return pool

    @classmethod
    def discard(cls, workers: int) -> None:
        """Terminate and forget the pool of *workers* (recreated on next use).

        Called when a sweep aborts mid-stream: tasks already queued would
        otherwise keep burning CPU into a dead iterator and contend with
        the next sweep for workers.
        """
        pool = cls._pools.pop(workers, None)
        if pool is not None:
            pool.terminate()
            pool.join()

    @classmethod
    def shutdown(cls) -> None:
        """Terminate and forget every pool (idempotent)."""
        for workers in list(cls._pools):
            cls.discard(workers)


atexit.register(WorkerPool.shutdown)


class SweepRunner:
    """Run every cell of a grid and collect a :class:`SweepResults`.

    Parameters
    ----------
    grid:
        The :class:`~repro.sweep.grid.SweepGrid` to execute.
    metrics:
        Metric names (keys of :data:`repro.sweep.metrics.METRICS`) and/or
        module-level callables; defaults to the grid kind's standard set.
        With a *store*, metrics must all be names — the metric list is part
        of each cell's content address.
    workers:
        Pool size.  ``1`` (default) runs in-process; anything above fans
        cells out over the persistent :class:`WorkerPool` of that size,
        consuming completions as they stream in.
    store:
        An :class:`~repro.store.ExperimentStore` (or a path, which opens
        one).  Finished cells are persisted as they complete; damaged or
        version-skewed entries read as misses and are recomputed.
    resume:
        With a store, ``True`` (default) serves already-stored cells from
        disk and computes only the missing ones; ``False`` recomputes every
        cell and overwrites (the CLI's ``--force``).
    progress:
        Optional ``callback(result, from_cache)`` invoked once per finished
        cell, in completion order (cache hits first, then computed cells as
        they stream in).  Purely observational — the CLI's verbosity layer
        hangs off this; results and exports are byte-identical with or
        without it.

    After :meth:`run`, ``cache_hits`` and ``computed`` report how many
    cells came from the store versus fresh simulation.
    """

    def __init__(
        self,
        grid: SweepGrid,
        *,
        metrics: Sequence[str | Callable] | None = None,
        workers: int = 1,
        store: ExperimentStore | str | pathlib.Path | None = None,
        resume: bool = True,
        progress: Callable[[CellResult, bool], None] | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.grid = grid
        self.metrics = (
            tuple(metrics) if metrics is not None else default_metrics_for(grid.base)
        )
        self.workers = workers
        if store is not None and not isinstance(store, ExperimentStore):
            store = ExperimentStore(store)
        self.store = store
        self.resume = resume
        self.progress = progress
        self.cache_hits = 0
        self.computed = 0
        # Resolve names in the *parent*: unknown metrics fail before any
        # simulation, and workers receive callables rather than consulting
        # their (forked, possibly stale) METRICS registry.
        self._resolved = resolve_metrics(self.metrics)
        if self.store is not None:
            # Callables have no stable identity to hash into a content
            # address, so stored sweeps must name their metrics.
            self._metric_names = metric_names(self.metrics)
        else:
            self._metric_names = None

    def _stream(
        self, tasks: Sequence[tuple[SweepCell, Sequence[Callable]]]
    ) -> Iterator[CellResult]:
        """Yield results as cells finish (any order; results carry indices)."""
        if self.workers == 1 or len(tasks) <= 1:
            for task in tasks:
                yield _execute_cell(task)
            return
        pool = WorkerPool.get(self.workers)
        try:
            yield from pool.imap_unordered(_execute_cell, tasks, chunksize=1)
        except BaseException:
            # A cell raised (or the consumer was killed): queued tasks would
            # keep running into a dead iterator — tear the pool down.
            WorkerPool.discard(self.workers)
            raise

    def run(self) -> SweepResults:
        """Execute (or recall) all cells; results come back in grid order."""
        self.cache_hits = 0
        self.computed = 0
        done: dict[int, CellResult] = {}
        pending: list[SweepCell] = []
        keys: dict[int, str] = {}
        for cell in self.grid:
            if self.store is None:
                pending.append(cell)
                continue
            keys[cell.index] = cell_key(cell.config, self._metric_names, cell.seed)
            payload = self.store.lookup(keys[cell.index]) if self.resume else None
            if payload is not None:
                # Label/params/seed come from the *grid* (the cache is keyed
                # by content, not by what some earlier grid called the cell),
                # so exports stay byte-identical to a cold run.
                done[cell.index] = CellResult(
                    index=cell.index,
                    label=cell.label,
                    params={k: describe_value(v) for k, v in cell.params.items()},
                    seed=cell.seed,
                    metrics=payload["metrics"],
                )
                self.cache_hits += 1
                if self.progress is not None:
                    self.progress(done[cell.index], True)
            else:
                pending.append(cell)
        by_index = {cell.index: cell for cell in pending}
        for result in self._stream([(cell, self._resolved) for cell in pending]):
            # Stream into the store cell by cell: an interrupted sweep keeps
            # everything finished so far, not just complete runs.
            if self.store is not None:
                cell = by_index[result.index]
                self.store.put(
                    keys[result.index],
                    config_payload=config_payload(cell.config),
                    label=result.label,
                    params=result.params,
                    seed=result.seed,
                    metrics_list=self._metric_names,
                    metrics=result.metrics,
                )
            done[result.index] = result
            self.computed += 1
            if self.progress is not None:
                self.progress(result, False)
        cells = [done[cell.index] for cell in self.grid]
        metrics_registry = _obs.METRICS
        if metrics_registry is not None:
            collect_sweep(metrics_registry, self)
        meta = self.grid.spec()
        meta["metrics"] = [
            m if isinstance(m, str) else getattr(m, "__name__", str(m))
            for m in self.metrics
        ]
        # Deliberately no worker count, cache statistics, timestamps or host
        # details in meta: the exported bytes must not depend on how (or how
        # warm) the sweep was executed.
        return SweepResults(cells, meta=meta)


def run_sweep(
    grid: SweepGrid,
    *,
    metrics: Sequence[str | Callable] | None = None,
    workers: int = 1,
    store: ExperimentStore | str | pathlib.Path | None = None,
    resume: bool = True,
    progress: Callable[[CellResult, bool], None] | None = None,
) -> SweepResults:
    """One-call façade over :class:`SweepRunner`."""
    return SweepRunner(
        grid,
        metrics=metrics,
        workers=workers,
        store=store,
        resume=resume,
        progress=progress,
    ).run()


def run_cells(grid: SweepGrid) -> dict[str, Any]:
    """Run a grid serially, keeping each cell's *full* outcome by label.

    For reductions that need the raw :class:`ScenarioResult` /
    :class:`ClusterSim` (series for charts, packed-host introspection)
    rather than flat metrics.  Serial only, and never store-cached: full
    outcomes carry live engine state and are not worth shipping across
    process or disk boundaries.
    """
    return {cell.label: execute_config(cell.config) for cell in grid}
