"""Executing a grid: serial, or fanned out over a process pool.

The contract is *bit-identical results regardless of worker count*: each
cell is an isolated deterministic simulation (its own engine, its own
seeded RNG streams), cells are mapped in grid order with ``Pool.map`` (which
preserves ordering), and nothing time- or pid-dependent enters a
:class:`CellResult`.  ``workers=1`` runs everything in-process — the
reference the parallel path is tested against.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
from typing import Any, Callable, Mapping, Sequence

from ..errors import ConfigurationError
from .grid import describe_value, SweepCell, SweepGrid
from .metrics import (
    DEFAULT_CLUSTER_METRICS,
    DEFAULT_SCENARIO_METRICS,
    reduce_outcome,
)
from .store import CellResult, SweepResults


def execute_config(config: Any):
    """Run one cell's config to completion and return the raw outcome.

    Dispatches on config type: :class:`ScenarioConfig` runs the §5.3
    single-host scenario, :class:`ClusterScenarioConfig` the fleet model.
    Imports are deferred so this module can be loaded before the
    experiments package finishes initialising (they import each other).
    """
    from ..cluster.scenario import ClusterScenarioConfig, run_cluster_scenario
    from ..experiments.scenario import ScenarioConfig, run_scenario

    if isinstance(config, ScenarioConfig):
        return run_scenario(config)
    if isinstance(config, ClusterScenarioConfig):
        return run_cluster_scenario(config)
    raise ConfigurationError(
        f"no executor for config type {type(config).__name__}"
    )


def default_metrics_for(config: Any) -> tuple[str, ...]:
    """The default metric set for a cell's config type."""
    from ..cluster.scenario import ClusterScenarioConfig

    if isinstance(config, ClusterScenarioConfig):
        return DEFAULT_CLUSTER_METRICS
    return DEFAULT_SCENARIO_METRICS


def _execute_cell(task: tuple[SweepCell, Sequence[str | Callable]]) -> CellResult:
    cell, metrics = task
    outcome = execute_config(cell.config)
    return CellResult(
        index=cell.index,
        label=cell.label,
        params={k: describe_value(v) for k, v in cell.params.items()},
        seed=cell.seed,
        metrics=reduce_outcome(outcome, metrics),
    )


class SweepRunner:
    """Run every cell of a grid and collect a :class:`SweepResults`.

    Parameters
    ----------
    grid:
        The :class:`~repro.sweep.grid.SweepGrid` to execute.
    metrics:
        Metric names (keys of :data:`repro.sweep.metrics.METRICS`) and/or
        module-level callables; defaults to the grid kind's standard set.
    workers:
        Process-pool size.  ``1`` (default) runs in-process; anything above
        fans cells out with ``multiprocessing.Pool.map`` (order-preserving,
        chunksize 1 so cells spread evenly).
    """

    def __init__(
        self,
        grid: SweepGrid,
        *,
        metrics: Sequence[str | Callable] | None = None,
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.grid = grid
        self.metrics = (
            tuple(metrics) if metrics is not None else default_metrics_for(grid.base)
        )
        self.workers = workers

    def run(self) -> SweepResults:
        """Execute all cells; results come back in grid order."""
        tasks = [(cell, self.metrics) for cell in self.grid]
        if self.workers == 1 or len(tasks) <= 1:
            cells = [_execute_cell(task) for task in tasks]
        else:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                context = multiprocessing.get_context("spawn")
            with context.Pool(min(self.workers, len(tasks))) as pool:
                cells = pool.map(_execute_cell, tasks, chunksize=1)
        meta = self.grid.spec()
        meta["metrics"] = [
            m if isinstance(m, str) else getattr(m, "__name__", str(m))
            for m in self.metrics
        ]
        # Deliberately no worker count, timestamps or host details in meta:
        # the exported bytes must not depend on how the sweep was executed.
        return SweepResults(cells, meta=meta)


def run_sweep(
    grid: SweepGrid,
    *,
    metrics: Sequence[str | Callable] | None = None,
    workers: int = 1,
) -> SweepResults:
    """One-call façade over :class:`SweepRunner`."""
    return SweepRunner(grid, metrics=metrics, workers=workers).run()


def run_cells(grid: SweepGrid) -> dict[str, Any]:
    """Run a grid serially, keeping each cell's *full* outcome by label.

    For reductions that need the raw :class:`ScenarioResult` /
    :class:`ClusterSim` (series for charts, packed-host introspection)
    rather than flat metrics.  Serial only: full outcomes carry live engine
    state and are not worth shipping across process boundaries.
    """
    return {cell.label: execute_config(cell.config) for cell in grid}
