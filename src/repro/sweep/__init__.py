"""Parameter sweeps (subsystem S11): grids of scenarios, run in parallel.

The paper's whole evaluation (§5, Figs. 2-10, Tables 1-2) is a grid —
scheduler x governor x load intensity x platform.  This package makes that
grid a first-class object: declare axes over a config dataclass, fan the
cells out over a process pool, and get back an ordered, exportable results
store.  The figure/table/ablation runners in :mod:`repro.experiments` are
thin reductions over these pieces.

Grid spec format
----------------

A grid is ``axes + base``.  *Axes* is a mapping from a config field name to
the list of values to sweep; the Cartesian product of the axes (last axis
fastest, like nested loops) gives the cells.  *Base* is the config every
cell is derived from — a :class:`~repro.experiments.scenario.ScenarioConfig`
(single-host §5.3 scenario, the default) or a
:class:`~repro.cluster.scenario.ClusterScenarioConfig` (fleet model)::

    from repro.experiments import ScenarioConfig
    from repro.sweep import SweepGrid, run_sweep

    grid = SweepGrid(
        {
            "scheduler": ["credit", "sedf", "pas"],
            "governor": ["performance", "stable"],
            "v20_load": ["exact", "thrashing"],
        },
        base=ScenarioConfig(duration=800.0, seed=1),
        vary_seed=True,     # deterministic per-cell seeds
    )
    results = run_sweep(grid, workers=4)
    results.save("results.json")                 # or .csv
    results.aggregate("energy_joules", by="scheduler")

Axes are not limited to scalars: any spec field works, including whole
guest fleets (``guests`` values may be lists of ``GuestSpec`` objects or
their JSON dict form — the base config's ``coerce_field`` hook converts
them), and ``replicates=N`` expands every cell into N seed-derived
replicate cells whose spread :meth:`SweepResults.aggregate` reduces to
``std``/``ci95`` columns.

The same spec works as a plain JSON dict on the command line (list values
for tuple fields such as ``v20_active`` are coerced), and named preset
grids from :mod:`repro.experiments.presets` ride the same runner::

    python -m repro sweep --workers 4 --out results.json
    python -m repro sweep --preset governors --replicates 3
    python -m repro sweep --list-presets
    python -m repro sweep --schedulers credit,pas --governors stable \\
        --v20-loads exact,thrashing --duration 400 --out results.csv
    python -m repro sweep --grid '{"scheduler": ["credit", "pas"],
        "v20_load": ["exact", "thrashing"], "duration": [400.0]}'

Experiments whose cells are hand-picked rather than a product use
``SweepGrid.from_variants({"label": config, ...})``.

Persistence and resume
----------------------

Passing ``store=`` (an :class:`~repro.store.ExperimentStore` or a path)
makes the runner stream every finished cell to disk *as it completes* and,
on re-run, skip cells whose content address is already present::

    results = run_sweep(grid, workers=8, store="results-store")   # cold
    results = run_sweep(grid, workers=8, store="results-store")   # all warm

    python -m repro sweep --preset stress-fleet --store results-store
    python -m repro sweep --preset stress-fleet --store results-store --resume
    python -m repro store ls --store results-store

Parallel cells run on a *persistent* per-process worker pool
(:class:`~repro.sweep.runner.WorkerPool`): one fork per pool size per
process lifetime, shared by every subsequent sweep, consumed as an
``imap``-style completion stream.  Replicated sweeps additionally export a
per-logical-cell aggregate (:meth:`SweepResults.export_aggregated`,
``sweep --out-aggregated``) with mean/std/ci95 columns per metric.

Determinism contract
--------------------

Cell order is fixed by the grid; per-cell seeds are derived with a
process-independent CRC (:func:`~repro.sweep.grid.derive_cell_seed`); each
cell simulates in isolation; exports are canonical (sorted JSON keys, no
execution metadata).  Consequently ``workers=N`` output is byte-identical
to ``workers=1`` output for the same grid — tested, and relied on by every
"more scenarios, faster" follow-up.
"""

from .grid import derive_cell_seed, describe_value, SweepCell, SweepGrid
from .metrics import (
    DEFAULT_CLUSTER_METRICS,
    DEFAULT_SCENARIO_METRICS,
    METRICS,
    reduce_outcome,
)
from .runner import run_cells, run_sweep, SweepRunner, WorkerPool
from .store import CellResult, SweepResults

__all__ = [
    "SweepGrid",
    "SweepCell",
    "derive_cell_seed",
    "describe_value",
    "SweepRunner",
    "WorkerPool",
    "run_sweep",
    "run_cells",
    "SweepResults",
    "CellResult",
    "METRICS",
    "DEFAULT_SCENARIO_METRICS",
    "DEFAULT_CLUSTER_METRICS",
    "reduce_outcome",
]
