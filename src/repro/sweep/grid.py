"""Declarative parameter grids over scenario and cluster configs.

A :class:`SweepGrid` enumerates *cells*: one config (plus a stable label and
a deterministic seed) per point of a Cartesian product of axes, or per entry
of an explicit variant mapping.  Cells are plain frozen data, picklable, and
ordered — the same grid always expands to the same cells in the same order,
which is what lets the runner promise bit-identical serial/parallel results.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import zlib
from typing import Any, Iterator, Mapping, Sequence

from ..errors import ConfigurationError


def derive_cell_seed(root_seed: int, label: str) -> int:
    """A deterministic, process-independent seed for the cell *label*.

    CRC32 of ``"<root>|<label>"`` — stable across Python versions and
    processes (unlike ``hash()``, which is salted per interpreter).
    """
    return zlib.crc32(f"{root_seed}|{label}".encode("utf-8")) & 0x7FFFFFFF


def describe_value(value: Any) -> Any:
    """A JSON-able, deterministic description of an axis value.

    Spec dataclasses (``GuestSpec``/``WorkloadSpec``/configs) that expose a
    ``describe()`` method are reduced to that compact label; other
    dataclasses fall back to their ``name`` attribute or ``str``.  Tuples
    and mappings are described recursively, so an axis of guest fleets
    yields a list of short guest labels rather than nested reprs.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        describe = getattr(value, "describe", None)
        if callable(describe):
            return describe()
        name = getattr(value, "name", None)
        return name if name is not None else str(value)
    if isinstance(value, Mapping):
        return {key: describe_value(item) for key, item in value.items()}
    if isinstance(value, (tuple, list)):
        return [describe_value(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _format_value(value: Any) -> str:
    described = describe_value(value)
    if isinstance(described, list) and described and all(
        isinstance(item, str) for item in described
    ):
        return "+".join(described)  # e.g. guests=V20(20%:web:exact)+V70(...)
    if isinstance(described, (dict, list)):
        return json.dumps(described, sort_keys=True, separators=(",", ":"))
    return str(described)


@dataclasses.dataclass(frozen=True)
class SweepCell:
    """One point of a grid: a label, its parameters, and the built config."""

    index: int
    label: str
    params: Mapping[str, Any]
    config: Any
    seed: int | None = None


class SweepGrid:
    """A declarative grid of configs.

    Parameters
    ----------
    axes:
        Mapping of config field name to the sequence of values to sweep.
        Axis order (mapping insertion order) fixes the cell order: the last
        axis varies fastest, like nested loops.  Every key must be a field
        of the base config's dataclass.  List values for tuple-typed fields
        (e.g. ``v20_active``) are coerced to tuples, so grids can come
        straight from JSON.
    base:
        The config every cell is derived from via ``dataclasses.replace``.
        Defaults to a fresh :class:`~repro.experiments.scenario.ScenarioConfig`.
    vary_seed:
        When True and ``seed`` is not itself an axis, each cell's config
        gets a deterministic per-cell seed derived from the base seed and
        the cell label (:func:`derive_cell_seed`).  When False every cell
        keeps the base seed, so single-config experiments stay bit-equal to
        their pre-sweep form.
    replicates:
        Statistical replication: every cell expands into N cells labelled
        ``...,rep=<k>``, each with a seed derived from the base seed and
        the replicate label — so replicate runs differ only in their random
        streams and :meth:`SweepResults.aggregate` can attach confidence
        intervals.  ``1`` (default) changes nothing.
    """

    def __init__(
        self,
        axes: Mapping[str, Sequence[Any]],
        *,
        base: Any = None,
        vary_seed: bool = False,
        replicates: int = 1,
    ) -> None:
        if base is None:
            from ..experiments.scenario import ScenarioConfig

            base = ScenarioConfig()
        if not dataclasses.is_dataclass(base):
            raise ConfigurationError(
                f"grid base must be a config dataclass, got {type(base).__name__}"
            )
        if replicates < 1:
            raise ConfigurationError(f"replicates must be >= 1, got {replicates}")
        if replicates > 1 and "seed" in axes:
            raise ConfigurationError(
                "an explicit 'seed' axis cannot be combined with replicates > 1: "
                "replicates derive their own per-replicate seeds"
            )
        field_types = {f.name: f.type for f in dataclasses.fields(base)}
        self.base = base
        self.vary_seed = vary_seed
        self.replicates = replicates
        coerce = getattr(base, "coerce_field", None)
        self.axes: dict[str, tuple[Any, ...]] = {}
        for name, values in axes.items():
            if name not in field_types:
                known = ", ".join(sorted(field_types))
                raise ConfigurationError(
                    f"unknown sweep axis {name!r} for {type(base).__name__}; "
                    f"fields: {known}"
                )
            values = tuple(values)
            if not values:
                raise ConfigurationError(f"sweep axis {name!r} has no values")
            if callable(coerce):
                values = tuple(coerce(name, v) for v in values)
            else:
                current = getattr(base, name)
                if isinstance(current, tuple):
                    values = tuple(
                        tuple(v) if isinstance(v, list) else v for v in values
                    )
            self.axes[name] = values
        self._cells = self._expand()

    @classmethod
    def from_variants(
        cls, variants: Mapping[str, Any], *, replicates: int = 1
    ) -> "SweepGrid":
        """A grid of explicitly named configs (no Cartesian product).

        Used by experiments whose cells are hand-picked combinations rather
        than a full product; cell seeds are whatever each config carries.
        ``replicates`` expands every variant as in the main constructor.
        """
        if not variants:
            raise ConfigurationError("from_variants needs at least one config")
        if replicates < 1:
            raise ConfigurationError(f"replicates must be >= 1, got {replicates}")
        first = next(iter(variants.values()))
        grid = cls.__new__(cls)
        grid.base = first
        grid.vary_seed = False
        grid.replicates = replicates
        grid.axes = {"variant": tuple(variants)}
        cells = []
        for label, config in variants.items():
            seed = getattr(config, "seed", None)
            for cell_label, params, cell_config, cell_seed in grid._replicated(
                label, {"variant": label}, config, seed, root_seed=seed
            ):
                cells.append(
                    SweepCell(
                        index=len(cells),
                        label=cell_label,
                        params=params,
                        config=cell_config,
                        seed=cell_seed,
                    )
                )
        grid._cells = tuple(cells)
        return grid

    def _replicated(self, label, params, config, seed, *, root_seed):
        """Expand one logical cell into its replicate cells (or itself)."""
        if self.replicates == 1:
            yield label, params, config, seed
            return
        for rep in range(self.replicates):
            rep_label = f"{label},rep={rep}"
            rep_seed = seed
            rep_config = config
            if seed is not None:
                rep_seed = derive_cell_seed(root_seed or 0, rep_label)
                rep_config = dataclasses.replace(config, seed=rep_seed)
            yield rep_label, {**params, "rep": rep}, rep_config, rep_seed

    def _expand(self) -> tuple[SweepCell, ...]:
        if not self.axes:
            raise ConfigurationError("a sweep grid needs at least one axis")
        cells = []
        names = list(self.axes)
        root_seed = getattr(self.base, "seed", 0)
        for combo in itertools.product(*self.axes.values()):
            params = dict(zip(names, combo))
            label = ",".join(f"{k}={_format_value(v)}" for k, v in params.items())
            config = dataclasses.replace(self.base, **params)
            seed = getattr(config, "seed", None)
            if self.vary_seed and "seed" not in self.axes and seed is not None:
                seed = derive_cell_seed(root_seed, label)
                config = dataclasses.replace(config, seed=seed)
            for cell_label, cell_params, cell_config, cell_seed in self._replicated(
                label, params, config, seed, root_seed=root_seed
            ):
                cells.append(
                    SweepCell(
                        index=len(cells),
                        label=cell_label,
                        params=cell_params,
                        config=cell_config,
                        seed=cell_seed,
                    )
                )
        return tuple(cells)

    @property
    def cells(self) -> tuple[SweepCell, ...]:
        """All cells in deterministic order."""
        return self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[SweepCell]:
        return iter(self._cells)

    def spec(self) -> dict[str, Any]:
        """JSON-able description of the grid (axes + base type + size)."""
        spec: dict[str, Any] = {
            "base": type(self.base).__name__,
            "axes": {
                name: [describe_value(v) for v in values]
                for name, values in self.axes.items()
            },
            "cells": len(self._cells),
            "vary_seed": self.vary_seed,
        }
        if self.replicates > 1:
            spec["replicates"] = self.replicates
        return spec
