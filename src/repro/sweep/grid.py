"""Declarative parameter grids over scenario and cluster configs.

A :class:`SweepGrid` enumerates *cells*: one config (plus a stable label and
a deterministic seed) per point of a Cartesian product of axes, or per entry
of an explicit variant mapping.  Cells are plain frozen data, picklable, and
ordered — the same grid always expands to the same cells in the same order,
which is what lets the runner promise bit-identical serial/parallel results.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import zlib
from typing import Any, Iterator, Mapping, Sequence

from ..errors import ConfigurationError


def derive_cell_seed(root_seed: int, label: str) -> int:
    """A deterministic, process-independent seed for the cell *label*.

    CRC32 of ``"<root>|<label>"`` — stable across Python versions and
    processes (unlike ``hash()``, which is salted per interpreter).
    """
    return zlib.crc32(f"{root_seed}|{label}".encode("utf-8")) & 0x7FFFFFFF


def describe_value(value: Any) -> Any:
    """A JSON-able, deterministic description of an axis value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = getattr(value, "name", None)
        return name if name is not None else str(value)
    if isinstance(value, Mapping):
        return dict(value)
    if isinstance(value, tuple):
        return list(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def _format_value(value: Any) -> str:
    described = describe_value(value)
    if isinstance(described, (dict, list)):
        return json.dumps(described, sort_keys=True, separators=(",", ":"))
    return str(described)


@dataclasses.dataclass(frozen=True)
class SweepCell:
    """One point of a grid: a label, its parameters, and the built config."""

    index: int
    label: str
    params: Mapping[str, Any]
    config: Any
    seed: int | None = None


class SweepGrid:
    """A declarative grid of configs.

    Parameters
    ----------
    axes:
        Mapping of config field name to the sequence of values to sweep.
        Axis order (mapping insertion order) fixes the cell order: the last
        axis varies fastest, like nested loops.  Every key must be a field
        of the base config's dataclass.  List values for tuple-typed fields
        (e.g. ``v20_active``) are coerced to tuples, so grids can come
        straight from JSON.
    base:
        The config every cell is derived from via ``dataclasses.replace``.
        Defaults to a fresh :class:`~repro.experiments.scenario.ScenarioConfig`.
    vary_seed:
        When True and ``seed`` is not itself an axis, each cell's config
        gets a deterministic per-cell seed derived from the base seed and
        the cell label (:func:`derive_cell_seed`).  When False every cell
        keeps the base seed, so single-config experiments stay bit-equal to
        their pre-sweep form.
    """

    def __init__(
        self,
        axes: Mapping[str, Sequence[Any]],
        *,
        base: Any = None,
        vary_seed: bool = False,
    ) -> None:
        if base is None:
            from ..experiments.scenario import ScenarioConfig

            base = ScenarioConfig()
        if not dataclasses.is_dataclass(base):
            raise ConfigurationError(
                f"grid base must be a config dataclass, got {type(base).__name__}"
            )
        field_types = {f.name: f.type for f in dataclasses.fields(base)}
        self.base = base
        self.vary_seed = vary_seed
        self.axes: dict[str, tuple[Any, ...]] = {}
        for name, values in axes.items():
            if name not in field_types:
                known = ", ".join(sorted(field_types))
                raise ConfigurationError(
                    f"unknown sweep axis {name!r} for {type(base).__name__}; "
                    f"fields: {known}"
                )
            values = tuple(values)
            if not values:
                raise ConfigurationError(f"sweep axis {name!r} has no values")
            current = getattr(base, name)
            if isinstance(current, tuple):
                values = tuple(
                    tuple(v) if isinstance(v, list) else v for v in values
                )
            self.axes[name] = values
        self._cells = self._expand()

    @classmethod
    def from_variants(cls, variants: Mapping[str, Any]) -> "SweepGrid":
        """A grid of explicitly named configs (no Cartesian product).

        Used by experiments whose cells are hand-picked combinations rather
        than a full product; cell seeds are whatever each config carries.
        """
        if not variants:
            raise ConfigurationError("from_variants needs at least one config")
        first = next(iter(variants.values()))
        grid = cls.__new__(cls)
        grid.base = first
        grid.vary_seed = False
        grid.axes = {"variant": tuple(variants)}
        grid._cells = tuple(
            SweepCell(
                index=index,
                label=label,
                params={"variant": label},
                config=config,
                seed=getattr(config, "seed", None),
            )
            for index, (label, config) in enumerate(variants.items())
        )
        return grid

    def _expand(self) -> tuple[SweepCell, ...]:
        if not self.axes:
            raise ConfigurationError("a sweep grid needs at least one axis")
        cells = []
        names = list(self.axes)
        for index, combo in enumerate(itertools.product(*self.axes.values())):
            params = dict(zip(names, combo))
            label = ",".join(f"{k}={_format_value(v)}" for k, v in params.items())
            config = dataclasses.replace(self.base, **params)
            seed = getattr(config, "seed", None)
            if self.vary_seed and "seed" not in self.axes and seed is not None:
                seed = derive_cell_seed(getattr(self.base, "seed", 0), label)
                config = dataclasses.replace(config, seed=seed)
            cells.append(
                SweepCell(
                    index=index, label=label, params=params, config=config, seed=seed
                )
            )
        return tuple(cells)

    @property
    def cells(self) -> tuple[SweepCell, ...]:
        """All cells in deterministic order."""
        return self._cells

    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[SweepCell]:
        return iter(self._cells)

    def spec(self) -> dict[str, Any]:
        """JSON-able description of the grid (axes + base type + size)."""
        return {
            "base": type(self.base).__name__,
            "axes": {
                name: [describe_value(v) for v in values]
                for name, values in self.axes.items()
            },
            "cells": len(self._cells),
            "vary_seed": self.vary_seed,
        }
