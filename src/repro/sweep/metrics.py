"""Per-cell metric reducers: a finished run -> a flat dict of scalars.

Every reducer is a module-level function (picklable by reference, so pool
workers can apply them in-process) taking the cell's outcome — a
:class:`~repro.experiments.scenario.ScenarioResult` for single-host cells,
a :class:`~repro.cluster.simulator.ClusterSim` for fleet cells — and
returning JSON-safe ``{name: value}`` pairs.  Metrics that cannot be
computed (a phase window with no samples on a compressed timeline, a
latency query with no completed requests) come back as ``None`` rather
than raising, so one odd cell never sinks a whole sweep.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from ..errors import ConfigurationError, TelemetryError, WorkloadError

#: The three analysis phases of the §5.3 profile, in timeline order.
PHASE_NAMES = ("solo_early", "both", "solo_late")


def _windows(result) -> dict[str, tuple[float, float]]:
    from ..experiments.scenario import analysis_windows

    return dict(zip(PHASE_NAMES, analysis_windows(result.config)))


def _safe_phase_mean(result, series: str, window, *, smooth: bool = True):
    try:
        return result.phase_mean(series, window, smooth=smooth)
    except TelemetryError:
        return None


def load_metrics(result) -> dict:
    """Global/absolute loads of every guest per analysis phase.

    Keys are ``<guest>_<kind>_<phase>`` with the guest name lower-cased —
    ``v20_absolute_solo_early`` on the paper's profile, one set per guest on
    arbitrary fleets.
    """
    out: dict[str, float | None] = {}
    guests = [d.name for d in result.host.domains if not d.is_dom0]
    for phase, window in _windows(result).items():
        for domain in guests:
            for kind in ("global", "absolute"):
                series = f"{domain}.{kind}_load"
                out[f"{domain.lower()}_{kind}_{phase}"] = _safe_phase_mean(
                    result, series, window
                )
    return out


def guest_load_metrics(result) -> dict:
    """Mean global/absolute load of every guest over its *own* trimmed window.

    The per-guest reduction for fleets whose guests follow unrelated
    timelines (diurnal traces, staggered batches), where the three shared
    §5.3 phases are meaningless.
    """
    out: dict[str, float | None] = {}
    for name in result.guest_names:
        try:
            window = result.guest_window(name)
        except ConfigurationError:
            continue
        for kind in ("global", "absolute"):
            out[f"{name.lower()}_{kind}_mean"] = _safe_phase_mean(
                result, f"{name}.{kind}_load", window
            )
    return out


def batch_metrics(result) -> dict:
    """Per-guest batch (pi) makespan: first start to last finish.

    For a single pi workload this is its execution time; for several on one
    domain it is the span covering all of them.  ``None`` while any of the
    domain's batch jobs is unfinished.
    """
    from ..workloads import PiApp

    out: dict[str, float | None] = {}
    for domain in result.host.domains:
        batch = [w for w in domain.workloads if isinstance(w, PiApp)]
        if not batch:
            continue
        key = f"{domain.name.lower()}_batch_time_s"
        if all(w.done for w in batch):
            out[key] = max(w.finished_at for w in batch) - min(
                w.started_at for w in batch
            )
        else:
            out[key] = None
    return out


def frequency_metrics(result) -> dict:
    """Frequency per phase plus whole-run DVFS statistics."""
    out: dict[str, float | int | None] = {}
    for phase, window in _windows(result).items():
        out[f"freq_mhz_{phase}"] = _safe_phase_mean(
            result, "host.freq_mhz", window, smooth=False
        )
    raw = result.series("host.freq_mhz", smooth=False)
    out["freq_mhz_min"] = raw.min()
    out["freq_mhz_max"] = raw.max()
    out["dvfs_transitions"] = result.frequency_transitions
    out["preemptions"] = result.host.preemptions
    return out


def energy_metrics(result) -> dict:
    """Whole-run package energy and its per-domain attribution."""
    host = result.host
    out: dict[str, float] = {"energy_joules": result.energy_joules}
    for domain in host.domains:
        key = f"energy_{domain.name.lower()}_joules"
        out[key] = host.domain_energy_joules(domain.name)
    out["energy_idle_joules"] = host.idle_energy_joules
    return out


def qos_metrics(result) -> dict:
    """Client-visible response times and drops per latency-tracked guest.

    With several workloads on one domain, the first latency-tracked one is
    reported (the QoS experiments attach exactly one per guest).
    """
    out: dict[str, float | None] = {}
    for domain in result.host.domains:
        workload = next(
            (w for w in domain.workloads if getattr(w, "latency", None) is not None),
            None,
        )
        tracker = getattr(workload, "latency", None)
        if tracker is None:
            continue
        prefix = domain.name.lower()
        try:
            out[f"{prefix}_latency_p50_s"] = tracker.percentile(50)
            out[f"{prefix}_latency_p95_s"] = tracker.percentile(95)
            out[f"{prefix}_latency_p99_s"] = tracker.percentile(99)
            out[f"{prefix}_latency_mean_s"] = tracker.mean_response_time
        except WorkloadError:
            out[f"{prefix}_latency_p50_s"] = None
            out[f"{prefix}_latency_p95_s"] = None
            out[f"{prefix}_latency_p99_s"] = None
            out[f"{prefix}_latency_mean_s"] = None
        out[f"{prefix}_completed_requests"] = tracker.completed_requests
        drop = getattr(workload, "drop_fraction", None)
        out[f"{prefix}_drop_percent"] = None if drop is None else 100.0 * drop
    return out


def qos_control_metrics(result) -> dict:
    """The QoS controller's decision ledger as flat cell scalars.

    All-``None`` on ``qos="none"`` cells (no controller installed), so a
    sweep over the ``qos`` axis yields one uniform column set.
    """
    controller = getattr(result.host, "qos_controller", None)
    if controller is None:
        return {
            "qos_steps_down": None,
            "qos_steps_up": None,
            "qos_lc_sla_saves": None,
            "qos_time_throttled_s": None,
            "qos_contention_peak": None,
            "qos_final_level": None,
        }
    stats = controller.stats
    return {
        "qos_steps_down": stats.steps_down,
        "qos_steps_up": stats.steps_up,
        "qos_lc_sla_saves": stats.lc_sla_saves,
        "qos_time_throttled_s": stats.time_throttled_s,
        "qos_contention_peak": stats.contention_peak,
        "qos_final_level": stats.quota_level,
    }


def reaction_metrics(result) -> dict:
    """Seconds from the second guest's activation until the frequency hits max.

    The reactivity measure of the PAS sensitivity ablation (V70's wake on
    the paper's profile); ``None`` when there is no activation edge or the
    maximum is never reached after it.
    """
    from ..experiments.scenario import secondary_activation

    activation = secondary_activation(result.config)
    if activation is None:
        return {"freq_reaction_s": None}
    freq = result.series("host.freq_mhz", smooth=False)
    maximum = result.host.processor.max_frequency_mhz
    for t, value in freq:
        if t >= activation and value == maximum:
            return {"freq_reaction_s": t - activation}
    return {"freq_reaction_s": None}


def sla_error_metrics(result) -> dict:
    """How far each guest's delivered capacity strays from its booked credit.

    Per guest with bounded activity: mean and max of
    ``|absolute load - credit|`` (percentage points) over the guest's active
    span trimmed by 10 s on each side — the §4.1 design-comparison error
    signal, as flat cacheable scalars.  Guests without activity, or whose
    trimmed span holds no samples, are skipped.
    """
    from ..experiments.scenario import effective_guests, guest_active_span

    out: dict[str, float] = {}
    for guest in effective_guests(result.config):
        span = guest_active_span(result.config, guest.name)
        if span is None:
            continue
        window = (span[0] + 10.0, min(span[1], result.config.duration) - 10.0)
        if window[1] <= window[0]:
            continue
        try:
            trace = result.series(f"{guest.name}.absolute_load").window(*window)
        except TelemetryError:
            continue
        errors = [abs(value - guest.credit) for _, value in trace]
        if not errors:
            continue
        out[f"{guest.name.lower()}_sla_mean_error"] = sum(errors) / len(errors)
        out[f"{guest.name.lower()}_sla_max_error"] = max(errors)
    return out


def fleet_metrics(sim) -> dict:
    """Fleet-level energy, packing and SLA statistics (cluster cells)."""
    return {
        "fleet_energy_joules": sim.fleet_energy_joules,
        "mean_machines_on": sim.mean_machines_on,
        "mean_sla_fraction": sim.mean_sla_fraction,
        "total_migrations": sim.total_migrations,
    }


def cluster_metrics(sim) -> dict:
    """Datacenter-scale orchestration statistics (cluster cells).

    The policy-comparison vocabulary: kWh instead of joules, migration
    churn, the count of epochs with unserved demand, mean powered-on host
    count, and the peak per-epoch fleet power (the number a
    ``power_budget_w`` cap is judged against).
    """
    return {
        "energy_kwh": sim.energy_kwh,
        "migrations": sim.total_migrations,
        "sla_violations": sim.sla_violations,
        "hosts_on_mean": sim.mean_machines_on,
        "power_peak_w": sim.peak_power_w,
        "sla_mean": sim.mean_sla_fraction,
    }


#: Named reducers addressable from a grid spec / the CLI.
METRICS: dict[str, Callable] = {
    "loads": load_metrics,
    "guest_loads": guest_load_metrics,
    "batch": batch_metrics,
    "frequency": frequency_metrics,
    "energy": energy_metrics,
    "qos": qos_metrics,
    "qos_control": qos_control_metrics,
    "reaction": reaction_metrics,
    "sla": sla_error_metrics,
    "fleet": fleet_metrics,
    "cluster": cluster_metrics,
}

#: Defaults per cell kind (see :func:`repro.sweep.runner.execute_config`).
DEFAULT_SCENARIO_METRICS: tuple[str, ...] = ("loads", "frequency", "energy")
DEFAULT_CLUSTER_METRICS: tuple[str, ...] = ("fleet", "cluster")


def resolve_metrics(metrics: Sequence[str | Callable]) -> tuple[Callable, ...]:
    """Map metric names through :data:`METRICS`; pass callables through."""
    resolved = []
    for metric in metrics:
        if callable(metric):
            resolved.append(metric)
        elif metric in METRICS:
            resolved.append(METRICS[metric])
        else:
            raise ConfigurationError(
                f"unknown metric {metric!r}; use one of: {', '.join(sorted(METRICS))}"
            )
    return tuple(resolved)


def reduce_outcome(outcome, metrics: Sequence[str | Callable]) -> dict:
    """Apply every reducer to *outcome* and merge the resulting dicts."""
    merged: dict = {}
    for fn in resolve_metrics(metrics):
        values: Mapping = fn(outcome)
        merged.update(values)
    return merged
