"""Sweep results: an ordered, queryable, exportable store.

A :class:`SweepResults` holds one :class:`CellResult` per grid cell, in
grid order.  Export is canonical — sorted JSON keys, fixed cell order, no
execution metadata — so two runs of the same grid produce byte-identical
files whatever the worker count.  Aggregation groups cells by an axis and
summarises a metric (count/mean/min/max), the reduction the ablation
experiments and the CLI summary are built from.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

from ..errors import ConfigurationError
from ..telemetry.export import records_to_csv, table_to_text


@dataclass(frozen=True)
class CellResult:
    """The reduced outcome of one grid cell."""

    index: int
    label: str
    params: Mapping[str, Any]
    seed: int | None
    metrics: Mapping[str, Any]

    def record(self) -> dict[str, Any]:
        """Flat dict: label + params + seed + metrics (CSV row shape)."""
        row: dict[str, Any] = {"label": self.label}
        row.update(self.params)
        row["seed"] = self.seed
        row.update(self.metrics)
        return row


class SweepResults:
    """All cell results of one sweep, with query/aggregate/export helpers."""

    def __init__(
        self, cells: Sequence[CellResult], *, meta: Mapping[str, Any] | None = None
    ) -> None:
        self.cells: tuple[CellResult, ...] = tuple(cells)
        self.meta: dict[str, Any] = dict(meta or {})
        self._by_label = {cell.label: cell for cell in self.cells}

    # -------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self.cells)

    @property
    def labels(self) -> tuple[str, ...]:
        """Cell labels in grid order."""
        return tuple(cell.label for cell in self.cells)

    def get(self, label: str) -> CellResult:
        """The cell called *label*."""
        try:
            return self._by_label[label]
        except KeyError:
            known = ", ".join(self.labels) or "<none>"
            raise ConfigurationError(f"no sweep cell {label!r}; have: {known}") from None

    def metric(self, label: str, name: str) -> Any:
        """One metric value of one cell."""
        metrics = self.get(label).metrics
        try:
            return metrics[name]
        except KeyError:
            known = ", ".join(sorted(metrics)) or "<none>"
            raise ConfigurationError(
                f"cell {label!r} has no metric {name!r}; have: {known}"
            ) from None

    def filter(self, **params: Any) -> "SweepResults":
        """The sub-sweep whose cells match every given ``param=value``."""
        kept = [
            cell
            for cell in self.cells
            if all(cell.params.get(k) == v for k, v in params.items())
        ]
        return SweepResults(kept, meta=self.meta)

    # ---------------------------------------------------------- aggregation

    def aggregate(self, metric: str, by: str) -> dict[Any, dict[str, float]]:
        """Group cells by axis *by* and summarise *metric* per group.

        Returns ``{axis value: {count, mean, min, max, std, ci95}}`` in
        first-seen order; cells where the metric is ``None`` are skipped.
        ``std`` is the sample standard deviation and ``ci95`` the half-width
        of the normal-approximation 95 % confidence interval on the mean
        (``1.96 * std / sqrt(n)``; 0 for groups of one) — the replicate
        reduction for Poisson-arrival sweeps.  Unhashable axis values
        (lists/dicts from described tuple or kwargs axes) are keyed by
        their canonical JSON encoding.
        """
        groups: dict[Any, list[float]] = {}
        for cell in self.cells:
            if by not in cell.params:
                raise ConfigurationError(
                    f"cell {cell.label!r} has no param {by!r}; "
                    f"axes: {', '.join(cell.params)}"
                )
            key = cell.params[by]
            if isinstance(key, (list, dict)):
                key = json.dumps(key, sort_keys=True, separators=(",", ":"))
            value = cell.metrics.get(metric)
            groups.setdefault(key, [])
            if value is not None:
                groups[key].append(float(value))
        out: dict[Any, dict[str, float]] = {}
        for key, values in groups.items():
            n = len(values)
            mean = sum(values) / n if values else float("nan")
            if n > 1:
                variance = sum((v - mean) ** 2 for v in values) / (n - 1)
                std = math.sqrt(variance)
            else:
                std = 0.0 if values else float("nan")
            out[key] = {
                "count": n,
                "mean": mean,
                "min": min(values) if values else float("nan"),
                "max": max(values) if values else float("nan"),
                "std": std,
                "ci95": 1.96 * std / math.sqrt(n) if n else float("nan"),
            }
        return out

    def summary_table(
        self, metrics: Sequence[str] | None = None, *, title: str = ""
    ) -> str:
        """An aligned per-cell table of the chosen metrics."""
        if not self.cells:
            raise ConfigurationError("no cells to summarise")
        if metrics is None:
            metrics = sorted(self.cells[0].metrics)
        rows = []
        for cell in self.cells:
            row: list[object] = [cell.label]
            for name in metrics:
                value = cell.metrics.get(name)
                row.append("-" if value is None else value)
            rows.append(row)
        return table_to_text(["cell", *metrics], rows, title=title)

    # -------------------------------------------------------------- export

    def to_records(self) -> list[dict[str, Any]]:
        """Flat dicts, one per cell, in grid order."""
        return [cell.record() for cell in self.cells]

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, grid order, trailing newline."""
        payload = {
            "meta": self.meta,
            "cells": [
                {
                    "index": cell.index,
                    "label": cell.label,
                    "params": dict(cell.params),
                    "seed": cell.seed,
                    "metrics": dict(cell.metrics),
                }
                for cell in self.cells
            ],
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    def to_csv(self) -> str:
        """Flat CSV via :func:`repro.telemetry.export.records_to_csv`."""
        return records_to_csv(self.to_records())

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write JSON (default) or CSV, chosen by the file extension."""
        path = pathlib.Path(path)
        if path.suffix.lower() == ".csv":
            path.write_text(self.to_csv())
        else:
            path.write_text(self.to_json())
        return path

    @classmethod
    def from_json(cls, text: str) -> "SweepResults":
        """Rebuild a results store from :meth:`to_json` output.

        Round-trips labels, params, seeds and metrics; the original configs
        are not reconstructed.
        """
        payload = json.loads(text)
        cells = [
            CellResult(
                index=entry["index"],
                label=entry["label"],
                params=entry["params"],
                seed=entry["seed"],
                metrics=entry["metrics"],
            )
            for entry in payload["cells"]
        ]
        return cls(cells, meta=payload.get("meta"))

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "SweepResults":
        """Read a JSON results file written by :meth:`save`."""
        return cls.from_json(pathlib.Path(path).read_text())
