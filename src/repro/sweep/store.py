"""Sweep results: an ordered, queryable, exportable store.

A :class:`SweepResults` holds one :class:`CellResult` per grid cell, in
grid order.  Export is canonical — sorted JSON keys, fixed cell order, no
execution metadata — so two runs of the same grid produce byte-identical
files whatever the worker count.  Aggregation groups cells by an axis and
summarises a metric (count/mean/min/max), the reduction the ablation
experiments and the CLI summary are built from.
"""

from __future__ import annotations

import json
import math
import pathlib
import re
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

from ..errors import ConfigurationError
from ..telemetry.export import records_to_csv, table_to_text

#: The replicate suffix :class:`~repro.sweep.grid.SweepGrid` appends to
#: cell labels when ``replicates > 1``.
_REP_SUFFIX = re.compile(r",rep=\d+$")


def _mean_std_ci(values: Sequence[float]) -> tuple[float, float, float]:
    """Mean, sample std and normal-approximation 95% CI half-width."""
    n = len(values)
    mean = sum(values) / n if values else float("nan")
    if n > 1:
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        std = math.sqrt(variance)
    else:
        std = 0.0 if values else float("nan")
    ci95 = 1.96 * std / math.sqrt(n) if n else float("nan")
    return mean, std, ci95


@dataclass(frozen=True)
class CellResult:
    """The reduced outcome of one grid cell."""

    index: int
    label: str
    params: Mapping[str, Any]
    seed: int | None
    metrics: Mapping[str, Any]

    def record(self) -> dict[str, Any]:
        """Flat dict: label + params + seed + metrics (CSV row shape)."""
        row: dict[str, Any] = {"label": self.label}
        row.update(self.params)
        row["seed"] = self.seed
        row.update(self.metrics)
        return row


class SweepResults:
    """All cell results of one sweep, with query/aggregate/export helpers."""

    def __init__(
        self, cells: Sequence[CellResult], *, meta: Mapping[str, Any] | None = None
    ) -> None:
        self.cells: tuple[CellResult, ...] = tuple(cells)
        self.meta: dict[str, Any] = dict(meta or {})
        self._by_label = {cell.label: cell for cell in self.cells}

    # -------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self.cells)

    @property
    def labels(self) -> tuple[str, ...]:
        """Cell labels in grid order."""
        return tuple(cell.label for cell in self.cells)

    def get(self, label: str) -> CellResult:
        """The cell called *label*."""
        try:
            return self._by_label[label]
        except KeyError:
            known = ", ".join(self.labels) or "<none>"
            raise ConfigurationError(f"no sweep cell {label!r}; have: {known}") from None

    def metric(self, label: str, name: str) -> Any:
        """One metric value of one cell."""
        metrics = self.get(label).metrics
        try:
            return metrics[name]
        except KeyError:
            known = ", ".join(sorted(metrics)) or "<none>"
            raise ConfigurationError(
                f"cell {label!r} has no metric {name!r}; have: {known}"
            ) from None

    def filter(self, **params: Any) -> "SweepResults":
        """The sub-sweep whose cells match every given ``param=value``."""
        kept = [
            cell
            for cell in self.cells
            if all(cell.params.get(k) == v for k, v in params.items())
        ]
        return SweepResults(kept, meta=self.meta)

    # ---------------------------------------------------------- aggregation

    def aggregate(self, metric: str, by: str) -> dict[Any, dict[str, float]]:
        """Group cells by axis *by* and summarise *metric* per group.

        Returns ``{axis value: {count, mean, min, max, std, ci95}}`` in
        first-seen order; cells where the metric is ``None`` are skipped.
        ``std`` is the sample standard deviation and ``ci95`` the half-width
        of the normal-approximation 95 % confidence interval on the mean
        (``1.96 * std / sqrt(n)``; 0 for groups of one) — the replicate
        reduction for Poisson-arrival sweeps.  Unhashable axis values
        (lists/dicts from described tuple or kwargs axes) are keyed by
        their canonical JSON encoding.
        """
        groups: dict[Any, list[float]] = {}
        for cell in self.cells:
            if by not in cell.params:
                raise ConfigurationError(
                    f"cell {cell.label!r} has no param {by!r}; "
                    f"axes: {', '.join(cell.params)}"
                )
            key = cell.params[by]
            if isinstance(key, (list, dict)):
                key = json.dumps(key, sort_keys=True, separators=(",", ":"))
            value = cell.metrics.get(metric)
            groups.setdefault(key, [])
            if value is not None:
                groups[key].append(float(value))
        out: dict[Any, dict[str, float]] = {}
        for key, values in groups.items():
            mean, std, ci95 = _mean_std_ci(values)
            out[key] = {
                "count": len(values),
                "mean": mean,
                "min": min(values) if values else float("nan"),
                "max": max(values) if values else float("nan"),
                "std": std,
                "ci95": ci95,
            }
        return out

    def summary_table(
        self, metrics: Sequence[str] | None = None, *, title: str = ""
    ) -> str:
        """An aligned per-cell table of the chosen metrics."""
        if not self.cells:
            raise ConfigurationError("no cells to summarise")
        if metrics is None:
            metrics = sorted(self.cells[0].metrics)
        rows = []
        for cell in self.cells:
            row: list[object] = [cell.label]
            for name in metrics:
                value = cell.metrics.get(name)
                row.append("-" if value is None else value)
            rows.append(row)
        return table_to_text(["cell", *metrics], rows, title=title)

    # ------------------------------------------------- replicate aggregation

    def aggregated_records(self) -> list[dict[str, Any]]:
        """One flat dict per *logical* cell, replicates reduced to statistics.

        Cells differing only in their ``rep=<k>`` replicate suffix collapse
        into one record carrying the base label, the non-replicate params, a
        ``replicates`` count, and ``<metric>_mean`` / ``<metric>_std`` /
        ``<metric>_ci95`` columns per numeric metric (``None`` metrics are
        skipped per-cell; a metric with no numeric samples in a group emits
        ``None`` statistics).  Sweeps without replicates degrade gracefully:
        every cell is its own group with ``std = ci95 = 0``.  Order and
        content are deterministic for a fixed cell sequence — the plotting
        export the raw per-replicate rows were too noisy for.
        """
        order: list[str] = []
        groups: dict[str, dict[str, Any]] = {}
        for cell in self.cells:
            base = _REP_SUFFIX.sub("", cell.label)
            group = groups.get(base)
            if group is None:
                params = {k: v for k, v in cell.params.items() if k != "rep"}
                group = groups[base] = {"params": params, "cells": []}
                order.append(base)
            group["cells"].append(cell)
        records: list[dict[str, Any]] = []
        for base in order:
            group = groups[base]
            cells: list[CellResult] = group["cells"]
            row: dict[str, Any] = {"label": base}
            row.update(group["params"])
            row["replicates"] = len(cells)
            names: dict[str, None] = {}
            for cell in cells:
                for name in cell.metrics:
                    names.setdefault(name)
            for name in names:
                values = [
                    float(cell.metrics[name])
                    for cell in cells
                    if isinstance(cell.metrics.get(name), (int, float))
                    and not isinstance(cell.metrics.get(name), bool)
                ]
                if values:
                    mean, std, ci95 = _mean_std_ci(values)
                else:
                    mean = std = ci95 = None
                row[f"{name}_mean"] = mean
                row[f"{name}_std"] = std
                row[f"{name}_ci95"] = ci95
            records.append(row)
        return records

    def to_aggregated_json(self) -> str:
        """Canonical JSON of :meth:`aggregated_records` (plus grid meta)."""
        payload = {
            "meta": {**self.meta, "aggregated": True},
            "rows": self.aggregated_records(),
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    def to_aggregated_csv(self) -> str:
        """:meth:`aggregated_records` as one CSV table."""
        return records_to_csv(self.aggregated_records())

    def export_aggregated(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the per-logical-cell aggregate, JSON or CSV by extension."""
        path = pathlib.Path(path)
        if path.suffix.lower() == ".csv":
            path.write_text(self.to_aggregated_csv())
        else:
            path.write_text(self.to_aggregated_json())
        return path

    # -------------------------------------------------------------- export

    def to_records(self) -> list[dict[str, Any]]:
        """Flat dicts, one per cell, in grid order."""
        return [cell.record() for cell in self.cells]

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, grid order, trailing newline."""
        payload = {
            "meta": self.meta,
            "cells": [
                {
                    "index": cell.index,
                    "label": cell.label,
                    "params": dict(cell.params),
                    "seed": cell.seed,
                    "metrics": dict(cell.metrics),
                }
                for cell in self.cells
            ],
        }
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    def to_csv(self) -> str:
        """Flat CSV via :func:`repro.telemetry.export.records_to_csv`."""
        return records_to_csv(self.to_records())

    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write JSON (default) or CSV, chosen by the file extension."""
        path = pathlib.Path(path)
        if path.suffix.lower() == ".csv":
            path.write_text(self.to_csv())
        else:
            path.write_text(self.to_json())
        return path

    @classmethod
    def from_json(cls, text: str) -> "SweepResults":
        """Rebuild a results store from :meth:`to_json` output.

        Round-trips labels, params, seeds and metrics; the original configs
        are not reconstructed.
        """
        payload = json.loads(text)
        cells = [
            CellResult(
                index=entry["index"],
                label=entry["label"],
                params=entry["params"],
                seed=entry["seed"],
                metrics=entry["metrics"],
            )
            for entry in payload["cells"]
        ]
        return cls(cells, meta=payload.get("meta"))

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "SweepResults":
        """Read a JSON results file written by :meth:`save`."""
        return cls.from_json(pathlib.Path(path).read_text())
