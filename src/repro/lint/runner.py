"""Rule dispatch, suppression accounting, and the lint entry points.

:func:`lint_project` is the core: it runs every selected rule over a
:class:`~repro.lint.source.Project`, drops findings silenced by a
``# repro-lint: disable=RPL###`` on their line, and then audits the
suppressions themselves — one that silenced nothing becomes an ``RPL001``
finding, an unknown code an ``RPL002``.  A suppression can therefore never
rot silently: deleting the code it excused resurfaces the comment.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import ConfigurationError
from .finding import Finding
from .rules import FRAMEWORK_CODES, RULES, all_codes
from .source import CODE_RE, Project, load_project


def _resolve_codes(raw: Iterable[str] | None, option: str) -> frozenset[str] | None:
    """Validate a ``--select``/``--ignore`` code list against the registry.

    Entries are full codes (``RPL701``) or family prefixes (``RPL7``,
    ``RPL``): a prefix selects every registered code it starts.  A prefix
    matching nothing is as much a typo as an unknown code — both raise
    :class:`ConfigurationError` (CLI exit 2).
    """
    if raw is None:
        return None
    codes: set[str] = set()
    for chunk in raw:
        for code in chunk.split(","):
            code = code.strip()
            if not code:
                continue
            if code in all_codes():
                codes.add(code)
                continue
            expanded = {known for known in all_codes() if known.startswith(code)}
            if not expanded:
                known = ", ".join(sorted(all_codes()))
                raise ConfigurationError(
                    f"{option}: unknown rule code or prefix {code!r}; "
                    f"known codes: {known}"
                )
            codes.update(expanded)
    return frozenset(codes) if codes else None


def lint_project(
    project: Project,
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """All findings for *project*, sorted, suppressions applied and audited."""
    selected = _resolve_codes(select, "--select")
    ignored = _resolve_codes(ignore, "--ignore") or frozenset()

    def active(code: str) -> bool:
        if code in ignored:
            return False
        return selected is None or code in selected

    raw: list[Finding] = []
    for rule in RULES:
        if not active(rule.code):
            continue
        for module in project.modules:
            if rule.applies_to(module):
                raw.extend(rule.check(module))
        raw.extend(rule.check_project(project))

    findings: list[Finding] = []
    used: set[tuple[str, int, str]] = set()
    for finding in raw:
        module = project.module_at(finding.path)
        if module is not None and finding.code in module.suppressed_codes(
            finding.line
        ):
            used.add((finding.path, finding.line, finding.code))
        else:
            findings.append(finding)

    # Audit the suppressions themselves.
    for module in project.modules:
        for suppression in module.suppressions:
            if not CODE_RE.match(suppression.code):
                if active("RPL002"):
                    findings.append(
                        Finding(
                            path=module.path,
                            line=suppression.line,
                            col=1,
                            code="RPL002",
                            message=(
                                f"malformed rule code {suppression.code!r} in "
                                "suppression (expected RPL###)"
                            ),
                        )
                    )
                continue
            if suppression.code not in all_codes():
                if active("RPL002"):
                    findings.append(
                        Finding(
                            path=module.path,
                            line=suppression.line,
                            col=1,
                            code="RPL002",
                            message=(
                                f"unknown rule code {suppression.code} in "
                                "suppression; see `repro lint --list-rules`"
                            ),
                        )
                    )
                continue
            if not active(suppression.code):
                # The suppressed rule was deselected this run: we cannot
                # judge whether the comment is earning its keep.
                continue
            key = (module.path, suppression.line, suppression.code)
            if key not in used and active("RPL001"):
                findings.append(
                    Finding(
                        path=module.path,
                        line=suppression.line,
                        col=1,
                        code="RPL001",
                        message=(
                            f"unused suppression of {suppression.code}: "
                            "nothing on this line triggers it — delete the "
                            "comment"
                        ),
                    )
                )

    findings.sort(key=lambda finding: finding.sort_key)
    return findings


def lint_paths(
    paths: Sequence[str],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint files/directories from disk (the CLI's entry point)."""
    return lint_project(load_project(paths), select=select, ignore=ignore)
