"""Text and JSON renderers for lint findings.

Both renderers return strings — printing is the CLI's job (rule RPL502
applies to this package too).  The JSON form is the stable machine schema:

.. code-block:: json

    {
      "version": 1,
      "count": 2,
      "findings": [
        {"path": "...", "line": 3, "col": 1, "code": "RPL101",
         "message": "..."}
      ]
    }
"""

from __future__ import annotations

import json
from typing import Sequence

from .finding import Finding

#: Bump when the JSON shape changes incompatibly.
JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: CODE message`` line per finding, plus a tally."""
    if not findings:
        return "repro lint: clean"
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"repro lint: {len(findings)} {noun}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """The machine-readable report (sorted, schema-versioned, diffable)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
