"""Text, JSON and GitHub-annotation renderers for lint findings.

All renderers return strings — printing is the CLI's job (rule RPL502
applies to this package too).  The JSON form is the stable machine schema:

.. code-block:: json

    {
      "version": 1,
      "count": 2,
      "findings": [
        {"path": "...", "line": 3, "col": 1, "code": "RPL101",
         "message": "..."}
      ]
    }
"""

from __future__ import annotations

import json
from typing import Sequence

from .finding import Finding

#: Bump when the JSON shape changes incompatibly.
JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    """One ``path:line:col: CODE message`` line per finding, plus a tally."""
    if not findings:
        return "repro lint: clean"
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"repro lint: {len(findings)} {noun}")
    return "\n".join(lines)


def _escape_property(value: str) -> str:
    """Escape a workflow-command *property* value (file=, title=)."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
        .replace(":", "%3A")
        .replace(",", "%2C")
    )


def _escape_data(value: str) -> str:
    """Escape workflow-command message data (everything after ``::``)."""
    return value.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")


def render_github(findings: Sequence[Finding]) -> str:
    """GitHub Actions ``::error`` workflow commands, one per finding.

    Emitted on a runner, each line becomes an inline annotation on the PR
    diff at ``file:line``.  The rule code travels in ``title=`` so the
    annotation header reads like the text renderer's prefix.
    """
    lines = [
        "::error file={file},line={line},col={col},title={title}::{message}".format(
            file=_escape_property(finding.path),
            line=finding.line,
            col=finding.col,
            title=_escape_property(finding.code),
            message=_escape_data(f"{finding.code} {finding.message}"),
        )
        for finding in findings
    ]
    noun = "finding" if len(findings) == 1 else "findings"
    tally = f"repro lint: {len(findings)} {noun}" if findings else "repro lint: clean"
    return "\n".join([*lines, tally])


def render_json(findings: Sequence[Finding]) -> str:
    """The machine-readable report (sorted, schema-versioned, diffable)."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
