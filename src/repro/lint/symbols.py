"""The project-wide symbol table: every function, resolved through imports.

This is the first half of the interprocedural tier (the call graph in
:mod:`repro.lint.callgraph` is the second).  It answers two questions the
per-module rules cannot:

* *what functions exist* — module-level functions and the methods of
  module-level classes, each under a dotted qualname derived from the
  repo-relative path (``src/repro/sim/engine.py`` →
  ``repro.sim.engine.Engine.run_until``);
* *what a name refers to* — import aliases resolved to dotted targets,
  **including relative imports** (``from ..units import check_percent``
  inside ``repro.cpu.power`` resolves to ``repro.units.check_percent``),
  which the per-module :meth:`SourceModule.import_aliases` deliberately
  skips because the stdlib ban lists never need them.

Nested functions are *not* separate symbols: their bodies are attributed to
the enclosing module-level function or method, which is the conservative
reading for closures handed around as callbacks — if the parent is
reachable, whatever the closure does is reachable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Mapping, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .source import Project, SourceModule


def module_name_of(path: str) -> str:
    """The dotted module name for a repo-relative path.

    ``src/repro/sim/engine.py`` → ``repro.sim.engine``;
    ``tests/lint/test_meta.py`` → ``tests.lint.test_meta``;
    package ``__init__.py`` files name the package itself.
    """
    parts = path.split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        last = parts[-1][: -len(".py")]
        parts = parts[:-1] if last == "__init__" else parts[:-1] + [last]
    return ".".join(parts)


def _package_of(path: str, module_name: str) -> str:
    """The package a module's relative imports resolve against."""
    if path.endswith("/__init__.py"):
        return module_name
    head, _, _ = module_name.rpartition(".")
    return head


@dataclass(frozen=True)
class FunctionInfo:
    """One module-level function or method, addressable by qualname."""

    qualname: str
    module: "SourceModule"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def is_public(self) -> bool:
        return not self.node.name.startswith("_")


def _resolve_imports(module: "SourceModule", module_name: str) -> dict[str, str]:
    """Local name → dotted target, absolute *and* relative imports."""
    package = _package_of(module.path, module_name)
    targets: dict[str, str] = {}
    for node in module.walk():
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.partition(".")[0]
                targets[local] = alias.name if alias.asname else alias.name.partition(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                parts = package.split(".") if package else []
                parts = parts[: len(parts) - (node.level - 1)]
                if node.module:
                    parts.append(node.module)
                base = ".".join(parts)
            for alias in node.names:
                local = alias.asname or alias.name
                targets[local] = f"{base}.{alias.name}" if base else alias.name
    return targets


class SymbolTable:
    """Functions, classes, and import targets of one :class:`Project`."""

    def __init__(self, project: "Project") -> None:
        self.project = project
        #: qualname → FunctionInfo, every module-level function and method.
        self.functions: dict[str, FunctionInfo] = {}
        #: bare method name → [FunctionInfo, ...] (dynamic-dispatch fallback).
        self.methods_named: dict[str, list[FunctionInfo]] = {}
        #: module path → dotted module name.
        self.module_names: dict[str, str] = {}
        #: module path → {local name: dotted import target}.
        self._imports: dict[str, dict[str, str]] = {}
        #: dotted class qualname tail cache: bare class name → qualnames.
        self._class_modules: dict[str, str] = {}
        for mod in project.modules:
            self._index_module(mod)

    def _index_module(self, module: "SourceModule") -> None:
        module_name = module_name_of(module.path)
        self.module_names[module.path] = module_name
        self._imports[module.path] = _resolve_imports(module, module_name)
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qualname=f"{module_name}.{stmt.name}",
                    module=module,
                    node=stmt,
                )
                self.functions[info.qualname] = info
            elif isinstance(stmt, ast.ClassDef):
                self._class_modules.setdefault(stmt.name, module_name)
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        info = FunctionInfo(
                            qualname=f"{module_name}.{stmt.name}.{item.name}",
                            module=module,
                            node=item,
                            class_name=stmt.name,
                        )
                        self.functions[info.qualname] = info
                        self.methods_named.setdefault(item.name, []).append(info)

    # ------------------------------------------------------------ resolution

    def imports_of(self, module: "SourceModule") -> Mapping[str, str]:
        """Local name → dotted target for *module* (relative-aware)."""
        return self._imports.get(module.path, {})

    def resolve_dotted(self, module: "SourceModule", node: ast.expr) -> str | None:
        """The dotted name of a call target with imports resolved.

        ``check_percent`` under ``from ..units import check_percent`` →
        ``repro.units.check_percent``; ``t.time`` under ``import time as t``
        → ``time.time``.  None for anything that is not a plain name chain.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        parts.append(current.id)
        parts.reverse()
        head = self.imports_of(module).get(parts[0], parts[0])
        return ".".join([head] + parts[1:])

    def function_at(self, qualname: str) -> FunctionInfo | None:
        return self.functions.get(qualname)

    def method_on(self, class_name: str, method: str) -> FunctionInfo | None:
        """Resolve *method* on *class_name* through project-visible bases."""
        start = self.project.class_named(class_name)
        if start is None:
            return None
        for ancestor in self.project.ancestry(start):
            node = ancestor.methods.get(method)
            if node is not None:
                owner = module_name_of(ancestor.module.path)
                return self.functions.get(f"{owner}.{ancestor.name}.{method}")
        return None

    def class_qualname(self, class_name: str) -> str | None:
        """``repro.cpu.power.PowerModel`` for a bare project class name."""
        module = self._class_modules.get(class_name)
        return f"{module}.{class_name}" if module else None

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """Every known function, sorted by qualname (deterministic order)."""
        for qualname in sorted(self.functions):
            yield self.functions[qualname]
