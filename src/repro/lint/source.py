"""Parsed source files and the project-wide view rules check against.

A :class:`SourceModule` is one file: its repo-relative path, source text,
AST, and the per-line ``# repro-lint: disable=RPL###`` suppressions.  A
:class:`Project` groups the modules of one lint run and lazily builds the
cross-file indexes project rules need: a class table (name → definitions,
bases, methods, ``__slots__``, abstract hooks) and the corpus of string
constants appearing in test modules (the registry-contract rule checks
registered names against it).

Paths are normalised to repo-relative POSIX form so rule scoping
(``src/repro/sim/...``) and report output are identical however the linter
was invoked.  Tests construct modules from in-memory source with virtual
paths, which is how path-scoped rules are exercised without touching real
library files.
"""

from __future__ import annotations

import ast
import io
import pathlib
import re
import tokenize
from dataclasses import dataclass, field as dataclass_field
from typing import Iterator, Mapping, Sequence

from ..errors import ConfigurationError

#: Shape of a suppression comment, anchored at the start of the comment
#: token so prose that merely *mentions* the syntax never counts.
_SUPPRESSION_RE = re.compile(r"^#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+)")

#: A well-formed rule code.
CODE_RE = re.compile(r"^RPL\d{3}$")


@dataclass(frozen=True)
class Suppression:
    """One code suppressed on one line (``# repro-lint: disable=...``)."""

    line: int
    code: str


def parse_suppressions(source: str) -> tuple[Suppression, ...]:
    """Every per-line suppression in *source*, malformed codes included.

    Only genuine COMMENT tokens count (a docstring quoting the syntax is
    prose, not a directive).  Malformed entries (anything not matching
    ``RPL###``) are kept — the runner turns them into findings rather than
    silently ignoring them.
    """
    found: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenizeError, IndentationError):  # pragma: no cover
        return ()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.match(token.string)
        if match is None:
            continue
        for raw in match.group(1).split(","):
            code = raw.strip()
            if code:
                found.append(Suppression(line=token.start[0], code=code))
    return tuple(found)


class SourceModule:
    """One parsed file of a lint run."""

    def __init__(self, path: str, source: str) -> None:
        #: Repo-relative POSIX path (or the virtual path a test supplied).
        self.path = path
        self.source = source
        try:
            self.tree: ast.Module = ast.parse(source, filename=path)
        except SyntaxError as error:
            raise ConfigurationError(f"cannot lint {path}: {error}") from None
        self.suppressions: tuple[Suppression, ...] = parse_suppressions(source)
        self._parents: dict[ast.AST, ast.AST] | None = None
        self._aliases: dict[str, str] | None = None

    def suppressed_codes(self, line: int) -> set[str]:
        """Codes suppressed on *line*."""
        return {s.code for s in self.suppressions if s.line == line}

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of *node* (None for the module root)."""
        if self._parents is None:
            parents: dict[ast.AST, ast.AST] = {}
            for outer in ast.walk(self.tree):
                for inner in ast.iter_child_nodes(outer):
                    parents[inner] = outer
            self._parents = parents
        return self._parents.get(node)

    def walk(self) -> Iterator[ast.AST]:
        """All nodes of the module tree."""
        return ast.walk(self.tree)

    def import_aliases(self) -> dict[str, str]:
        """Local name → canonical dotted prefix, from this module's imports.

        ``import time as _wall`` maps ``_wall`` to ``time``; ``from datetime
        import datetime as dt`` maps ``dt`` to ``datetime.datetime``.  Rules
        canonicalise call names through this so aliasing an import is not a
        lint evasion.  Relative imports are skipped — they name repo modules,
        never the stdlib modules the determinism rules ban.
        """
        if self._aliases is None:
            aliases: dict[str, str] = {}
            for node in self.walk():
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        if alias.asname is not None:
                            aliases[alias.asname] = alias.name
                elif (
                    isinstance(node, ast.ImportFrom)
                    and node.module
                    and node.level == 0
                ):
                    for alias in node.names:
                        local = alias.asname or alias.name
                        aliases[local] = f"{node.module}.{alias.name}"
            self._aliases = aliases
        return self._aliases

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SourceModule({self.path!r}, {len(self.source)} chars)"


# ------------------------------------------------------------- class table


def _base_name(node: ast.expr) -> str | None:
    """The bare name of a base-class expression (``a.b.C`` → ``C``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_abstract_method(node: ast.FunctionDef) -> bool:
    """True for ``@abstractmethod`` hooks or NotImplementedError-only bodies."""
    for decorator in node.decorator_list:
        name = _base_name(decorator) or (
            decorator.func and _base_name(decorator.func)
            if isinstance(decorator, ast.Call)
            else None
        )
        if name in ("abstractmethod", "abstractproperty"):
            return True
    body = [stmt for stmt in node.body if not _is_docstring(stmt)]
    if len(body) == 1 and isinstance(body[0], ast.Raise):
        exc = body[0].exc
        target = exc.func if isinstance(exc, ast.Call) else exc
        if isinstance(target, ast.Name) and target.id == "NotImplementedError":
            return True
    return False


def _is_docstring(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and isinstance(stmt.value.value, str)
    )


@dataclass
class ClassInfo:
    """Static facts about one class definition."""

    module: SourceModule
    node: ast.ClassDef
    bases: tuple[str, ...] = ()
    methods: dict = dataclass_field(default_factory=dict)
    class_attrs: dict = dataclass_field(default_factory=dict)
    slots: tuple[str, ...] | None = None
    abstract_methods: frozenset = frozenset()

    @property
    def name(self) -> str:
        return self.node.name


def _collect_classes(module: SourceModule) -> Iterator[ClassInfo]:
    for node in module.walk():
        if not isinstance(node, ast.ClassDef):
            continue
        info = ClassInfo(
            module=module,
            node=node,
            bases=tuple(
                name for base in node.bases if (name := _base_name(base)) is not None
            ),
        )
        abstract = set()
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = stmt
                if isinstance(stmt, ast.FunctionDef) and _is_abstract_method(stmt):
                    abstract.add(stmt.name)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    info.class_attrs[target.id] = stmt.value
                    if target.id == "__slots__":
                        info.slots = _slot_names(stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if stmt.value is not None:
                    info.class_attrs[stmt.target.id] = stmt.value
                if stmt.target.id == "__slots__" and stmt.value is not None:
                    info.slots = _slot_names(stmt.value)
        info.abstract_methods = frozenset(abstract)
        yield info


def _slot_names(value: ast.expr) -> tuple[str, ...]:
    """Names listed by a ``__slots__`` assignment (tuple/list/str/dict)."""
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return (value.value,)
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        return tuple(
            element.value
            for element in value.elts
            if isinstance(element, ast.Constant) and isinstance(element.value, str)
        )
    if isinstance(value, ast.Dict):
        return tuple(
            key.value
            for key in value.keys
            if isinstance(key, ast.Constant) and isinstance(key.value, str)
        )
    return ()


# ----------------------------------------------------------------- project


class Project:
    """The full module set of one lint run, with lazy cross-file indexes."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules = tuple(sorted(modules, key=lambda m: m.path))
        self._by_path: Mapping[str, SourceModule] = {m.path: m for m in self.modules}
        self._classes: dict[str, list[ClassInfo]] | None = None
        self._test_strings: frozenset[str] | None = None
        self._symbols = None
        self._callgraph = None

    def module_at(self, path: str) -> SourceModule | None:
        """The module with exactly this repo-relative *path*, if linted."""
        return self._by_path.get(path)

    @property
    def has_tests(self) -> bool:
        """True when the lint set includes test modules (``tests/...``)."""
        return any(m.path.startswith("tests/") for m in self.modules)

    # ------------------------------------------------------------- indexes

    @property
    def classes(self) -> Mapping[str, list[ClassInfo]]:
        """Every class definition in the run, keyed by bare class name."""
        if self._classes is None:
            table: dict[str, list[ClassInfo]] = {}
            for module in self.modules:
                for info in _collect_classes(module):
                    table.setdefault(info.name, []).append(info)
            self._classes = table
        return self._classes

    def class_named(self, name: str) -> ClassInfo | None:
        """The first definition of class *name* (None when not linted)."""
        candidates = self.classes.get(name)
        return candidates[0] if candidates else None

    def ancestry(self, info: ClassInfo) -> list[ClassInfo]:
        """*info* plus every project-visible ancestor, MRO-ish order."""
        seen: list[ClassInfo] = []
        names: set[str] = set()
        stack = [info]
        while stack:
            current = stack.pop(0)
            if current.name in names:
                continue
            names.add(current.name)
            seen.append(current)
            for base in current.bases:
                parent = self.class_named(base)
                if parent is not None:
                    stack.append(parent)
        return seen

    @property
    def symbols(self):
        """The interprocedural symbol table (lazy; see ``lint/symbols.py``)."""
        if self._symbols is None:
            from .symbols import SymbolTable  # local: avoids an import cycle

            self._symbols = SymbolTable(self)
        return self._symbols

    @property
    def callgraph(self):
        """The resolved call graph (lazy; see ``lint/callgraph.py``)."""
        if self._callgraph is None:
            from .callgraph import CallGraph  # local: avoids an import cycle

            self._callgraph = CallGraph(self)
        return self._callgraph

    @property
    def test_strings(self) -> frozenset[str]:
        """Every string constant appearing in a test module."""
        if self._test_strings is None:
            strings: set[str] = set()
            for module in self.modules:
                if not module.path.startswith("tests/"):
                    continue
                for node in module.walk():
                    if isinstance(node, ast.Constant) and isinstance(node.value, str):
                        strings.add(node.value)
            self._test_strings = frozenset(strings)
        return self._test_strings


# -------------------------------------------------------------- collection

#: Directory names never linted (caches, VCS internals, virtualenvs).
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".pytest_cache", ".venv", "node_modules"}


def _repo_relative(path: pathlib.Path) -> str:
    """*path* relative to the repo root (the dir holding ``pyproject.toml``).

    Falls back to the path as given when no marker is found, so linting
    loose files outside a checkout still works (with absolute-path output).
    """
    resolved = path.resolve()
    for parent in resolved.parents:
        if (parent / "pyproject.toml").exists():
            return resolved.relative_to(parent).as_posix()
    return path.as_posix()


def collect_files(paths: Sequence[str]) -> list[pathlib.Path]:
    """Expand *paths* (files or directories) to a sorted ``.py`` file list."""
    files: set[pathlib.Path] = set()
    for raw in paths:
        path = pathlib.Path(raw)
        if not path.exists():
            raise ConfigurationError(f"no such file or directory: {raw}")
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    files.add(candidate)
        elif path.suffix == ".py":
            files.add(path)
        else:
            raise ConfigurationError(f"not a python file: {raw}")
    return sorted(files)


def load_project(paths: Sequence[str]) -> Project:
    """Parse every ``.py`` file under *paths* into a :class:`Project`."""
    modules = []
    for file in collect_files(paths):
        source = file.read_text(encoding="utf-8")
        modules.append(SourceModule(_repo_relative(file), source))
    return Project(modules)
