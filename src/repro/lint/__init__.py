"""``repro lint`` — the AST-based invariant checker.

Everything this reproduction guarantees — sha256 content-addressed store
keys, byte-identical ``tests/golden/`` fixtures, bit-stable exports of the
paper's Eq. 1-3 accounting — rests on source-level invariants: seeded
randomness only, no wall-clock reads, deterministic iteration order, config
``to_dict``/``from_dict`` fidelity, slotted hot-path classes, library
errors from :mod:`repro.errors`.  Runtime tests catch violations *after*
they corrupt a fixture; this package proves the invariants statically, so
aggressive refactors (and outside contributions) fail fast instead.

Architecture
------------

* :mod:`repro.lint.source` — one parsed file (:class:`SourceModule`: AST,
  lines, ``# repro-lint: disable=RPL###`` suppressions) and the
  :class:`Project` that groups them with cross-file lookups (class table,
  test-string corpus, and the lazy interprocedural indexes below).
* :mod:`repro.lint.symbols` — the project-wide symbol table: every
  function/method under a dotted qualname, imports (absolute and relative)
  resolved to their targets.
* :mod:`repro.lint.callgraph` — call edges resolved through the symbol
  table and class ancestry, with a conservative dynamic-dispatch fallback;
  powers the RPL8xx transitive-determinism reachability walk.
* :mod:`repro.lint.rules` — the rule registry.  Every rule carries a
  stable ``RPL###`` code; families are grouped by hundreds (see
  ``docs/invariants.md`` for the catalogue).
* :mod:`repro.lint.runner` — collection, rule dispatch, suppression
  accounting (a suppression that silences nothing is itself a finding).
* :mod:`repro.lint.report` — text, JSON, and GitHub-annotation renderers.

Entry points: ``python -m repro lint [paths]`` (the CLI), or
:func:`lint_paths` / :func:`lint_project` from code and tests.
"""

from __future__ import annotations

from .callgraph import CallGraph
from .finding import Finding
from .runner import lint_paths, lint_project
from .source import Project, SourceModule
from .symbols import SymbolTable
from .report import render_github, render_json, render_text
from .rules import RULES, rule_catalog

__all__ = [
    "CallGraph",
    "Finding",
    "Project",
    "RULES",
    "SourceModule",
    "SymbolTable",
    "lint_paths",
    "lint_project",
    "render_github",
    "render_json",
    "render_text",
    "rule_catalog",
]
