"""RPL4xx — slots discipline on the PR-5 hot path.

``sim/events.py``, ``sim/timers.py``, and ``hypervisor/vcpu.py`` sit inside
the slice-dispatch loop that PR 5 audited allocation-by-allocation; their
classes are slotted so instances stay dict-free (smaller, faster attribute
access, and — the invariant that actually matters — no drive-by attribute
grows the per-event footprint unreviewed).  A ``self.x = ...`` outside
``__slots__`` raises AttributeError at runtime only on the path that
executes it; statically it is always visible.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..finding import Finding
from ..source import ClassInfo, Project, SourceModule, _collect_classes

from . import Rule, in_hot_path

#: Base classes whose instances legitimately carry a dict (or manage their
#: own storage): enums and exceptions are exempt from the slots rules.
_EXEMPT_BASES = frozenset({"Enum", "IntEnum", "StrEnum", "Flag", "IntFlag"})


def _is_exempt(info: ClassInfo) -> bool:
    if any(base in _EXEMPT_BASES for base in info.bases):
        return True
    return any(base.endswith(("Error", "Exception", "Warning")) for base in info.bases)


class MissingSlotsRule(Rule):
    code = "RPL402"
    name = "hot-path-slots"
    summary = (
        "every class in the hot-path modules (sim/events, sim/timers, "
        "hypervisor/vcpu) must declare __slots__"
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_hot_path(module.path)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for info in _collect_classes(module):
            if _is_exempt(info):
                continue
            if info.slots is None:
                yield self.finding(
                    module,
                    info.node,
                    f"hot-path class {info.name} has no __slots__; instances "
                    "grow a per-object dict inside the dispatch loop",
                )


class SlotsAssignmentRule(Rule):
    code = "RPL401"
    name = "slots-assignment"
    summary = (
        "hot-path classes must not assign self attributes outside their "
        "declared __slots__ (the names are the audited footprint)"
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_hot_path(module.path)

    def check_project(self, project: Project) -> Iterator[Finding]:
        for module in project.modules:
            if not self.applies_to(module):
                continue
            for info in _collect_classes(module):
                if _is_exempt(info) or info.slots is None:
                    continue
                allowed = set(info.slots)
                for ancestor in project.ancestry(info):
                    if ancestor.slots is not None:
                        allowed.update(ancestor.slots)
                for func in info.methods.values():
                    self_name = _self_param(func)
                    if self_name is None:
                        continue
                    for node in ast.walk(func):
                        target = _self_attr_target(node, self_name)
                        if target is not None and target.attr not in allowed:
                            yield self.finding(
                                module,
                                target,
                                f"assignment to {self_name}.{target.attr} "
                                f"outside __slots__ of {info.name}; add the "
                                "slot or drop the attribute",
                            )


def _self_param(func: ast.AST) -> str | None:
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return None
    args = func.args.posonlyargs + func.args.args
    if not args:
        return None
    for decorator in func.decorator_list:
        name = decorator.id if isinstance(decorator, ast.Name) else None
        if name in ("staticmethod", "classmethod"):
            return None
    return args[0].arg


def _self_attr_target(node: ast.AST, self_name: str) -> ast.Attribute | None:
    """The ``self.x`` target of an assignment statement, if any."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == self_name
        ):
            return target
    return None
