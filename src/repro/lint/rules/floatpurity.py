"""RPL6xx — float purity: accounting sums must have a fixed operand order.

Float addition is not associative: ``sum`` over a set (or ``+=`` inside a
``for`` over a set) yields hash-order-dependent last-ulp results, which is
exactly the class of drift the golden fixtures and the Eq. 1-3 accounting
comparisons are built to catch.  In accounting paths the operand order must
be a property of the data, never of the hash seed — iterate lists/tuples,
or ``sorted(...)`` the set first.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..finding import Finding
from ..source import SourceModule

from . import Rule, in_accounting
from .determinism import _is_set_expr


class SetSumRule(Rule):
    code = "RPL601"
    name = "no-set-sum"
    summary = (
        "accounting paths must not sum() over sets; float addition order "
        "would depend on the hash seed"
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_accounting(module.path)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            if not (isinstance(node, ast.Call) and node.args):
                continue
            func = node.func
            is_sum = (isinstance(func, ast.Name) and func.id == "sum") or (
                isinstance(func, ast.Attribute) and func.attr == "fsum"
            )
            if not is_sum:
                continue
            argument = node.args[0]
            # sum over a generator whose source is a set counts too.
            if isinstance(argument, ast.GeneratorExp):
                if any(_is_set_expr(gen.iter) for gen in argument.generators):
                    yield self.finding(
                        module,
                        node,
                        "sum() over a set-sourced generator in an accounting "
                        "path; iterate a sorted(...) or sequence instead",
                    )
            elif _is_set_expr(argument):
                yield self.finding(
                    module,
                    node,
                    "sum() over a set in an accounting path; float addition "
                    "order would follow the hash seed — sort first",
                )


class SetAccumulationRule(Rule):
    code = "RPL602"
    name = "no-set-accumulation"
    summary = (
        "accounting paths must not accumulate with += inside a loop over "
        "a set; operand order would depend on the hash seed"
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_accounting(module.path)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.For) or not _is_set_expr(node.iter):
                continue
            for inner in ast.walk(node):
                if isinstance(inner, ast.AugAssign) and isinstance(
                    inner.op, (ast.Add, ast.Sub, ast.Mult)
                ):
                    yield self.finding(
                        module,
                        inner,
                        "augmented accumulation inside a loop over a set in "
                        "an accounting path; sort the set before iterating",
                    )
