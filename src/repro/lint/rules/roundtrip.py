"""RPL2xx — spec round-trip: to_dict/from_dict must cover every field.

Scenario specs are hashed (sha256 of canonical JSON) into store keys and
written into sweep manifests.  A dataclass field that ``to_dict`` silently
drops aliases distinct configs onto one store cell; a field ``from_dict``
silently ignores resurrects stale defaults on reload.  Both are invisible
at runtime until a sweep resumes wrong.

The rules check every ``*Config``/``*Spec`` dataclass in library code (plus
any dataclass that defines both methods, e.g. ``MigrationModel``).  Two
implementation styles count as full coverage without per-field evidence:

* a loop / comprehension over ``dataclasses.fields(self)`` in ``to_dict``
* a ``cls(**kwargs)`` splat in ``from_dict``

Otherwise each field name must literally appear as a string constant or a
keyword argument inside the method body.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..finding import Finding
from ..source import ClassInfo, Project

from . import Rule, in_library


def _is_dataclass(info: ClassInfo) -> bool:
    for decorator in info.node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _field_names(info: ClassInfo) -> list[str]:
    """Declared dataclass fields: annotated class-body names, no ClassVar."""
    names = []
    for stmt in info.node.body:
        if not isinstance(stmt, ast.AnnAssign) or not isinstance(
            stmt.target, ast.Name
        ):
            continue
        annotation = ast.unparse(stmt.annotation)
        if "ClassVar" in annotation:
            continue
        if not stmt.target.id.startswith("_"):
            names.append(stmt.target.id)
    return names


def _uses_dataclass_fields(func: ast.FunctionDef) -> bool:
    """True when the body walks ``dataclasses.fields(...)`` / ``fields(...)``."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            target = node.func
            if isinstance(target, ast.Name) and target.id == "fields":
                return True
            if isinstance(target, ast.Attribute) and target.attr == "fields":
                return True
    return False


def _splats_into_cls(func: ast.FunctionDef) -> bool:
    """True when the body calls ``cls(**anything)``."""
    for node in ast.walk(func):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id == "cls" and any(
                kw.arg is None for kw in node.keywords
            ):
                return True
    return False


def _mentioned_names(func: ast.FunctionDef) -> set[str]:
    """String constants and keyword-argument names in the body."""
    mentioned: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            mentioned.add(node.value)
        elif isinstance(node, ast.keyword) and node.arg is not None:
            mentioned.add(node.arg)
        elif isinstance(node, ast.Attribute):
            # getattr-style access (``self.field`` / ``data.field``) also
            # proves the field is handled.
            mentioned.add(node.attr)
    return mentioned


def _roundtrip_classes(project: Project) -> Iterator[ClassInfo]:
    for name in sorted(project.classes):
        for info in project.classes[name]:
            if not in_library(info.module.path):
                continue
            if not _is_dataclass(info):
                continue
            suffix_match = name.endswith(("Config", "Spec"))
            both_methods = "to_dict" in info.methods and "from_dict" in info.methods
            if suffix_match or both_methods:
                yield info


class ToDictRule(Rule):
    code = "RPL201"
    name = "roundtrip-to-dict"
    summary = (
        "every field of a *Config/*Spec dataclass must be written by its "
        "to_dict (silent drops alias distinct specs onto one store key)"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for info in _roundtrip_classes(project):
            func = info.methods.get("to_dict")
            if func is None or _uses_dataclass_fields(func):
                continue
            mentioned = _mentioned_names(func)
            for field in _field_names(info):
                if field not in mentioned:
                    yield self.finding(
                        info.module,
                        func,
                        f"{info.name}.to_dict does not serialise field "
                        f"`{field}`; the store key would not see it",
                    )


class FromDictRule(Rule):
    code = "RPL202"
    name = "roundtrip-from-dict"
    summary = (
        "every field of a *Config/*Spec dataclass must be accepted by its "
        "from_dict (ignored keys resurrect stale defaults on reload)"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for info in _roundtrip_classes(project):
            func = info.methods.get("from_dict")
            if func is None or _splats_into_cls(func):
                continue
            mentioned = _mentioned_names(func)
            for field in _field_names(info):
                if field not in mentioned:
                    yield self.finding(
                        info.module,
                        func,
                        f"{info.name}.from_dict does not accept field "
                        f"`{field}`; reloading would reset it to the default",
                    )
