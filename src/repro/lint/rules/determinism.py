"""RPL1xx — determinism: no wall clocks, no entropy, no unordered order.

Simulated time is the only time (`Engine._now`); every random draw flows
through a seeded :class:`repro.sim.rng.RngStreams` stream; iteration that
feeds the event heap or an export must be order-stable.  Any violation
desynchronises reruns, which shows up as a golden-fixture diff or a store
key that no longer matches its cell.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..finding import Finding
from ..source import SourceModule

# Deferred import would be circular at module load; the package imports us.
from . import Rule, in_library, in_order_sensitive, in_wall_clock_sanctioned


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for an attribute chain of plain names, else None."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def _canonical(module: SourceModule, node: ast.expr) -> str | None:
    """The dotted call name with import aliases resolved.

    ``_wall.time`` under ``import time as _wall`` canonicalises to
    ``time.time``; a bare ``urandom`` under ``from os import urandom`` to
    ``os.urandom`` — so aliasing an import never evades a ban list.
    """
    dotted = _dotted(node)
    if dotted is None:
        return None
    head, sep, rest = dotted.partition(".")
    prefix = module.import_aliases().get(head, head)
    return f"{prefix}.{rest}" if rest else prefix


#: Wall-clock reads.  Simulated seconds come from ``Engine.now`` only.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)

#: OS / hardware entropy.  Store keys must be pure functions of the spec.
_ENTROPY = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
        "random.SystemRandom",
    }
)

#: Module-level functions of :mod:`random` — they draw from the shared,
#: process-global generator, whose state no scenario seed controls.
_GLOBAL_RANDOM = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)


class WallClockRule(Rule):
    code = "RPL101"
    name = "no-wall-clock"
    summary = (
        "library code must not read host time (time.time, datetime.now, ...); "
        "simulated time comes from Engine.now (sole exception: the opt-in "
        "profiler module, whose job is wall time)"
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_library(module.path) and not in_wall_clock_sanctioned(module.path)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = _canonical(module, node.func)
            if dotted in _WALL_CLOCK:
                yield self.finding(
                    module,
                    node,
                    f"wall-clock read `{dotted}()` in library code; simulated "
                    "time must come from Engine.now",
                )


class EntropySourceRule(Rule):
    code = "RPL102"
    name = "no-entropy"
    summary = (
        "library code must not draw OS entropy (os.urandom, uuid4, secrets); "
        "store keys are pure functions of the spec"
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_library(module.path)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = _canonical(module, node.func)
            if dotted in _ENTROPY:
                yield self.finding(
                    module,
                    node,
                    f"entropy source `{dotted}` in library code; all randomness "
                    "must flow through a seeded RngStreams stream",
                )


class UnseededRandomRule(Rule):
    code = "RPL103"
    name = "no-global-random"
    summary = (
        "library code must not call module-level random.* functions or "
        "construct random.Random() without a seed"
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_library(module.path)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.Call):
                continue
            dotted = _canonical(module, node.func)
            if dotted is None or not dotted.startswith("random."):
                continue
            attr = dotted[len("random.") :]
            if attr in _GLOBAL_RANDOM:
                yield self.finding(
                    module,
                    node,
                    f"`random.{attr}()` uses the process-global "
                    "generator; draw from a seeded RngStreams stream",
                )
            elif attr == "Random" and not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node,
                    "`random.Random()` without a seed falls back to OS "
                    "entropy; pass an explicit seed",
                )


def _is_set_expr(node: ast.expr) -> bool:
    """Expressions that statically *are* sets (literal, comp, set()/frozenset)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    # set arithmetic (a | b, a & b, a - b) over set operands
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub)
    ):
        return _is_set_expr(node.left) or _is_set_expr(node.right)
    return False


class UnorderedIterationRule(Rule):
    code = "RPL104"
    name = "no-unordered-iteration"
    summary = (
        "order-sensitive modules (sim/, sweep/, telemetry/export) must not "
        "iterate sets; set order varies across interpreter runs"
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_order_sensitive(module.path)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            iterable: ast.expr | None = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterable = node.iter
            elif isinstance(node, ast.comprehension):
                iterable = node.iter
            if iterable is None or not _is_set_expr(iterable):
                continue
            # ``sorted(<set>)`` is the sanctioned escape; the parent call
            # shows up as the iterable, so only raw set expressions reach
            # this point — no parent check needed for comprehensions, but a
            # ``for`` wrapped as ``for x in sorted({...})`` never matches.
            yield self.finding(
                module,
                node if isinstance(node, (ast.For, ast.AsyncFor)) else iterable,
                "iteration over a set in an order-sensitive module; wrap in "
                "sorted(...) so replay order is stable across runs",
            )
