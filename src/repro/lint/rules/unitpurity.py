"""RPL7xx — unit purity: the `units.py` naming conventions, enforced.

The paper's model juggles four-plus physical dimensions — MHz P-states,
watt curves, credit percentages, absolute work-seconds (Eq. 1–3) — and
``repro/units.py`` pins the naming conventions that keep them apart
(``*_s``, ``*_mhz``, ``*_w``, ``*_percent``, …; bare ``credit``/``cap``/
``load`` names are percentages).  These rules *infer* a dimension for every
name from those conventions and flag the places where dimensions mix:

* RPL701 — arithmetic (``+``/``-``, comparisons) between two names of
  different inferred dimensions (``power_w + energy_kwh``);
* RPL702 — assigning a value of one dimension to a name of another with no
  conversion expression in between;
* RPL703 — percent↔fraction confusion: a ``[0, 100]`` name compared against
  a ``(0, 1)`` literal bound, or a percent-dimensioned argument handed to
  ``check_fraction``/``percent_to_fraction`` (and vice versa);
* RPL704 — a public ``float`` parameter in an accounting module whose name
  carries no dimension suffix at all, so none of the rules above can see it.

Inference is deliberately name-based and conservative: products, quotients
and unrecognised names infer *no* dimension and never flag, so a genuine
conversion (``load_percent / 100.0``, ``percent_to_fraction(cap)``) is
always a sanctioned escape.  The lattice and suffix table live in
``docs/invariants.md``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..finding import Finding
from ..source import SourceModule
from . import Rule, in_accounting, in_library

#: Suffix token → dimension label.  Matched against the last ``_``-separated
#: token of a name; a single-token name matches only when the token is at
#: least three characters (so loop variables ``w``/``s``/``t`` stay inert —
#: ``t`` is claimed by the simulated-time names below instead).
_SUFFIX_UNITS: dict[str, str] = {
    "s": "s",
    "sec": "s",
    "secs": "s",
    "seconds": "s",
    "mhz": "MHz",
    "ghz": "GHz",
    "w": "W",
    "watt": "W",
    "watts": "W",
    "kwh": "kWh",
    "wh": "Wh",
    "j": "J",
    "joules": "J",
    "percent": "%",
    "pct": "%",
    "fraction": "frac",
    "frac": "frac",
    "mb": "MB",
    "gb": "GB",
    "rps": "req/s",
}

#: Stems that are percentages by convention (units.py: "credits, caps and
#: loads are percentages in [0, 100]").  Matched as the whole name or its
#: last token.
_PERCENT_STEMS = frozenset(
    {
        "cap",
        "caps",
        "credit",
        "credits",
        "load",
        "loads",
        "util",
        "utilisation",
        "utilization",
    }
)

#: Names that are simulated seconds by convention even without a suffix —
#: the engine's own vocabulary (``Engine.now``, ``dt``, ``run_until``).
_TIME_NAMES = frozenset(
    {
        "deadline",
        "delay",
        "dt",
        "duration",
        "elapsed",
        "end",
        "horizon",
        "now",
        "period",
        "start",
        "t",
        "time",
        "until",
        "wall_dt",
        "when",
    }
)

#: Last tokens that mark a compound name as seconds (``boot_time``,
#: ``epoch_duration``); ``*_s`` is still the preferred spelling.
_TIME_LAST_TOKENS = frozenset(
    {"deadline", "delay", "duration", "elapsed", "horizon", "interval", "period", "time"}
)

#: Conversion helpers from units.py: callee name → dimension of the result.
_CONVERSIONS = {
    "percent_to_fraction": "frac",
    "fraction_to_percent": "%",
}

#: Dimensionless names a public float parameter may use without a suffix
#: (RPL704): pure ratios, curve-fit coefficients, interpolation bounds.
_DIMENSIONLESS_PARAMS = frozenset(
    {
        "alpha",
        "beta",
        "epsilon",
        "eps",
        "cf",  # paper notation: the calibration frequency-capacity ratio
        "cf_min",
        "cf_max",
        "factor",
        "gamma",
        "hi",
        "lo",
        "requests",  # a (fractional) request count, not a physical quantity
        "mean",
        "ratio",
        "scale",
        "sigma",
        "slope",
        "std",
        "tolerance",
        "value",
        "weight",
        "y_max",  # chart axis bounds take whatever unit the series has
        "y_min",
    }
)


def infer_unit_of_name(name: str) -> str | None:
    """The dimension a bare name carries by convention, or None.

    Precedence: explicit suffix beats stem conventions beats the
    simulated-time vocabulary — ``utilization_fraction`` is a fraction even
    though the ``utilization`` stem alone would read as a percentage.
    """
    lowered = name.lower()
    tokens = lowered.split("_")
    if "per" in tokens:
        return None  # rates (work_per_period, moves_per_epoch) are ratios
    last = tokens[-1]
    if last in _SUFFIX_UNITS and (len(tokens) >= 2 or len(last) >= 3):
        return _SUFFIX_UNITS[last]
    if lowered in _PERCENT_STEMS or last in _PERCENT_STEMS:
        return "%"
    if lowered in _TIME_NAMES:
        return "s"
    if len(tokens) >= 2 and last in _TIME_LAST_TOKENS:
        return "s"
    if tokens[0] == "work" or last == "work":
        return "work-s"
    return None


def _callee_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def infer_unit_of_expr(node: ast.expr) -> str | None:
    """The dimension of an expression, or None when it cannot be known.

    Products, quotients, unrecognised calls and bare literals infer None —
    the conservative answer that makes every conversion expression a
    sanctioned escape from the assignment/arithmetic rules.
    """
    if isinstance(node, ast.Name):
        return infer_unit_of_name(node.id)
    if isinstance(node, ast.Attribute):
        return infer_unit_of_name(node.attr)
    if isinstance(node, ast.UnaryOp):
        return infer_unit_of_expr(node.operand)
    if isinstance(node, ast.Call):
        callee = _callee_name(node.func)
        if callee is None:
            return None
        if callee in _CONVERSIONS:
            return _CONVERSIONS[callee]
        return infer_unit_of_name(callee)
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
        left = infer_unit_of_expr(node.left)
        right = infer_unit_of_expr(node.right)
        if left == right:
            return left
        if left is None:
            return right
        if right is None:
            return left
        return None  # mixed: RPL701's business, not a usable dimension
    if isinstance(node, ast.IfExp):
        body = infer_unit_of_expr(node.body)
        orelse = infer_unit_of_expr(node.orelse)
        return body if body == orelse else None
    return None


def _operand_label(node: ast.expr) -> str:
    """A short human label for an operand in a finding message."""
    name = _callee_name(node) if isinstance(node, ast.Call) else None
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    elif isinstance(node, ast.UnaryOp):
        return _operand_label(node.operand)
    if name is not None:
        return f"`{name}`"
    return "expression"


class UnitMixRule(Rule):
    code = "RPL701"
    name = "no-dimension-mixing"
    summary = (
        "additive arithmetic and comparisons must not mix inferred "
        "dimensions (power_w + energy_kwh); convert explicitly first"
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_library(module.path)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Sub)):
                yield from self._check_pair(module, node, node.left, node.right)
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                yield from self._check_pair(module, node, node.target, node.value)
            elif isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for left, right in zip(operands, operands[1:]):
                    yield from self._check_pair(module, node, left, right)

    def _check_pair(
        self,
        module: SourceModule,
        node: ast.AST,
        left: ast.expr,
        right: ast.expr,
    ) -> Iterator[Finding]:
        left_unit = infer_unit_of_expr(left)
        right_unit = infer_unit_of_expr(right)
        if left_unit is None or right_unit is None or left_unit == right_unit:
            return
        yield self.finding(
            module,
            node,
            f"dimension mix: {_operand_label(left)} is [{left_unit}] but "
            f"{_operand_label(right)} is [{right_unit}]; convert one side "
            "explicitly before combining",
        )


class UnitAssignRule(Rule):
    code = "RPL702"
    name = "no-cross-dimension-assignment"
    summary = (
        "a name of one inferred dimension must not be assigned a value of "
        "another without a conversion expression"
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_library(module.path)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = list(node.targets), node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            value_unit = infer_unit_of_expr(value)
            if value_unit is None:
                continue
            for target in targets:
                if not isinstance(target, (ast.Name, ast.Attribute)):
                    continue
                target_unit = infer_unit_of_expr(target)
                if target_unit is None or target_unit == value_unit:
                    continue
                yield self.finding(
                    module,
                    node,
                    f"cross-dimension assignment: {_operand_label(target)} is "
                    f"[{target_unit}] but the value is [{value_unit}]; insert "
                    "an explicit conversion",
                )


def _float_literal(node: ast.expr) -> float | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
    ):
        return None  # negative bounds are out of both ranges anyway
    return None


class PercentFractionRule(Rule):
    code = "RPL703"
    name = "no-percent-fraction-confusion"
    summary = (
        "percent names ([0,100]) must not meet (0,1) literal bounds or "
        "check_fraction/percent_to_fraction, and vice versa"
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_library(module.path)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            if isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for left, right in zip(operands, operands[1:]):
                    yield from self._check_bound(module, node, left, right)
                    yield from self._check_bound(module, node, right, left)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node)

    def _check_bound(
        self,
        module: SourceModule,
        node: ast.Compare,
        name_side: ast.expr,
        literal_side: ast.expr,
    ) -> Iterator[Finding]:
        unit = infer_unit_of_expr(name_side)
        if unit not in ("%", "frac"):
            return
        bound = _float_literal(literal_side)
        if bound is None:
            return
        if unit == "%" and 0.0 < bound < 1.0:
            yield self.finding(
                module,
                node,
                f"{_operand_label(name_side)} is a percentage in [0, 100] but "
                f"is compared against {bound!r}, a fraction-range bound; "
                "scale one side",
            )
        elif unit == "frac" and 1.0 < bound <= 100.0:
            yield self.finding(
                module,
                node,
                f"{_operand_label(name_side)} is a fraction in [0, 1] but is "
                f"compared against {bound!r}, a percent-range bound; "
                "scale one side",
            )

    def _check_call(self, module: SourceModule, node: ast.Call) -> Iterator[Finding]:
        callee = _callee_name(node.func)
        if callee not in (
            "check_fraction",
            "check_percent",
            "percent_to_fraction",
            "fraction_to_percent",
        ):
            return
        if not node.args:
            return
        arg = node.args[0]
        unit = infer_unit_of_expr(arg)
        expects_fraction = callee in ("check_fraction", "fraction_to_percent")
        if expects_fraction and unit == "%":
            yield self.finding(
                module,
                node,
                f"`{callee}` expects a fraction in [0, 1] but "
                f"{_operand_label(arg)} is named as a percentage; rename the "
                "value or convert with percent_to_fraction",
            )
        elif not expects_fraction and unit == "frac":
            yield self.finding(
                module,
                node,
                f"`{callee}` expects a percentage in [0, 100] but "
                f"{_operand_label(arg)} is named as a fraction; rename the "
                "value or convert with fraction_to_percent",
            )


def _is_float_annotation(node: ast.expr | None) -> bool:
    """Exactly ``float``, ``float | None`` or ``Optional[float]``."""
    if node is None:
        return False
    if isinstance(node, ast.Name):
        return node.id == "float"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        stripped = node.value.replace(" ", "")
        return stripped in ("float", "float|None", "Optional[float]")
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        sides = (node.left, node.right)
        has_float = any(isinstance(s, ast.Name) and s.id == "float" for s in sides)
        has_none = any(
            isinstance(s, ast.Constant) and s.value is None for s in sides
        )
        return has_float and has_none
    if isinstance(node, ast.Subscript) and isinstance(node.value, ast.Name):
        return (
            node.value.id == "Optional"
            and isinstance(node.slice, ast.Name)
            and node.slice.id == "float"
        )
    return False


class UnsuffixedParamRule(Rule):
    code = "RPL704"
    name = "no-unsuffixed-float-param"
    summary = (
        "public float parameters in accounting modules must carry a unit "
        "suffix or convention name so the dimension rules can see them"
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_accounting(module.path)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for func, class_name in self._public_functions(module):
            args = func.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if arg.arg in ("self", "cls"):
                    continue
                if not _is_float_annotation(arg.annotation):
                    continue
                if arg.arg in _DIMENSIONLESS_PARAMS:
                    continue
                if infer_unit_of_name(arg.arg) is not None:
                    continue
                owner = f"{class_name}.{func.name}" if class_name else func.name
                yield self.finding(
                    module,
                    arg,
                    f"float parameter `{arg.arg}` of public `{owner}` carries "
                    "no unit; suffix it per units.py (`_s`, `_mhz`, `_w`, "
                    "`_percent`, `_fraction`, ...)",
                )

    def _public_functions(
        self, module: SourceModule
    ) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
        def is_public(name: str) -> bool:
            return not name.startswith("_") or name == "__init__"

        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if is_public(stmt.name):
                    yield stmt, None
            elif isinstance(stmt, ast.ClassDef) and not stmt.name.startswith("_"):
                for item in stmt.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and is_public(item.name):
                        yield item, stmt.name
