"""The lint rule registry.

Every rule is an instance of :class:`Rule` with a stable ``RPL###`` code.
Families are grouped by hundreds:

* ``RPL0xx`` — the framework's own checks (unused/unknown suppressions,
  emitted by the runner, declared here so ``--select``/``--ignore`` and the
  catalogue see them).
* ``RPL1xx`` — determinism (:mod:`.determinism`)
* ``RPL2xx`` — spec round-trip (:mod:`.roundtrip`)
* ``RPL3xx`` — registry contract (:mod:`.registry_contract`)
* ``RPL4xx`` — slots discipline (:mod:`.slots`)
* ``RPL5xx`` — error hygiene (:mod:`.hygiene`)
* ``RPL6xx`` — float purity (:mod:`.floatpurity`)
* ``RPL7xx`` — unit purity (:mod:`.unitpurity`)
* ``RPL8xx`` — transitive determinism (:mod:`.reachability`)

Rules are *tuned to this codebase*: path scopes below name the actual
modules whose invariants back the golden fixtures and store keys, not a
generic ideal of Python style.  ``docs/invariants.md`` is the prose
catalogue.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..finding import Finding
from ..source import Project, SourceModule

__all__ = [
    "FRAMEWORK_CODES",
    "RULES",
    "Rule",
    "WALL_CLOCK_SANCTIONED",
    "all_codes",
    "in_accounting",
    "in_hot_path",
    "in_library",
    "in_library_core",
    "in_order_sensitive",
    "in_wall_clock_sanctioned",
    "rule_catalog",
]


class Rule:
    """One checkable invariant with a stable code.

    Subclasses override :meth:`check` (per-module) and/or
    :meth:`check_project` (cross-file).  ``applies_to`` gates per-module
    checks by path scope so rules stay cheap and targeted.
    """

    code: str = "RPL000"
    name: str = "rule"
    summary: str = ""

    def applies_to(self, module: SourceModule) -> bool:
        return True

    def check(self, module: SourceModule) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        return iter(())

    # ----------------------------------------------------------- helpers

    def finding(self, module: SourceModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


# ------------------------------------------------------------ path scopes
#
# Scopes are repo-relative POSIX path predicates.  Tests exercise them with
# virtual paths ("src/repro/sim/fake.py"), so no fixture file on disk ever
# carries a live violation.


def in_library(path: str) -> bool:
    """All library code shipped under ``src/repro``."""
    return path.startswith("src/repro/")


#: The one module allowed to read a wall clock: the opt-in phase profiler.
#: It attaches dynamically (setattr / timer-callback rebinding), so the
#: RPL8xx reachability walk never sees it from the determinism roots — the
#: sanction is a *rule-scope* carve-out, not a suppression comment, and
#: tests/lint/test_meta.py proves the same source is flagged anywhere else.
WALL_CLOCK_SANCTIONED = frozenset({"src/repro/obs/profile.py"})


def in_wall_clock_sanctioned(path: str) -> bool:
    """True for the profiler module, where wall-clock reads are the point."""
    return path in WALL_CLOCK_SANCTIONED


def in_library_core(path: str) -> bool:
    """Library code minus the presentation boundary.

    ``cli.py`` and ``__main__.py`` talk to a terminal — printing and
    argparse-style ValueErrors are their job, so the error-hygiene rules
    stop at that boundary.
    """
    return in_library(path) and not path.endswith(("/cli.py", "/__main__.py"))


def in_order_sensitive(path: str) -> bool:
    """Modules whose iteration order reaches exports or event scheduling.

    The simulator heap, telemetry export, and sweep enumeration all feed
    byte-compared artefacts (golden fixtures, store keys, CSV exports); an
    unordered iteration here reorders output across interpreter runs.
    """
    return (
        path.startswith("src/repro/sim/")
        or path.startswith("src/repro/sweep/")
        or path == "src/repro/telemetry/export.py"
    )


#: PR-5 hot-path modules: allocation discipline is load-bearing here.
_HOT_PATH = frozenset(
    {
        "src/repro/sim/events.py",
        "src/repro/sim/timers.py",
        "src/repro/hypervisor/vcpu.py",
    }
)


def in_hot_path(path: str) -> bool:
    """The slice-dispatch hot path (slotted, allocation-audited in PR 5)."""
    return path in _HOT_PATH


def in_accounting(path: str) -> bool:
    """Paths whose float arithmetic lands in Eq. 1-3 accounting output."""
    return (
        path.startswith("src/repro/cpu/")
        or path.startswith("src/repro/core/")
        or path.startswith("src/repro/hypervisor/")
        or path.startswith("src/repro/telemetry/")
        or path == "src/repro/cluster/orchestrator.py"
        or path == "src/repro/sweep/metrics.py"
        or path == "src/repro/workloads/latency.py"
    )


# --------------------------------------------------------------- registry

from .determinism import (  # noqa: E402
    EntropySourceRule,
    UnorderedIterationRule,
    UnseededRandomRule,
    WallClockRule,
)
from .floatpurity import SetAccumulationRule, SetSumRule  # noqa: E402
from .hygiene import NonLibraryRaiseRule, PrintRule  # noqa: E402
from .reachability import (  # noqa: E402
    TransitiveEntropyRule,
    TransitiveRandomRule,
    TransitiveWallClockRule,
)
from .registry_contract import RegistryHooksRule, RegistryTestedRule  # noqa: E402
from .roundtrip import FromDictRule, ToDictRule  # noqa: E402
from .slots import MissingSlotsRule, SlotsAssignmentRule  # noqa: E402
from .unitpurity import (  # noqa: E402
    PercentFractionRule,
    UnitAssignRule,
    UnitMixRule,
    UnsuffixedParamRule,
)

#: Codes emitted by the runner itself rather than a visitor.
FRAMEWORK_CODES: dict[str, str] = {
    "RPL001": "unused suppression: the comment silences nothing on its line",
    "RPL002": "unknown rule code in a repro-lint suppression comment",
}

#: Every rule, in code order.  The tuple is the single source of truth the
#: runner, the CLI ``--select``/``--ignore`` validation, the catalogue in
#: ``docs/invariants.md``, and the tests all draw from.
RULES: tuple[Rule, ...] = (
    WallClockRule(),
    EntropySourceRule(),
    UnseededRandomRule(),
    UnorderedIterationRule(),
    ToDictRule(),
    FromDictRule(),
    RegistryHooksRule(),
    RegistryTestedRule(),
    SlotsAssignmentRule(),
    MissingSlotsRule(),
    NonLibraryRaiseRule(),
    PrintRule(),
    SetSumRule(),
    SetAccumulationRule(),
    UnitMixRule(),
    UnitAssignRule(),
    PercentFractionRule(),
    UnsuffixedParamRule(),
    TransitiveWallClockRule(),
    TransitiveEntropyRule(),
    TransitiveRandomRule(),
)


def all_codes() -> frozenset[str]:
    """Every valid code: registered rules plus the framework's own."""
    return frozenset(rule.code for rule in RULES) | frozenset(FRAMEWORK_CODES)


def rule_catalog() -> list[dict]:
    """The machine-readable catalogue (``repro lint --list-rules``)."""
    entries = [
        {"code": code, "name": "suppression-audit", "summary": summary}
        for code, summary in sorted(FRAMEWORK_CODES.items())
    ]
    entries.extend(
        {"code": rule.code, "name": rule.name, "summary": rule.summary}
        for rule in RULES
    )
    entries.sort(key=lambda entry: entry["code"])
    return entries
