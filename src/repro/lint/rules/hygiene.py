"""RPL5xx — error hygiene: library failures speak :mod:`repro.errors`.

Callers (the CLI, the sweep workers, the store) catch ``ReproError`` to
distinguish "bad spec / bad state" from genuine bugs; a library module that
raises ``ValueError`` punches through that net, and one that ``print``s
corrupts machine-read stdout (the CSV/JSON exports and the bench runner's
captured output).  ``cli.py`` and ``__main__.py`` are the presentation
boundary and are exempt — talking to a terminal is their whole job.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..finding import Finding
from ..source import SourceModule

from . import Rule, in_library_core

#: Builtin exception types a library module must not raise.  Absent on
#: purpose: ``NotImplementedError`` (abstract hooks), ``StopIteration`` /
#: ``StopAsyncIteration`` (iterator protocol), ``KeyboardInterrupt``.
_BUILTIN_RAISES = frozenset(
    {
        "ArithmeticError",
        "AssertionError",
        "AttributeError",
        "BaseException",
        "Exception",
        "IndexError",
        "IOError",
        "KeyError",
        "LookupError",
        "OSError",
        "OverflowError",
        "RuntimeError",
        "TypeError",
        "ValueError",
        "ZeroDivisionError",
    }
)


class NonLibraryRaiseRule(Rule):
    code = "RPL501"
    name = "raise-repro-errors"
    summary = (
        "library code must raise repro.errors types, not builtin exceptions "
        "(ValueError, RuntimeError, ...) that escape the ReproError net"
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_library_core(module.path)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            name = None
            if isinstance(target, ast.Name):
                name = target.id
            elif isinstance(target, ast.Attribute):
                name = target.attr
            if name in _BUILTIN_RAISES:
                yield self.finding(
                    module,
                    node,
                    f"library raise of builtin `{name}`; raise a "
                    "repro.errors type so callers catching ReproError see it",
                )


class PrintRule(Rule):
    code = "RPL502"
    name = "no-library-print"
    summary = (
        "library code must not print; stdout belongs to the CLI and to "
        "machine-read export/bench output"
    )

    def applies_to(self, module: SourceModule) -> bool:
        return in_library_core(module.path)

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in module.walk():
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.finding(
                    module,
                    node,
                    "print() in library code; return the text or raise — "
                    "stdout belongs to the CLI",
                )
