"""RPL3xx — registry contract: registered names are implemented and tested.

The CLI, scenario configs, and sweep grids address schedulers, governors,
orchestration policies, and presets purely by registry name.  A registered
class missing a required hook fails only when that name is first exercised
— possibly hours into a sweep; a name no test references can rot silently.
These are project rules: they read the actual registry modules (this is a
codebase-specific linter, the locations are pinned) and cross-check against
the class table and the string corpus of the linted test modules.

Registries checked:

* ``src/repro/schedulers/registry.py`` — ``SCHEDULER_NAMES`` +
  ``make_scheduler`` if-chain; hooks = ``Scheduler`` abstract methods.
* ``src/repro/governors/registry.py`` — ``_FACTORIES`` dict literal;
  hooks = ``Governor`` abstract methods.
* ``src/repro/cluster/policies.py`` — ``POLICY_REGISTRY`` dict keyed by
  ``<Class>.name``; hooks = ``OrchestrationPolicy`` NotImplementedError
  methods.
* ``src/repro/experiments/presets.py`` — ``Preset(name=...)`` factories;
  names only (presets are data, they have no hooks).
* ``src/repro/qos/controllers.py`` — ``CONTROLLER_REGISTRY`` dict keyed by
  ``<Class>.name``; hooks = ``QosController`` abstract methods.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from ..finding import Finding
from ..source import ClassInfo, Project, SourceModule

from . import Rule


@dataclass(frozen=True)
class _Registered:
    """One registry entry: a public name, where it is declared, and (for
    class-backed registries) the implementing class name."""

    kind: str
    name: str
    module: SourceModule
    node: ast.AST
    class_name: str | None = None


def _str_const(node: ast.expr) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _scheduler_entries(module: SourceModule) -> Iterator[_Registered]:
    """``SCHEDULER_NAMES`` paired with the classes ``make_scheduler`` builds."""
    names: list[tuple[str, ast.AST]] = []
    class_for_name: dict[str, str] = {}
    for node in module.walk():
        if isinstance(node, ast.Assign):
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == "SCHEDULER_NAMES":
                if isinstance(node.value, (ast.Tuple, ast.List)):
                    for element in node.value.elts:
                        if (name := _str_const(element)) is not None:
                            names.append((name, element))
        elif isinstance(node, ast.FunctionDef) and node.name == "make_scheduler":
            # if name == "credit": return CreditScheduler(**kwargs)
            for inner in ast.walk(node):
                if not isinstance(inner, ast.If):
                    continue
                test = inner.test
                if not (
                    isinstance(test, ast.Compare)
                    and (name := _str_const(test.comparators[0])) is not None
                ):
                    continue
                for stmt in ast.walk(inner):
                    if (
                        isinstance(stmt, ast.Call)
                        and isinstance(stmt.func, ast.Name)
                        and stmt.func.id[:1].isupper()
                    ):
                        class_for_name[name] = stmt.func.id
                        break
    for name, node in names:
        yield _Registered(
            kind="scheduler",
            name=name,
            module=module,
            node=node,
            class_name=class_for_name.get(name),
        )


def _dict_registry_entries(
    module: SourceModule, kind: str, registry_name: str
) -> Iterator[_Registered]:
    """Entries of a ``{name: Class}`` dict literal (governors, policies).

    Keys are either string constants (``_FACTORIES``) or ``Class.name``
    attribute references (``POLICY_REGISTRY``), resolved against the class
    body's ``name = "..."`` attribute.
    """
    for node in module.walk():
        if not (
            isinstance(node, ast.Assign)
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == registry_name
            and isinstance(node.value, ast.Dict)
        ):
            continue
        class_names = _module_classes(module)
        for key, value in zip(node.value.keys, node.value.values):
            class_name = value.id if isinstance(value, ast.Name) else None
            name = _str_const(key) if key is not None else None
            if (
                name is None
                and isinstance(key, ast.Attribute)
                and key.attr == "name"
                and isinstance(key.value, ast.Name)
            ):
                info = class_names.get(key.value.id)
                if info is not None:
                    name = _str_const(info.class_attrs.get("name"))
            if name is not None:
                yield _Registered(
                    kind=kind,
                    name=name,
                    module=module,
                    node=key if key is not None else node,
                    class_name=class_name,
                )


def _module_classes(module: SourceModule) -> dict[str, ClassInfo]:
    from ..source import _collect_classes

    return {info.name: info for info in _collect_classes(module)}


def _preset_entries(module: SourceModule) -> Iterator[_Registered]:
    """Every ``Preset(name="...")`` construction."""
    for node in module.walk():
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "Preset"
        ):
            continue
        for keyword in node.keywords:
            if keyword.arg == "name" and (name := _str_const(keyword.value)):
                yield _Registered(
                    kind="preset", name=name, module=module, node=node
                )


#: registry module path → (kind, entry extractor, base class with hooks)
_REGISTRIES: tuple[tuple[str, str, str | None], ...] = (
    ("src/repro/schedulers/registry.py", "scheduler", "Scheduler"),
    ("src/repro/governors/registry.py", "governor", "Governor"),
    ("src/repro/cluster/policies.py", "policy", "OrchestrationPolicy"),
    ("src/repro/experiments/presets.py", "preset", None),
    ("src/repro/qos/controllers.py", "qos-controller", "QosController"),
)


def _entries_for(module: SourceModule, kind: str) -> Iterator[_Registered]:
    if kind == "scheduler":
        yield from _scheduler_entries(module)
    elif kind == "governor":
        yield from _dict_registry_entries(module, kind, "_FACTORIES")
    elif kind == "policy":
        yield from _dict_registry_entries(module, kind, "POLICY_REGISTRY")
    elif kind == "qos-controller":
        yield from _dict_registry_entries(module, kind, "CONTROLLER_REGISTRY")
    elif kind == "preset":
        yield from _preset_entries(module)


class RegistryHooksRule(Rule):
    code = "RPL301"
    name = "registry-hooks"
    summary = (
        "every registered scheduler/governor/policy class must implement "
        "its base's abstract hooks (missing ones fail mid-sweep)"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        for path, kind, base_name in _REGISTRIES:
            module = project.module_at(path)
            if module is None or base_name is None:
                continue
            base = project.class_named(base_name)
            if base is None or not base.abstract_methods:
                continue
            for entry in _entries_for(module, kind):
                if entry.class_name is None:
                    continue
                info = project.class_named(entry.class_name)
                if info is None:
                    # Implementation not in the lint run (e.g. lazy import
                    # target outside the linted paths): nothing to judge.
                    continue
                implemented: set[str] = set()
                for ancestor in project.ancestry(info):
                    for method in ancestor.methods:
                        if method not in ancestor.abstract_methods:
                            implemented.add(method)
                missing = sorted(base.abstract_methods - implemented)
                if missing:
                    yield self.finding(
                        info.module,
                        info.node,
                        f"{kind} `{entry.name}` ({entry.class_name}) does not "
                        f"implement required hook(s): {', '.join(missing)}",
                    )


class RegistryTestedRule(Rule):
    code = "RPL302"
    name = "registry-tested"
    summary = (
        "every registered scheduler/governor/policy/preset name must be "
        "referenced by at least one test (unreferenced names rot silently)"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        if not project.has_tests:
            # Without tests in the lint set there is no corpus to check
            # against; partial runs (e.g. `repro lint src/repro/cpu`) must
            # not fabricate coverage findings.
            return
        corpus = project.test_strings
        for path, kind, _ in _REGISTRIES:
            module = project.module_at(path)
            if module is None:
                continue
            for entry in _entries_for(module, kind):
                if not any(entry.name in text for text in corpus):
                    yield self.finding(
                        module,
                        entry.node,
                        f"registered {kind} `{entry.name}` is not referenced "
                        "by any linted test",
                    )
