"""RPL8xx — transitive determinism: the RPL1xx bans, closed over calls.

RPL101–103 are module-local: they see a ``time.time()`` where it is
written.  These rules close the gap the module-local view leaves open — a
banned call hidden in a helper that a hot-path entry point *reaches
through any number of hops*.  The roots (see
:meth:`repro.lint.callgraph.CallGraph.determinism_roots`):

* ``Engine.run_until`` / ``step`` / ``run_until_idle`` — the event loop;
* every public method of the scheduler and governor classes — the hooks
  the loop fires;
* the public sweep reducers in ``sweep/metrics.py`` — they compute the
  numbers the golden fixtures byte-compare.

Findings point at the *sink* call site and carry the full root-first call
chain in the message, so a report reads as a path, not a location:
``repro.sim.engine.Engine.run_until -> repro.sim.engine.Engine.step ->
repro.sim.engine._fire: wall-clock read `time.time()` ...``.

Only library sinks (``src/repro/``) are reported: benchmarks time
themselves with ``perf_counter`` on purpose, and a dynamic-dispatch
fallback edge into one must not indict the engine.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..finding import Finding
from ..source import Project, SourceModule
from . import Rule, in_library


class _TransitiveRule(Rule):
    """Shared walk: report this rule's sink category along every chain."""

    category: str = ""
    advice: str = ""

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = project.callgraph
        chains = graph.reachable_chains()
        for qualname in sorted(chains):
            info = graph.symbols.function_at(qualname)
            if info is None or not in_library(info.module.path):
                continue
            chain = chains[qualname]
            for sink in graph.sinks.get(qualname, ()):
                if sink.category != self.category:
                    continue
                yield self._chain_finding(info.module, sink.node, chain, sink.dotted)

    def _chain_finding(
        self,
        module: SourceModule,
        node: ast.AST,
        chain: tuple[str, ...],
        dotted: str,
    ) -> Finding:
        path = " -> ".join(chain)
        return self.finding(
            module,
            node,
            f"{self.category} call `{dotted}()` is reachable from a "
            f"determinism root via {path}; {self.advice}",
        )


class TransitiveWallClockRule(_TransitiveRule):
    code = "RPL801"
    name = "no-reachable-wall-clock"
    summary = (
        "no wall-clock read may be reachable on the call graph from "
        "Engine.run_until, scheduler/governor hooks, or sweep reducers"
    )
    category = "wall-clock"
    advice = "simulated time must come from Engine.now"


class TransitiveEntropyRule(_TransitiveRule):
    code = "RPL802"
    name = "no-reachable-entropy"
    summary = (
        "no OS-entropy source may be reachable on the call graph from the "
        "determinism roots"
    )
    category = "entropy"
    advice = "all randomness must flow through a seeded RngStreams stream"


class TransitiveRandomRule(_TransitiveRule):
    code = "RPL803"
    name = "no-reachable-global-random"
    summary = (
        "no process-global random.* call (or unseeded random.Random()) may "
        "be reachable from the determinism roots"
    )
    category = "global-random"
    advice = "draw from a seeded RngStreams stream instead"
