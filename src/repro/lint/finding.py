"""The unit of lint output: one finding at one source location."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One rule violation, pinned to a file and line.

    ``path`` is repo-relative POSIX (``src/repro/sim/engine.py``) so output
    is stable across checkouts and machines — the JSON report is diffable.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        """Deterministic report order: location first, then code."""
        return (self.path, self.line, self.col, self.code)

    def render(self) -> str:
        """The one-line text form (``path:line:col: CODE message``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        """JSON-able form; field names are the report schema."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
