"""The project call graph and transitive-determinism reachability.

Second half of the interprocedural tier (the symbol table in
:mod:`repro.lint.symbols` is the first).  For every function the
:class:`SymbolTable` knows, this module resolves the calls its body makes:

* bare names through the module's own functions and its imports
  (``from ..units import check_percent`` links to
  ``repro.units.check_percent``);
* ``self.x()`` / ``cls.x()`` through the enclosing class and its
  project-visible bases (:meth:`~repro.lint.source.Project.ancestry`);
* ``obj.x()`` where ``obj``'s class is statically known — a parameter
  annotation, a local ``obj = ClassName(...)`` binding, or a
  ``self.attr`` whose type ``__init__`` pins — through that class;
* anything still unresolved falls back to **conservative dynamic
  dispatch**: an edge to *every* project method of that name (minus the
  builtin-container method names, which would connect everything to
  everything).  Over-approximating keeps the reachability analysis sound —
  a hidden wall-clock call can hide behind ``self._hook()`` but not behind
  "the linter could not tell which ``tick`` this is".

On top of the graph, :meth:`CallGraph.reachable_chains` walks breadth-first
from the determinism roots — ``Engine.run_until`` (and its ``step`` /
``run_until_idle`` siblings), the public scheduler/governor hooks, and the
sweep reducers — recording the first (shortest) call chain to every
function.  The RPL8xx rules in :mod:`repro.lint.rules.reachability` pair
those chains with each function's *direct* banned calls (the same
wall-clock / entropy / global-random ban lists RPL101–103 enforce) to flag
a sink any number of helper hops below a hot-path entry point, printing the
full chain in the finding.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass
from typing import Iterator, TYPE_CHECKING

from .symbols import FunctionInfo, SymbolTable, module_name_of

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .source import Project, SourceModule

#: Method names never resolved by the dynamic-dispatch fallback: they are
#: overwhelmingly builtin-container calls (``list.append``, ``dict.get``)
#: and linking them to same-named project methods would connect the whole
#: graph.  A *known* receiver still resolves these normally.
_FALLBACK_STOPLIST = frozenset(
    {
        "add", "append", "clear", "close", "copy", "count", "decode",
        "discard", "encode", "endswith", "extend", "find", "flush",
        "format", "get", "index", "insert", "items", "join", "keys",
        "lower", "lstrip", "partition", "pop", "popleft", "read",
        "readline", "readlines", "remove", "replace", "reverse", "rfind",
        "rpartition", "rsplit", "rstrip", "setdefault", "sort", "split",
        "startswith", "strip", "title", "update", "upper", "values",
        "write",
    }
)


@dataclass(frozen=True)
class SinkCall:
    """One direct banned call inside a function body."""

    category: str  # "wall-clock" | "entropy" | "global-random"
    dotted: str  # canonical call name, e.g. "time.time"
    node: ast.Call


def _annotation_class(node: ast.expr | None) -> str | None:
    """The bare class name an annotation pins, if any.

    Handles ``Host``, ``module.Host``, string annotations (``"Host"``,
    ``"Host | None"``), ``Host | None`` unions, and ``Optional[Host]``.
    """
    if node is None:
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        first = node.value.split("|")[0].strip().strip("\"'")
        tail = first.rpartition(".")[2]
        return tail or None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            name = _annotation_class(side)
            if name is not None and name != "None":
                return name
        return None
    if isinstance(node, ast.Subscript):
        # Optional[Host] — take the inner annotation.
        head = node.value
        if isinstance(head, (ast.Name, ast.Attribute)):
            head_name = head.id if isinstance(head, ast.Name) else head.attr
            if head_name == "Optional":
                return _annotation_class(node.slice)
    return None


def _sink_category(dotted: str, node: ast.Call) -> str | None:
    """Which ban list *dotted* belongs to (None when benign).

    Mirrors the RPL101/102/103 per-module checks exactly, so the transitive
    rules agree with the direct ones about what counts as a sink.
    """
    from .rules.determinism import _ENTROPY, _GLOBAL_RANDOM, _WALL_CLOCK

    if dotted in _WALL_CLOCK:
        return "wall-clock"
    if dotted in _ENTROPY:
        return "entropy"
    if dotted.startswith("random."):
        attr = dotted[len("random.") :]
        if attr in _GLOBAL_RANDOM:
            return "global-random"
        if attr == "Random" and not node.args and not node.keywords:
            return "global-random"
    return None


class CallGraph:
    """Resolved call edges plus per-function direct determinism sinks."""

    def __init__(self, project: "Project") -> None:
        self.project = project
        self.symbols: SymbolTable = project.symbols
        #: qualname → callee qualnames, insertion-ordered, deduplicated.
        self.edges: dict[str, tuple[str, ...]] = {}
        #: qualname → direct banned calls in that function's body.
        self.sinks: dict[str, tuple[SinkCall, ...]] = {}
        self._attr_types: dict[str, dict[str, str]] = {}
        for info in self.symbols.iter_functions():
            self._index_function(info)

    # --------------------------------------------------------- class layout

    def _class_attr_types(self, class_name: str) -> dict[str, str]:
        """``self.attr`` → class name, from ``__init__`` assigns and
        class-level annotations across the class and its bases."""
        cached = self._attr_types.get(class_name)
        if cached is not None:
            return cached
        types: dict[str, str] = {}
        start = self.project.class_named(class_name)
        if start is not None:
            for ancestor in reversed(self.project.ancestry(start)):
                for stmt in ancestor.node.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        bound = _annotation_class(stmt.annotation)
                        if bound is not None and bound in self.project.classes:
                            types[stmt.target.id] = bound
                for method in ancestor.methods.values():
                    env = self._param_types(method)
                    for node in ast.walk(method):
                        target = None
                        value = None
                        if isinstance(node, ast.Assign) and len(node.targets) == 1:
                            target, value = node.targets[0], node.value
                        elif isinstance(node, ast.AnnAssign):
                            target, value = node.target, node.value
                        if (
                            not isinstance(target, ast.Attribute)
                            or not isinstance(target.value, ast.Name)
                            or target.value.id != "self"
                        ):
                            continue
                        if isinstance(node, ast.AnnAssign):
                            bound = _annotation_class(node.annotation)
                            if bound is not None and bound in self.project.classes:
                                types[target.attr] = bound
                                continue
                        bound = self._constructed_class(value)
                        if bound is None and isinstance(value, ast.Name):
                            bound = env.get(value.id)
                        if bound is not None:
                            types[target.attr] = bound
        self._attr_types[class_name] = types
        return types

    def _param_types(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> dict[str, str]:
        env: dict[str, str] = {}
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            bound = _annotation_class(arg.annotation)
            if bound is not None and bound in self.project.classes:
                env[arg.arg] = bound
        return env

    def _constructed_class(self, value: ast.expr | None) -> str | None:
        """``ClassName(...)`` / ``module.ClassName(...)`` → the class name."""
        if not isinstance(value, ast.Call):
            return None
        func = value.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is not None and name in self.project.classes:
            return name
        return None

    # ------------------------------------------------------------- indexing

    def _index_function(self, info: FunctionInfo) -> None:
        module = info.module
        module_name = module_name_of(module.path)
        env = self._param_types(info.node)
        # Local ``v = ClassName(...)`` bindings (one flat pass: good enough
        # for the straight-line construction code this repo writes).
        for node in ast.walk(info.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    bound = self._constructed_class(node.value)
                    if bound is not None:
                        env[target.id] = bound
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                bound = _annotation_class(node.annotation)
                if bound is not None and bound in self.project.classes:
                    env[node.target.id] = bound

        callees: list[str] = []
        seen: set[str] = set()
        sinks: list[SinkCall] = []
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = self.symbols.resolve_dotted(module, node.func)
            if dotted is not None:
                category = _sink_category(dotted, node)
                if category is not None:
                    sinks.append(SinkCall(category=category, dotted=dotted, node=node))
                    continue
            for target in self._resolve_call(info, module_name, node, env):
                if target not in seen:
                    seen.add(target)
                    callees.append(target)
        self.edges[info.qualname] = tuple(callees)
        self.sinks[info.qualname] = tuple(sinks)

    def _resolve_call(
        self,
        info: FunctionInfo,
        module_name: str,
        node: ast.Call,
        env: dict[str, str],
    ) -> Iterator[str]:
        func = node.func
        symbols = self.symbols
        if isinstance(func, ast.Name):
            name = func.id
            local = symbols.function_at(f"{module_name}.{name}")
            if local is not None:
                yield local.qualname
                return
            target = symbols.imports_of(info.module).get(name)
            if target is not None:
                if symbols.function_at(target) is not None:
                    yield target
                    return
                tail = target.rpartition(".")[2]
                if tail in self.project.classes:
                    init = symbols.method_on(tail, "__init__")
                    if init is not None:
                        yield init.qualname
                    return
            if name in self.project.classes:
                init = symbols.method_on(name, "__init__")
                if init is not None:
                    yield init.qualname
            return
        if not isinstance(func, ast.Attribute):
            return
        method = func.attr
        dotted = symbols.resolve_dotted(info.module, func)
        if dotted is not None and symbols.function_at(dotted) is not None:
            yield dotted
            return
        receiver_class = self._receiver_class(info, func.value, env)
        if receiver_class is not None:
            resolved = symbols.method_on(receiver_class, method)
            if resolved is not None:
                yield resolved.qualname
                return
            # Known class without that method (stdlib base, __getattr__):
            # fall through to the conservative fallback.
        if method in _FALLBACK_STOPLIST:
            return
        for candidate in symbols.methods_named.get(method, ()):
            yield candidate.qualname

    def _receiver_class(
        self, info: FunctionInfo, receiver: ast.expr, env: dict[str, str]
    ) -> str | None:
        if isinstance(receiver, ast.Name):
            if receiver.id in ("self", "cls") and info.class_name is not None:
                return info.class_name
            if receiver.id in env:
                return env[receiver.id]
            if receiver.id in self.project.classes:
                return receiver.id
            return None
        if (
            isinstance(receiver, ast.Attribute)
            and isinstance(receiver.value, ast.Name)
            and receiver.value.id == "self"
            and info.class_name is not None
        ):
            return self._class_attr_types(info.class_name).get(receiver.attr)
        if isinstance(receiver, ast.Call):
            return self._constructed_class(receiver)
        return None

    # ---------------------------------------------------------- reachability

    def determinism_roots(self) -> list[str]:
        """Hot-path entry points, sorted: the engine loop, scheduler and
        governor hooks, and the sweep reducers."""
        roots: list[str] = []
        for func in self.symbols.iter_functions():
            path = func.module.path
            if (
                func.class_name == "Engine"
                and path.startswith("src/repro/sim/")
                and func.name in ("run_until", "run_until_idle", "step")
            ):
                roots.append(func.qualname)
            elif (
                func.class_name is not None
                and func.is_public
                and path.startswith(("src/repro/schedulers/", "src/repro/governors/"))
            ):
                roots.append(func.qualname)
            elif (
                func.class_name is None
                and func.is_public
                and path == "src/repro/sweep/metrics.py"
            ):
                roots.append(func.qualname)
        return roots

    def reachable_chains(
        self, roots: list[str] | None = None
    ) -> dict[str, tuple[str, ...]]:
        """qualname → shortest root-first call chain, breadth-first.

        Roots map to one-element chains.  Visiting order is deterministic:
        roots are processed sorted, edges in source order, so the chain
        reported for a function never varies between runs.
        """
        if roots is None:
            roots = self.determinism_roots()
        chains: dict[str, tuple[str, ...]] = {}
        queue: deque[str] = deque()
        for root in sorted(roots):
            if root not in chains and root in self.edges:
                chains[root] = (root,)
                queue.append(root)
        while queue:
            current = queue.popleft()
            chain = chains[current]
            for callee in self.edges.get(current, ()):
                if callee not in chains:
                    chains[callee] = chain + (callee,)
                    queue.append(callee)
        return chains
