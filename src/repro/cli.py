"""Command-line interface: regenerate any experiment from a terminal.

Examples::

    python -m repro list
    python -m repro figure 9
    python -m repro table 2
    python -m repro validate eq1
    python -m repro ablation energy
    python -m repro calibrate "Intel Xeon E5-2620"
    python -m repro scenario --scheduler pas --v20-load thrashing

Every command prints the same paper-vs-measured report the benchmarks
assert on, and exits non-zero when a shape criterion fails — so the CLI
doubles as a reproduction smoke-check in CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from . import experiments
from .cpu import catalog
from .experiments import (
    PHASE_BOTH,
    PHASE_SOLO_EARLY,
    PHASE_SOLO_LATE,
    ScenarioConfig,
    run_scenario,
)
from .platforms import calibrate_cf_table
from .telemetry import render_chart, table_to_text

_FIGURES: dict[int, Callable] = {
    1: experiments.run_compensation,
    2: experiments.run_fig2,
    3: experiments.run_fig3,
    4: experiments.run_fig4,
    5: experiments.run_fig5,
    6: experiments.run_fig6,
    7: experiments.run_fig7,
    8: experiments.run_fig8,
    9: experiments.run_fig9,
    10: experiments.run_fig10,
}

_TABLES: dict[int, Callable] = {
    1: experiments.run_table1,
    2: experiments.run_table2,
}

_VALIDATIONS: dict[str, Callable] = {
    "eq1": experiments.validate_frequency_load,
    "eq2": experiments.validate_frequency_time,
    "eq3": experiments.validate_credit_time,
}

_ABLATIONS: dict[str, Callable] = {
    "energy": experiments.run_energy_ablation,
    "designs": experiments.run_design_comparison,
    "cf": experiments.run_cf_ablation,
    "qos": experiments.run_qos_ablation,
    "consolidation": experiments.run_consolidation_ablation,
    "sensitivity": experiments.run_pas_sensitivity,
}


def _report_of(outcome) -> object:
    return outcome[-1] if isinstance(outcome, tuple) else outcome


def _emit_and_exit_code(outcome) -> int:
    report = _report_of(outcome)
    print(report.render())
    return 0 if report.all_passed else 1


def _cmd_list(args: argparse.Namespace) -> int:
    print("figures   :", ", ".join(str(n) for n in sorted(_FIGURES)))
    print("tables    :", ", ".join(str(n) for n in sorted(_TABLES)))
    print("validate  :", ", ".join(sorted(_VALIDATIONS)))
    print("ablations :", ", ".join(sorted(_ABLATIONS)))
    print("processors:", ", ".join(sorted(catalog.ALL_PROCESSORS)))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    return _emit_and_exit_code(_FIGURES[args.number]())


def _cmd_table(args: argparse.Namespace) -> int:
    return _emit_and_exit_code(_TABLES[args.number]())


def _cmd_validate(args: argparse.Namespace) -> int:
    return _emit_and_exit_code(_VALIDATIONS[args.equation]())


def _cmd_ablation(args: argparse.Namespace) -> int:
    return _emit_and_exit_code(_ABLATIONS[args.name]())


def _cmd_calibrate(args: argparse.Namespace) -> int:
    try:
        spec = catalog.ALL_PROCESSORS[args.processor]
    except KeyError:
        print(
            f"unknown processor {args.processor!r}; choose one of: "
            + ", ".join(sorted(catalog.ALL_PROCESSORS)),
            file=sys.stderr,
        )
        return 2
    results = calibrate_cf_table(spec)
    print(
        table_to_text(
            ["frequency", "ratio", "cf measured", "cf substrate", "error"],
            [
                [
                    f"{r.freq_mhz} MHz",
                    f"{r.ratio:.4f}",
                    f"{r.cf_measured:.5f}",
                    f"{r.cf_spec:.5f}",
                    f"{r.error * 100:.3f}%",
                ]
                for r in results
            ],
            title=f"cf calibration (§5.2 procedure) on {spec.name}",
        )
    )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        scheduler=args.scheduler,
        governor=args.governor,
        v20_load=args.v20_load,
        v70_load=args.v70_load,
        duration=args.duration,
        seed=args.seed,
    )
    result = run_scenario(config)
    rows = []
    for name in ("V20.global_load", "V20.absolute_load", "V70.global_load", "host.freq_mhz"):
        rows.append(
            [
                name,
                f"{result.phase_mean(name, PHASE_SOLO_EARLY):8.2f}",
                f"{result.phase_mean(name, PHASE_BOTH):8.2f}",
                f"{result.phase_mean(name, PHASE_SOLO_LATE):8.2f}",
            ]
        )
    print(
        table_to_text(
            ["series", "V20 solo", "both", "V20 solo late"],
            rows,
            title=(
                f"§5.3 scenario: scheduler={args.scheduler} governor={args.governor} "
                f"v20={args.v20_load} v70={args.v70_load}"
            ),
        )
    )
    freq_percent = result.series("host.freq_mhz").map(
        lambda mhz: 100.0 * mhz / result.host.processor.max_frequency_mhz
    )
    print()
    print(
        render_chart(
            [
                result.series("V20.global_load"),
                result.series("V70.global_load"),
                freq_percent,
            ],
            title="global loads + frequency",
            y_max=100.0,
            labels=["V20 %", "V70 %", "freq (% max)"],
        )
    )
    print()
    print(f"energy: {result.energy_joules:.0f} J   DVFS transitions: {result.frequency_transitions}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'DVFS Aware CPU Credit Enforcement in a Virtualized System' (Middleware 2013).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available experiments").set_defaults(fn=_cmd_list)

    figure = commands.add_parser("figure", help="regenerate a figure (1-10)")
    figure.add_argument("number", type=int, choices=sorted(_FIGURES))
    figure.set_defaults(fn=_cmd_figure)

    table = commands.add_parser("table", help="regenerate a table (1-2)")
    table.add_argument("number", type=int, choices=sorted(_TABLES))
    table.set_defaults(fn=_cmd_table)

    validate = commands.add_parser("validate", help="run a §5.2 validation sweep")
    validate.add_argument("equation", choices=sorted(_VALIDATIONS))
    validate.set_defaults(fn=_cmd_validate)

    ablation = commands.add_parser("ablation", help="run an ablation study")
    ablation.add_argument("name", choices=sorted(_ABLATIONS))
    ablation.set_defaults(fn=_cmd_ablation)

    calibrate = commands.add_parser("calibrate", help="measure cf on a catalog processor")
    calibrate.add_argument("processor", nargs="?", default=catalog.OPTIPLEX_755.name)
    calibrate.set_defaults(fn=_cmd_calibrate)

    scenario = commands.add_parser("scenario", help="run a custom §5.3 scenario")
    scenario.add_argument("--scheduler", default="pas", choices=["credit", "credit2", "sedf", "pas"])
    scenario.add_argument(
        "--governor",
        default="stable",
        choices=["performance", "powersave", "userspace", "ondemand", "conservative", "stable"],
    )
    scenario.add_argument(
        "--v20-load", default="exact", choices=["exact", "near_exact", "thrashing", "idle"]
    )
    scenario.add_argument(
        "--v70-load", default="exact", choices=["exact", "near_exact", "thrashing", "idle"]
    )
    scenario.add_argument("--duration", type=float, default=800.0)
    scenario.add_argument("--seed", type=int, default=1)
    scenario.set_defaults(fn=_cmd_scenario)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
