"""Command-line interface: regenerate any experiment from a terminal.

Examples::

    python -m repro list
    python -m repro figure 9
    python -m repro table 2
    python -m repro validate eq1
    python -m repro ablation energy
    python -m repro calibrate "Intel Xeon E5-2620"
    python -m repro scenario --scheduler pas --v20-load thrashing
    python -m repro run --preset mixed-guests
    python -m repro run --scenario myfleet.json
    python -m repro sweep --workers 4 --out results.json
    python -m repro sweep --preset governors --replicates 3 --out-aggregated agg.csv
    python -m repro sweep --preset stress-fleet --store results-store
    python -m repro sweep --preset stress-fleet --store results-store --resume
    python -m repro sweep --list-presets
    python -m repro store ls --store results-store
    python -m repro store ls --store results-store --where scheduler=pas
    python -m repro store export --store results-store --out corpus.csv --where governor=stable
    python -m repro cluster run --preset dc-diurnal-small --out-series epochs.csv
    python -m repro cluster sweep --preset dc-diurnal --store results-store
    python -m repro cluster compare --preset dc-diurnal --out-dir dc-series

Every command prints the same paper-vs-measured report the benchmarks
assert on, and exits non-zero when a shape criterion fails — so the CLI
doubles as a reproduction smoke-check in CI.  Sweeps (and the sweep-backed
ablations/tables) accept ``--store DIR``: finished cells persist as they
complete and re-runs only compute what is missing, so repeated builds are
warm-cache and interrupted grids resume where they died.
"""

from __future__ import annotations

import argparse
import inspect
import json
import pathlib
import sys
from typing import Callable, Sequence

from . import experiments
from .cpu import catalog
from .errors import ConfigurationError, StoreError
from .experiments import (
    get_preset,
    PHASE_BOTH,
    PHASE_SOLO_EARLY,
    PHASE_SOLO_LATE,
    PRESETS,
    preset_grid,
    ScenarioConfig,
    run_scenario,
)
from .platforms import calibrate_cf_table
from .telemetry import render_chart, table_to_text

_FIGURES: dict[int, Callable] = {
    1: experiments.run_compensation,
    2: experiments.run_fig2,
    3: experiments.run_fig3,
    4: experiments.run_fig4,
    5: experiments.run_fig5,
    6: experiments.run_fig6,
    7: experiments.run_fig7,
    8: experiments.run_fig8,
    9: experiments.run_fig9,
    10: experiments.run_fig10,
}

_TABLES: dict[int, Callable] = {
    1: experiments.run_table1,
    2: experiments.run_table2,
}

_VALIDATIONS: dict[str, Callable] = {
    "eq1": experiments.validate_frequency_load,
    "eq2": experiments.validate_frequency_time,
    "eq3": experiments.validate_credit_time,
}

_ABLATIONS: dict[str, Callable] = {
    "energy": experiments.run_energy_ablation,
    "designs": experiments.run_design_comparison,
    "cf": experiments.run_cf_ablation,
    "qos": experiments.run_qos_ablation,
    "consolidation": experiments.run_consolidation_ablation,
    "sensitivity": experiments.run_pas_sensitivity,
}


def _observation_for(trace_out: str | None, metrics_out: str | None) -> tuple:
    """``(tracer, registry)`` per ``--trace``/``--metrics-out`` (None = off)."""
    tracer = None
    registry = None
    if trace_out:
        from .obs import Tracer

        tracer = Tracer()
    if metrics_out:
        from .obs import MetricsRegistry

        registry = MetricsRegistry()
    return tracer, registry


def _write_observations(
    trace_out: str | None, metrics_out: str | None, tracer, registry, outcome=None
) -> None:
    """Save the side files the observation flags asked for."""
    if tracer is not None:
        path = tracer.save(trace_out)
        print(f"wrote {len(tracer.events)} trace events to {path}")
    if registry is not None:
        if outcome is not None:
            from .obs import collect_outcome

            collect_outcome(registry, outcome)
        path = registry.save(metrics_out)
        print(f"wrote {len(registry)} metrics to {path}")


class _SweepReporter:
    """Live cells/s + cache-hit progress for the sweep commands.

    Fed by :class:`~repro.sweep.runner.SweepRunner`'s ``progress`` callback;
    writes to stderr so piped stdout stays machine-readable.  Verbosity 0
    (``--quiet``) is silent, 1 (default) keeps one live line rewritten in
    place, 2 (``-v``) prints one line per finished cell.
    """

    def __init__(self, total: int, verbosity: int) -> None:
        from .obs.profile import wall_now

        self.total = total
        self.verbosity = verbosity
        self.done = 0
        self.hits = 0
        self._wall_now = wall_now
        self._began = wall_now()
        self._live = False

    def __call__(self, result, from_cache: bool) -> None:
        self.done += 1
        if from_cache:
            self.hits += 1
        if self.verbosity <= 0:
            return
        elapsed = self._wall_now() - self._began
        rate = self.done / elapsed if elapsed > 0 else 0.0
        if self.verbosity >= 2:
            source = "warm" if from_cache else "computed"
            print(
                f"[{self.done}/{self.total}] {result.label} "
                f"({source}, {rate:.1f} cells/s)",
                file=sys.stderr,
            )
        else:
            self._live = True
            print(
                f"cells {self.done}/{self.total} "
                f"({self.hits} warm, {rate:.1f} cells/s)",
                file=sys.stderr,
                end="\r",
            )

    def finish(self) -> None:
        """Terminate the live line so the summary table starts clean."""
        if self._live:
            print(file=sys.stderr)
            self._live = False


def _verbosity_of(args) -> int:
    """0 for --quiet, 1 by default, 2+ per repeated -v."""
    if getattr(args, "quiet", False):
        return 0
    return 1 + getattr(args, "verbose", 0)


def _report_of(outcome) -> object:
    return outcome[-1] if isinstance(outcome, tuple) else outcome


def _emit_and_exit_code(outcome) -> int:
    report = _report_of(outcome)
    print(report.render())
    return 0 if report.all_passed else 1


def _cmd_list(args: argparse.Namespace) -> int:
    print("figures   :", ", ".join(str(n) for n in sorted(_FIGURES)))
    print("tables    :", ", ".join(str(n) for n in sorted(_TABLES)))
    print("validate  :", ", ".join(sorted(_VALIDATIONS)))
    print("ablations :", ", ".join(sorted(_ABLATIONS)))
    print("processors:", ", ".join(sorted(catalog.ALL_PROCESSORS)))
    print("presets   :", ", ".join(PRESETS))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    return _emit_and_exit_code(_FIGURES[args.number]())


def _runner_kwargs(runner: Callable, args: argparse.Namespace) -> dict:
    """The store/workers options *runner* understands (warn about the rest).

    Experiment runners adopt sweep persistence incrementally; passing
    ``--store`` to one that hand-builds its cells is a no-op worth naming,
    not a crash.
    """
    params = inspect.signature(runner).parameters
    kwargs = {}
    for name, value, default in (
        ("workers", getattr(args, "workers", 1), 1),
        ("store", getattr(args, "store", None), None),
    ):
        if value == default:
            continue
        if name in params:
            kwargs[name] = value
        else:
            print(
                f"note: {runner.__name__} does not support --{name}; ignored",
                file=sys.stderr,
            )
    return kwargs


def _cmd_table(args: argparse.Namespace) -> int:
    runner = _TABLES[args.number]
    return _emit_and_exit_code(runner(**_runner_kwargs(runner, args)))


def _cmd_validate(args: argparse.Namespace) -> int:
    return _emit_and_exit_code(_VALIDATIONS[args.equation]())


def _cmd_ablation(args: argparse.Namespace) -> int:
    runner = _ABLATIONS[args.name]
    return _emit_and_exit_code(runner(**_runner_kwargs(runner, args)))


def _cmd_calibrate(args: argparse.Namespace) -> int:
    try:
        spec = catalog.ALL_PROCESSORS[args.processor]
    except KeyError:
        print(
            f"unknown processor {args.processor!r}; choose one of: "
            + ", ".join(sorted(catalog.ALL_PROCESSORS)),
            file=sys.stderr,
        )
        return 2
    results = calibrate_cf_table(spec)
    print(
        table_to_text(
            ["frequency", "ratio", "cf measured", "cf substrate", "error"],
            [
                [
                    f"{r.freq_mhz} MHz",
                    f"{r.ratio:.4f}",
                    f"{r.cf_measured:.5f}",
                    f"{r.cf_spec:.5f}",
                    f"{r.error * 100:.3f}%",
                ]
                for r in results
            ],
            title=f"cf calibration (§5.2 procedure) on {spec.name}",
        )
    )
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    config = ScenarioConfig(
        scheduler=args.scheduler,
        governor=args.governor,
        v20_load=args.v20_load,
        v70_load=args.v70_load,
        duration=args.duration,
        seed=args.seed,
    )
    result = run_scenario(config)
    rows = []
    for name in ("V20.global_load", "V20.absolute_load", "V70.global_load", "host.freq_mhz"):
        rows.append(
            [
                name,
                f"{result.phase_mean(name, PHASE_SOLO_EARLY):8.2f}",
                f"{result.phase_mean(name, PHASE_BOTH):8.2f}",
                f"{result.phase_mean(name, PHASE_SOLO_LATE):8.2f}",
            ]
        )
    print(
        table_to_text(
            ["series", "V20 solo", "both", "V20 solo late"],
            rows,
            title=(
                f"§5.3 scenario: scheduler={args.scheduler} governor={args.governor} "
                f"v20={args.v20_load} v70={args.v70_load}"
            ),
        )
    )
    freq_percent = result.series("host.freq_mhz").map(
        lambda mhz: 100.0 * mhz / result.host.processor.max_frequency_mhz
    )
    print()
    print(
        render_chart(
            [
                result.series("V20.global_load"),
                result.series("V70.global_load"),
                freq_percent,
            ],
            title="global loads + frequency",
            y_max=100.0,
            labels=["V20 %", "V70 %", "freq (% max)"],
        )
    )
    print()
    print(f"energy: {result.energy_joules:.0f} J   DVFS transitions: {result.frequency_transitions}")
    return 0


def _write_records_csv(records: list, path: str, what: str, fields: Sequence[str]) -> None:
    """Write flat records as CSV (a bare header when there are none)."""
    from .telemetry.export import records_to_csv

    target = pathlib.Path(path)
    target.write_text(
        records_to_csv(records) if records else ",".join(fields) + "\n"
    )
    print(f"wrote {len(records)} {what} records to {target}")


def _run_cluster_config(
    config,
    title: str,
    out: str | None = None,
    *,
    out_series: str | None = None,
    out_hosts: str | None = None,
    out_migrations: str | None = None,
    trace_out: str | None = None,
    metrics_out: str | None = None,
) -> int:
    """Run a fleet config and print its placement + per-epoch summary."""
    from .cluster.scenario import run_cluster_scenario
    from .obs import observed
    from .sweep.metrics import cluster_metrics
    from .telemetry.series import TimeSeries

    tracer, registry = _observation_for(trace_out, metrics_out)
    with observed(tracer=tracer, metrics=registry):
        sim = run_cluster_scenario(config)
    rows = [
        [
            machine.name,
            "on" if machine.powered_on else "off",
            str(len(machine.vms)),
            f"{machine.memory_used_mb} MB",
            ", ".join(vm.name for vm in machine.vms) or "-",
        ]
        for machine in sim.machines
    ]
    print(
        table_to_text(
            ["machine", "power", "vms", "memory used", "placed"],
            rows,
            title=(
                f"{title}: {config.n_vms} VMs on {config.total_machines} machines "
                f"(policy={config.policy}, dvfs={'on' if config.dvfs else 'off'}, "
                f"{config.duration:.0f}s)"
            ),
        )
    )
    metrics = cluster_metrics(sim)
    budget = (
        f"   cap: {config.power_budget_w:.0f} W "
        f"({'respected' if sim.peak_power_w <= config.power_budget_w else 'VIOLATED'})"
        if config.power_budget_w is not None
        else ""
    )
    print()
    print(
        f"fleet energy: {metrics['energy_kwh'] * 1000:.2f} Wh   "
        f"hosts on (mean): {metrics['hosts_on_mean']:.1f}   "
        f"SLA: {metrics['sla_mean'] * 100:.1f}% "
        f"({metrics['sla_violations']} violation epochs)   "
        f"migrations: {metrics['migrations']}   "
        f"peak power: {metrics['power_peak_w']:.0f} W{budget}"
    )
    peak = sim.peak_power_w or 1.0  # an all-idle fleet charts as flat zero
    power = TimeSeries(
        "fleet power (% of peak)",
        [(stat.time, 100.0 * stat.power_w / peak) for stat in sim.stats],
    )
    hosts = TimeSeries(
        "hosts on (% of fleet)",
        [(stat.time, 100.0 * stat.machines_on / config.total_machines) for stat in sim.stats],
    )
    print()
    print(
        render_chart(
            [power, hosts],
            title="fleet power + hosts over the day",
            y_max=100.0,
            labels=["power %", "hosts %"],
        )
    )
    from .cluster.orchestrator import (
        EPOCH_RECORD_FIELDS,
        HOST_RECORD_FIELDS,
        MIGRATION_RECORD_FIELDS,
    )

    if out_series:
        _write_records_csv(
            sim.epoch_records(), out_series, "per-epoch", EPOCH_RECORD_FIELDS
        )
    if out_hosts:
        _write_records_csv(
            sim.host_records(), out_hosts, "per-host", HOST_RECORD_FIELDS
        )
    if out_migrations:
        _write_records_csv(
            sim.migration_records(), out_migrations, "migration", MIGRATION_RECORD_FIELDS
        )
    _write_observations(trace_out, metrics_out, tracer, registry, outcome=sim)
    if out:
        path = pathlib.Path(out)
        path.write_text(json.dumps(config.to_dict(), indent=2, sort_keys=True) + "\n")
        print(f"wrote scenario spec to {path}")
    return 0


def _load_bench_harness():
    """Import :mod:`benchmarks.harness`, tolerating CLI runs from anywhere.

    The benchmarks live beside ``src`` rather than inside the package (they
    are repo tooling, not library code), so a ``python -m repro bench`` run
    from outside the repo root needs the root put on ``sys.path`` first.
    """
    try:
        from benchmarks import harness
        if hasattr(harness, "NATIVE_BENCHES"):
            return harness
    except ImportError:
        pass
    # Either no 'benchmarks' on sys.path or a foreign package shadows ours:
    # load the module straight from its file, bypassing the import cache.
    path = pathlib.Path(__file__).resolve().parents[2] / "benchmarks" / "harness.py"
    if not path.exists():
        return None
    import importlib.util

    spec = importlib.util.spec_from_file_location("repro_bench_harness", path)
    if spec is None or spec.loader is None:  # pragma: no cover - loader quirk
        return None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _cmd_bench(args: argparse.Namespace) -> int:
    harness = _load_bench_harness()
    if harness is None:
        print(
            "bench: cannot import benchmarks/harness.py — run from a repo "
            "checkout (the harness is repo tooling, not packaged code)",
            file=sys.stderr,
        )
        return 2
    if args.list:
        for name in harness.available_benches(args.suite):
            print(name)
        return 0
    try:
        max_regress = harness.parse_regress(args.max_regress)
    except ValueError as error:
        print(f"bench: {error}", file=sys.stderr)
        return 2
    names = args.bench or harness.available_benches(args.suite)
    known = set(harness.available_benches("full"))
    unknown = [name for name in names if name not in known]
    if unknown:
        print(
            f"bench: unknown bench(es) {', '.join(unknown)}; "
            "see 'repro bench --list --suite full'",
            file=sys.stderr,
        )
        return 2
    report = harness.run_benches(
        names, suite=args.suite, progress=lambda line: print(line, file=sys.stderr)
    )
    rows = []
    for name, entry in report["benches"].items():
        metrics = entry.get("metrics", {})
        highlights = ", ".join(
            f"{key}={value:.2f}" if isinstance(value, float) else f"{key}={value}"
            for key, value in metrics.items()
            if isinstance(value, (int, float))
        )
        rows.append(
            [
                name,
                "ok" if entry["ok"] else "FAILED",
                f"{entry['wall_s']:.3f}",
                str(entry.get("peak_rss_kb") or "-"),
                highlights or entry.get("error", "-"),
            ]
        )
    print(
        table_to_text(
            ["bench", "status", "wall s", "peak RSS KiB", "metrics"],
            rows,
            title=f"repro bench: suite={args.suite} rev={report['rev']}",
        )
    )
    out = pathlib.Path(args.out) if args.out else harness.default_report_path(report)
    code = 0 if all(entry["ok"] for entry in report["benches"].values()) else 1
    if args.compare:
        try:
            baseline = harness.load_report(pathlib.Path(args.compare))
        except (OSError, ValueError, json.JSONDecodeError) as error:
            # The benches already ran: keep the measurement (and the CI
            # artifact) even though the gate itself cannot be evaluated.
            harness.write_report(report, out)
            print(f"\nwrote {out}")
            print(f"bench: cannot load baseline: {error}", file=sys.stderr)
            return 2
        lines: list = []
        regressed: list = []
        for attempt in range(2):
            lines, regressed = harness.compare_reports(
                report,
                baseline,
                max_regress=max_regress,
                normalize=not args.no_normalize,
            )
            if attempt == 1 or not regressed:
                break
            # Re-measure before failing: a genuine regression reproduces,
            # transient machine interference does not.  Only native benches
            # that ran (and merely came in slow) are worth re-running.
            retriable = [
                name
                for name in regressed
                if name in harness.NATIVE_BENCHES
                and report["benches"].get(name, {}).get("ok")
            ]
            if not retriable:
                break
            print(
                f"\nre-measuring {len(retriable)} regressed bench(es) "
                "to rule out machine interference...",
                file=sys.stderr,
            )
            rerun = harness.run_benches(
                retriable,
                suite=args.suite,
                progress=lambda line: print(line, file=sys.stderr),
            )
            for name, entry in rerun["benches"].items():
                previous = report["benches"][name]
                if entry["ok"] and entry["wall_s"] < previous["wall_s"]:
                    report["benches"][name] = entry
        print(f"\ncompare vs {args.compare} (max regress {max_regress:.0%}):")
        for line in lines:
            print(f"  {line}")
        if regressed:
            print(f"\n{len(regressed)} bench(es) regressed")
            code = 1
        else:
            print("\nno regressions")
    harness.write_report(report, out)
    print(f"\nwrote {out}")
    return code


def _cmd_lint(args: argparse.Namespace) -> int:
    from .errors import ConfigurationError
    from .lint import (
        lint_paths,
        render_github,
        render_json,
        render_text,
        rule_catalog,
    )

    if args.list_rules:
        for entry in rule_catalog():
            print(f"{entry['code']}  {entry['name']}: {entry['summary']}")
        return 0
    try:
        findings = lint_paths(
            args.paths or ["src", "tests", "benchmarks"],
            select=args.select,
            ignore=args.ignore,
        )
    except ConfigurationError as error:
        print(f"lint: {error}", file=sys.stderr)
        return 2
    render = {"json": render_json, "github": render_github}.get(
        args.format, render_text
    )
    print(render(findings))
    return 1 if findings else 0


#: Presets too big for a smoke pass (skipped by ``run --preset all``).
_XLARGE_PRESETS = ("dc-fleet-large",)

#: Per-run duration cap of the ``--preset all`` smoke pass, in sim seconds.
_SMOKE_DURATION_S = 60.0


def _run_all_presets(args: argparse.Namespace) -> int:
    """``run --preset all``: a short smoke run of every (non-xlarge) preset.

    Each preset's base config runs with its duration capped at
    :data:`_SMOKE_DURATION_S`; ``kind: cluster`` presets are skipped unless
    ``--include-cluster``.  One status line per preset; exit 1 when any
    preset failed.
    """
    if args.trace or args.metrics_out or args.out:
        print(
            "run: --trace/--metrics-out/--out apply to a single run, "
            "not --preset all",
            file=sys.stderr,
        )
        return 2
    from .cluster import run_cluster_scenario

    failed = []
    skipped = 0
    for preset in PRESETS.values():
        if preset.name in _XLARGE_PRESETS:
            print(f"  skip  {preset.name} (xlarge)")
            skipped += 1
            continue
        if preset.kind == "cluster" and not args.include_cluster:
            print(f"  skip  {preset.name} (cluster; use --include-cluster)")
            skipped += 1
            continue
        config = preset.config.with_changes(
            duration=min(preset.config.duration, _SMOKE_DURATION_S)
        )
        try:
            if preset.kind == "cluster":
                sim = run_cluster_scenario(config)
                detail = f"{len(sim.stats)} epochs"
            else:
                result = run_scenario(config)
                detail = f"{len(result.guest_names)} guests, {result.host.now:.0f}s"
            print(f"  ok    {preset.name} ({detail})")
        except Exception as error:
            failed.append(preset.name)
            print(f"  FAIL  {preset.name}: {error}")
    ran = len(PRESETS) - skipped
    print(
        f"preset smoke: {ran - len(failed)}/{ran} passed, {skipped} skipped"
        + (f"; failed: {', '.join(failed)}" if failed else "")
    )
    return 1 if failed else 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.preset == "all":
        return _run_all_presets(args)
    try:
        if args.scenario:
            path = pathlib.Path(args.scenario)
            try:
                data = json.loads(path.read_text())
            except OSError as error:
                print(f"run: cannot read {path}: {error}", file=sys.stderr)
                return 2
            except json.JSONDecodeError as error:
                print(f"run: {path} is not valid JSON: {error}", file=sys.stderr)
                return 2
            if not isinstance(data, dict):
                print(f"run: {path} must hold a JSON object (a scenario spec)", file=sys.stderr)
                return 2
            if data.get("kind") == "cluster":
                from .cluster import ClusterScenarioConfig

                return _run_cluster_config(
                    ClusterScenarioConfig.from_dict(data),
                    f"scenario {path.name}",
                    args.out,
                    trace_out=args.trace,
                    metrics_out=args.metrics_out,
                )
            config = ScenarioConfig.from_dict(data)
            title = f"scenario {path.name}"
        else:
            config = get_preset(args.preset).config
            title = f"preset {args.preset}"
            from .cluster import ClusterScenarioConfig

            if isinstance(config, ClusterScenarioConfig):
                return _run_cluster_config(
                    config,
                    title,
                    args.out,
                    trace_out=args.trace,
                    metrics_out=args.metrics_out,
                )
        from .obs import observed

        tracer, registry = _observation_for(args.trace, args.metrics_out)
        with observed(tracer=tracer, metrics=registry):
            result = run_scenario(config)
    except ConfigurationError as error:
        print(f"run: {error}", file=sys.stderr)
        return 2
    rows = []
    for name in result.guest_names:
        domain = result.host.domain(name)
        try:
            window = result.guest_window(name)
            global_mean = f"{result.guest_mean(name, 'global', window):8.2f}"
            absolute_mean = f"{result.guest_mean(name, 'absolute', window):8.2f}"
            window_text = f"[{window[0]:.0f}, {window[1]:.0f})"
        except Exception:  # idle guest or empty window: report dashes
            global_mean = absolute_mean = window_text = "-"
        rows.append([name, f"{domain.credit:.0f}%", window_text, global_mean, absolute_mean])
    print(
        table_to_text(
            ["guest", "credit", "window", "global %", "absolute %"],
            rows,
            title=(
                f"{title}: scheduler={config.scheduler} governor={config.governor} "
                f"({len(result.guest_names)} guests, {result.host.now:.0f}s)"
            ),
        )
    )
    charted = list(result.guest_names)[:4]
    freq_percent = result.series("host.freq_mhz").map(
        lambda mhz: 100.0 * mhz / result.host.processor.max_frequency_mhz
    )
    print()
    print(
        render_chart(
            [result.guest_series(name) for name in charted] + [freq_percent],
            title="global loads + frequency",
            y_max=100.0,
            labels=[f"{name} %" for name in charted] + ["freq (% max)"],
        )
    )
    print()
    print(
        f"energy: {result.energy_joules:.0f} J   "
        f"DVFS transitions: {result.frequency_transitions}"
    )
    _write_observations(args.trace, args.metrics_out, tracer, registry, outcome=result)
    if args.out:
        path = pathlib.Path(args.out)
        path.write_text(json.dumps(config.to_dict(), indent=2, sort_keys=True) + "\n")
        print(f"wrote scenario spec to {path}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from .obs import profile_cluster, profile_scenario

    try:
        if args.scenario:
            path = pathlib.Path(args.scenario)
            try:
                data = json.loads(path.read_text())
            except OSError as error:
                print(f"profile: cannot read {path}: {error}", file=sys.stderr)
                return 2
            except json.JSONDecodeError as error:
                print(f"profile: {path} is not valid JSON: {error}", file=sys.stderr)
                return 2
            if not isinstance(data, dict):
                print(
                    f"profile: {path} must hold a JSON object (a scenario spec)",
                    file=sys.stderr,
                )
                return 2
            if data.get("kind") == "cluster":
                from .cluster import ClusterScenarioConfig

                config = ClusterScenarioConfig.from_dict(data)
            else:
                config = ScenarioConfig.from_dict(data)
            title = f"scenario {path.name}"
        else:
            config = get_preset(args.preset).config
            title = f"preset {args.preset}"
        overrides = {}
        if args.duration is not None:
            overrides["duration"] = args.duration
        if args.seed is not None:
            overrides["seed"] = args.seed
        if overrides:
            config = config.with_changes(**overrides)
        from .cluster import ClusterScenarioConfig

        if isinstance(config, ClusterScenarioConfig):
            _, profiler = profile_cluster(config)
        else:
            _, profiler = profile_scenario(config)
    except ConfigurationError as error:
        print(f"profile: {error}", file=sys.stderr)
        return 2
    print(f"wall-clock phase profile — {title}")
    print()
    print(profiler.render_table())
    return 0


#: Default sweep grid: the full scheduler x governor x load evaluation
#: plane of §5 (4 x 3 x 2 = 24 cells).
_SWEEP_DEFAULTS = {
    "schedulers": "credit,credit2,sedf,pas",
    "governors": "performance,ondemand,stable",
    "v20_loads": "exact,thrashing",
}

#: Compact per-cell columns for the terminal summary.
_SWEEP_SUMMARY_METRICS = (
    "v20_absolute_solo_early",
    "v20_global_both",
    "freq_mhz_solo_early",
    "dvfs_transitions",
    "energy_joules",
)


def _list_presets() -> int:
    rows = [
        [
            preset.name,
            f"kind:{preset.kind}",
            str(preset.cells),
            ",".join(preset.axes) or "-",
            preset.description,
        ]
        for preset in PRESETS.values()
    ]
    print(
        table_to_text(
            ["preset", "kind", "cells", "axes", "description"],
            rows,
            title="scenario presets",
        )
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from .sweep import SweepGrid, SweepRunner

    if args.list_presets:
        return _list_presets()
    if args.resume and args.force:
        print("sweep: --resume and --force are opposites; pick one", file=sys.stderr)
        return 2
    if (args.resume or args.force) and not args.store:
        print("sweep: --resume/--force only make sense with --store DIR", file=sys.stderr)
        return 2
    metrics = None
    overrides = {}
    if args.duration is not None:
        overrides["duration"] = args.duration
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.preset:
        conflicting = [
            flag
            for flag, value, default in (
                ("--grid", args.grid, None),
                ("--schedulers", args.schedulers, _SWEEP_DEFAULTS["schedulers"]),
                ("--governors", args.governors, _SWEEP_DEFAULTS["governors"]),
                ("--v20-loads", args.v20_loads, _SWEEP_DEFAULTS["v20_loads"]),
            )
            if value != default
        ]
        if conflicting:
            print(
                f"sweep: --preset carries its own axes; drop {', '.join(conflicting)}",
                file=sys.stderr,
            )
            return 2
    try:
        if args.preset:
            preset = get_preset(args.preset)
            metrics = preset.metrics
            grid = preset_grid(
                args.preset,
                overrides=overrides,
                replicates=args.replicates,
                vary_seed=not args.fixed_seed,
            )
        else:
            if args.grid:
                try:
                    axes = json.loads(args.grid)
                except json.JSONDecodeError as error:
                    print(f"--grid is not valid JSON: {error}", file=sys.stderr)
                    return 2
                if not isinstance(axes, dict):
                    print(
                        f"--grid must be a JSON object of axes, got: {args.grid!r}",
                        file=sys.stderr,
                    )
                    return 2
            else:
                axes = {
                    "scheduler": args.schedulers.split(","),
                    "governor": args.governors.split(","),
                    "v20_load": args.v20_loads.split(","),
                }
            base = ScenarioConfig().with_changes(**overrides)
            grid = SweepGrid(
                axes,
                base=base,
                vary_seed=not args.fixed_seed,
                replicates=args.replicates,
            )
        from .obs import observed

        _, registry = _observation_for(None, args.metrics_out)
        reporter = _SweepReporter(len(grid), _verbosity_of(args))
        runner = SweepRunner(
            grid,
            metrics=metrics,
            workers=args.workers,
            store=args.store,
            resume=not args.force,
            progress=reporter,
        )
        try:
            with observed(metrics=registry):
                results = runner.run()
        finally:
            reporter.finish()
    except ConfigurationError as error:
        print(f"sweep: {error}", file=sys.stderr)
        return 2
    print(
        results.summary_table(
            [m for m in _SWEEP_SUMMARY_METRICS if m in results.cells[0].metrics] or None,
            title=f"sweep: {len(results)} cells, axes {', '.join(grid.axes)}",
        )
    )
    for axis in grid.axes:
        if len(grid.axes[axis]) < 2 or "energy_joules" not in results.cells[0].metrics:
            continue
        print()
        print(f"mean energy by {axis}:")
        for value, summary in results.aggregate("energy_joules", by=axis).items():
            ci = f" ± {summary['ci95']:.0f}" if summary["count"] > 1 else ""
            print(
                f"  {str(value):<14} {summary['mean']:10.0f}{ci} J "
                f"over {summary['count']} cells"
            )
    if args.store and not args.quiet:
        print(
            f"\nstore: {runner.cache_hits} cells warm, {runner.computed} computed "
            f"({pathlib.Path(args.store)})"
        )
    if registry is not None:
        path = registry.save(args.metrics_out)
        print(f"\nwrote {len(registry)} metrics to {path}")
    if args.out:
        path = results.save(args.out)
        print(f"\nwrote {len(results)} cells to {path}")
    if args.out_aggregated:
        path = results.export_aggregated(args.out_aggregated)
        print(f"wrote {len(results.aggregated_records())} aggregated rows to {path}")
    return 0


def _parse_where(clauses: Sequence[str]) -> dict[str, str | tuple[str, str]]:
    """``KEY=VALUE`` / ``KEY>=VALUE`` / ``KEY<=VALUE`` clauses -> a filter map.

    Equality clauses map to plain strings; inequality clauses map to
    ``(op, value)`` tuples with a validated numeric bound (raises
    ValueError on junk).
    """
    where: dict[str, str | tuple[str, str]] = {}
    for clause in clauses:
        for op in (">=", "<="):
            key, sep, value = clause.partition(op)
            if sep and key.strip():
                value = value.strip()
                try:
                    float(value)
                except ValueError:
                    raise ValueError(
                        f"--where {clause!r}: {op} needs a numeric bound, "
                        f"got {value!r}"
                    ) from None
                where[key.strip()] = (op, value)
                break
        else:
            key, sep, value = clause.partition("=")
            if not sep or not key.strip():
                raise ValueError(
                    f"--where takes KEY=VALUE, KEY>=VALUE or KEY<=VALUE "
                    f"(e.g. scheduler=pas, seed>=5), got {clause!r}"
                )
            where[key.strip()] = value.strip()
    return where


def _where_clause_text(key: str, value: str | tuple[str, str]) -> str:
    """Render a parsed filter clause back to its CLI spelling."""
    if isinstance(value, tuple):
        return f"{key}{value[0]}{value[1]}"
    return f"{key}={value}"


def _cmd_store(args: argparse.Namespace) -> int:
    from .store import ExperimentStore

    root = pathlib.Path(args.store)
    if not (root / "index.jsonl").exists():
        print(f"store: {root} is not an experiment store (no index.jsonl)", file=sys.stderr)
        return 2
    store = ExperimentStore(root)
    try:
        where = _parse_where(getattr(args, "where", None) or [])
    except ValueError as error:
        print(f"store: {error}", file=sys.stderr)
        return 2
    if args.action == "ls":
        payloads = store.payloads(where=where)
        if not payloads:
            suffix = (
                " matching "
                + ", ".join(_where_clause_text(k, v) for k, v in where.items())
                if where
                else ""
            )
            print(f"store {root}: no cells{suffix}")
            return 0
        rows = [
            [
                payload["key"][:12],
                payload["label"],
                (payload.get("config") or {}).get("type", "?"),
                str(len(payload.get("metrics", {}))),
            ]
            for payload in payloads
        ]
        print(
            table_to_text(
                ["key", "label", "config", "metrics"],
                rows,
                title=f"store {root}: {len(payloads)} cells",
            )
        )
        return 0
    if args.action == "show":
        try:
            payload = store.find(args.cell)
        except StoreError as error:
            print(f"store: {error}", file=sys.stderr)
            return 2
        print(json.dumps(payload, sort_keys=True, indent=2))
        return 0
    if args.action == "gc":
        stats = store.gc()
        print(
            f"store {root}: kept {stats['kept']} cells "
            f"(removed {stats['corrupt']} corrupt, "
            f"{stats['version_mismatch']} version-mismatched; "
            f"dropped {stats['stale_index']} stale index lines, "
            f"re-indexed {stats['reindexed']} blobs)"
        )
        return 0
    if args.action == "export":
        results = store.to_results(where=where)
        if not len(results):
            print(
                f"store: {root} holds no valid cells to export"
                + (" matching the --where filter" if where else ""),
                file=sys.stderr,
            )
            return 2
        if args.aggregated:
            path = results.export_aggregated(args.out)
            print(f"wrote {len(results.aggregated_records())} aggregated rows to {path}")
        else:
            path = results.save(args.out)
            print(f"wrote {len(results)} cells to {path}")
        return 0
    raise AssertionError(f"unhandled store action {args.action!r}")  # pragma: no cover


def _cluster_config_from_args(args: argparse.Namespace):
    """Resolve a cluster config + title from --preset/--scenario and overrides."""
    from .cluster import ClusterScenarioConfig

    if getattr(args, "scenario", None):
        path = pathlib.Path(args.scenario)
        try:
            data = json.loads(path.read_text())
        except OSError as error:
            raise ConfigurationError(f"cannot read {path}: {error}") from None
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"{path} is not valid JSON: {error}") from None
        if not isinstance(data, dict) or data.get("kind") != "cluster":
            raise ConfigurationError(
                f"{path} is not a cluster scenario spec (needs \"kind\": \"cluster\")"
            )
        config = ClusterScenarioConfig.from_dict(data)
        title = f"scenario {path.name}"
        slug = path.stem
    else:
        preset = get_preset(args.preset)
        if preset.kind != "cluster":
            raise ConfigurationError(
                f"preset {preset.name!r} is kind:{preset.kind}; the cluster "
                "commands need a kind:cluster preset (see sweep --list-presets)"
            )
        config = preset.config
        title = f"preset {args.preset}"
        slug = args.preset
    overrides = {}
    if getattr(args, "policy", None):
        overrides["policy"] = args.policy
    if getattr(args, "duration", None) is not None:
        overrides["duration"] = args.duration
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    if getattr(args, "power_budget", None) is not None:
        overrides["power_budget_w"] = args.power_budget
    if overrides:
        config = config.with_changes(**overrides)
    return config, title, slug


def _cmd_cluster_run(args: argparse.Namespace) -> int:
    try:
        config, title, _ = _cluster_config_from_args(args)
        return _run_cluster_config(
            config,
            title,
            args.out,
            out_series=args.out_series,
            out_hosts=args.out_hosts,
            out_migrations=args.out_migrations,
            trace_out=args.trace,
            metrics_out=args.metrics_out,
        )
    except ConfigurationError as error:
        print(f"cluster run: {error}", file=sys.stderr)
        return 2


#: Per-cell columns for the cluster sweep terminal summary.
_CLUSTER_SUMMARY_METRICS = (
    "energy_kwh",
    "hosts_on_mean",
    "migrations",
    "sla_violations",
    "power_peak_w",
    "sla_mean",
)


def _cmd_cluster_sweep(args: argparse.Namespace) -> int:
    from .sweep import SweepRunner

    if args.resume and args.force:
        print("cluster sweep: --resume and --force are opposites; pick one", file=sys.stderr)
        return 2
    if (args.resume or args.force) and not args.store:
        print(
            "cluster sweep: --resume/--force only make sense with --store DIR",
            file=sys.stderr,
        )
        return 2
    overrides = {}
    if args.duration is not None:
        overrides["duration"] = args.duration
    if args.seed is not None:
        overrides["seed"] = args.seed
    try:
        preset = get_preset(args.preset)
        if preset.kind != "cluster":
            raise ConfigurationError(
                f"preset {preset.name!r} is kind:{preset.kind}; cluster sweep "
                "needs a kind:cluster preset (see sweep --list-presets)"
            )
        grid = preset_grid(
            args.preset,
            overrides=overrides,
            replicates=args.replicates,
            vary_seed=not args.fixed_seed,
        )
        from .obs import observed

        _, registry = _observation_for(None, args.metrics_out)
        reporter = _SweepReporter(len(grid), _verbosity_of(args))
        runner = SweepRunner(
            grid,
            metrics=preset.metrics,
            workers=args.workers,
            store=args.store,
            resume=not args.force,
            progress=reporter,
        )
        try:
            with observed(metrics=registry):
                results = runner.run()
        finally:
            reporter.finish()
    except ConfigurationError as error:
        print(f"cluster sweep: {error}", file=sys.stderr)
        return 2
    print(
        results.summary_table(
            [m for m in _CLUSTER_SUMMARY_METRICS if m in results.cells[0].metrics]
            or None,
            title=f"cluster sweep: {len(results)} cells, axes {', '.join(grid.axes)}",
        )
    )
    for axis in grid.axes:
        if len(grid.axes[axis]) < 2 or "energy_kwh" not in results.cells[0].metrics:
            continue
        print()
        print(f"mean fleet energy by {axis}:")
        for value, summary in results.aggregate("energy_kwh", by=axis).items():
            ci = f" ± {summary['ci95'] * 1000:.2f}" if summary["count"] > 1 else ""
            print(
                f"  {str(value):<14} {summary['mean'] * 1000:8.2f}{ci} Wh "
                f"over {summary['count']} cells"
            )
    if args.store and not args.quiet:
        print(
            f"\nstore: {runner.cache_hits} cells warm, {runner.computed} computed "
            f"({pathlib.Path(args.store)})"
        )
    if registry is not None:
        path = registry.save(args.metrics_out)
        print(f"\nwrote {len(registry)} metrics to {path}")
    if args.out:
        path = results.save(args.out)
        print(f"\nwrote {len(results)} cells to {path}")
    if args.out_aggregated:
        path = results.export_aggregated(args.out_aggregated)
        print(f"wrote {len(results.aggregated_records())} aggregated rows to {path}")
    return 0


def _replicate_seeds(root_seed: int, policy: str, replicates: int) -> list[int]:
    """Per-replicate seeds, mirroring the sweep convention.

    One replicate keeps the scenario's own seed (today's behaviour stays
    byte-identical); several derive one deterministic seed per
    ``policy=...,rep=k`` label exactly like
    :func:`repro.sweep.grid.derive_cell_seed`-based sweep replicates do.
    """
    from .sweep.grid import derive_cell_seed

    if replicates == 1:
        return [root_seed]
    return [
        derive_cell_seed(root_seed, f"policy={policy},rep={rep}")
        for rep in range(replicates)
    ]


def _format_ci(mean: float, ci95: float, digits: int, *, scale: float = 1.0) -> str:
    """``mean ± ci`` (the ± only when the CI is meaningful, i.e. n > 1)."""
    if ci95 > 0.0:
        return f"{mean * scale:.{digits}f} ±{ci95 * scale:.{digits}f}"
    return f"{mean * scale:.{digits}f}"


def _cmd_cluster_compare(args: argparse.Namespace) -> int:
    from .cluster.scenario import orchestration_policy_names, run_cluster_scenario
    from .sweep.metrics import cluster_metrics
    from .sweep.store import _mean_std_ci
    from .telemetry.export import records_to_csv

    try:
        if args.replicates < 1:
            raise ConfigurationError(
                f"--replicates must be >= 1, got {args.replicates}"
            )
        config, title, slug = _cluster_config_from_args(args)
        if args.policies:
            policies = [p.strip() for p in args.policies.split(",") if p.strip()]
            if "power-budget" in policies and config.power_budget_w is None:
                raise ConfigurationError(
                    "the power-budget policy needs a watt cap; the scenario "
                    "sets no power_budget_w"
                )
        else:
            policies = list(orchestration_policy_names())
            if config.power_budget_w is None and "power-budget" in policies:
                policies.remove("power-budget")
                print(
                    "note: skipping power-budget (the scenario sets no "
                    "power_budget_w)",
                    file=sys.stderr,
                )
        if not policies:
            raise ConfigurationError("--policies names no policies")
        out_dir = pathlib.Path(args.out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        rows = []
        summary_by_policy: dict[str, dict[str, dict[str, float]]] = {}
        for policy in policies:
            seeds = _replicate_seeds(config.seed, policy, args.replicates)
            samples: dict[str, list[float]] = {}
            for rep, seed in enumerate(seeds):
                sim = run_cluster_scenario(
                    config.with_changes(policy=policy, seed=seed)
                )
                for key, value in cluster_metrics(sim).items():
                    samples.setdefault(key, []).append(float(value))
                if rep == 0:
                    series_path = out_dir / f"{slug}.{policy}.epochs.csv"
                    series_path.write_text(records_to_csv(sim.epoch_records()))
            summary = {}
            for key, values in samples.items():
                mean, std, ci95 = _mean_std_ci(values)
                summary[key] = {
                    "mean": mean,
                    "ci95": ci95,
                    "max": max(values),
                    "min": min(values),
                }
            summary_by_policy[policy] = summary
            rows.append(
                [
                    policy,
                    _format_ci(
                        summary["energy_kwh"]["mean"],
                        summary["energy_kwh"]["ci95"],
                        2,
                        scale=1000.0,
                    ),
                    _format_ci(
                        summary["hosts_on_mean"]["mean"],
                        summary["hosts_on_mean"]["ci95"],
                        2,
                    ),
                    _format_ci(
                        summary["migrations"]["mean"],
                        summary["migrations"]["ci95"],
                        1,
                    ),
                    _format_ci(
                        summary["sla_violations"]["mean"],
                        summary["sla_violations"]["ci95"],
                        1,
                    ),
                    _format_ci(
                        summary["sla_mean"]["mean"],
                        summary["sla_mean"]["ci95"],
                        2,
                        scale=100.0,
                    ),
                    f"{summary['power_peak_w']['max']:7.1f}",
                    f"{slug}.{policy}.epochs.csv",
                ]
            )
    except ConfigurationError as error:
        print(f"cluster compare: {error}", file=sys.stderr)
        return 2
    replicate_note = (
        f", {args.replicates} replicates (mean ±ci95)" if args.replicates > 1 else ""
    )
    print(
        table_to_text(
            [
                "policy",
                "energy Wh",
                "hosts on",
                "migrations",
                "sla viol.",
                "SLA %",
                "peak W",
                "series",
            ],
            rows,
            title=(
                f"{title}: {config.n_vms} VMs / {config.total_machines} machines, "
                f"{config.duration:.0f}s per policy{replicate_note}"
            ),
        )
    )
    # PASS/FAIL on replicate means (and the cap on the *worst* replicate):
    # a single-seed coin flip no longer decides the energy ordering.
    checks: list[tuple[str, bool]] = []
    if "power-budget" in summary_by_policy and config.power_budget_w is not None:
        checks.append(
            (
                f"power-budget respects the {config.power_budget_w:.0f} W cap "
                "every epoch (every replicate)",
                summary_by_policy["power-budget"]["power_peak_w"]["max"]
                <= config.power_budget_w,
            )
        )
    if {"static", "consolidate"} <= summary_by_policy.keys():
        checks.append(
            (
                "consolidate yields lower mean energy than static",
                summary_by_policy["consolidate"]["energy_kwh"]["mean"]
                < summary_by_policy["static"]["energy_kwh"]["mean"],
            )
        )
    if "static" in summary_by_policy:
        checks.append(
            (
                "static never migrates",
                summary_by_policy["static"]["migrations"]["max"] == 0,
            )
        )
    print()
    for description, passed in checks:
        print(f"[{'PASS' if passed else 'FAIL'}] {description}")
    return 0 if all(passed for _, passed in checks) else 1


def _add_cluster_parser(commands) -> None:
    cluster = commands.add_parser(
        "cluster",
        help="datacenter orchestration: run, sweep or compare fleet scenarios",
        description=(
            "Drive the epoch-driven orchestration subsystem: run one fleet "
            "scenario with per-epoch/per-host telemetry exports, sweep a "
            "cluster preset grid through the experiment store, or compare "
            "every registered orchestration policy over one fleet."
        ),
    )
    actions = cluster.add_subparsers(dest="action", required=True)

    c_run = actions.add_parser(
        "run", help="run one fleet scenario and print placement + telemetry"
    )
    source = c_run.add_mutually_exclusive_group(required=True)
    source.add_argument("--preset", help="a kind:cluster preset name")
    source.add_argument("--scenario", help="path to a cluster scenario-spec JSON file")
    c_run.add_argument("--policy", default=None, help="override the orchestration policy")
    c_run.add_argument("--duration", type=float, default=None)
    c_run.add_argument("--seed", type=int, default=None)
    c_run.add_argument(
        "--power-budget",
        dest="power_budget",
        type=float,
        default=None,
        help="override the cluster watt cap (power-budget policy)",
    )
    c_run.add_argument(
        "--out-series", default=None, help="write the per-epoch fleet series CSV to PATH"
    )
    c_run.add_argument(
        "--out-hosts", default=None, help="write the per-host per-epoch series CSV to PATH"
    )
    c_run.add_argument(
        "--out-migrations", default=None, help="write the migration-event CSV to PATH"
    )
    c_run.add_argument("--out", default=None, help="also write the resolved spec to PATH")
    c_run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a sim-time Chrome trace-event JSON (Perfetto-loadable) to PATH",
    )
    c_run.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the runtime-metrics snapshot JSON to PATH",
    )
    c_run.set_defaults(fn=_cmd_cluster_run)

    c_sweep = actions.add_parser(
        "sweep", help="run a cluster preset grid (store-cacheable, resumable)"
    )
    c_sweep.add_argument("--preset", required=True, help="a kind:cluster preset name")
    c_sweep.add_argument(
        "--replicates",
        type=int,
        default=1,
        help="statistical replicates per cell (per-replicate derived seeds)",
    )
    c_sweep.add_argument("--duration", type=float, default=None)
    c_sweep.add_argument("--seed", type=int, default=None)
    c_sweep.add_argument(
        "--fixed-seed",
        action="store_true",
        help="give every cell the root seed instead of derived per-cell seeds",
    )
    c_sweep.add_argument("--workers", type=int, default=1, help="process-pool size")
    c_sweep.add_argument("--out", default=None, help="write results to PATH (.json or .csv)")
    c_sweep.add_argument(
        "--out-aggregated",
        default=None,
        help="write one row per logical cell with mean/std/ci95 columns to PATH",
    )
    c_sweep.add_argument(
        "--store",
        default=None,
        help="experiment-store DIR: stream finished cells, skip computed ones",
    )
    c_sweep.add_argument("--resume", action="store_true", help="with --store: serve stored cells")
    c_sweep.add_argument(
        "--force", action="store_true", help="with --store: recompute and overwrite"
    )
    c_sweep.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the runtime-metrics snapshot JSON to PATH",
    )
    c_sweep.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="per-cell progress lines on stderr (default: one live line)",
    )
    c_sweep.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress progress and store-status output",
    )
    c_sweep.set_defaults(fn=_cmd_cluster_sweep)

    c_compare = actions.add_parser(
        "compare",
        help="run every orchestration policy over one fleet and summarise",
    )
    compare_source = c_compare.add_mutually_exclusive_group(required=True)
    compare_source.add_argument("--preset", help="a kind:cluster preset name")
    compare_source.add_argument(
        "--scenario", help="path to a cluster scenario-spec JSON file"
    )
    c_compare.add_argument(
        "--policies",
        default=None,
        help="comma-separated policy subset (default: the whole registry)",
    )
    c_compare.add_argument("--duration", type=float, default=None)
    c_compare.add_argument("--seed", type=int, default=None)
    c_compare.add_argument(
        "--replicates",
        type=int,
        default=1,
        help="runs per policy with derived per-replicate seeds; the table "
        "then reports mean ±ci95 and the PASS/FAIL checks use means "
        "(cap check: the worst replicate)",
    )
    c_compare.add_argument(
        "--out-dir",
        default="cluster-series",
        help="directory for the per-policy per-epoch series CSVs",
    )
    c_compare.set_defaults(fn=_cmd_cluster_compare)


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'DVFS Aware CPU Credit Enforcement in a Virtualized System' (Middleware 2013).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list available experiments").set_defaults(fn=_cmd_list)

    figure = commands.add_parser("figure", help="regenerate a figure (1-10)")
    figure.add_argument("number", type=int, choices=sorted(_FIGURES))
    figure.set_defaults(fn=_cmd_figure)

    table = commands.add_parser("table", help="regenerate a table (1-2)")
    table.add_argument("number", type=int, choices=sorted(_TABLES))
    table.add_argument("--workers", type=int, default=1, help="process-pool size (table 2)")
    table.add_argument(
        "--store",
        default=None,
        help="experiment-store DIR: reuse stored cells, persist new ones (table 2)",
    )
    table.set_defaults(fn=_cmd_table)

    validate = commands.add_parser("validate", help="run a §5.2 validation sweep")
    validate.add_argument("equation", choices=sorted(_VALIDATIONS))
    validate.set_defaults(fn=_cmd_validate)

    ablation = commands.add_parser("ablation", help="run an ablation study")
    ablation.add_argument("name", choices=sorted(_ABLATIONS))
    ablation.add_argument("--workers", type=int, default=1, help="process-pool size")
    ablation.add_argument(
        "--store",
        default=None,
        help="experiment-store DIR: reuse stored cells, persist new ones",
    )
    ablation.set_defaults(fn=_cmd_ablation)

    calibrate = commands.add_parser("calibrate", help="measure cf on a catalog processor")
    calibrate.add_argument("processor", nargs="?", default=catalog.OPTIPLEX_755.name)
    calibrate.set_defaults(fn=_cmd_calibrate)

    scenario = commands.add_parser("scenario", help="run a custom §5.3 scenario")
    scenario.add_argument("--scheduler", default="pas", choices=["credit", "credit2", "sedf", "pas"])
    scenario.add_argument(
        "--governor",
        default="stable",
        choices=["performance", "powersave", "userspace", "ondemand", "conservative", "stable"],
    )
    scenario.add_argument(
        "--v20-load", default="exact", choices=["exact", "near_exact", "thrashing", "idle"]
    )
    scenario.add_argument(
        "--v70-load", default="exact", choices=["exact", "near_exact", "thrashing", "idle"]
    )
    scenario.add_argument("--duration", type=float, default=800.0)
    scenario.add_argument("--seed", type=int, default=1)
    scenario.set_defaults(fn=_cmd_scenario)

    run = commands.add_parser(
        "run",
        help="run a named preset or a scenario-spec JSON file",
        description=(
            "Run one declarative scenario end-to-end and print a per-guest "
            "summary.  The scenario comes from --preset (see 'sweep "
            "--list-presets') or from --scenario, a JSON file in the "
            "ScenarioConfig.to_dict() format (arbitrary guest fleets)."
        ),
    )
    source = run.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--preset",
        help="preset name (see sweep --list-presets), or 'all' for a smoke "
        "pass over every non-xlarge preset",
    )
    source.add_argument("--scenario", help="path to a scenario-spec JSON file")
    run.add_argument(
        "--include-cluster",
        action="store_true",
        help="with --preset all: include the kind:cluster presets too",
    )
    run.add_argument("--out", default=None, help="also write the resolved spec to PATH")
    run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a sim-time Chrome trace-event JSON (Perfetto-loadable) to PATH",
    )
    run.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the runtime-metrics snapshot JSON to PATH",
    )
    run.set_defaults(fn=_cmd_run)

    profile = commands.add_parser(
        "profile",
        help="wall-clock phase profile of one scenario run",
        description=(
            "Run one preset or scenario spec under the opt-in phase profiler "
            "and print per-subsystem self-time (scheduler, governor, "
            "accounting, dispatch, workload, ...).  Wall-clock timings vary "
            "run to run by nature; the simulation itself is unaffected."
        ),
    )
    p_source = profile.add_mutually_exclusive_group(required=True)
    p_source.add_argument("--preset", help="preset name (see sweep --list-presets)")
    p_source.add_argument("--scenario", help="path to a scenario-spec JSON file")
    profile.add_argument("--duration", type=float, default=None)
    profile.add_argument("--seed", type=int, default=None)
    profile.set_defaults(fn=_cmd_profile)

    sweep = commands.add_parser(
        "sweep",
        help="run a scenario grid (scheduler x governor x load by default)",
        description=(
            "Expand a parameter grid over the §5.3 scenario and run every cell, "
            "optionally across a process pool.  Axes come from a named preset "
            "(--preset, see --list-presets), from the three list flags, or from "
            "--grid as a JSON object mapping ScenarioConfig fields to value "
            "lists (see the repro.sweep module docs)."
        ),
    )
    sweep.add_argument(
        "--preset",
        default=None,
        help="run a named preset grid instead of the flag/JSON axes",
    )
    sweep.add_argument(
        "--list-presets",
        action="store_true",
        help="list available presets and exit",
    )
    sweep.add_argument(
        "--replicates",
        type=int,
        default=1,
        help="statistical replicates per cell (per-replicate derived seeds)",
    )
    sweep.add_argument(
        "--schedulers",
        default=_SWEEP_DEFAULTS["schedulers"],
        help="comma-separated scheduler axis (default: %(default)s)",
    )
    sweep.add_argument(
        "--governors",
        default=_SWEEP_DEFAULTS["governors"],
        help="comma-separated governor axis (default: %(default)s)",
    )
    sweep.add_argument(
        "--v20-loads",
        default=_SWEEP_DEFAULTS["v20_loads"],
        help="comma-separated V20 load axis (default: %(default)s)",
    )
    sweep.add_argument(
        "--grid",
        default=None,
        help="JSON object of axes overriding the three list flags",
    )
    sweep.add_argument(
        "--duration",
        type=float,
        default=None,
        help="override the base config's duration (default: the preset's own)",
    )
    sweep.add_argument(
        "--seed", type=int, default=None, help="root seed for per-cell seeds"
    )
    sweep.add_argument(
        "--fixed-seed",
        action="store_true",
        help="give every cell the root seed instead of derived per-cell seeds",
    )
    sweep.add_argument("--workers", type=int, default=1, help="process-pool size")
    sweep.add_argument("--out", default=None, help="write results to PATH (.json or .csv)")
    sweep.add_argument(
        "--out-aggregated",
        default=None,
        help="also write one row per logical cell with mean/std/ci95 columns "
        "(replicates collapsed) to PATH (.json or .csv)",
    )
    sweep.add_argument(
        "--store",
        default=None,
        help="experiment-store DIR: stream finished cells to disk and skip "
        "already-computed ones on re-run",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="with --store: serve stored cells, compute only the missing ones "
        "(the default; the flag exists to make intent explicit)",
    )
    sweep.add_argument(
        "--force",
        action="store_true",
        help="with --store: recompute every cell and overwrite its stored copy",
    )
    sweep.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the runtime-metrics snapshot JSON (cache hits, cells, "
        "workers) to PATH",
    )
    sweep.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="per-cell progress lines on stderr (default: one live line)",
    )
    sweep.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress progress and store-status output",
    )
    sweep.set_defaults(fn=_cmd_sweep)

    store = commands.add_parser(
        "store",
        help="inspect or maintain an experiment store",
        description=(
            "Query and maintain a content-addressed experiment store written "
            "by 'sweep --store DIR' (and by the sweep-backed ablations/tables): "
            "list cells, show one blob, garbage-collect damaged entries, or "
            "export the whole corpus as sweep results."
        ),
    )
    store_actions = store.add_subparsers(dest="action", required=True)
    store_ls = store_actions.add_parser("ls", help="list stored cells")
    store_show = store_actions.add_parser("show", help="print one cell blob as JSON")
    store_show.add_argument("cell", help="cell key (full) or cell label")
    store_gc = store_actions.add_parser(
        "gc", help="drop damaged/version-mismatched blobs, rebuild the index"
    )
    store_export = store_actions.add_parser(
        "export", help="export all stored cells to a results file"
    )
    store_export.add_argument("--out", required=True, help="output PATH (.json or .csv)")
    store_export.add_argument(
        "--aggregated",
        action="store_true",
        help="emit the per-logical-cell mean/std/ci95 aggregate instead of raw cells",
    )
    for sub in (store_ls, store_export):
        sub.add_argument(
            "--where",
            action="append",
            default=[],
            metavar="KEY[=|>=|<=]VALUE",
            help="only cells whose param/config field KEY equals VALUE, or "
            "satisfies a numeric KEY>=VALUE / KEY<=VALUE bound "
            "(repeatable; clauses AND together), e.g. --where scheduler=pas "
            "--where seed>=5",
        )
    for sub in (store_ls, store_show, store_gc, store_export):
        sub.add_argument("--store", required=True, help="experiment-store DIR")
        sub.set_defaults(fn=_cmd_store)

    bench = commands.add_parser(
        "bench",
        help="run the benchmark harness and emit a BENCH_<rev>.json report",
        description=(
            "Run the unified benchmark harness: native hot-path benches "
            "(--suite smoke, the CI gate) or every benchmarks/bench_*.py "
            "reproduction benchmark as timed pytest sessions (--suite full). "
            "Emits machine-readable BENCH_<rev>.json; with --compare the "
            "command exits non-zero when any bench's wall time regresses "
            "beyond --max-regress of the baseline (wall times are "
            "calibration-normalised across machines unless --no-normalize)."
        ),
    )
    bench.add_argument(
        "--suite",
        choices=["smoke", "full"],
        default="smoke",
        help="bench set: native hot-path benches, or + all bench_*.py (default: %(default)s)",
    )
    bench.add_argument(
        "--bench",
        action="append",
        default=None,
        metavar="NAME",
        help="run only NAME (repeatable; see --list --suite full)",
    )
    bench.add_argument("--list", action="store_true", help="list bench names and exit")
    bench.add_argument(
        "--out", default=None, help="report path (default: ./BENCH_<rev>.json)"
    )
    bench.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE.json",
        help="gate against a baseline report; non-zero exit on regression",
    )
    bench.add_argument(
        "--max-regress",
        default="15%",
        help="allowed per-bench wall-time regression for --compare (default: %(default)s)",
    )
    bench.add_argument(
        "--no-normalize",
        action="store_true",
        help="compare raw wall times (skip the calibration-machine rescale)",
    )
    bench.set_defaults(fn=_cmd_bench)

    lint = commands.add_parser(
        "lint",
        help="run the RPL invariant checker (exits non-zero on findings)",
        description=(
            "Statically check the determinism, spec round-trip, registry, "
            "slots, error-hygiene, and float-purity invariants the golden "
            "fixtures and store keys depend on (docs/invariants.md is the "
            "rule catalogue). Suppress a single line with "
            "'# repro-lint: disable=RPL###'; unused suppressions are "
            "themselves findings."
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: src tests benchmarks)",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json", "github"],
        default="text",
        help=(
            "report format: text, json, or github (Actions ::error "
            "annotations) (default: %(default)s)"
        ),
    )
    lint.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="CODE[,CODE]",
        help=(
            "run only these rule codes or family prefixes, e.g. RPL104 or "
            "RPL7 (repeatable, comma-separable)"
        ),
    )
    lint.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="CODE[,CODE]",
        help=(
            "skip these rule codes or family prefixes (repeatable, "
            "comma-separable)"
        ),
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    lint.set_defaults(fn=_cmd_lint)

    _add_cluster_parser(commands)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
