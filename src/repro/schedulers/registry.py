"""Scheduler factory by name, for experiment configs and the public API."""

from __future__ import annotations

from ..errors import ConfigurationError
from .base import Scheduler
from .credit import CreditScheduler
from .credit2 import Credit2Scheduler
from .sedf import SedfScheduler

#: Names accepted by :func:`make_scheduler` (and ``Host(scheduler=...)``).
SCHEDULER_NAMES: tuple[str, ...] = ("credit", "credit2", "pas", "sedf")


def make_scheduler(name: str, **kwargs) -> Scheduler:
    """Instantiate a scheduler by its registry *name*.

    Keyword arguments are forwarded to the scheduler constructor.  The PAS
    scheduler is imported lazily: it lives in :mod:`repro.core` (it is the
    paper's contribution, not a baseline) and extends the Credit scheduler,
    so a module-level import here would be circular.
    """
    if name == "credit":
        return CreditScheduler(**kwargs)
    if name == "credit2":
        return Credit2Scheduler(**kwargs)
    if name == "sedf":
        return SedfScheduler(**kwargs)
    if name == "pas":
        from ..core.pas import PasScheduler

        return PasScheduler(**kwargs)
    raise ConfigurationError(
        f"unknown scheduler {name!r}; choose one of {', '.join(SCHEDULER_NAMES)}"
    )
