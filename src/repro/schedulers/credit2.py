"""The Credit2 scheduler — the "beta" Xen scheduler the paper mentions.

§3.1: "Credit2 scheduler is an updated version of Credit scheduler, with the
intention of solving some of its weaknesses.  This scheduler is currently
available in a beta version."  The paper excludes it from the evaluation; we
include a faithful-in-spirit simplification as an extension baseline so the
benchmarks can show it inherits the *variable credit* incompatibility
(Credit2 had no cap support in the Xen 4.1 era, so it cannot enforce a fixed
credit at all).

Mechanics: one global runqueue ordered by credit balance; the running vCPU
burns credits at a rate inversely proportional to its weight; when the
candidate with the most credits is at or below zero, everyone's balance is
reset upward.  Work-conserving by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..errors import SchedulerError
from ..units import check_positive
from .base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hypervisor.domain import Domain
    from ..hypervisor.vcpu import VCpu

#: Credit balance granted at every reset, in seconds.
CREDIT_INIT = 0.5


@dataclass
class _Credit2Account:
    """Per-vCPU Credit2 state."""

    vcpu: "VCpu"
    weight: float
    credit_s: float = CREDIT_INIT


class Credit2Scheduler(Scheduler):
    """Simplified Xen Credit2: weighted fair sharing, no caps.

    Parameters
    ----------
    quantum:
        Slice length (Credit2 makes finer-grained decisions than Credit;
        10 ms keeps interleaving smooth).
    """

    name = "credit2"

    def __init__(self, *, quantum: float = 0.01) -> None:
        super().__init__()
        self.quantum = check_positive(quantum, "quantum")
        self.tick_period = None  # No periodic accounting; resets are lazy.
        self._accounts: dict[str, _Credit2Account] = {}
        self._resets = 0

    # ------------------------------------------------------------ membership

    def add_vcpu(self, vcpu: "VCpu") -> None:
        if vcpu.name in self._accounts:
            raise SchedulerError(f"vCPU {vcpu.name!r} already admitted")
        weight = vcpu.domain.config.effective_weight
        self._accounts[vcpu.name] = _Credit2Account(vcpu=vcpu, weight=weight)

    def remove_vcpu(self, vcpu: "VCpu") -> None:
        self._account_of(vcpu)
        del self._accounts[vcpu.name]

    def _account_of(self, vcpu: "VCpu") -> _Credit2Account:
        try:
            return self._accounts[vcpu.name]
        except KeyError:
            raise SchedulerError(f"vCPU {vcpu.name!r} is not admitted") from None

    # ---------------------------------------------------------- state change

    def wake(self, vcpu: "VCpu") -> None:
        # Runnability is read straight off the vCPU; nothing to queue.
        self._account_of(vcpu)

    def sleep(self, vcpu: "VCpu") -> None:
        self._account_of(vcpu)

    # --------------------------------------------------------------- policy

    def pick_next(self, now: float) -> "VCpu | None":
        self.stats.decisions += 1
        runnable = [
            account for account in self._accounts.values() if account.vcpu.runnable
        ]
        if not runnable:
            self.stats.idle_picks += 1
            return None
        best = max(runnable, key=lambda account: account.credit_s)
        if best.credit_s <= 0.0:
            self._reset_credits()
            best = max(runnable, key=lambda account: account.credit_s)
        return best.vcpu

    def _reset_credits(self) -> None:
        self._resets += 1
        for account in self._accounts.values():
            account.credit_s = min(account.credit_s + CREDIT_INIT, CREDIT_INIT)

    def slice_for(self, vcpu: "VCpu", now: float) -> float:
        return self.quantum

    def charge(self, vcpu: "VCpu", wall_dt: float, now: float) -> None:
        account = self._account_of(vcpu)
        # Higher weight burns slower -> receives a proportionally larger
        # share of the processor under contention.
        reference = max(entry.weight for entry in self._accounts.values())
        account.credit_s -= wall_dt * reference / account.weight
        self.stats.charge(vcpu.name, wall_dt)

    def should_preempt(self, current: "VCpu", waking: "VCpu") -> bool:
        return self._account_of(waking).credit_s > self._account_of(current).credit_s

    # ----------------------------------------------------------- cap control

    def set_cap(self, domain: "Domain", cap_percent: float) -> None:
        """Credit2 (4.1-era) has no cap support; accepted and ignored.

        Kept silent rather than raising so the user-level managers of §4.1
        can be pointed at any scheduler — with Credit2 they simply have no
        enforcement lever, which is itself a result the ablation shows.
        """

    @property
    def resets(self) -> int:
        """Number of global credit resets (tests/telemetry)."""
        return self._resets

    def credits_of(self, vcpu: "VCpu") -> float:
        """Current balance (tests/telemetry)."""
        return self._account_of(vcpu).credit_s
