"""VM schedulers (subsystem S5).

The two Xen schedulers the paper evaluates, plus the beta Credit2 it
mentions, behind one :class:`~repro.schedulers.base.Scheduler` interface:

* :class:`CreditScheduler` — Xen's default: proportional weights, hard caps,
  UNDER/OVER priorities, 30 ms accounting.  With ``cap = credit`` this is the
  paper's *fix credit* scheduler; a null credit is uncapped (§3.1).
* :class:`SedfScheduler` — Simple Earliest Deadline First with the (s, p, b)
  triplet; ``b = True`` grants unused slices (the *variable credit* mode).
* :class:`Credit2Scheduler` — the "updated version ... currently available in
  a beta version" (§3.1); included as an extension baseline.

The paper's PAS scheduler lives in :mod:`repro.core` — it extends
:class:`CreditScheduler`.
"""

from .base import Scheduler, SchedulerStats
from .credit import CreditScheduler
from .sedf import SedfScheduler
from .credit2 import Credit2Scheduler
from .registry import make_scheduler, SCHEDULER_NAMES

__all__ = [
    "Scheduler",
    "SchedulerStats",
    "CreditScheduler",
    "SedfScheduler",
    "Credit2Scheduler",
    "make_scheduler",
    "SCHEDULER_NAMES",
]
