"""The Xen Credit scheduler — the paper's *fix credit* baseline (§3.1).

Mechanics modelled on Xen 4.1's csched:

* every vCPU has a **weight** (share under contention) and a **cap** (hard
  ceiling in percent of one pCPU; 0 means uncapped — the paper's null-credit
  exception);
* every 30 ms accounting period, credits are distributed to *active*
  (runnable) vCPUs proportionally to weight; a vCPU with positive credits is
  UNDER, otherwise OVER, and UNDER always runs before OVER;
* cap enforcement *parks* a vCPU for the rest of the accounting period once
  it has consumed ``cap% * period`` of CPU time; the host's slice length is
  bounded by the remaining budget so the cap is never overshot;
* Dom0 sits in a higher priority class and preempts guests on wake (§5.3:
  "configured with the highest priority").

With ``weight = cap = credit`` (the defaults from
:class:`~repro.hypervisor.domain.DomainConfig`) this is exactly the paper's
fix-credit scheduler: each VM gets at most its credit, always, regardless of
the processor frequency — which is the flaw Figs. 3–5 demonstrate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import SchedulerError
from ..obs import hooks as _obs
from ..units import check_positive
from .base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hypervisor.domain import Domain
    from ..hypervisor.vcpu import VCpu

#: Remaining cap budget below which a vCPU is parked for the period.
MIN_BUDGET = 1e-6


@dataclass(slots=True)
class _Account:
    """Per-vCPU scheduler state."""

    vcpu: "VCpu"
    weight: float
    cap: float  # nominal percent; 0 = uncapped
    priority_class: int
    credit_s: float = 0.0  # seconds of owed CPU time
    usage_in_period: float = 0.0
    parked: bool = False
    queued: bool = False
    initial_cap: float = field(init=False)

    def __post_init__(self) -> None:
        self.initial_cap = self.cap

    @property
    def under(self) -> bool:
        """Xen's UNDER priority: positive credit balance."""
        return self.credit_s > 0.0

    def cap_budget(self, period: float) -> float:
        """Remaining CPU seconds allowed in the current accounting period.

        Canonical definition of the cap rule.  ``pick_next`` / ``slice_for``
        / ``charge`` inline this exact expression (uncapped test included)
        to stay call-free on the dispatch hot path — change it here and in
        those three copies together.
        """
        if self.cap <= 0.0:
            return float("inf")
        return self.cap / 100.0 * period - self.usage_in_period


class CreditScheduler(Scheduler):
    """Xen's default scheduler (weights + caps + UNDER/OVER priorities).

    Parameters
    ----------
    quantum:
        Maximum slice length (Xen: 30 ms).
    tick_interval:
        Scheduler tick (Xen: 10 ms); one accounting pass runs every
        *ticks_per_accounting* ticks.
    ticks_per_accounting:
        Ticks per credit-accounting pass (Xen: 3 -> 30 ms).
    credit_clamp_periods:
        Upper bound on hoarded credits, in accounting periods.  Keeps long-
        blocked vCPUs from starving everyone after wake (Xen clamps too).
    """

    name = "credit"

    def __init__(
        self,
        *,
        quantum: float = 0.03,
        tick_interval: float = 0.01,
        ticks_per_accounting: int = 3,
        credit_clamp_periods: float = 2.0,
    ) -> None:
        super().__init__()
        self.quantum = check_positive(quantum, "quantum")
        self.tick_period = check_positive(tick_interval, "tick_interval")
        if ticks_per_accounting < 1:
            raise SchedulerError(f"ticks_per_accounting must be >= 1, got {ticks_per_accounting}")
        self.ticks_per_accounting = ticks_per_accounting
        self.accounting_period = tick_interval * ticks_per_accounting
        self.credit_clamp = credit_clamp_periods * self.accounting_period
        self._accounts: dict[str, _Account] = {}
        self._queues: dict[int, list[_Account]] = {}
        #: Queues in ascending priority-class order (rebuilt on membership
        #: changes) so pick_next never re-sorts the class keys.
        self._queue_scan: list[list[_Account]] = []
        self._tick_count = 0

    # ------------------------------------------------------------ membership

    def add_vcpu(self, vcpu: "VCpu") -> None:
        if vcpu.name in self._accounts:
            raise SchedulerError(f"vCPU {vcpu.name!r} already admitted")
        config = vcpu.domain.config
        account = _Account(
            vcpu=vcpu,
            weight=config.effective_weight,
            cap=config.effective_cap,
            priority_class=config.priority_class,
        )
        self._accounts[vcpu.name] = account
        self._queues.setdefault(account.priority_class, [])
        self._queue_scan = [self._queues[cls] for cls in sorted(self._queues)]

    def remove_vcpu(self, vcpu: "VCpu") -> None:
        account = self._account_of(vcpu)
        if account.queued:
            self._queues[account.priority_class].remove(account)
        del self._accounts[vcpu.name]

    def _account_of(self, vcpu: "VCpu") -> _Account:
        try:
            return self._accounts[vcpu.name]
        except KeyError:
            raise SchedulerError(f"vCPU {vcpu.name!r} is not admitted") from None

    # ---------------------------------------------------------- state change

    def wake(self, vcpu: "VCpu") -> None:
        account = self._accounts.get(vcpu.name)
        if account is None:
            account = self._account_of(vcpu)
        if not account.queued:
            self._queues[account.priority_class].append(account)
            account.queued = True

    def sleep(self, vcpu: "VCpu") -> None:
        account = self._accounts.get(vcpu.name)
        if account is None:
            account = self._account_of(vcpu)
        if account.queued:
            self._queues[account.priority_class].remove(account)
            account.queued = False

    # --------------------------------------------------------------- policy

    def pick_next(self, now: float) -> "VCpu | None":
        # Allocation-free scan: one pass per class queue finds the first
        # UNDER account (which wins outright) and the first merely-eligible
        # fallback, while collecting stale entries — vCPUs that blocked
        # without a sleep() (defensive; the host always calls sleep, but
        # stale entries must not run).  Semantics are identical to the
        # build-three-lists original, including dropping stale entries in
        # every class scanned before the pick.
        self.stats.decisions += 1
        period = self.accounting_period
        for queue in self._queue_scan:
            under = None
            fallback = None
            stale = None
            for account in queue:
                if not account.vcpu.runnable:
                    if stale is None:
                        stale = [account]
                    else:
                        stale.append(account)
                    continue
                if under is None and not account.parked:
                    # Inline of _Account.cap_budget (keep in sync with it).
                    cap = account.cap
                    if cap <= 0.0 or cap / 100.0 * period - account.usage_in_period > MIN_BUDGET:
                        if account.credit_s > 0.0:
                            under = account
                        elif fallback is None:
                            fallback = account
            if stale is not None:
                for account in stale:
                    queue.remove(account)
                    account.queued = False
            chosen = under if under is not None else fallback
            if chosen is None:
                continue
            queue.remove(chosen)
            chosen.queued = False
            return chosen.vcpu
        self.stats.idle_picks += 1
        return None

    def slice_for(self, vcpu: "VCpu", now: float) -> float:
        account = self._accounts.get(vcpu.name)
        if account is None:
            account = self._account_of(vcpu)
        cap = account.cap
        if cap <= 0.0:
            return self.quantum
        # Inline of _Account.cap_budget (keep in sync with it).
        budget = cap / 100.0 * self.accounting_period - account.usage_in_period
        return budget if budget < self.quantum else self.quantum

    def charge(self, vcpu: "VCpu", wall_dt: float, now: float) -> None:
        name = vcpu.name
        account = self._accounts.get(name)
        if account is None:
            account = self._account_of(vcpu)
        account.credit_s -= wall_dt
        account.usage_in_period += wall_dt
        # Inline of _Account.cap_budget (keep in sync with it).
        cap = account.cap
        if cap > 0.0 and cap / 100.0 * self.accounting_period - account.usage_in_period <= MIN_BUDGET:
            if not account.parked:
                trace = _obs.TRACER
                if trace is not None:
                    trace.credit_event(now, "park", name)
            account.parked = True
        stats = self.stats
        stats.charged_seconds += wall_dt
        by_domain = stats.charged_by_domain
        by_domain[name] = by_domain.get(name, 0.0) + wall_dt

    def should_preempt(self, current: "VCpu", waking: "VCpu") -> bool:
        current_account = self._account_of(current)
        waking_account = self._account_of(waking)
        if waking_account.parked:
            return False
        if waking_account.priority_class < current_account.priority_class:
            return True  # Dom0 boost over guests.
        # Xen's BOOST: a waking vCPU with credit left preempts an OVER one.
        return (
            waking_account.priority_class == current_account.priority_class
            and waking_account.under
            and not current_account.under
        )

    # ----------------------------------------------------------- accounting

    def tick(self, now: float) -> bool:
        self._tick_count += 1
        if self._tick_count % self.ticks_per_accounting != 0:
            return False
        trace = _obs.TRACER
        if trace is not None:
            trace.credit_event(now, "reset", "all")
        self._run_accounting()
        for account in self._accounts.values():
            if account.queued:
                return True
        return False

    def _run_accounting(self) -> None:
        active = [
            account for account in self._accounts.values() if account.vcpu.runnable
        ]
        total_weight = sum(account.weight for account in active)
        if total_weight > 0:
            for account in active:
                share = account.weight / total_weight
                account.credit_s += share * self.accounting_period
                if account.credit_s > self.credit_clamp:
                    account.credit_s = self.credit_clamp
        for account in self._accounts.values():
            account.usage_in_period = 0.0
            account.parked = False

    # ----------------------------------------------------------- cap control

    def set_cap(self, domain: "Domain", cap_percent: float) -> None:
        """Change *domain*'s cap; unparks it if new budget opened up.

        This is the knob PAS turns (Listing 1.2's ``setCredit``): credits in
        the paper's vocabulary are enforced as caps here, because a cap is
        what bounds consumption under fix-credit semantics.
        """
        if cap_percent < 0:
            raise SchedulerError(f"cap must be >= 0, got {cap_percent}")
        account = self._account_of(domain.vcpu)
        account.cap = cap_percent
        if account.parked and account.cap_budget(self.accounting_period) > MIN_BUDGET:
            account.parked = False

    def cap_of(self, domain: "Domain") -> float:
        return self._account_of(domain.vcpu).cap

    def credits_of(self, domain: "Domain") -> float:
        """Current credit balance in seconds (tests/telemetry)."""
        return self._account_of(domain.vcpu).credit_s

    def set_weight(self, domain: "Domain", weight: float) -> None:
        """Change *domain*'s weight; takes effect at the next refill."""
        if weight <= 0:
            raise SchedulerError(f"weight must be > 0, got {weight}")
        self._account_of(domain.vcpu).weight = weight

    def weight_of(self, domain: "Domain") -> float:
        return self._account_of(domain.vcpu).weight
