"""The Xen SEDF scheduler — the paper's *variable credit* baseline (§3.1).

Each vCPU is configured with the triplet ``(s, p, b)``: it is guaranteed the
lowest slice *s* of CPU time during each period of length *p*, and the
boolean flag *b* marks it eligible for *extra* CPU time slices that other
vCPUs leave unused.  Guaranteed slices are dispatched Earliest-Deadline-First;
extra time is handed out round-robin in small quanta.

Credits map onto the triplet as ``s = credit/100 * p`` (DESIGN §6), and the
paper's usage is ``b = True`` — the work-conserving mode whose two faces the
evaluation shows: it masks the DVFS/credit conflict under exact load
(Figs. 6–7) but lets a 20 %-credit VM eat 85 % of the machine under thrashing
load, pinning the frequency at maximum (Fig. 8).

Admission control enforces the EDF bound ``sum(s_i / p_i) <= 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from ..errors import AdmissionError, SchedulerError
from ..units import check_positive
from .base import Scheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hypervisor.domain import Domain
    from ..hypervisor.vcpu import VCpu

#: Remaining guaranteed budget below which a vCPU leaves EDF mode.
MIN_BUDGET = 1e-6
#: Slack accepted on the admission bound (pure float fuzz).
ADMISSION_SLACK = 1e-9


@dataclass
class _SedfAccount:
    """Per-vCPU SEDF state."""

    vcpu: "VCpu"
    slice_s: float
    period_p: float
    extra: bool
    #: Proportional-share weight (QoS boost knob); the admitted slice is
    #: ``base_slice_s * weight / base_weight``, clamped to EDF feasibility.
    weight: float = 1.0
    base_weight: float = 1.0
    base_slice_s: float = 0.0
    deadline: float = 0.0
    remaining: float = 0.0
    #: Mode of the most recent dispatch ("edf" or "extra"): extra time is
    #: not charged against the guaranteed slice.
    last_mode: str = "edf"

    @property
    def utilization(self) -> float:
        return self.slice_s / self.period_p if self.period_p > 0 else 0.0

    def refresh(self, now: float) -> bool:
        """Roll the period forward; True when a new period granted budget."""
        rolled = False
        while now >= self.deadline - 1e-12:
            self.deadline += self.period_p
            self.remaining = self.slice_s
            rolled = True
        return rolled

    @property
    def has_budget(self) -> bool:
        return self.remaining > MIN_BUDGET


class SedfScheduler(Scheduler):
    """Simple Earliest Deadline First with optional extra time (§3.1).

    Parameters
    ----------
    extra_quantum:
        Slice length for extra-time dispatches (round-robin granularity).
    tick_interval:
        Period-rollover granularity; vCPUs whose new period starts while the
        processor idles are picked up at the next tick.
    """

    name = "sedf"

    def __init__(self, *, extra_quantum: float = 0.01, tick_interval: float = 0.01) -> None:
        super().__init__()
        self.extra_quantum = check_positive(extra_quantum, "extra_quantum")
        self.tick_period = check_positive(tick_interval, "tick_interval")
        self._accounts: dict[str, _SedfAccount] = {}
        #: Round-robin order for extra-time dispatch.
        self._extra_ring: list[_SedfAccount] = []

    # ------------------------------------------------------------ membership

    def add_vcpu(self, vcpu: "VCpu") -> None:
        if vcpu.name in self._accounts:
            raise SchedulerError(f"vCPU {vcpu.name!r} already admitted")
        config = vcpu.domain.config
        if config.sedf_period <= 0:
            raise AdmissionError(f"vCPU {vcpu.name!r}: SEDF period must be positive")
        slice_s = config.credit / 100.0 * config.sedf_period
        utilization = sum(account.utilization for account in self._accounts.values())
        if utilization + (slice_s / config.sedf_period) > 1.0 + ADMISSION_SLACK:
            raise AdmissionError(
                f"vCPU {vcpu.name!r} rejected: total utilization "
                f"{utilization + slice_s / config.sedf_period:.4f} exceeds 1.0"
            )
        self._accounts[vcpu.name] = _SedfAccount(
            vcpu=vcpu,
            slice_s=slice_s,
            period_p=config.sedf_period,
            extra=config.sedf_extra,
            weight=config.effective_weight,
            base_weight=config.effective_weight,
            base_slice_s=slice_s,
        )

    def remove_vcpu(self, vcpu: "VCpu") -> None:
        account = self._account_of(vcpu)
        if account in self._extra_ring:
            self._extra_ring.remove(account)
        del self._accounts[vcpu.name]

    def _account_of(self, vcpu: "VCpu") -> _SedfAccount:
        try:
            return self._accounts[vcpu.name]
        except KeyError:
            raise SchedulerError(f"vCPU {vcpu.name!r} is not admitted") from None

    # ---------------------------------------------------------- state change

    def wake(self, vcpu: "VCpu") -> None:
        account = self._account_of(vcpu)
        now = self.host.engine.now
        if now >= account.deadline - 1e-12:
            # Fresh period from the wake instant (no back-credit for sleep).
            account.deadline = now + account.period_p
            account.remaining = account.slice_s

    def sleep(self, vcpu: "VCpu") -> None:
        # Budget and deadline stay; refresh happens on the next wake.
        self._account_of(vcpu)

    # --------------------------------------------------------------- policy

    def pick_next(self, now: float) -> "VCpu | None":
        self.stats.decisions += 1
        runnable = [
            account for account in self._accounts.values() if account.vcpu.runnable
        ]
        for account in runnable:
            account.refresh(now)
        # Guaranteed slices first, earliest deadline wins; FIFO on ties via
        # stable sort over admission order.
        edf_ready = [account for account in runnable if account.has_budget]
        if edf_ready:
            chosen = min(edf_ready, key=lambda account: account.deadline)
            chosen.last_mode = "edf"
            return chosen.vcpu
        # Extra time: round-robin over willing runnable vCPUs.
        ring_candidates = [account for account in runnable if account.extra]
        if ring_candidates:
            chosen = self._rotate_extra(ring_candidates)
            chosen.last_mode = "extra"
            return chosen.vcpu
        self.stats.idle_picks += 1
        return None

    def _rotate_extra(self, candidates: list[_SedfAccount]) -> _SedfAccount:
        # Keep a persistent ring so turns interleave fairly across picks.
        for account in candidates:
            if account not in self._extra_ring:
                self._extra_ring.append(account)
        while True:
            head = self._extra_ring.pop(0)
            self._extra_ring.append(head)
            if head in candidates:
                return head

    def slice_for(self, vcpu: "VCpu", now: float) -> float:
        account = self._account_of(vcpu)
        if account.last_mode == "edf":
            until_deadline = max(account.deadline - now, MIN_BUDGET)
            return min(account.remaining, until_deadline)
        return self.extra_quantum

    def charge(self, vcpu: "VCpu", wall_dt: float, now: float) -> None:
        account = self._account_of(vcpu)
        if account.last_mode == "edf":
            account.remaining = max(0.0, account.remaining - wall_dt)
        self.stats.charge(vcpu.name, wall_dt)

    def should_preempt(self, current: "VCpu", waking: "VCpu") -> bool:
        waking_account = self._account_of(waking)
        if not waking_account.has_budget:
            return False
        current_account = self._account_of(current)
        if current_account.last_mode == "extra":
            return True  # Guaranteed time always beats extra time.
        return waking_account.deadline < current_account.deadline

    # ----------------------------------------------------------- accounting

    def tick(self, now: float) -> bool:
        # Pick up period rollovers for runnable-but-unserved vCPUs; the host
        # re-dispatches when new guaranteed budget appeared.
        rolled = False
        for account in self._accounts.values():
            if account.vcpu.runnable and account.refresh(now):
                rolled = True
        return rolled

    # -------------------------------------------------------------- queries

    def remaining_of(self, vcpu: "VCpu") -> float:
        """Remaining guaranteed budget this period (tests/telemetry)."""
        return self._account_of(vcpu).remaining

    def deadline_of(self, vcpu: "VCpu") -> float:
        """Current period deadline (tests/telemetry)."""
        return self._account_of(vcpu).deadline

    def set_weight(self, domain: "Domain", weight: float) -> None:
        """Rescale *domain*'s guaranteed slice by ``weight / base_weight``.

        SEDF has no native weight; the paper's triplet fixes the slice at
        admission.  The QoS controllers still need a proportional boost
        knob that works against every scheduler, so a weight change maps
        onto the one SEDF parameter with that meaning: the slice grows (or
        shrinks) in proportion, clamped so the fleet stays EDF-admissible
        (``sum(s_i / p_i) <= 1``) — a boost can never over-commit the
        processor, it just takes all the remaining bandwidth.  Takes
        effect at the next period refresh.
        """
        if weight <= 0:
            raise SchedulerError(f"weight must be > 0, got {weight}")
        account = self._account_of(domain.vcpu)
        others = sum(
            other.utilization
            for other in self._accounts.values()
            if other is not account
        )
        feasible_slice = max(0.0, (1.0 + ADMISSION_SLACK - others)) * account.period_p
        account.weight = weight
        account.slice_s = min(
            account.base_slice_s * (weight / account.base_weight), feasible_slice
        )

    def weight_of(self, domain: "Domain") -> float:
        return self._account_of(domain.vcpu).weight
