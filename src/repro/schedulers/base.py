"""The scheduler interface the host dispatch loop drives.

The host owns wall-clock mechanics (slices, events, preemption); a scheduler
owns *policy*: which runnable vCPU goes next, for how long, and how consumed
time is charged.  The contract:

* the host calls :meth:`wake` / :meth:`sleep` on demand transitions;
* :meth:`pick_next` returns the vCPU to dispatch (or None to idle) — it must
  never return a vCPU the policy forbids running (e.g. cap-parked);
* :meth:`slice_for` bounds the slice so a policy budget is never overshot;
* :meth:`charge` accounts wall-time actually consumed (the host may end a
  slice early on blocking or P-state changes);
* :meth:`tick` fires every :attr:`tick_period` simulated seconds and returns
  True when its bookkeeping may have changed who should run, so the host
  re-dispatches.

Caps are mutable at runtime via :meth:`set_cap` — that is the hook the PAS
scheduler and the user-level managers (§4.1) use to enforce Eq. 4.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import SchedulerError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hypervisor.domain import Domain
    from ..hypervisor.host import Host
    from ..hypervisor.vcpu import VCpu


@dataclass
class SchedulerStats:
    """Counters every scheduler maintains (telemetry & tests)."""

    decisions: int = 0
    preemptions: int = 0
    idle_picks: int = 0
    charged_seconds: float = 0.0
    charged_by_domain: dict[str, float] = field(default_factory=dict)

    def charge(self, name: str, dt: float) -> None:
        """Accumulate *dt* seconds against domain *name*."""
        self.charged_seconds += dt
        self.charged_by_domain[name] = self.charged_by_domain.get(name, 0.0) + dt


class Scheduler(ABC):
    """Base class for every VM scheduler."""

    #: Identifier used in experiment configs and telemetry.
    name: str = "abstract"

    #: Seconds between :meth:`tick` calls (None = no periodic bookkeeping).
    tick_period: float | None = None

    def __init__(self) -> None:
        self._host: "Host | None" = None
        self.stats = SchedulerStats()

    # ------------------------------------------------------------- plumbing

    def attach(self, host: "Host") -> None:
        """Called once by the host before any other method."""
        if self._host is not None:
            raise SchedulerError(f"scheduler {self.name!r} attached twice")
        self._host = host

    @property
    def host(self) -> "Host":
        """The owning host (raises before attachment)."""
        if self._host is None:
            raise SchedulerError(f"scheduler {self.name!r} is not attached to a host")
        return self._host

    # ------------------------------------------------------------ membership

    @abstractmethod
    def add_vcpu(self, vcpu: "VCpu") -> None:
        """Admit a vCPU (its domain config carries the parameters)."""

    @abstractmethod
    def remove_vcpu(self, vcpu: "VCpu") -> None:
        """Forget a vCPU."""

    # ---------------------------------------------------------- state change

    @abstractmethod
    def wake(self, vcpu: "VCpu") -> None:
        """The vCPU acquired demand (blocked -> runnable)."""

    @abstractmethod
    def sleep(self, vcpu: "VCpu") -> None:
        """The vCPU drained its demand (runnable/running -> blocked)."""

    # --------------------------------------------------------------- policy

    @abstractmethod
    def pick_next(self, now: float) -> "VCpu | None":
        """Choose the next vCPU to dispatch; None to idle the processor."""

    @abstractmethod
    def slice_for(self, vcpu: "VCpu", now: float) -> float:
        """Maximum wall seconds *vcpu* may run in the upcoming slice (> 0)."""

    @abstractmethod
    def charge(self, vcpu: "VCpu", wall_dt: float, now: float) -> None:
        """Account *wall_dt* seconds actually consumed by *vcpu*."""

    def put_back(self, vcpu: "VCpu") -> None:
        """The slice ended and *vcpu* is still runnable; requeue it.

        Default: treat like a wake.  Schedulers with distinct wake/requeue
        paths (e.g. BOOST handling) override this.
        """
        self.wake(vcpu)

    def tick(self, now: float) -> bool:
        """Periodic bookkeeping; True if the host should re-dispatch."""
        return False

    def should_preempt(self, current: "VCpu", waking: "VCpu") -> bool:
        """True when *waking* must preempt *current* immediately."""
        return False

    # ----------------------------------------------------------- cap control

    def set_cap(self, domain: "Domain", cap_percent: float) -> None:
        """Change a domain's cap at runtime (PAS / user-level managers).

        Schedulers without a cap notion accept and ignore the call, so the
        user-level managers of §4.1 can be pointed at any scheduler.
        """

    def cap_of(self, domain: "Domain") -> float:
        """Current cap in nominal percent (0 = uncapped); default uncapped."""
        return 0.0

    def set_weight(self, domain: "Domain", weight: float) -> None:
        """Change a domain's proportional-share weight at runtime.

        The QoS controllers boost latency-critical domains through this
        knob; schedulers without a weight notion accept and ignore it.
        """

    def weight_of(self, domain: "Domain") -> float:
        """Current weight (0 = this scheduler has no weight notion)."""
        return 0.0
