"""Statistics over time series.

Includes the smoothing the paper applies to every plotted load (footnote 5:
"each time we consider the Global load, it represents an average of three
successive processor utilization") and the per-phase reductions the figure
benchmarks assert against.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TelemetryError
from .series import TimeSeries


def rolling_mean(series: TimeSeries, window: int = 3) -> TimeSeries:
    """Trailing mean over *window* samples — the paper's 3-sample averaging.

    The first ``window - 1`` samples average whatever history exists, so the
    output has the same length and timestamps as the input.
    """
    if window < 1:
        raise TelemetryError(f"window must be >= 1, got {window}")
    values = series.values
    out = TimeSeries(f"{series.name}~mean{window}")
    running: list[float] = []
    for t, v in zip(series.times, values):
        running.append(v)
        if len(running) > window:
            running.pop(0)
        out.append(t, sum(running) / len(running))
    return out


def phase_mean(series: TimeSeries, start: float, end: float) -> float:
    """Mean value over the time window ``[start, end)``.

    The figure benchmarks carve each run into the paper's execution phases
    (V20 solo, both active, ...) and compare phase means against the plateau
    values read off the published plots.
    """
    piece = series.window(start, end)
    if len(piece) == 0:
        raise TelemetryError(
            f"series {series.name!r} has no samples in [{start}, {end})"
        )
    return piece.mean()


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a series."""

    name: str
    count: int
    mean: float
    minimum: float
    maximum: float
    last: float

    def __str__(self) -> str:
        return (
            f"{self.name}: n={self.count} mean={self.mean:.2f} "
            f"min={self.minimum:.2f} max={self.maximum:.2f} last={self.last:.2f}"
        )


def summarize(series: TimeSeries) -> Summary:
    """Build a :class:`Summary` of *series*."""
    if len(series) == 0:
        raise TelemetryError(f"series {series.name!r} is empty")
    return Summary(
        name=series.name,
        count=len(series),
        mean=series.mean(),
        minimum=series.min(),
        maximum=series.max(),
        last=series.last(),
    )
