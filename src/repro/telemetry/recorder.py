"""The recorder: a named bag of time series.

One :class:`Recorder` per host run.  Probes (the load monitor, workloads,
experiment code) record into named series lazily; analysis code retrieves
them by exact name or prefix.
"""

from __future__ import annotations

from ..errors import TelemetryError
from .series import TimeSeries


class Recorder:
    """Creates and stores :class:`TimeSeries` by name."""

    def __init__(self) -> None:
        self._series: dict[str, TimeSeries] = {}

    def record(self, name: str, time: float, value: float) -> None:
        """Append ``(time, value)`` to the series *name*, creating it lazily."""
        series = self._series.get(name)
        if series is None:
            series = TimeSeries(name)
            self._series[name] = series
        series.append(time, value)

    def series(self, name: str) -> TimeSeries:
        """The series called *name*; raises if nothing was recorded."""
        try:
            return self._series[name]
        except KeyError:
            known = ", ".join(sorted(self._series)) or "<none>"
            raise TelemetryError(f"no series {name!r}; recorded series: {known}") from None

    def has(self, name: str) -> bool:
        """True when at least one sample was recorded under *name*."""
        return name in self._series

    def names(self, prefix: str = "") -> list[str]:
        """Sorted names of recorded series, optionally filtered by prefix."""
        return sorted(name for name in self._series if name.startswith(prefix))

    def matching(self, prefix: str) -> list[TimeSeries]:
        """All series whose name starts with *prefix*, in name order.

        Returns a materialized snapshot: callers iterate this while probes
        keep recording (which can create series lazily), and a live view
        over the internal dict would raise ``RuntimeError: dictionary
        changed size during iteration`` mid-walk.
        """
        return [self._series[name] for name in self.names(prefix)]

    def __len__(self) -> int:
        return len(self._series)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Recorder({len(self._series)} series)"
