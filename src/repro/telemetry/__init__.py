"""Telemetry (subsystem S8): time series, probes, statistics and rendering.

Everything an experiment reports flows through a :class:`Recorder`: the load
monitor appends per-domain and host-wide samples, and analysis code reads
them back as :class:`TimeSeries` with the smoothing the paper applies
(footnote 5: every plotted load is the mean of three successive samples).
ASCII charts make benchmark output self-contained in a terminal.
"""

from .series import TimeSeries
from .recorder import Recorder
from .stats import rolling_mean, phase_mean, summarize, Summary
from .ascii_chart import render_chart
from .export import records_to_csv, series_to_csv, table_to_text

__all__ = [
    "TimeSeries",
    "Recorder",
    "rolling_mean",
    "phase_mean",
    "summarize",
    "Summary",
    "render_chart",
    "records_to_csv",
    "series_to_csv",
    "table_to_text",
]
