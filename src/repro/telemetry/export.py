"""Plain-text exporters: CSV for series and records, aligned tables."""

from __future__ import annotations

import io
import json
from typing import Any, Mapping, Sequence

from ..errors import TelemetryError
from .series import TimeSeries


def series_to_csv(series_list: Sequence[TimeSeries]) -> str:
    """Render series as CSV with one ``time`` column per series block.

    Series may have different sampling grids, so each gets its own
    ``(time, value)`` column pair rather than forcing a join.
    """
    if not series_list:
        raise TelemetryError("series_to_csv needs at least one series")
    buffer = io.StringIO()
    header = []
    for series in series_list:
        header.extend([f"{series.name}.t", f"{series.name}.v"])
    buffer.write(",".join(header) + "\n")
    longest = max(len(series) for series in series_list)
    columns = [(series.times, series.values) for series in series_list]
    for row in range(longest):
        cells: list[str] = []
        for times, values in columns:
            if row < len(times):
                cells.extend([f"{times[row]:.6g}", f"{values[row]:.6g}"])
            else:
                cells.extend(["", ""])
        buffer.write(",".join(cells) + "\n")
    return buffer.getvalue()


def records_to_csv(
    records: Sequence[Mapping[str, Any]],
    fieldnames: Sequence[str] | None = None,
) -> str:
    """Render flat record dicts (e.g. sweep cells) as one CSV table.

    Field order is *fieldnames* when given, otherwise first-seen order
    across the records — deterministic for a fixed record sequence.
    ``None`` renders as an empty cell; non-scalar values are JSON-encoded
    with sorted keys so output bytes never depend on execution order.
    """
    if not records:
        raise TelemetryError("records_to_csv needs at least one record")
    if fieldnames is None:
        seen: dict[str, None] = {}
        for record in records:
            for key in record:
                seen.setdefault(key)
        fieldnames = list(seen)
    buffer = io.StringIO()
    buffer.write(",".join(fieldnames) + "\n")
    for record in records:
        buffer.write(",".join(_csv_cell(record.get(name)) for name in fieldnames) + "\n")
    return buffer.getvalue()


def _csv_cell(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return str(value).lower()
    if isinstance(value, (int, float)):
        return repr(value)
    text = (
        value
        if isinstance(value, str)
        else json.dumps(value, sort_keys=True, separators=(",", ":"))
    )
    if any(ch in text for ch in ',"\n'):
        text = '"' + text.replace('"', '""') + '"'
    return text


def table_to_text(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an aligned monospace table (benchmark report output)."""
    if not headers:
        raise TelemetryError("table_to_text needs headers")
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise TelemetryError(
                f"row has {len(row)} cells for {len(headers)} headers: {row}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
