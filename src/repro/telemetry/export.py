"""Plain-text exporters: CSV for series, aligned tables for reports."""

from __future__ import annotations

import io
from typing import Sequence

from ..errors import TelemetryError
from .series import TimeSeries


def series_to_csv(series_list: Sequence[TimeSeries]) -> str:
    """Render series as CSV with one ``time`` column per series block.

    Series may have different sampling grids, so each gets its own
    ``(time, value)`` column pair rather than forcing a join.
    """
    if not series_list:
        raise TelemetryError("series_to_csv needs at least one series")
    buffer = io.StringIO()
    header = []
    for series in series_list:
        header.extend([f"{series.name}.t", f"{series.name}.v"])
    buffer.write(",".join(header) + "\n")
    longest = max(len(series) for series in series_list)
    columns = [(series.times, series.values) for series in series_list]
    for row in range(longest):
        cells: list[str] = []
        for times, values in columns:
            if row < len(times):
                cells.extend([f"{times[row]:.6g}", f"{values[row]:.6g}"])
            else:
                cells.extend(["", ""])
        buffer.write(",".join(cells) + "\n")
    return buffer.getvalue()


def table_to_text(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Render an aligned monospace table (benchmark report output)."""
    if not headers:
        raise TelemetryError("table_to_text needs headers")
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise TelemetryError(
                f"row has {len(row)} cells for {len(headers)} headers: {row}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
