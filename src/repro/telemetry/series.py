"""Append-only time series.

A :class:`TimeSeries` is a list of ``(time, value)`` samples with the
read-side operations the experiment harness needs: slicing by time window,
resampling onto a regular grid, and basic reductions.  Appends must be
monotone in time — probes sample forward-running clocks only.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator

from ..errors import TelemetryError


class TimeSeries:
    """Monotone-time ``(t, value)`` samples with window queries.

    >>> series = TimeSeries("host.freq_mhz")
    >>> series.append(0.0, 1600.0)
    >>> series.append(1.0, 2667.0)
    >>> series.mean()
    2133.5
    """

    def __init__(self, name: str, samples: Iterable[tuple[float, float]] = ()) -> None:
        self._name = name
        self._times: list[float] = []
        self._values: list[float] = []
        for t, v in samples:
            self.append(t, v)

    # ------------------------------------------------------------- mutation

    def append(self, time: float, value: float) -> None:
        """Add a sample; *time* must not precede the last sample."""
        if self._times and time < self._times[-1]:
            raise TelemetryError(
                f"series {self._name!r}: sample at t={time} precedes last t={self._times[-1]}"
            )
        self._times.append(time)
        self._values.append(value)

    # ------------------------------------------------------------- identity

    @property
    def name(self) -> str:
        """Series name, e.g. ``"V20.global_load"``."""
        return self._name

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._times, self._values))

    @property
    def times(self) -> list[float]:
        """Copy of the sample times."""
        return list(self._times)

    @property
    def values(self) -> list[float]:
        """Copy of the sample values."""
        return list(self._values)

    # -------------------------------------------------------------- queries

    def window(self, start: float, end: float) -> "TimeSeries":
        """Samples with ``start <= t < end`` as a new series."""
        if end < start:
            raise TelemetryError(f"window end {end} precedes start {start}")
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        piece = TimeSeries(self._name)
        piece._times = self._times[lo:hi]
        piece._values = self._values[lo:hi]
        return piece

    def value_at(self, time: float) -> float:
        """Last-known value at *time* (step interpolation)."""
        if not self._times:
            raise TelemetryError(f"series {self._name!r} is empty")
        index = bisect.bisect_right(self._times, time) - 1
        if index < 0:
            raise TelemetryError(f"series {self._name!r} has no sample at or before t={time}")
        return self._values[index]

    def mean(self) -> float:
        """Arithmetic mean of all values."""
        if not self._values:
            raise TelemetryError(f"series {self._name!r} is empty")
        return sum(self._values) / len(self._values)

    def min(self) -> float:
        """Minimum value."""
        if not self._values:
            raise TelemetryError(f"series {self._name!r} is empty")
        return min(self._values)

    def max(self) -> float:
        """Maximum value."""
        if not self._values:
            raise TelemetryError(f"series {self._name!r} is empty")
        return max(self._values)

    def last(self) -> float:
        """Most recent value."""
        if not self._values:
            raise TelemetryError(f"series {self._name!r} is empty")
        return self._values[-1]

    def integrate(self, *, until: float | None = None) -> float:
        """Step-function time integral: sum of ``value * dt`` per segment.

        Each sample holds from its timestamp to the next sample's (or to
        *until* for the last one; default: the last timestamp, i.e. the
        final sample contributes nothing).  Used for time-weighted energy
        and load totals.
        """
        if not self._times:
            raise TelemetryError(f"series {self._name!r} is empty")
        end = self._times[-1] if until is None else until
        if end < self._times[-1]:
            return self.window(self._times[0], end).integrate(until=end)
        total = 0.0
        for index in range(len(self._times) - 1):
            total += self._values[index] * (self._times[index + 1] - self._times[index])
        total += self._values[-1] * (end - self._times[-1])
        return total

    def time_weighted_mean(self, *, until: float | None = None) -> float:
        """Mean weighted by holding time (robust to uneven sampling)."""
        if not self._times:
            raise TelemetryError(f"series {self._name!r} is empty")
        end = self._times[-1] if until is None else until
        span = end - self._times[0]
        if span <= 0.0:
            return self._values[-1]
        return self.integrate(until=until) / span

    def changes(self) -> int:
        """Number of times the value changed between consecutive samples.

        The governor benchmarks use this on the frequency series to count
        DVFS transitions visible at sampling resolution.
        """
        return sum(
            1 for previous, current in zip(self._values, self._values[1:]) if current != previous
        )

    def map(self, fn) -> "TimeSeries":
        """New series with ``fn(value)`` applied to every sample."""
        out = TimeSeries(self._name)
        out._times = list(self._times)
        out._values = [fn(v) for v in self._values]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = f"[{self._times[0]:.1f}..{self._times[-1]:.1f}]" if self._times else "[]"
        return f"TimeSeries({self._name!r}, n={len(self)}, t={span})"
