"""ASCII rendering of time series, in the spirit of the paper's figures.

Benchmarks print these charts so a terminal run of
``pytest benchmarks/ --benchmark-only`` shows the reproduced figure next to
the paper's expected plateaus without any plotting dependency.
"""

from __future__ import annotations

from ..errors import TelemetryError
from .series import TimeSeries


def render_chart(
    series_list: list[TimeSeries],
    *,
    width: int = 78,
    height: int = 16,
    y_min: float = 0.0,
    y_max: float | None = None,
    title: str = "",
    labels: list[str] | None = None,
) -> str:
    """Render one or more series as a fixed-size ASCII chart.

    Each series gets a marker character (``*``, ``+``, ``o``, ``#``); series
    are resampled onto *width* columns by last-value-before-column-time, the
    same step semantics the figures have.
    """
    if not series_list:
        raise TelemetryError("render_chart needs at least one series")
    if width < 10 or height < 4:
        raise TelemetryError(f"chart too small: {width}x{height}")
    markers = "*+o#@%&"
    if labels is None:
        labels = [series.name for series in series_list]
    if len(labels) != len(series_list):
        raise TelemetryError("one label per series required")

    t_start = min(series.times[0] for series in series_list if len(series))
    t_end = max(series.times[-1] for series in series_list if len(series))
    if y_max is None:
        y_max = max(series.max() for series in series_list)
        y_max = max(y_max, y_min + 1.0)

    grid = [[" "] * width for _ in range(height)]
    span_t = max(t_end - t_start, 1e-12)
    span_y = max(y_max - y_min, 1e-12)
    for index, series in enumerate(series_list):
        marker = markers[index % len(markers)]
        for column in range(width):
            t = t_start + span_t * column / (width - 1)
            try:
                value = series.value_at(t)
            except TelemetryError:
                continue
            fraction = (value - y_min) / span_y
            fraction = min(max(fraction, 0.0), 1.0)
            row = height - 1 - int(round(fraction * (height - 1)))
            grid[row][column] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_max:8.1f} |"
    bottom_label = f"{y_min:8.1f} |"
    mid_pad = " " * 9 + "|"
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label
        elif row_index == height - 1:
            prefix = bottom_label
        else:
            prefix = mid_pad
        lines.append(prefix + "".join(row))
    lines.append(" " * 10 + "-" * width)
    lines.append(" " * 10 + f"t={t_start:.0f}s" + " " * max(0, width - 20) + f"t={t_end:.0f}s")
    legend = "   ".join(
        f"{markers[index % len(markers)]} {label}" for index, label in enumerate(labels)
    )
    lines.append(" " * 10 + legend)
    return "\n".join(lines)
