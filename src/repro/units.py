"""Unit conventions and validation helpers.

The whole library uses three scalar conventions:

* **time** — simulated seconds, as ``float``;
* **frequency** — MHz, as ``int`` (matching the paper's 1600..2667 tables);
* **work** — *absolute seconds*: CPU-seconds of a processor running at its
  maximum frequency.  A processor at P-state *i* delivers
  ``ratio_i * cf_i`` absolute seconds per wall second (paper Eq. 1/2).

Credits, caps and loads are percentages in ``[0, 100]`` unless a docstring
says otherwise (a *fraction* is in ``[0, 1]``).

These conventions are *enforced*, not just documented: the RPL7xx lint
rules (``repro lint``; catalogue in ``docs/invariants.md``) infer a
dimension for every name from its suffix (``_s``, ``_mhz``, ``_w``,
``_percent``, ``_fraction``, ...) or stem (``credit``/``cap``/``load`` →
percent) and flag dimension-mixing arithmetic, cross-dimension
assignments, and percent↔fraction confusion at the
:func:`check_percent`/:func:`check_fraction` boundary.

These helpers centralise range checks so constructors across the library
produce uniform, actionable error messages.
"""

from __future__ import annotations

import math

from .errors import ConfigurationError

#: Tolerance used when comparing floating-point loads/credits across the
#: library.  One part in 10^9 — far below any physically meaningful delta.
EPSILON = 1e-9


def check_positive(value: float, name: str) -> float:
    """Return *value* if it is finite and strictly positive, else raise."""
    if not math.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be a finite positive number, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Return *value* if it is finite and >= 0, else raise."""
    if not math.isfinite(value) or value < 0:
        raise ConfigurationError(f"{name} must be a finite non-negative number, got {value!r}")
    return value


def check_fraction(value: float, name: str) -> float:
    """Return *value* if it is a fraction in [0, 1], else raise."""
    if not math.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be within [0, 1], got {value!r}")
    return value


def check_percent(value: float, name: str, *, allow_zero: bool = True) -> float:
    """Return *value* if it is a percentage in [0, 100], else raise.

    ``allow_zero=False`` additionally rejects 0 (useful for credits where a
    null credit has special "uncapped" semantics handled elsewhere).
    """
    if not math.isfinite(value) or not 0.0 <= value <= 100.0:
        raise ConfigurationError(f"{name} must be within [0, 100], got {value!r}")
    if not allow_zero and value == 0.0:
        raise ConfigurationError(f"{name} must be non-zero")
    return value


def percent_to_fraction(value: float) -> float:
    """Convert a percentage to a fraction."""
    return value / 100.0


def fraction_to_percent(value: float) -> float:
    """Convert a fraction to a percentage."""
    return value * 100.0


def approx_equal(a: float, b: float, *, tolerance: float = EPSILON) -> bool:
    """True when *a* and *b* differ by at most *tolerance* (absolute)."""
    return abs(a - b) <= tolerance
