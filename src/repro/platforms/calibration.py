"""The §5.2 calibration procedure: measuring ``cf_i`` per machine.

The paper measures, for several workloads, the load ratio
``L(freq_max)/L(freq)`` and the frequency ratio ``freq/freq_max``; by Eq. 1
their quotient is the correction factor ``cf`` of that frequency, which
Table 1 reports (at the minimum frequency) for five Grid'5000 machines.

This module replays that procedure against the simulated processors: pin a
frequency with the userspace governor, run a fixed-demand Web-app, measure
the load, and solve Eq. 1 for ``cf``.  Because the simulated substrate obeys
Eq. 1 *by construction*, the measurement recovers each catalog entry's
spec'd ``cf`` up to sampling noise — a round-trip validation of both the
procedure and the substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.processor import ProcessorSpec
from ..hypervisor.host import Host
from ..units import check_positive
from ..workloads import ConstantLoad


@dataclass(frozen=True)
class CalibrationResult:
    """Measured cf for one (machine, frequency) pair."""

    processor: str
    freq_mhz: int
    ratio: float
    load_at_max: float
    load_at_freq: float
    cf_measured: float
    cf_spec: float

    @property
    def error(self) -> float:
        """Relative measurement error against the spec value."""
        return abs(self.cf_measured - self.cf_spec) / self.cf_spec


def _measure_load(spec: ProcessorSpec, freq_mhz: int, demand_percent: float, *, settle: float, window: float) -> float:
    """Mean nominal host load with *demand_percent* absolute demand at *freq_mhz*."""
    host = Host(processor=spec, scheduler="credit", governor="userspace")
    vm = host.create_domain("load", credit=0)  # null credit: uncapped (§3.1)
    vm.attach_workload(ConstantLoad(demand_percent, injection_period=0.02))
    host.start()
    host.cpufreq.set_speed(freq_mhz)
    host.run(until=settle + window)
    return host.recorder.series("host.global_load").window(settle, settle + window).mean()


def calibrate_cf_min(
    spec: ProcessorSpec,
    *,
    demand_percent: float = 15.0,
    settle: float = 5.0,
    window: float = 30.0,
) -> CalibrationResult:
    """Measure ``cf`` at the minimum frequency (what Table 1 reports).

    *demand_percent* must fit the minimum frequency's capacity or the load
    saturates and Eq. 1 cannot be solved; 15 % fits every catalog machine.
    """
    return calibrate_cf_table(
        spec, demand_percent=demand_percent, settle=settle, window=window
    )[0]


def calibrate_cf_table(
    spec: ProcessorSpec,
    *,
    demand_percent: float = 15.0,
    settle: float = 5.0,
    window: float = 30.0,
) -> list[CalibrationResult]:
    """Measure ``cf`` at every non-maximum frequency of *spec*.

    Implements §5.2: "we measured the loads L(freq) at the different freq
    processor frequencies and we drew for each workload the ratios
    L(freqmax)/L(freq) and freq/freqmax, in order to compute the cf values".
    """
    check_positive(demand_percent, "demand_percent")
    table = spec.table()
    max_freq = table.max_state.freq_mhz
    load_at_max = _measure_load(spec, max_freq, demand_percent, settle=settle, window=window)
    results = []
    for state in table:
        if state.freq_mhz == max_freq:
            continue
        load_at_freq = _measure_load(
            spec, state.freq_mhz, demand_percent, settle=settle, window=window
        )
        ratio = state.freq_mhz / max_freq
        # Eq. 1: L_max / L_i = ratio * cf  =>  cf = L_max / (L_i * ratio).
        cf_measured = load_at_max / (load_at_freq * ratio)
        results.append(
            CalibrationResult(
                processor=spec.name,
                freq_mhz=state.freq_mhz,
                ratio=ratio,
                load_at_max=load_at_max,
                load_at_freq=load_at_freq,
                cf_measured=cf_measured,
                cf_spec=state.cf,
            )
        )
    return results
