"""Platform and calibration models (subsystem S9).

* :mod:`~repro.platforms.calibration` — the §5.2 measurement procedure that
  recovers each machine's correction factors ``cf_i`` from load and
  execution-time ratios (Table 1);
* :mod:`~repro.platforms.virt_platforms` — the seven virtualization
  platforms of Table 2, each reduced (as the paper does) to a credit
  discipline plus its vendor's governor aggressiveness.
"""

from .calibration import CalibrationResult, calibrate_cf_min, calibrate_cf_table
from .virt_platforms import PLATFORMS, Table2Row, VirtPlatform, run_platform

__all__ = [
    "CalibrationResult",
    "calibrate_cf_min",
    "calibrate_cf_table",
    "PLATFORMS",
    "VirtPlatform",
    "Table2Row",
    "run_platform",
]
