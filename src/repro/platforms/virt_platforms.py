"""The seven virtualization platforms of Table 2 (§5.8).

The paper's own analysis reduces each platform to two axes:

* **credit discipline** — fix credit (Hyper-V 2012, VMware ESXi 5, Xen with
  the Credit scheduler, Xen with PAS) versus variable credit (Xen SEDF,
  KVM, VirtualBox);
* **governor behaviour under its OnDemand-equivalent mode** — how deep the
  platform's power management clocks the CPU down when the host looks idle.

We model exactly those axes on the Table 2 testbed (HP Elite 8300,
i7-3770).  The vendor governors are the stable (averaged) policy with a
platform-specific ``scaling_min_freq`` floor chosen so the *relative*
degradation ordering of Table 2 reproduces: Hyper-V clocks to the physical
floor (largest penalty), stock Xen ondemand nearly so, ESXi is markedly more
conservative, PAS compensates fully, and the variable-credit platforms never
let the frequency drop while a VM is hungry (fast, but no energy saving).
KVM and VirtualBox are modelled as weight-fair work-conserving schedulers
(their CFS-based schedulers have no cap), here the credit2 policy.

Every platform/mode pair is an ordinary
:class:`~repro.experiments.scenario.ScenarioConfig`
(:func:`platform_config`): V20 (20 % credit) runs a pi batch spec while V70
(70 % credit) runs the three-phase Web-app spec, with
``stop_when_batch_done`` ending the run once pi finishes — so Table 2 rows
ride the same spec interpreter (and the same sweep grids) as every other
experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu import catalog
from ..cpu.processor import ProcessorSpec
from ..errors import ConfigurationError

#: pi-app size in absolute seconds for the Table 2 scenario.  At 20 % credit
#: and maximum frequency this takes 1400 s — the same order as the paper's
#: 1550-1600 s column (their machine, their pi precision).
PI_WORK = 280.0

#: V70's active window in the Table 2 scenario (three-phase profile).
V70_ACTIVE = (200.0, 800.0)

#: Dom0 housekeeping demand (absolute percent) — Dom0 fronts guest I/O.
DOM0_DEMAND = 8.0

#: Simulation horizon; generous upper bound for the slowest platform.
HORIZON = 4000.0


@dataclass(frozen=True)
class VirtPlatform:
    """One Table 2 column: a scheduler discipline plus governor behaviour.

    Parameters
    ----------
    name:
        The paper's column header.
    discipline:
        ``"fix"`` or ``"variable"`` — which §3.1 scheduler family.
    scheduler:
        Registry name of the platform's scheduler model.
    ondemand_floor_mhz:
        The lowest frequency the platform's OnDemand-mode governor uses
        (None = the physical minimum).  This is the modelled vendor
        aggressiveness; see the module docstring.
    uses_pas:
        True for the Xen/PAS column (frequency driven by the scheduler).
    paper_performance / paper_ondemand:
        The execution times Table 2 reports, for side-by-side output.
    """

    name: str
    discipline: str
    scheduler: str
    ondemand_floor_mhz: int | None
    uses_pas: bool
    paper_performance: float
    paper_ondemand: float

    @property
    def paper_degradation(self) -> float:
        """Table 2's Degradation row: ``(1 - T_perf / T_ondemand) * 100``."""
        return (1.0 - self.paper_performance / self.paper_ondemand) * 100.0


@dataclass(frozen=True)
class Table2Row:
    """Measured execution times for one platform."""

    platform: str
    discipline: str
    time_performance: float
    time_ondemand: float
    paper_performance: float
    paper_ondemand: float
    paper_degradation: float

    @property
    def degradation(self) -> float:
        """``(1 - T_perf / T_ondemand) * 100`` — Table 2's bottom row."""
        return (1.0 - self.time_performance / self.time_ondemand) * 100.0


#: Table 2's platforms in the paper's column order.
PLATFORMS: tuple[VirtPlatform, ...] = (
    VirtPlatform(
        name="Hyper-V",
        discipline="fix",
        scheduler="credit",
        ondemand_floor_mhz=1600,  # clocks to the physical floor
        uses_pas=False,
        paper_performance=1601.0,
        paper_ondemand=3212.0,
    ),
    VirtPlatform(
        name="VMware",
        discipline="fix",
        scheduler="credit",
        ondemand_floor_mhz=2400,  # conservative power management
        uses_pas=False,
        paper_performance=1550.0,
        paper_ondemand=2132.0,
    ),
    VirtPlatform(
        name="Xen/credit",
        discipline="fix",
        scheduler="credit",
        ondemand_floor_mhz=2000,  # stock Xen ondemand
        uses_pas=False,
        paper_performance=1559.0,
        paper_ondemand=2599.0,
    ),
    VirtPlatform(
        name="Xen/PAS",
        discipline="fix",
        scheduler="pas",
        ondemand_floor_mhz=None,
        uses_pas=True,
        paper_performance=1559.0,
        paper_ondemand=1560.0,
    ),
    VirtPlatform(
        name="Xen/SEDF",
        discipline="variable",
        scheduler="sedf",
        ondemand_floor_mhz=None,
        uses_pas=False,
        paper_performance=616.0,
        paper_ondemand=616.0,
    ),
    VirtPlatform(
        name="KVM",
        discipline="variable",
        scheduler="credit2",
        ondemand_floor_mhz=None,
        uses_pas=False,
        paper_performance=599.0,
        paper_ondemand=599.0,
    ),
    VirtPlatform(
        name="Vbox",
        discipline="variable",
        scheduler="credit2",
        ondemand_floor_mhz=None,
        uses_pas=False,
        paper_performance=625.0,
        paper_ondemand=625.0,
    ),
)


def platform_config(
    platform: VirtPlatform,
    mode: str,
    *,
    processor: ProcessorSpec = catalog.CORE_I7_3770,
    horizon: float = HORIZON,
):
    """The §5.8 scenario on *platform* under *mode*, as a declarative spec.

    ``mode`` is ``"performance"`` or ``"ondemand"``.  The vendor OnDemand
    model is the stable governor floored at the platform's
    ``ondemand_floor_mhz`` (``cpufreq_min_mhz``); PAS drives the frequency
    itself through the userspace governor.
    """
    from ..experiments.scenario import GuestSpec, ScenarioConfig, WorkloadSpec

    if mode not in ("performance", "ondemand"):
        raise ConfigurationError(f"mode must be 'performance' or 'ondemand', got {mode!r}")
    if platform.uses_pas:
        governor = "userspace"
    elif mode == "performance":
        governor = "performance"
    else:
        governor = "stable"
    floor = platform.ondemand_floor_mhz if mode == "ondemand" else None
    guests = (
        GuestSpec(
            name="V20",
            credit=20.0,
            workloads=(WorkloadSpec(kind="pi", work=PI_WORK),),
        ),
        GuestSpec(
            name="V70",
            credit=70.0,
            workloads=(
                WorkloadSpec(kind="web", load="exact", active=(V70_ACTIVE,)),
            ),
        ),
    )
    return ScenarioConfig(
        scheduler=platform.scheduler,
        governor=governor,
        processor=processor,
        guests=guests,
        duration=horizon,
        dom0_demand_percent=DOM0_DEMAND,
        cpufreq_min_mhz=floor,
        stop_when_batch_done=True,
        seed=0,
    )


def build_row(platform: VirtPlatform, times: dict[str, float | None]) -> Table2Row:
    """Assemble a :class:`Table2Row` from measured per-mode pi times.

    *times* maps ``"performance"``/``"ondemand"`` to V20's pi execution
    time; ``None`` (the job never finished) raises the shared
    did-not-finish error.  One assembly path for :func:`run_platform` and
    the sweep-based :func:`repro.experiments.tables.run_table2`.
    """
    for mode in ("performance", "ondemand"):
        if times.get(mode) is None:
            raise ConfigurationError(
                f"{platform.name} ({mode}) did not finish pi-app within the horizon"
            )
    return Table2Row(
        platform=platform.name,
        discipline=platform.discipline,
        time_performance=times["performance"],
        time_ondemand=times["ondemand"],
        paper_performance=platform.paper_performance,
        paper_ondemand=platform.paper_ondemand,
        paper_degradation=platform.paper_degradation,
    )


def run_platform(
    platform: VirtPlatform,
    *,
    processor: ProcessorSpec = catalog.CORE_I7_3770,
    horizon: float = HORIZON,
) -> Table2Row:
    """Run the §5.8 scenario on *platform* under both governor modes."""
    from ..experiments.scenario import run_scenario
    from ..sweep.metrics import batch_metrics

    times: dict[str, float | None] = {}
    for mode in ("performance", "ondemand"):
        config = platform_config(platform, mode, processor=processor, horizon=horizon)
        result = run_scenario(config)
        times[mode] = batch_metrics(result).get("v20_batch_time_s")
    return build_row(platform, times)
