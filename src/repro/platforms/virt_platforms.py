"""The seven virtualization platforms of Table 2 (§5.8).

The paper's own analysis reduces each platform to two axes:

* **credit discipline** — fix credit (Hyper-V 2012, VMware ESXi 5, Xen with
  the Credit scheduler, Xen with PAS) versus variable credit (Xen SEDF,
  KVM, VirtualBox);
* **governor behaviour under its OnDemand-equivalent mode** — how deep the
  platform's power management clocks the CPU down when the host looks idle.

We model exactly those axes on the Table 2 testbed (HP Elite 8300,
i7-3770).  The vendor governors are the stable (averaged) policy with a
platform-specific ``scaling_min_freq`` floor chosen so the *relative*
degradation ordering of Table 2 reproduces: Hyper-V clocks to the physical
floor (largest penalty), stock Xen ondemand nearly so, ESXi is markedly more
conservative, PAS compensates fully, and the variable-credit platforms never
let the frequency drop while a VM is hungry (fast, but no energy saving).
KVM and VirtualBox are modelled as weight-fair work-conserving schedulers
(their CFS-based schedulers have no cap), SEDF with the extra flag set.

The workload is the paper's §5.8 scenario: V20 (20 % credit) runs pi-app
while V70 (70 % credit) runs the three-phase Web-app profile; Table 2
reports V20's execution time under the Performance and OnDemand governors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..cpu import catalog
from ..cpu.processor import ProcessorSpec
from ..errors import ConfigurationError
from ..governors import PerformanceGovernor, StableGovernor, UserspaceGovernor
from ..hypervisor.host import Host
from ..schedulers import Credit2Scheduler, CreditScheduler, SedfScheduler
from ..core.pas import PasScheduler
from ..workloads import ConstantLoad, LoadProfile, PiApp, WebApp, exact_rate

#: pi-app size in absolute seconds for the Table 2 scenario.  At 20 % credit
#: and maximum frequency this takes 1400 s — the same order as the paper's
#: 1550-1600 s column (their machine, their pi precision).
PI_WORK = 280.0

#: V70's active window in the Table 2 scenario (three-phase profile).
V70_ACTIVE = (200.0, 800.0)

#: Dom0 housekeeping demand (absolute percent) — Dom0 fronts guest I/O.
DOM0_DEMAND = 8.0

#: Simulation horizon; generous upper bound for the slowest platform.
HORIZON = 4000.0


@dataclass(frozen=True)
class VirtPlatform:
    """One Table 2 column: a scheduler discipline plus governor behaviour.

    Parameters
    ----------
    name:
        The paper's column header.
    discipline:
        ``"fix"`` or ``"variable"`` — which §3.1 scheduler family.
    make_scheduler:
        Factory for the platform's scheduler.
    ondemand_floor_mhz:
        The lowest frequency the platform's OnDemand-mode governor uses
        (None = the physical minimum).  This is the modelled vendor
        aggressiveness; see the module docstring.
    uses_pas:
        True for the Xen/PAS column (frequency driven by the scheduler).
    paper_performance / paper_ondemand:
        The execution times Table 2 reports, for side-by-side output.
    """

    name: str
    discipline: str
    make_scheduler: Callable[[], object]
    ondemand_floor_mhz: int | None
    uses_pas: bool
    paper_performance: float
    paper_ondemand: float

    @property
    def paper_degradation(self) -> float:
        """Table 2's Degradation row: ``(1 - T_perf / T_ondemand) * 100``."""
        return (1.0 - self.paper_performance / self.paper_ondemand) * 100.0


@dataclass(frozen=True)
class Table2Row:
    """Measured execution times for one platform."""

    platform: str
    discipline: str
    time_performance: float
    time_ondemand: float
    paper_performance: float
    paper_ondemand: float
    paper_degradation: float

    @property
    def degradation(self) -> float:
        """``(1 - T_perf / T_ondemand) * 100`` — Table 2's bottom row."""
        return (1.0 - self.time_performance / self.time_ondemand) * 100.0


def _fix_credit() -> CreditScheduler:
    return CreditScheduler()


def _pas() -> PasScheduler:
    return PasScheduler()


def _sedf() -> SedfScheduler:
    return SedfScheduler()


def _fair_share() -> Credit2Scheduler:
    return Credit2Scheduler()


#: Table 2's platforms in the paper's column order.
PLATFORMS: tuple[VirtPlatform, ...] = (
    VirtPlatform(
        name="Hyper-V",
        discipline="fix",
        make_scheduler=_fix_credit,
        ondemand_floor_mhz=1600,  # clocks to the physical floor
        uses_pas=False,
        paper_performance=1601.0,
        paper_ondemand=3212.0,
    ),
    VirtPlatform(
        name="VMware",
        discipline="fix",
        make_scheduler=_fix_credit,
        ondemand_floor_mhz=2400,  # conservative power management
        uses_pas=False,
        paper_performance=1550.0,
        paper_ondemand=2132.0,
    ),
    VirtPlatform(
        name="Xen/credit",
        discipline="fix",
        make_scheduler=_fix_credit,
        ondemand_floor_mhz=2000,  # stock Xen ondemand
        uses_pas=False,
        paper_performance=1559.0,
        paper_ondemand=2599.0,
    ),
    VirtPlatform(
        name="Xen/PAS",
        discipline="fix",
        make_scheduler=_pas,
        ondemand_floor_mhz=None,
        uses_pas=True,
        paper_performance=1559.0,
        paper_ondemand=1560.0,
    ),
    VirtPlatform(
        name="Xen/SEDF",
        discipline="variable",
        make_scheduler=_sedf,
        ondemand_floor_mhz=None,
        uses_pas=False,
        paper_performance=616.0,
        paper_ondemand=616.0,
    ),
    VirtPlatform(
        name="KVM",
        discipline="variable",
        make_scheduler=_fair_share,
        ondemand_floor_mhz=None,
        uses_pas=False,
        paper_performance=599.0,
        paper_ondemand=599.0,
    ),
    VirtPlatform(
        name="Vbox",
        discipline="variable",
        make_scheduler=_fair_share,
        ondemand_floor_mhz=None,
        uses_pas=False,
        paper_performance=625.0,
        paper_ondemand=625.0,
    ),
)


def _build_host(platform: VirtPlatform, mode: str, processor: ProcessorSpec) -> tuple[Host, PiApp]:
    if mode not in ("performance", "ondemand"):
        raise ConfigurationError(f"mode must be 'performance' or 'ondemand', got {mode!r}")
    if platform.uses_pas:
        governor = UserspaceGovernor()
    elif mode == "performance":
        governor = PerformanceGovernor()
    else:
        governor = StableGovernor()
    host = Host(
        processor=processor,
        scheduler=platform.make_scheduler(),
        governor=governor,
    )
    dom0 = host.create_domain("Dom0", credit=10, dom0=True)
    dom0.attach_workload(ConstantLoad(DOM0_DEMAND))
    v20 = host.create_domain("V20", credit=20, sedf_extra=True)
    v70 = host.create_domain("V70", credit=70, sedf_extra=True)
    pi = PiApp(PI_WORK)
    v20.attach_workload(pi)
    rate = exact_rate(70, request_cost=0.005)
    v70.attach_workload(WebApp(LoadProfile.three_phase(*V70_ACTIVE, rate)))
    host.start()
    if mode == "ondemand" and platform.ondemand_floor_mhz is not None:
        host.cpufreq.set_policy_limits(min_mhz=platform.ondemand_floor_mhz)
    return host, pi


def run_platform(
    platform: VirtPlatform,
    *,
    processor: ProcessorSpec = catalog.CORE_I7_3770,
    horizon: float = HORIZON,
) -> Table2Row:
    """Run the §5.8 scenario on *platform* under both governor modes."""
    times: dict[str, float] = {}
    for mode in ("performance", "ondemand"):
        host, pi = _build_host(platform, mode, processor)
        step = 200.0
        while not pi.done and host.now < horizon:
            host.run(until=host.now + step)
        if not pi.done:
            raise ConfigurationError(
                f"{platform.name} ({mode}) did not finish pi-app within {horizon}s"
            )
        times[mode] = pi.execution_time
    return Table2Row(
        platform=platform.name,
        discipline=platform.discipline,
        time_performance=times["performance"],
        time_ondemand=times["ondemand"],
        paper_performance=platform.paper_performance,
        paper_ondemand=platform.paper_ondemand,
        paper_degradation=platform.paper_degradation,
    )
