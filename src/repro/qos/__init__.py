"""Closed-loop QoS control plane: LC/BE classes, contention, controllers.

The simulation's answer to the noisy-neighbor problem the paper's cap
mechanism only half-addresses: guests declare a *service class*
(latency-critical ``lc`` or best-effort ``be``), a
:class:`~repro.qos.monitor.ContentionMonitor` turns run-queue delay, work
backlog, credit starvation and request-queue pressure into one contention
score, and a pluggable :class:`~repro.qos.controllers.QosController`
(``none`` / ``naive`` / ``ladder``) reacts by stepping BE caps down and LC
caps/weights up until contention clears.  ``docs/qos.md`` is the prose
description; the ``qos=`` field of
:class:`~repro.experiments.scenario.ScenarioConfig` (and its cluster twin)
is the sweepable switch.
"""

from .controllers import (
    CONTROLLER_REGISTRY,
    LadderController,
    NaiveController,
    NoneController,
    QosController,
    QosStats,
    QuotaLadder,
    controller_names,
    make_controller,
)
from .fleet import FleetQos
from .monitor import ContentionMonitor

__all__ = [
    "CONTROLLER_REGISTRY",
    "ContentionMonitor",
    "FleetQos",
    "LadderController",
    "NaiveController",
    "NoneController",
    "QosController",
    "QosStats",
    "QuotaLadder",
    "controller_names",
    "make_controller",
]
