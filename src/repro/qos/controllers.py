"""Reactive QoS controllers: the throttle half of the monitor→detect→throttle loop.

A :class:`QosController` turns the windowed contention score a
:class:`~repro.qos.monitor.ContentionMonitor` computes into scheduler
actuations: it steps *best-effort* (BE) guests' caps down through the
existing :meth:`~repro.schedulers.base.Scheduler.set_cap` knob and lifts the
*latency-critical* (LC) guests' caps/weights while contention lasts,
restoring everything when it clears.  This is what the paper's static credit
replay lacks: under fix-credit semantics an LC guest can never exceed its
own cap, so when DVFS shrinks absolute capacity the only way to keep its
clients whole is for *something* to move the caps — the eris-style LC/BE
agent loop.

Registry
--------

``CONTROLLER_REGISTRY`` maps public names to classes, mirroring the
scheduler/governor/policy registries (and pinned by the RPL301/302 lint
rules like them):

* ``none`` — the do-nothing placebo (a ``qos="none"`` config installs *no*
  monitor at all; this class exists so the name is a first-class registry
  citizen and sweeps can address the baseline uniformly);
* ``naive`` — memoryless threshold control: every control period the BE
  quota fraction steps down while the score is above ``threshold`` and back
  up once it falls below ``threshold * release``;
* ``ladder`` — a discrete quota ladder with hysteresis (separate ``high`` /
  ``low`` thresholds) and a per-step ``cooldown_s``, the eris
  ``quota_level`` design: one rung per decision, never two reactions inside
  one cooldown, full BE restoration when contention clears.

Controllers never read wall clocks or unseeded randomness: decisions are a
pure function of (spec, seed), so controller-on sweeps stay byte-identical
across serial/parallel/resumed executions.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..errors import ConfigurationError
from ..obs import hooks as _obs
from ..units import check_non_negative, check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hypervisor.domain import Domain
    from ..hypervisor.host import Host


@dataclass
class QosStats:
    """Counters every controller maintains (harvested, never hot-path).

    ``time_at_level`` maps ladder level -> simulated seconds spent there
    (level 0 = unthrottled; the naive controller buckets its continuous
    fraction into pseudo-levels of 0/1).  ``lc_sla_saves`` counts completed
    interventions: episodes in which the controller throttled BE guests and
    later restored them because contention cleared.
    """

    decisions: int = 0
    steps_down: int = 0
    steps_up: int = 0
    lc_sla_saves: int = 0
    quota_level: int = 0
    contention_peak: float = 0.0
    time_at_level: dict[int, float] = field(default_factory=dict)

    def observe_score(self, score: float) -> None:
        """Track the highest windowed contention score seen."""
        if score > self.contention_peak:
            self.contention_peak = score

    def accrue(self, level: int, dt: float) -> None:
        """Charge *dt* simulated seconds to ladder *level*'s bucket."""
        if dt > 0.0:
            self.time_at_level[level] = self.time_at_level.get(level, 0.0) + dt

    @property
    def time_throttled_s(self) -> float:
        """Simulated seconds spent at any level above 0."""
        return sum(dt for level, dt in self.time_at_level.items() if level > 0)


class QuotaLadder:
    """Discrete quota levels with hysteresis and cooldown (shared core).

    Level 0 is unthrottled; each step down the ladder multiplies the BE
    quota by the next entry of *levels*.  :meth:`step` returns the new BE
    quota fraction when the level changed, ``None`` otherwise — both the
    host-tier :class:`LadderController` and the cluster-tier
    :class:`~repro.qos.fleet.FleetQos` drive their decisions through this
    one state machine so the two tiers cannot drift semantically.
    """

    def __init__(
        self,
        *,
        levels: Sequence[float] = (1.0, 0.8, 0.6, 0.4, 0.25),
        high: float = 0.6,
        low: float = 0.2,
        cooldown_s: float = 5.0,
    ) -> None:
        self.levels = tuple(float(value) for value in levels)
        if not self.levels or self.levels[0] != 1.0:
            raise ConfigurationError(
                f"ladder levels must start at 1.0 (unthrottled), got {levels!r}"
            )
        if any(b >= a for a, b in zip(self.levels, self.levels[1:])):
            raise ConfigurationError(
                f"ladder levels must strictly decrease, got {levels!r}"
            )
        if not 0.0 <= low < high <= 1.0:
            raise ConfigurationError(
                f"need 0 <= low < high <= 1 for hysteresis, got low={low}, high={high}"
            )
        self.high = high
        self.low = low
        self.cooldown_s = check_non_negative(cooldown_s, "cooldown_s")
        self.level = 0
        self._last_step: float | None = None

    @property
    def fraction(self) -> float:
        """The BE quota multiplier at the current level."""
        return self.levels[self.level]

    def step(self, now: float, score: float) -> float | None:
        """Advance the state machine; new fraction if the level moved."""
        if self._last_step is not None and now - self._last_step < self.cooldown_s:
            return None
        if score >= self.high and self.level < len(self.levels) - 1:
            self.level += 1
            self._last_step = now
            return self.levels[self.level]
        if score <= self.low and self.level > 0:
            self.level -= 1
            self._last_step = now
            return self.levels[self.level]
        return None


class QosController(ABC):
    """Base class for every QoS controller.

    Lifecycle: constructed from the config's ``qos_kwargs``, then
    :meth:`bind` once with the host and the LC/BE domain split, then
    :meth:`control` on every monitor sample.  Binding snapshots the
    baseline caps and weights so restoration is exact — a controller never
    has to remember what it changed, only what level it is at.
    """

    #: Identifier used in experiment configs and telemetry.
    name: str = "abstract"

    def __init__(self) -> None:
        self.stats = QosStats()
        self._host: "Host | None" = None
        self._lc: tuple["Domain", ...] = ()
        self._be: tuple["Domain", ...] = ()
        self._be_base_cap: dict[str, float] = {}
        self._lc_base_cap: dict[str, float] = {}
        self._lc_base_weight: dict[str, float] = {}
        self._last_control: float | None = None

    # ------------------------------------------------------------- plumbing

    def bind(
        self, host: "Host", lc: Sequence["Domain"], be: Sequence["Domain"]
    ) -> None:
        """Attach to *host* and snapshot the LC/BE baselines."""
        if self._host is not None:
            raise ConfigurationError(f"QoS controller {self.name!r} bound twice")
        self._host = host
        self._lc = tuple(lc)
        self._be = tuple(be)
        scheduler = host.scheduler
        for domain in self._be:
            cap = scheduler.cap_of(domain)
            # Uncapped BE guests (cap 0, or a scheduler with no cap notion)
            # throttle against their booked credit — the SLA they bought is
            # the natural 100% point of the quota ladder.
            self._be_base_cap[domain.name] = cap if cap > 0.0 else domain.credit
        for domain in self._lc:
            self._lc_base_cap[domain.name] = scheduler.cap_of(domain)
            self._lc_base_weight[domain.name] = scheduler.weight_of(domain)

    @property
    def host(self) -> "Host":
        """The bound host (raises before :meth:`bind`)."""
        if self._host is None:
            raise ConfigurationError(
                f"QoS controller {self.name!r} is not bound to a host"
            )
        return self._host

    # --------------------------------------------------------------- policy

    @abstractmethod
    def control(self, now: float, score: float) -> None:
        """React to the windowed contention *score* at sim time *now*."""

    @abstractmethod
    def quota_fraction(self) -> float:
        """Current BE quota multiplier in (0, 1] (1.0 = unthrottled)."""

    # ------------------------------------------------------------- actuation

    def _accrue_time(self, now: float, level: int) -> None:
        last = self._last_control
        if last is not None:
            self.stats.accrue(level, now - last)
        self._last_control = now

    def _apply(self, now: float, fraction: float, *, lc_boost: float) -> None:
        """Set BE caps to ``base * fraction`` and boost/restore LC guests.

        While throttled (*fraction* < 1) every LC guest runs uncapped with
        its weight multiplied by *lc_boost*: under fix-credit semantics the
        LC cap itself is what pins its wall-time share, so freeing BE share
        helps nobody unless the LC ceiling lifts too (§3.1's null-credit
        exception, applied reactively).  At fraction 1 every baseline is
        restored exactly.
        """
        host = self.host
        scheduler = host.scheduler
        for domain in self._be:
            scheduler.set_cap(domain, self._be_base_cap[domain.name] * fraction)
        throttled = fraction < 1.0
        for domain in self._lc:
            base_weight = self._lc_base_weight[domain.name]
            if throttled:
                scheduler.set_cap(domain, 0.0)
                if base_weight > 0.0:
                    scheduler.set_weight(domain, base_weight * lc_boost)
            else:
                scheduler.set_cap(domain, self._lc_base_cap[domain.name])
                if base_weight > 0.0:
                    scheduler.set_weight(domain, base_weight)
        host.kick()

    def _emit_decision(
        self, now: float, action: str, level: int, fraction: float, score: float
    ) -> None:
        trace = _obs.TRACER
        if trace is not None:
            trace.qos_decision(
                now, self.name, action, "host", level, fraction, score
            )


class NoneController(QosController):
    """The registered baseline: observes, never actuates.

    ``qos="none"`` configs skip the monitor entirely (zero hot-path cost);
    this class is what you get when you *explicitly* instantiate the name,
    e.g. a sweep axis driving ``make_controller`` uniformly.
    """

    name = "none"

    def control(self, now: float, score: float) -> None:
        self.stats.decisions += 1
        self.stats.observe_score(score)
        self._accrue_time(now, 0)

    def quota_fraction(self) -> float:
        return 1.0


class NaiveController(QosController):
    """Memoryless threshold stepping — the obvious thing, kept honest.

    Every control period: score above *threshold* steps the BE quota
    fraction down by *step* (never below *floor*); score below
    ``threshold * release`` steps it back up.  No hysteresis band, no
    cooldown — the ladder controller exists because this one oscillates
    around the threshold under bursty contention.
    """

    name = "naive"

    def __init__(
        self,
        *,
        threshold: float = 0.5,
        release: float = 0.5,
        step: float = 0.2,
        floor: float = 0.25,
        lc_boost: float = 2.0,
    ) -> None:
        super().__init__()
        if not 0.0 < threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in (0, 1], got {threshold}"
            )
        if not 0.0 <= release <= 1.0:
            raise ConfigurationError(f"release must be in [0, 1], got {release}")
        self.threshold = threshold
        self.release = release
        self.step = check_positive(step, "step")
        self.floor = check_positive(floor, "floor")
        self.lc_boost = check_positive(lc_boost, "lc_boost")
        self._fraction = 1.0

    def control(self, now: float, score: float) -> None:
        stats = self.stats
        stats.decisions += 1
        stats.observe_score(score)
        self._accrue_time(now, 0 if self._fraction >= 1.0 else 1)
        if score > self.threshold and self._fraction > self.floor:
            self._fraction = max(self.floor, self._fraction - self.step)
            stats.steps_down += 1
            stats.quota_level = 1
            self._apply(now, self._fraction, lc_boost=self.lc_boost)
            self._emit_decision(now, "throttle", 1, self._fraction, score)
        elif score < self.threshold * self.release and self._fraction < 1.0:
            self._fraction = min(1.0, self._fraction + self.step)
            stats.steps_up += 1
            if self._fraction >= 1.0:
                stats.quota_level = 0
                stats.lc_sla_saves += 1
            self._apply(now, self._fraction, lc_boost=self.lc_boost)
            self._emit_decision(
                now, "restore", stats.quota_level, self._fraction, score
            )

    def quota_fraction(self) -> float:
        return self._fraction


class LadderController(QosController):
    """Discrete quota-level ladder with hysteresis and cooldown (eris-style).

    One rung per decision: score at or above *high* steps BE quota one level
    down the ladder, score at or below *low* steps one level back up, and
    no two steps land inside one *cooldown_s*.  The dead band between the
    thresholds plus the cooldown is what keeps the controller from chattering
    on bursty contention, and level 0 restores every BE cap and LC
    cap/weight to its baseline exactly.
    """

    name = "ladder"

    def __init__(
        self,
        *,
        levels: Sequence[float] = (1.0, 0.8, 0.6, 0.4, 0.25),
        high: float = 0.6,
        low: float = 0.2,
        cooldown_s: float = 5.0,
        lc_boost: float = 2.0,
    ) -> None:
        super().__init__()
        self._ladder = QuotaLadder(
            levels=levels, high=high, low=low, cooldown_s=cooldown_s
        )
        self.lc_boost = check_positive(lc_boost, "lc_boost")

    @property
    def level(self) -> int:
        """Current ladder level (0 = unthrottled)."""
        return self._ladder.level

    def control(self, now: float, score: float) -> None:
        stats = self.stats
        stats.decisions += 1
        stats.observe_score(score)
        before = self._ladder.level
        self._accrue_time(now, before)
        fraction = self._ladder.step(now, score)
        if fraction is None:
            return
        level = self._ladder.level
        stats.quota_level = level
        if level > before:
            stats.steps_down += 1
            action = "throttle"
        else:
            stats.steps_up += 1
            action = "restore"
            if level == 0:
                stats.lc_sla_saves += 1
        self._apply(now, fraction, lc_boost=self.lc_boost)
        self._emit_decision(now, action, level, fraction, score)

    def quota_fraction(self) -> float:
        return self._ladder.fraction


#: Public QoS controller registry (name -> class), the ``qos=`` axis domain.
CONTROLLER_REGISTRY: dict[str, type[QosController]] = {
    NoneController.name: NoneController,
    NaiveController.name: NaiveController,
    LadderController.name: LadderController,
}


def controller_names() -> tuple[str, ...]:
    """Registered controller names, in registry order."""
    return tuple(CONTROLLER_REGISTRY)


def make_controller(name: str, **kwargs) -> QosController:
    """Instantiate the controller registered as *name*.

    Unknown names raise a :class:`~repro.errors.ConfigurationError` listing
    the valid choices (the same contract as the scheduler/governor/policy
    factories).
    """
    try:
        controller_cls = CONTROLLER_REGISTRY[name]
    except KeyError:
        known = ", ".join(CONTROLLER_REGISTRY)
        raise ConfigurationError(
            f"unknown QoS controller {name!r}; use one of: {known}"
        ) from None
    return controller_cls(**kwargs)
