"""Contention detection: the sensor half of the QoS control loop.

A :class:`ContentionMonitor` samples the latency-critical (LC) domains on a
sim-timer cadence and condenses what it sees into one scalar **contention
score** in [0, 1] per host, which it feeds straight into the bound
:class:`~repro.qos.controllers.QosController`.

The score is the max over LC domains of the max of four component signals,
then smoothed over a sliding window of the last *window* samples:

* **work backlog** — ``pending_work / (backlog_ref * entitled_work)``
  clamped to 1, where ``entitled_work = credit/100 * period`` is the work an
  LC guest's booked share is good for per sampling period.  This is the
  primary signal: under fix-credit semantics a starved LC guest shows up as
  queued demand long before anything else moves, including when DVFS shrinks
  absolute capacity while the wall-time share stays nominally honest.
* **run-queue delay** — ``1 - delivered_wall / entitled_wall`` (clamped at
  0), counted only while the guest is backlogged: an idle guest that used
  little CPU is content, not starved.
* **credit starvation** — a floor of 0.5 whenever the scheduler reports the
  domain out of credits (``credits_of() <= 0``) while backlogged; schedulers
  without a credit notion simply never trip it.
* **queue pressure** — ``queued_requests / queue_ref`` clamped to 1, read
  from any workload exposing a :class:`~repro.workloads.latency.LatencyTracker`
  (the ``latency`` attribute, e.g. :class:`~repro.workloads.web.WebApp`).

All inputs come from state the simulation already maintains (vCPU backlog,
scheduler accounts, latency trackers) — the monitor adds a periodic timer
and arithmetic, no new bookkeeping on the dispatch path, and a ``qos="none"``
config installs no monitor at all.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Sequence

from ..errors import ConfigurationError
from ..hypervisor.vcpu import WORK_EPSILON
from ..obs import hooks as _obs
from ..sim import PeriodicTimer
from ..units import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..hypervisor.domain import Domain
    from ..hypervisor.host import Host
    from ..telemetry import Recorder
    from .controllers import QosController


class ContentionMonitor:
    """Samples LC starvation signals every *period* seconds (default 1 s).

    Parameters
    ----------
    host, controller, lc_domains:
        The simulated host, the bound controller to drive, and the domains
        whose guests declared ``service_class="lc"``.
    recorder:
        Optional :class:`~repro.telemetry.Recorder`; when given, the raw and
        windowed scores land under ``qos.contention`` / ``qos.score``.
    period:
        Sampling cadence in simulated seconds.
    window:
        Number of samples in the smoothing window (the controller sees the
        window mean, so one noisy sample cannot flip a quota level).
    backlog_ref:
        Backlog that saturates the backlog component, in multiples of one
        period's entitled work.
    queue_ref:
        Queued request count that saturates the queue-pressure component.
    """

    def __init__(
        self,
        host: "Host",
        controller: "QosController",
        lc_domains: Sequence["Domain"],
        recorder: "Recorder | None" = None,
        *,
        period: float = 1.0,
        window: int = 5,
        backlog_ref: float = 2.0,
        queue_ref: float = 50.0,
    ) -> None:
        self._host = host
        self._controller = controller
        self._lc = tuple(lc_domains)
        self._recorder = recorder
        self._period = check_positive(period, "period")
        if window < 1:
            raise ConfigurationError(f"window must be >= 1, got {window}")
        self._window: deque[float] = deque(maxlen=int(window))
        self._backlog_ref = check_positive(backlog_ref, "backlog_ref")
        self._queue_ref = check_positive(queue_ref, "queue_ref")
        self._timer = PeriodicTimer(
            host.engine, self._period, self._sample, label="qos-monitor"
        )
        self._last_wall: dict[str, float] = {}

    @property
    def period(self) -> float:
        """Sampling period in seconds."""
        return self._period

    def start(self) -> None:
        """Begin sampling (aligned to multiples of the period)."""
        for domain in self._lc:
            self._last_wall[domain.name] = domain.cpu_seconds
        self._timer.start()

    def stop(self) -> None:
        """Stop sampling."""
        self._timer.stop()

    # ------------------------------------------------------------ internals

    def _domain_score(self, domain: "Domain") -> float:
        entitled_work = domain.credit / 100.0 * self._period
        delivered = domain.cpu_seconds
        delta_wall = delivered - self._last_wall.get(domain.name, 0.0)
        self._last_wall[domain.name] = delivered

        backlog = domain.vcpu.pending_work
        # "Backlogged" means work worth a real slice of the entitlement is
        # queued, not a just-injected quantum that has not had its turn yet
        # -- a content low-load guest must not trip the delay/starvation
        # components on sampling jitter.
        backlogged = backlog > max(WORK_EPSILON, 0.1 * entitled_work)
        score = 0.0
        if entitled_work > 0.0:
            score = min(1.0, backlog / (self._backlog_ref * entitled_work))
        if backlogged and entitled_work > 0.0:
            delay = 1.0 - delta_wall / entitled_work
            if delay > score:
                score = min(1.0, delay)
            credits_of = getattr(self._host.scheduler, "credits_of", None)
            if credits_of is not None and credits_of(domain) <= 0.0:
                score = max(score, 0.5)
        for workload in domain.workloads:
            tracker = getattr(workload, "latency", None)
            if tracker is not None:
                pressure = min(1.0, tracker.queued_requests / self._queue_ref)
                if pressure > score:
                    score = pressure
        return score

    def _sample(self, now: float) -> None:
        # The host accounts lazily (at slice boundaries), so force the books
        # up to date before reading backlog and wall-time counters.
        self._host.sync_accounting()
        raw = 0.0
        for domain in self._lc:
            raw = max(raw, self._domain_score(domain))
        self._window.append(raw)
        score = sum(self._window) / len(self._window)

        if self._recorder is not None:
            self._recorder.record("qos.contention", now, raw)
            self._recorder.record("qos.score", now, score)
        trace = _obs.TRACER
        if trace is not None:
            trace.qos_score(now, raw, score)
        self._controller.control(now, score)
