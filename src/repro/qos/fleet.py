"""Fleet-tier QoS: the host controller's semantics at epoch granularity.

The cluster tier is a fluid model — no vCPUs, no run queues — so contention
is read straight off each machine's serve ledger: the **shortfall fraction**
``(demand - served) / demand`` of an epoch is the fleet analogue of the host
monitor's contention score.  :class:`FleetQos` keeps one
:class:`~repro.qos.controllers.QuotaLadder` (or naive threshold state) per
machine and returns the BE quota fraction the orchestrator should apply to
that machine's best-effort VMs on the *next* epoch; machines hosting no
latency-critical VMs are never throttled.

Decisions reuse the exact controller names and, for ``ladder``, the exact
state machine of the host tier, so a ``qos=`` sweep means the same thing in
both ``ScenarioConfig`` and ``ClusterScenarioConfig``.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .controllers import QosStats, QuotaLadder


class FleetQos:
    """Per-machine BE quota control for the orchestrator's epoch loop.

    Parameters
    ----------
    kind:
        ``"naive"`` or ``"ladder"`` (a ``qos="none"`` cluster config never
        constructs a FleetQos at all).
    epoch_s:
        The orchestration epoch, used to express the ladder cooldown in
        epochs (two epochs) and to charge time-at-level buckets.
    threshold:
        Shortfall fraction above which the naive kind throttles (and half of
        which releases); also reused as the ladder's ``high`` mark.
    """

    def __init__(
        self, kind: str, *, epoch_s: float, threshold: float = 0.3
    ) -> None:
        if kind not in ("naive", "ladder"):
            raise ConfigurationError(
                f"unknown fleet QoS kind {kind!r}; use 'naive' or 'ladder'"
            )
        if not 0.0 < threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must be in (0, 1], got {threshold}"
            )
        self.kind = kind
        self.epoch_s = epoch_s
        self.threshold = threshold
        self.stats = QosStats()
        self._ladders: dict[str, QuotaLadder] = {}
        self._naive_fraction: dict[str, float] = {}

    def _ladder_for(self, machine: str) -> QuotaLadder:
        ladder = self._ladders.get(machine)
        if ladder is None:
            ladder = QuotaLadder(
                high=self.threshold,
                low=self.threshold / 3.0,
                cooldown_s=2.0 * self.epoch_s,
            )
            self._ladders[machine] = ladder
        return ladder

    def observe(
        self,
        now: float,
        machine: str,
        demand: float,
        served: float,
        lc_present: bool,
    ) -> float:
        """Fold one machine-epoch; the BE quota fraction for the next epoch.

        *demand*/*served* are the machine's epoch totals in percent-of-core;
        *lc_present* is whether any LC VM lives there this epoch (without
        one there is nobody to protect, so the quota stays at 1.0 and any
        leftover throttle from before a migration is released).
        """
        stats = self.stats
        stats.decisions += 1
        shortfall = 0.0
        if demand > 0.0:
            shortfall = max(0.0, (demand - served) / demand)
        stats.observe_score(shortfall)

        if not lc_present:
            self._ladders.pop(machine, None)
            self._naive_fraction.pop(machine, None)
            return 1.0

        if self.kind == "naive":
            fraction = self._naive_fraction.get(machine, 1.0)
            if shortfall > self.threshold and fraction > 0.25:
                fraction = max(0.25, fraction - 0.2)
                stats.steps_down += 1
            elif shortfall < self.threshold / 2.0 and fraction < 1.0:
                fraction = min(1.0, fraction + 0.2)
                stats.steps_up += 1
                if fraction >= 1.0:
                    stats.lc_sla_saves += 1
            self._naive_fraction[machine] = fraction
        else:
            ladder = self._ladder_for(machine)
            before = ladder.level
            stepped = ladder.step(now, shortfall)
            fraction = ladder.fraction
            if stepped is not None:
                if ladder.level > before:
                    stats.steps_down += 1
                else:
                    stats.steps_up += 1
                    if ladder.level == 0:
                        stats.lc_sla_saves += 1

        level = 0 if fraction >= 1.0 else 1
        stats.accrue(level, self.epoch_s)
        stats.quota_level = max(
            (ladder.level for ladder in self._ladders.values()), default=level
        )
        return fraction
